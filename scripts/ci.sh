#!/usr/bin/env bash
# CI gate: release build, full test suite, lint, and a perf snapshot so every
# PR leaves a comparable BENCH_exec.json trail.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> DML property sweep (write-path equivalence)"
cargo test -q --test dml_props

echo "==> 3-way executor equivalence sweep at 1, 2 and 4 system threads"
# QPE_AP_THREADS sets the system-level default the full bind->plan->execute
# pipeline uses; QPE_MORSEL_ROWS shrinks morsels so test-scale tables
# actually split. The sweep itself additionally runs the parallel executor
# at 2 and 4 threads explicitly.
for t in 1 2 4; do
    QPE_AP_THREADS="$t" QPE_MORSEL_ROWS=64 cargo test -q --test engine_equivalence
done

echo "==> parallel determinism repeat loop (fixed queries, fresh scheduling each run)"
for i in 1 2 3; do
    cargo test -q --test parallel_determinism
done

echo "==> prepared-statement equivalence sweep (prepared ≡ inlined, clean + dirty, 3 executors)"
# prepare+execute(params) must return byte-identical rows AND WorkCounters
# (blocks_pruned included) to the literal-inlined SQL, plus the concurrent
# multi-session smoke test over one shared Arc<HtapSystem>.
cargo test -q --test prepared_props

echo "==> MVCC snapshot gates (committed-prefix oracle, both read paths)"
# The proptest sweep pins a snapshot after every op of a random DML/compact
# tape and holds it to a lockstep oracle system that stopped at that epoch —
# rows AND WorkCounters, on all three executors. The threaded stress test is
# scheduling-sensitive, so it runs three times; reader threads pin snapshots
# while writers stream inserts and assert per-writer prefix consistency.
# Both settings of the read-path toggle must be observationally identical:
# QPE_MVCC_READS=1 executes analytical reads lock-free on a pinned snapshot,
# =0 executes them under the read guard. Same rows, same counters.
for mvcc in 0 1; do
    QPE_MVCC_READS="$mvcc" cargo test -q --test mvcc_props
    QPE_MVCC_READS="$mvcc" cargo test -q --test engine_equivalence
done
for i in 1 2 3; do
    cargo test -q --test mvcc_props concurrent_writers_and_snapshot_readers
done

echo "==> crash-injection sweep (WAL/segment/manifest/checkpoint fail points)"
# Bounded proptest sweep (48 cases fixed in-file): random DML/compact/
# checkpoint interleavings with a simulated kill at every durable-I/O site,
# then reopen and compare against the committed-prefix oracle. The suite
# also covers torn-tail truncation, recovery idempotence (double crash
# during replay), group-commit loss-lessness under concurrent clients, and
# the full open -> write -> crash -> recover -> verify cycle in a tempdir.
cargo test -q --test crash_recovery

echo "==> fault-tolerance sweep (transient retry, governance, panic containment, degraded mode)"
# Transient faults under the retry budget must be invisible (proptest sweep
# against a fault-free oracle); exhausted/persistent faults must degrade to
# read-only and resume cleanly; panics contain at the session boundary.
cargo test -q --test fault_tolerance

echo "==> governance gates (in-flight cancellation + deadline/budget trips, repeated)"
# Cancellation races a 4-thread parallel scan, so it repeats like the
# determinism loop; the timeout/budget trips are deterministic.
for i in 1 2 3; do
    cargo test -q --test fault_tolerance cancellation_interrupts_a_parallel_scan
done
cargo test -q --test fault_tolerance deadlines_trip_timeouts_without_side_effects
cargo test -q --test fault_tolerance memory_budgets_bound_result_materialization

echo "==> network front end (wire ≡ in-process byte-identity, typed errors, fuzz, pinning)"
# The wire path must be a transparent transport: the integration suite
# proves rows, WorkCounters and every typed error (governance trips
# included) round-trip byte-identically to an in-process Session; the fuzz
# suite feeds the framing layer garbage / truncated / bit-flipped streams
# (structured error or clean disconnect, never a panic, length capped
# before allocation); the pinning suite proves a pinned run equals the
# same engine's side of a dual run.
cargo test -q -p qpe_server
cargo test -q --test engine_pinning

echo "==> loadgen smoke (ephemeral-port server, 8 wire clients, all three traffic classes)"
# Gates: wire ≡ in-process equivalence before any load, prepared TP point
# lookups + dual-runs + AP scans + mixed DML all actually served, and zero
# protocol errors after the multi-client traffic.
cargo run --release -p qpe_bench --bin loadgen -- --smoke

echo "==> dirty-table executor comparison (encoded base + delta + tombstones)"
# --dirty applies uncompacted INSERT/DELETEs first, so the scalar-vs-batch
# agreement check runs over dictionary-encoded base blocks read through
# chunked views with live delta rows and tombstones — the encoded-path
# equivalence a clean-table comparison would never exercise.
cargo run --release -p qpe_bench --bin bench_snapshot -- --compare scalar,batch --dirty

echo "==> forced-encoding executor gates (pinned dict/rle/for bases, dirty, scalar vs batch)"
# Each run re-encodes the compared tables' bases under one pinned policy and
# asserts scalar ≡ batch on rows AND WorkCounters before timing — the
# compressed-execution kernels must be result-invariant, not just fast.
for enc in dict rle for; do
    cargo run --release -p qpe_bench --bin bench_snapshot -- --compare scalar,batch --dirty --encoding "$enc"
done
cargo run --release -p qpe_bench --bin bench_snapshot -- --compare batch,par4 --encoding for

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench snapshot (BENCH_exec.json; includes prepared-vs-unprepared QPS, plan-cache hit rate, the durability cases: wal_commit_qps group-commit vs per-statement, recovery_time_100k_rows, background_compact_p99_write_stall, and the MVCC mixed-workload reader p99 with/without a concurrent durable writer)"
cargo run --release -p qpe_bench --bin bench_snapshot

echo "==> server loadgen record (server_point_lookup_qps, server_mixed_qps, reader p99 under DML)"
# Runs after the snapshot: both recorders merge-preserve BENCH_exec.json,
# and the wire numbers should overlay the same run's in-process baseline.
cargo run --release -p qpe_bench --bin loadgen -- --record

echo "CI OK"
