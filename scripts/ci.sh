#!/usr/bin/env bash
# CI gate: release build, full test suite, lint, and a perf snapshot so every
# PR leaves a comparable BENCH_exec.json trail.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q --workspace

echo "==> DML property sweep (write-path equivalence)"
cargo test -q --test dml_props

echo "==> cargo clippy -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> bench snapshot (BENCH_exec.json)"
cargo run --release -p qpe_bench --bin bench_snapshot

echo "CI OK"
