//! Knowledge-base curation: the expert feedback loop and user context.
//!
//! Demonstrates the paper's human-side workflows: experts correcting wrong
//! or abstaining outputs (which grows the KB), and users supplying fresh
//! context such as a newly created index — which genuinely changes plans
//! and therefore explanations.
//!
//! ```sh
//! cargo run --example kb_curation
//! ```

use qpe_core::explainer::{Explainer, PipelineConfig};
use qpe_htap::tpch::TpchConfig;
use qpe_llm::grader::Grade;
use qpe_treecnn::train::TrainerConfig;

fn main() {
    let mut explainer = Explainer::build(PipelineConfig {
        tpch: TpchConfig::with_scale(0.005),
        n_train: 50,
        kb_size: 10, // deliberately small so coverage gaps occur
        trainer: TrainerConfig {
            epochs: 25,
            ..TrainerConfig::default()
        },
        ..Default::default()
    })
    .expect("pipeline builds");

    // --- Part 1: the feedback loop -------------------------------------
    println!("part 1: expert feedback loop (KB starts at {} entries)", explainer.kb().len());
    let probe = "SELECT s_name FROM supplier WHERE s_suppkey = 3";
    let outcome = explainer.system().run_sql(probe).expect("query runs");
    let report = explainer.explain_outcome(&outcome, &[]);
    let grade = explainer.grade(&outcome, &report.output);
    println!("  first attempt grade: {grade:?} (output: {})", truncate(&report.output.text));
    if matches!(grade, Grade::Wrong | Grade::None) {
        println!("  -> expert writes the correct explanation and stores it");
        explainer.add_expert_correction(&outcome);
        let retry = explainer.explain_outcome(&outcome, &[]);
        println!(
            "  retry grade: {:?} (KB now {} entries)",
            explainer.grade(&outcome, &retry.output),
            explainer.kb().len()
        );
    } else {
        println!("  already well covered; no correction needed");
    }

    // --- Part 2: user context — a new index changes the story ----------
    println!("\npart 2: user creates an index on customer.c_mktsegment");
    let sql = "SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'";
    let before = explainer.system().run_sql(sql).expect("query runs");
    println!(
        "  before: TP plan uses {} (winner {})",
        if before.tp.plan.count_type(qpe_htap::plan::NodeType::IndexScan) > 0 {
            "an index scan"
        } else {
            "a full table scan"
        },
        before.winner()
    );
    // create the index (the paper's "additional user context" made real)
    assert!(explainer
        .system_mut()
        .database_mut()
        .create_index("customer", "c_mktsegment"));
    let after = explainer.system().run_sql(sql).expect("query runs");
    println!(
        "  after:  TP plan uses {} (winner {})",
        if after.tp.plan.count_type(qpe_htap::plan::NodeType::IndexScan) > 0 {
            "an index scan"
        } else {
            "a full table scan"
        },
        after.winner()
    );
    let ctx = vec![
        "An additional index has been created on the c_mktsegment column in the \
         customer table."
            .to_string(),
    ];
    let report = explainer.explain_outcome(&after, &ctx);
    println!("  explanation with user context: {}", truncate(&report.output.text));
    if report.output.is_none {
        // The plan shape changed (index scan now) and the KB has no history
        // for it yet — exactly when experts must step in once.
        println!("  -> no matching history for the new plan shape; expert annotates it");
        explainer.add_expert_correction(&after);
        let retry = explainer.explain_outcome(&after, &ctx);
        println!("  retry: {}", truncate(&retry.output.text));
    }
}

fn truncate(s: &str) -> String {
    if s.len() > 160 {
        format!("{}…", &s[..160])
    } else {
        s.to_string()
    }
}
