//! Quickstart: build the full pipeline and explain one query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use qpe_core::explainer::{Explainer, PipelineConfig};
use qpe_htap::engine::HtapSystem;
use qpe_htap::latency::format_latency;
use qpe_htap::tpch::TpchConfig;
use qpe_treecnn::train::TrainerConfig;

fn main() {
    // 1. Build the system: generates TPC-H data, runs a training workload on
    //    both engines, trains the smart router, annotates a 20-entry
    //    knowledge base with expert explanations.
    println!("building pipeline (datagen + dual-engine runs + router training)...");
    let explainer = Explainer::build(PipelineConfig {
        tpch: TpchConfig::with_scale(0.005),
        n_train: 60,
        kb_size: 20,
        trainer: TrainerConfig {
            epochs: 30,
            ..TrainerConfig::default()
        },
        ..Default::default()
    })
    .expect("pipeline builds");

    // 2. Ask the question the paper opens with: why is my query slow on one
    //    engine and fast on the other?
    let sql = "SELECT COUNT(*) FROM customer, orders \
               WHERE o_custkey = c_custkey AND c_mktsegment = 'machinery'";
    let report = explainer.explain_sql(sql, &[]).expect("query explains");

    println!("\nquery: {sql}");
    println!(
        "\nTP ran in {}, AP ran in {} -> {} is {:.1}x faster",
        format_latency(report.tp_latency_ns),
        format_latency(report.ap_latency_ns),
        report.winner,
        report.speedup
    );
    println!("\nretrieved {} knowledge-base entries", report.retrieved_ids.len());
    println!("\n--- explanation ---\n{}", report.output.text);
    println!(
        "\n(total response time {} — retrieval was {:.4}% of it)",
        format_latency(report.timing.total_ns()),
        report.timing.retrieval_fraction() * 100.0
    );

    // 3. The database is writable: DML routes to the TP engine, the column
    //    store buffers the write in its delta region, and the very next AP
    //    query sees it — before AND after compaction.
    println!("\n--- DML + fresh reads ---");
    let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
    let count_sql = "SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'";
    let count = |sys: &HtapSystem| {
        sys.run_sql(count_sql).expect("count runs").ap.rows[0][0]
            .as_int()
            .expect("count is an int")
    };
    println!("machinery customers before insert: {}", count(&sys));

    let outcome = sys
        .execute_sql(
            "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
             c_mktsegment) VALUES (900001, 'customer#900001', 4, '20-555-000-1111', \
             1234.56, 'machinery')",
        )
        .expect("insert runs");
    let dml = outcome.as_dml().expect("insert is DML");
    println!(
        "INSERT affected {} row(s) on the TP engine in {}",
        dml.result.rows_affected,
        format_latency(dml.latency_ns)
    );
    let fresh = sys.freshness("customer").expect("table exists");
    println!(
        "freshness before compaction: version={} delta_rows={} (AP reads through the delta)",
        fresh.version, fresh.delta_rows
    );
    println!("machinery customers after insert, BEFORE compact(): {}", count(&sys));

    sys.compact("customer");
    let fresh = sys.freshness("customer").expect("table exists");
    println!(
        "freshness after compaction:  version={} delta_rows={} (merged into base columns)",
        fresh.version, fresh.delta_rows
    );
    println!("machinery customers after insert, AFTER compact():  {}", count(&sys));
}
