//! Quickstart: build the full pipeline and explain one query.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use qpe_core::explainer::{Explainer, PipelineConfig};
use qpe_server::{Client, EnginePref, Server, ServerConfig};
use qpe_htap::engine::HtapSystem;
use qpe_htap::exec::StatementLimits;
use qpe_htap::latency::format_latency;
use qpe_htap::session::Session;
use qpe_htap::tpch::TpchConfig;
use qpe_sql::value::Value;
use qpe_treecnn::train::TrainerConfig;
use std::sync::Arc;
use std::time::Duration;

fn main() {
    // 1. Build the system: generates TPC-H data, runs a training workload on
    //    both engines, trains the smart router, annotates a 20-entry
    //    knowledge base with expert explanations.
    println!("building pipeline (datagen + dual-engine runs + router training)...");
    let explainer = Explainer::build(PipelineConfig {
        tpch: TpchConfig::with_scale(0.005),
        n_train: 60,
        kb_size: 20,
        trainer: TrainerConfig {
            epochs: 30,
            ..TrainerConfig::default()
        },
        ..Default::default()
    })
    .expect("pipeline builds");

    // 2. Ask the question the paper opens with: why is my query slow on one
    //    engine and fast on the other?
    let sql = "SELECT COUNT(*) FROM customer, orders \
               WHERE o_custkey = c_custkey AND c_mktsegment = 'machinery'";
    let report = explainer.explain_sql(sql, &[]).expect("query explains");

    println!("\nquery: {sql}");
    println!(
        "\nTP ran in {}, AP ran in {} -> {} is {:.1}x faster",
        format_latency(report.tp_latency_ns),
        format_latency(report.ap_latency_ns),
        report.winner,
        report.speedup
    );
    println!("\nretrieved {} knowledge-base entries", report.retrieved_ids.len());
    println!("\n--- explanation ---\n{}", report.output.text);
    println!(
        "\n(total response time {} — retrieval was {:.4}% of it)",
        format_latency(report.timing.total_ns()),
        report.timing.retrieval_fraction() * 100.0
    );

    // 3. The client API is the session layer: share one system via Arc,
    //    open a Session per client, and prepare statements once — every
    //    subsequent execute() skips the whole SQL front end (lex, parse,
    //    bind, plan) and only injects the parameter values.
    println!("\n--- Session API: prepare once, execute many ---");
    let sys = Arc::new(HtapSystem::new(&TpchConfig::with_scale(0.002)));
    let session = Session::new(Arc::clone(&sys));

    let lookup = session
        .prepare("SELECT c_name, c_acctbal FROM customer WHERE c_custkey = ?")
        .expect("prepares");
    for key in [7i64, 42, 137] {
        let out = lookup
            .execute(&[Value::Int(key)])
            .expect("executes")
            .as_query()
            .expect("is a query")
            .tp
            .rows
            .clone();
        println!("  c_custkey = {key:>3} -> {:?}", out.first().map(|r| &r[0]));
    }

    // Prepared DML: writes route to the TP engine, the column store buffers
    // them in its delta region, and the very next AP read sees them —
    // before AND after compaction. All through &self: the write lock is
    // internal.
    let count_stmt = session
        .prepare("SELECT COUNT(*) FROM customer WHERE c_mktsegment = ?")
        .expect("prepares");
    let machinery = || {
        count_stmt
            .execute(&[Value::Str("machinery".into())])
            .expect("count runs")
            .as_query()
            .expect("query")
            .ap
            .rows[0][0]
            .as_int()
            .expect("count is an int")
    };
    println!("machinery customers before insert: {}", machinery());

    let insert = session
        .prepare(
            "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
             c_mktsegment) VALUES (?, ?, ?, ?, ?, ?)",
        )
        .expect("prepares");
    let outcome = insert
        .execute(&[
            Value::Int(900_001),
            Value::Str("customer#900001".into()),
            Value::Int(4),
            Value::Str("20-555-000-1111".into()),
            Value::Float(1234.56),
            Value::Str("machinery".into()),
        ])
        .expect("insert runs");
    let dml = outcome.as_dml().expect("insert is DML");
    println!(
        "INSERT affected {} row(s) on the TP engine in {}",
        dml.result.rows_affected,
        format_latency(dml.latency_ns)
    );
    let fresh = sys.freshness("customer").expect("table exists");
    println!(
        "freshness before compaction: version={} delta_rows={} (AP reads through the delta)",
        fresh.version, fresh.delta_rows
    );
    println!("machinery customers after insert, BEFORE compact(): {}", machinery());

    sys.compact("customer");
    let fresh = sys.freshness("customer").expect("table exists");
    println!(
        "freshness after compaction:  version={} delta_rows={} (merged into base columns)",
        fresh.version, fresh.delta_rows
    );
    println!("machinery customers after insert, AFTER compact():  {}", machinery());

    // The plan cache is shared across sessions: a second client preparing
    // the same statement gets a cache hit (no front end at all), and
    // repeated execute()s never re-parse, re-bind or re-plan.
    let second_client = Session::new(Arc::clone(&sys));
    let _hit = second_client
        .prepare("SELECT c_name, c_acctbal FROM customer WHERE c_custkey = ?")
        .expect("prepares from cache");
    let cache = sys.plan_cache_stats();
    println!(
        "\nplan cache: {} entries, {} hits / {} misses ({:.0}% hit rate)",
        cache.entries,
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0
    );

    // 4. Durability: open the same engine against a data directory, write,
    //    kill the process without any shutdown (simulated by dropping the
    //    handle), and reopen — the WAL replays every committed statement.
    println!("\n--- Durability: write, kill, reopen ---");
    let dir = std::env::temp_dir().join(format!("qpe_quickstart_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = TpchConfig::with_scale(0.002);
    let durable = HtapSystem::open(&dir, &config).expect("opens data directory");
    durable
        .execute_statement(
            "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
             c_mktsegment) VALUES (900002, 'customer#900002', 4, '20-555-000-2222', \
             99.5, 'machinery')",
        )
        .expect("durable insert commits");
    durable
        .execute_statement("DELETE FROM customer WHERE c_custkey = 7")
        .expect("durable delete commits");
    let before = durable.freshness("customer").expect("table exists");
    let wal = durable.wal_stats().expect("durable system");
    println!(
        "wrote 2 statements: {} WAL records, {} fsyncs (group commit)",
        wal.records, wal.fsyncs
    );
    drop(durable); // kill: no close(), no checkpoint

    let reopened = HtapSystem::open(&dir, &config).expect("recovers");
    let report = reopened.recovery_report().expect("durable open").clone();
    println!(
        "recovered from manifest v{}: {} tables, {} WAL records replayed \
         across {} file(s), {} torn bytes discarded, in {:?}",
        report.manifest_version,
        report.tables_loaded,
        report.wal_records_replayed,
        report.wal_files_replayed,
        report.torn_bytes_discarded,
        report.elapsed
    );
    let after = reopened.freshness("customer").expect("table exists");
    println!(
        "freshness survived the kill: version={} delta_rows={} (was version={} delta_rows={})",
        after.version, after.delta_rows, before.version, before.delta_rows
    );
    let count = reopened
        .run_sql("SELECT COUNT(*) FROM customer WHERE c_custkey = 900002")
        .expect("recovered row is queryable");
    println!("recovered insert visible to both engines: COUNT(*) = {:?}", count.ap.rows[0][0]);
    reopened.close().expect("clean close checkpoints");
    let _ = std::fs::remove_dir_all(&dir);

    // 5. Statement lifecycle governance: every statement runs under a guard
    //    carrying the session's cancel flag plus an optional deadline and
    //    memory budget, checked at block/morsel granularity. Limits can be
    //    set system-wide (set_statement_limits) or per call; health()
    //    reports degraded mode and the fault-tolerance counters.
    println!("\n--- Governance: timeouts, memory budgets, health ---");
    let heavy = "SELECT c_nationkey, COUNT(*), SUM(c_acctbal) FROM customer, orders \
                 WHERE o_custkey = c_custkey GROUP BY c_nationkey";
    let strict = StatementLimits { timeout: Some(Duration::ZERO), memory_budget: None };
    match session.execute_sql_with(heavy, &strict) {
        Err(e) => println!("zero deadline trips before the first morsel: {e}"),
        Ok(_) => println!("zero deadline: statement finished before the first check"),
    }
    let tight = StatementLimits { timeout: None, memory_budget: Some(256) };
    match session.execute_sql_with("SELECT * FROM customer", &tight) {
        Err(e) => println!("256-byte result budget: {e}"),
        Ok(_) => println!("256-byte result budget: result fit"),
    }
    // The limits were statement-scoped: the same session runs the heavy
    // query to completion without them.
    session.execute_sql(heavy).expect("ungoverned rerun succeeds");
    let health = sys.health();
    println!(
        "health: degraded={} writer_panics={} compactor_failures={} wal_flush_retries={}",
        health.degraded, health.writer_panics, health.compactor_failures, health.wal_flush_retries
    );

    // 6. The network front end: the same Session API served over TCP. Each
    //    connection maps onto its own Session over the shared system and
    //    speaks a length-prefixed, CRC-checked binary protocol, so wire
    //    results — rows, WorkCounters, typed errors — are byte-identical
    //    to in-process ones.
    println!("\n--- Network front end: TCP server + binary protocol ---");
    let mut server = Server::start(Arc::clone(&sys), "127.0.0.1:0", ServerConfig::default())
        .expect("server binds an ephemeral port");
    println!("serving on {}", server.addr());

    let mut client = Client::connect(server.addr()).expect("client connects");
    let remote = client
        .prepare("SELECT c_name, c_acctbal FROM customer WHERE c_custkey = ?")
        .expect("prepares over the wire");
    for key in [7i64, 42, 137] {
        let out = client
            .execute(remote.stmt_id, &[Value::Int(key)])
            .expect("executes over the wire");
        let result = out.rows().expect("query result");
        println!(
            "  c_custkey = {key:>3} -> {:?} (winner: {:?})",
            result.rows.first().map(|r| &r[0]),
            result.engine
        );
    }
    // Per-call engine pinning skips the other engine's run and the
    // agreement check — the serving configuration once routing is trusted.
    let pinned = client
        .execute_pref(remote.stmt_id, EnginePref::Ap, &[Value::Int(42)])
        .expect("pinned execute");
    println!("  AP-pinned rerun: {} row(s)", pinned.rows().expect("rows").rows.len());

    let stats = client.stats().expect("stats frame");
    println!(
        "server stats: {} statements over {} connections, {} bytes out, degraded={}",
        stats.statements_executed, stats.connections_accepted, stats.bytes_written, stats.degraded
    );
    client.goodbye().expect("clean goodbye");
    server.shutdown(); // stop accepting, cancel in-flight, drain handlers
}
