//! Router playground: train the tree-CNN smart router on a labelled
//! workload and inspect its routing decisions and pair embeddings.
//!
//! ```sh
//! cargo run --example router_playground
//! ```

use qpe_core::workload::{WorkloadConfig, WorkloadGenerator};
use qpe_htap::engine::{EngineKind, HtapSystem};
use qpe_htap::tpch::TpchConfig;
use qpe_treecnn::router::SmartRouter;
use qpe_treecnn::train::{PlanPairExample, TrainerConfig};

fn main() {
    let sys = HtapSystem::new(&TpchConfig::with_scale(0.005));

    // Label a training workload by actually executing it on both engines.
    println!("labelling 60 training queries on both engines...");
    let mut gen = WorkloadGenerator::new(WorkloadConfig::default());
    let mut examples = Vec::new();
    for sql in gen.generate(60) {
        let out = sys.run_sql(&sql).expect("query runs");
        examples.push(PlanPairExample::from_plans(
            &out.tp.plan,
            &out.ap.plan,
            out.winner() == EngineKind::Ap,
        ));
    }

    println!("training the tree-CNN router...");
    let (router, report) = SmartRouter::train(
        &examples,
        TrainerConfig {
            epochs: 40,
            ..TrainerConfig::default()
        },
    );
    println!(
        "  trained on {} pairs, final train accuracy {:.1}%, model {:.1} KB",
        report.examples,
        report.train_accuracy * 100.0,
        router.network().serialized_size() as f64 / 1024.0
    );

    // Route fresh queries (no execution needed — that's the router's point).
    println!("\nrouting held-out queries (prediction vs measured winner):");
    let mut test_gen = WorkloadGenerator::new(WorkloadConfig {
        seed: 12345,
        ..Default::default()
    });
    let mut correct = 0;
    let n = 20;
    for sql in test_gen.generate(n) {
        let bound = sys.bind(&sql).expect("binds");
        let tp = sys.explain(&bound, EngineKind::Tp).expect("plans");
        let ap = sys.explain(&bound, EngineKind::Ap).expect("plans");
        let (predicted, confidence) = router.route(&tp, &ap);
        let actual = sys.run_sql(&sql).expect("runs").winner();
        let mark = if predicted == actual { "ok " } else { "MISS" };
        if predicted == actual {
            correct += 1;
        }
        println!(
            "  [{mark}] predicted {predicted} ({confidence:.2})  actual {actual}  {}",
            &sql[..sql.len().min(70)]
        );
    }
    println!("\nrouting accuracy: {correct}/{n}");

    // Pair embeddings: the 16-dim knowledge-base keys.
    let bound = sys
        .bind(WorkloadGenerator::example_1())
        .expect("example 1 binds");
    let tp = sys.explain(&bound, EngineKind::Tp).expect("plans");
    let ap = sys.explain(&bound, EngineKind::Ap).expect("plans");
    let key = router.embed_pair(&tp, &ap);
    println!("\nExample 1 pair embedding ({} dims):", key.len());
    println!(
        "  [{}]",
        key.iter()
            .map(|v| format!("{v:+.3}"))
            .collect::<Vec<_>>()
            .join(", ")
    );
}
