//! Engine duel: run a spread of workload shapes on both engines and watch
//! the crossover structure the explainer explains — TP wins point lookups
//! and index-served top-N, AP wins scans, joins and unindexed top-N.
//!
//! ```sh
//! cargo run --example engine_duel
//! ```

use qpe_htap::engine::HtapSystem;
use qpe_htap::latency::format_latency;
use qpe_htap::tpch::TpchConfig;

fn main() {
    let sys = HtapSystem::new(&TpchConfig::with_scale(0.01));
    let cases: &[(&str, &str)] = &[
        ("point lookup (PK)", "SELECT c_name FROM customer WHERE c_custkey = 42"),
        (
            "phone index lookup",
            "SELECT c_name FROM customer WHERE c_phone = '20-123-456-7890'",
        ),
        (
            "substring blocks index",
            "SELECT COUNT(*) FROM customer WHERE SUBSTRING(c_phone, 1, 2) = '20'",
        ),
        (
            "selective scan + agg",
            "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p'",
        ),
        (
            "2-way join",
            "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
        ),
        (
            "3-way join",
            "SELECT COUNT(*) FROM customer, orders, lineitem \
             WHERE o_custkey = c_custkey AND l_orderkey = o_orderkey",
        ),
        (
            "top-N on indexed key",
            "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10",
        ),
        (
            "top-N, no index",
            "SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 10",
        ),
        (
            "top-N, huge offset",
            "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10 OFFSET 4000",
        ),
        (
            "group by",
            "SELECT o_orderpriority, COUNT(*) FROM orders GROUP BY o_orderpriority",
        ),
    ];

    println!(
        "{:<26} {:>12} {:>12}  {:<6} {:>9}",
        "workload", "TP", "AP", "winner", "speedup"
    );
    println!("{}", "-".repeat(72));
    for (name, sql) in cases {
        let out = sys.run_sql(sql).expect("query runs");
        println!(
            "{:<26} {:>12} {:>12}  {:<6} {:>8.1}x",
            name,
            format_latency(out.tp.latency_ns),
            format_latency(out.ap.latency_ns),
            out.winner().as_str(),
            out.speedup()
        );
    }
    println!(
        "\nThese asymmetries are what the smart router learns and the RAG \
         explainer puts into words."
    );
}
