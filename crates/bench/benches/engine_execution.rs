//! B3 — engine execution: the same queries on TP vs AP (bind + optimize +
//! execute), showing the structural asymmetries the explainer explains.

use criterion::{criterion_group, criterion_main, Criterion};
use qpe_htap::engine::{EngineKind, HtapSystem};
use qpe_htap::tpch::TpchConfig;
use std::hint::black_box;

fn bench_engines(c: &mut Criterion) {
    let sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
    let cases = [
        ("point_lookup", "SELECT c_name FROM customer WHERE c_custkey = 42"),
        (
            "join_2way",
            "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
        ),
        (
            "topn_indexed",
            "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10",
        ),
    ];
    for (name, sql) in cases {
        let bound = sys.bind(sql).expect("binds");
        c.bench_function(&format!("tp_{name}"), |b| {
            b.iter(|| sys.run_engine(black_box(&bound), EngineKind::Tp).unwrap())
        });
        c.bench_function(&format!("ap_{name}"), |b| {
            b.iter(|| sys.run_engine(black_box(&bound), EngineKind::Ap).unwrap())
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_engines
}
criterion_main!(benches);
