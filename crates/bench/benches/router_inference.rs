//! B1 — smart-router microbenchmarks: plan featurization, pair embedding,
//! and routing inference (the paper claims ~1 ms inference, <1 MB model).

use criterion::{criterion_group, criterion_main, Criterion};
use qpe_bench::bench_explainer;
use qpe_core::workload::WorkloadGenerator;
use qpe_treecnn::features::featurize;
use std::hint::black_box;

fn bench_router(c: &mut Criterion) {
    let explainer = bench_explainer();
    let sql = WorkloadGenerator::example_1();
    let outcome = explainer.system().run_sql(sql).expect("example 1 runs");
    let tp = &outcome.tp.plan;
    let ap = &outcome.ap.plan;

    c.bench_function("featurize_plan", |b| {
        b.iter(|| featurize(black_box(tp)))
    });
    c.bench_function("router_pair_embedding", |b| {
        b.iter(|| explainer.router().embed_pair(black_box(tp), black_box(ap)))
    });
    c.bench_function("router_route", |b| {
        b.iter(|| explainer.router().route(black_box(tp), black_box(ap)))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_router
}
criterion_main!(benches);
