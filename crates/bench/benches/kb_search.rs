//! B2 — knowledge-base search: exact scan vs HNSW as the KB grows
//! (the paper's "<0.1 ms at 20 entries; HNSW keeps search sub-dominant as
//! it grows" claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qpe_vectordb::{HnswConfig, HnswIndex, Metric};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;

fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
        .collect()
}

fn bench_search(c: &mut Criterion) {
    let dim = 16; // the paper's pair-embedding width
    let mut group = c.benchmark_group("kb_search_top2");
    for &n in &[20usize, 200, 2_000, 20_000] {
        let vectors = random_vectors(n, dim, 11);
        let query: Vec<f64> = random_vectors(1, dim, 99).pop().unwrap();

        let mut exact = qpe_vectordb::ExactIndex::new(Metric::Euclidean);
        for v in &vectors {
            exact.add(v.clone());
        }
        group.bench_with_input(BenchmarkId::new("exact", n), &n, |b, _| {
            b.iter(|| exact.search(black_box(&query), 2))
        });

        let mut hnsw = HnswIndex::new(HnswConfig::default());
        for v in &vectors {
            hnsw.add(v.clone());
        }
        group.bench_with_input(BenchmarkId::new("hnsw", n), &n, |b, _| {
            b.iter(|| hnsw.search(black_box(&query), 2))
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_search
}
criterion_main!(benches);
