//! B4 — the full explanation request path (embed → retrieve → prompt →
//! generate), excluding the LLM wall-clock model: this measures the real
//! compute our pipeline adds per request.

use criterion::{criterion_group, criterion_main, Criterion};
use qpe_bench::bench_explainer;
use qpe_core::workload::WorkloadGenerator;
use std::hint::black_box;

fn bench_explain(c: &mut Criterion) {
    let explainer = bench_explainer();
    let sql = WorkloadGenerator::example_1();
    let outcome = explainer.system().run_sql(sql).expect("example 1 runs");

    c.bench_function("explain_outcome_end_to_end", |b| {
        b.iter(|| explainer.explain_outcome(black_box(&outcome), &[]))
    });

    c.bench_function("run_sql_both_engines", |b| {
        b.iter(|| explainer.system().run_sql(black_box(sql)).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_explain
}
criterion_main!(benches);
