//! Shared helpers for the experiment binaries and Criterion benches.
//!
//! Every table and figure of the paper has a dedicated binary under
//! `src/bin/` (see DESIGN.md's experiment index); this library holds the
//! common setup so all experiments run against identical configurations.

use qpe_core::explainer::{Explainer, PipelineConfig};
use qpe_core::workload::{WorkloadConfig, WorkloadGenerator};
use qpe_htap::tpch::TpchConfig;
use qpe_llm::grader::GradeStats;
use qpe_treecnn::train::TrainerConfig;

/// Scale factor used by the headline experiments. Laptop-sized but big
/// enough for engine asymmetries (join explosions, sort volumes) to bite.
pub const EXPERIMENT_SCALE: f64 = 0.01;
/// Router-training workload size.
pub const TRAIN_QUERIES: usize = 120;
/// Knowledge-base size (paper: 20 representative queries).
pub const KB_SIZE: usize = 20;
/// Test-set size (paper: 200 synthetic queries).
pub const TEST_QUERIES: usize = 200;
/// Seed for the held-out test workload (distinct from training).
pub const TEST_SEED: u64 = 31415;

/// The standard experiment pipeline configuration.
pub fn experiment_config() -> PipelineConfig {
    PipelineConfig {
        tpch: TpchConfig::with_scale(EXPERIMENT_SCALE),
        workload: WorkloadConfig::default(),
        n_train: TRAIN_QUERIES,
        kb_size: KB_SIZE,
        top_k: 2,
        trainer: TrainerConfig::default(),
        prompt: Default::default(),
    }
}

/// Builds the standard experiment explainer (one-time cost: data generation,
/// 120 dual-engine runs, router training, KB annotation).
pub fn experiment_explainer() -> Explainer {
    Explainer::build(experiment_config()).expect("experiment pipeline builds")
}

/// A smaller pipeline for latency-oriented benches.
pub fn bench_explainer() -> Explainer {
    Explainer::build(PipelineConfig {
        tpch: TpchConfig::with_scale(0.002),
        n_train: 30,
        kb_size: 12,
        trainer: TrainerConfig {
            epochs: 10,
            ..TrainerConfig::default()
        },
        ..experiment_config()
    })
    .expect("bench pipeline builds")
}

/// The held-out test workload.
pub fn test_set(n: usize) -> Vec<String> {
    WorkloadGenerator::new(WorkloadConfig {
        seed: TEST_SEED,
        ..Default::default()
    })
    .generate(n)
}

/// Formats a fraction as a percentage string.
pub fn pct(x: f64) -> String {
    format!("{:.1}%", x * 100.0)
}

/// Renders one grade-distribution row for the experiment tables.
pub fn stats_row(label: &str, stats: &GradeStats) -> String {
    format!(
        "{label:<14} accurate={:>6}  imprecise={:>6}  wrong={:>6}  none={:>6}  (n={})",
        pct(stats.accuracy()),
        pct(stats.imprecise as f64 / stats.total().max(1) as f64),
        pct(stats.wrong_rate()),
        pct(stats.none_rate()),
        stats.total()
    )
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n==== {title} ====");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pct_formats() {
        assert_eq!(pct(0.915), "91.5%");
        assert_eq!(pct(0.0), "0.0%");
    }

    #[test]
    fn test_set_is_deterministic_and_distinct_from_training() {
        let a = test_set(10);
        let b = test_set(10);
        assert_eq!(a, b);
        let train = WorkloadGenerator::new(WorkloadConfig::default()).generate(10);
        assert_ne!(a, train);
    }

    #[test]
    fn stats_row_renders() {
        let s = GradeStats { accurate: 9, none: 1, ..GradeStats::default() };
        let row = stats_row("K=2", &s);
        assert!(row.contains("K=2"));
        assert!(row.contains("90.0%"));
    }
}
