//! A2 — ablation: accuracy as the knowledge base grows (5 → 200 entries).
//! The paper hypothesizes 20 representative entries suffice; this sweep
//! checks where the curve saturates and feeds the KB-growth search bench.

use qpe_bench::{experiment_explainer, header, stats_row, test_set};
use qpe_core::eval::kb_size_sweep;
use qpe_core::workload::{WorkloadConfig, WorkloadGenerator};
use qpe_htap::engine::QueryOutcome;

fn main() {
    let explainer = experiment_explainer();
    let tests = test_set(100);

    // Extra annotated outcomes to grow the KB beyond its default 20.
    let mut gen = WorkloadGenerator::new(WorkloadConfig {
        seed: 2718,
        ..Default::default()
    });
    let extra: Vec<QueryOutcome> = gen
        .generate(180)
        .iter()
        .map(|sql| explainer.system().run_sql(sql).expect("query runs"))
        .collect();

    header("A2: accuracy vs knowledge-base size (100 held-out queries, K=2)");
    let rows = kb_size_sweep(&explainer, &extra, &tests, &[5, 10, 20, 50, 100, 200])
        .expect("sweep runs");
    for row in &rows {
        println!("{}", stats_row(&row.label, &row.stats));
    }
}
