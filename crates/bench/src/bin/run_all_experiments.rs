//! Runs every experiment binary's logic in sequence with one shared
//! pipeline, printing the full paper-vs-measured record that EXPERIMENTS.md
//! captures. Slower than any single experiment but guarantees all numbers
//! come from the same build.

use qpe_bench::{experiment_explainer, header, stats_row, test_set, TEST_QUERIES};
use qpe_core::eval::{dbgpt_eval, k_sweep, router_accuracy};
use qpe_core::participant::{run_study, StudyConfig};
use qpe_core::workload::WorkloadGenerator;
use qpe_htap::latency::format_latency;

fn main() {
    let mut explainer = experiment_explainer();
    let tests = test_set(TEST_QUERIES);

    // T2/T3 digest
    let sql = WorkloadGenerator::example_1();
    let outcome = explainer.system().run_sql(sql).expect("example 1 runs");
    header("Example 1 (T2/T3 digest)");
    println!(
        "TP {} vs AP {} -> {} wins {:.1}x",
        format_latency(outcome.tp.latency_ns),
        format_latency(outcome.ap.latency_ns),
        outcome.winner(),
        outcome.speedup()
    );
    let report = explainer.explain_outcome(&outcome, &[]);
    println!(
        "our explanation grade: {:?}",
        explainer.grade(&outcome, &report.output)
    );

    // E1 + F1
    header("E1/F1: accuracy and K sweep");
    let rows = k_sweep(&mut explainer, &tests, &[1, 2, 3, 4, 5]).expect("sweep runs");
    for row in &rows {
        println!("{}", stats_row(&row.label, &row.stats));
    }

    // E4
    header("E4: DBG-PT comparison");
    let dbgpt =
        dbgpt_eval(&explainer, &tests, &explainer.config().prompt).expect("dbgpt runs");
    println!("{}", stats_row("DBG-PT", &dbgpt.stats));
    println!(
        "failure modes: index {}, columnar {}, cost {}, relative-value {}",
        dbgpt.index_misinterpretation,
        dbgpt.columnar_overemphasis,
        dbgpt.cost_comparison_used,
        dbgpt.missed_relative_value
    );

    // E5
    header("E5: router");
    let acc = router_accuracy(&explainer, &tests).expect("router eval runs");
    println!(
        "held-out routing accuracy {:.1}%, model {:.1} KB",
        acc * 100.0,
        explainer.router().network().serialized_size() as f64 / 1024.0
    );

    // E2
    header("E2: latency breakdown (first 20 requests)");
    let mut enc = 0u64;
    let mut sea = 0u64;
    let mut think = 0u64;
    let mut genr = 0u64;
    for sql in tests.iter().take(20) {
        let o = explainer.system().run_sql(sql).expect("query runs");
        let r = explainer.explain_outcome(&o, &[]);
        enc += r.timing.encode_ns;
        sea += r.timing.search_ns;
        think += r.timing.llm_think_ns;
        genr += r.timing.llm_generation_ns;
    }
    println!(
        "encode {} | search {} | think {} | generate {}",
        format_latency(enc / 20),
        format_latency(sea / 20),
        format_latency(think / 20),
        format_latency(genr / 20)
    );

    // E3
    header("E3: participant study");
    let study = run_study(&StudyConfig::default());
    println!(
        "with-LLM group {:.1} min / {:.0}% correct; plans-only {:.1} min / {:.0}% initial",
        study.with_llm_first.avg_minutes,
        study.with_llm_first.final_correct_rate * 100.0,
        study.plans_only_first.avg_minutes,
        study.plans_only_first.initial_correct_rate * 100.0
    );
}
