//! A3 — ablation: prompt components. Removing the "do not compare cost
//! estimates" warning re-enables the cross-engine cost-comparison failure
//! mode (§V observed this during prompt design; §VI-D shows DBG-PT doing it
//! even when warned).

use qpe_bench::{experiment_explainer, header, test_set};
use qpe_core::eval::dbgpt_eval;
use qpe_llm::prompt::PromptConfig;

fn main() {
    let explainer = experiment_explainer();
    let tests = test_set(100);

    header("A3: prompt ablation — cost-comparison warning (100 queries, plan-diff mode)");
    let with_warning = dbgpt_eval(&explainer, &tests, &PromptConfig::default())
        .expect("evaluation runs");
    let without_warning = dbgpt_eval(
        &explainer,
        &tests,
        &PromptConfig {
            forbid_cost_comparison: false,
            ..Default::default()
        },
    )
    .expect("evaluation runs");

    println!(
        "with warning    : cost comparisons used in {:>3}/{} outputs, accuracy {:.1}%",
        with_warning.cost_comparison_used,
        with_warning.stats.total(),
        with_warning.stats.accuracy() * 100.0
    );
    println!(
        "without warning : cost comparisons used in {:>3}/{} outputs, accuracy {:.1}%",
        without_warning.cost_comparison_used,
        without_warning.stats.total(),
        without_warning.stats.accuracy() * 100.0
    );
    println!(
        "\nshape: dropping the warning increases cost-comparison reliance \
         ({} -> {}) and should not improve accuracy",
        with_warning.cost_comparison_used, without_warning.cost_comparison_used
    );
}
