//! E6 — §III-B/§VI-B feedback loop: wrong/None outputs are corrected by
//! experts and added to the KB "for future retrieval, further enhancing its
//! accuracy for subsequent queries".

use qpe_bench::{experiment_explainer, header, stats_row, test_set};
use qpe_core::eval::feedback_round;

fn main() {
    let mut explainer = experiment_explainer();
    let tests = test_set(100);

    header("E6: expert-correction feedback round (100 held-out queries)");
    let kb_before = explainer.kb().len();
    let (before, after) = feedback_round(&mut explainer, &tests).expect("round runs");
    let kb_after = explainer.kb().len();
    println!("{}", stats_row("before", &before));
    println!("{}", stats_row("after", &after));
    println!(
        "\nKB grew {kb_before} -> {kb_after} entries; accuracy {:.1}% -> {:.1}%",
        before.accuracy() * 100.0,
        after.accuracy() * 100.0
    );
}
