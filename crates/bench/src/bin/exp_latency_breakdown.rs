//! E2 — §VI-B end-to-end response-time breakdown.
//! Paper: router inference <0.1 ms, KB search <0.1 ms (20 entries), LLM
//! thinking ≤2 s, generation ~10 s; retrieval never dominates.

use qpe_bench::{experiment_explainer, header, test_set};
use qpe_htap::latency::format_latency;

fn main() {
    let explainer = experiment_explainer();
    let tests = test_set(30);

    header("E2: end-to-end response time breakdown (30 requests, KB=20, K=2)");
    let mut encode = Vec::new();
    let mut search = Vec::new();
    let mut think = Vec::new();
    let mut generate = Vec::new();
    for sql in &tests {
        let outcome = explainer.system().run_sql(sql).expect("query runs");
        let r = explainer.explain_outcome(&outcome, &[]);
        encode.push(r.timing.encode_ns);
        search.push(r.timing.search_ns);
        think.push(r.timing.llm_think_ns);
        generate.push(r.timing.llm_generation_ns);
    }
    let avg = |v: &[u64]| v.iter().sum::<u64>() / v.len().max(1) as u64;
    println!(
        "router encoding   : avg {}  (paper: < 0.1 ms)   [measured]",
        format_latency(avg(&encode))
    );
    println!(
        "KB top-K search   : avg {}  (paper: < 0.1 ms)   [measured]",
        format_latency(avg(&search))
    );
    println!(
        "LLM thinking      : avg {}  (paper: <= 2 s)     [modeled]",
        format_latency(avg(&think))
    );
    println!(
        "LLM generation    : avg {}  (paper: ~10 s)      [modeled]",
        format_latency(avg(&generate))
    );
    let total = avg(&encode) + avg(&search) + avg(&think) + avg(&generate);
    let retrieval_frac = (avg(&encode) + avg(&search)) as f64 / total as f64;
    println!(
        "total             : avg {}  (retrieval fraction: {:.4}%)",
        format_latency(total),
        retrieval_frac * 100.0
    );
}
