//! E5 — §III-A smart-router quality: routing accuracy on held-out queries,
//! model size (<1 MB claim) and inference latency (~1 ms claim).

use qpe_bench::{experiment_explainer, header, test_set, TEST_QUERIES};
use qpe_core::eval::router_accuracy;
use qpe_htap::latency::format_latency;
use std::time::Instant;

fn main() {
    let explainer = experiment_explainer();
    let tests = test_set(TEST_QUERIES);

    header("E5: smart router quality");
    println!(
        "training accuracy: {:.1}% over {} plan pairs",
        explainer.router_report().train_accuracy * 100.0,
        explainer.router_report().examples
    );
    let acc = router_accuracy(&explainer, &tests).expect("router evaluation runs");
    println!("held-out routing accuracy: {:.1}% ({} queries)", acc * 100.0, tests.len());

    let bytes = explainer.router().network().serialized_size();
    println!(
        "model size: {:.1} KB serialized (paper: < 1 MB)",
        bytes as f64 / 1024.0
    );

    // Inference latency over the test set.
    let outcome = explainer
        .system()
        .run_sql(&tests[0])
        .expect("query runs");
    let start = Instant::now();
    let iters = 200;
    for _ in 0..iters {
        let _ = explainer
            .router()
            .route(&outcome.tp.plan, &outcome.ap.plan);
    }
    let per = start.elapsed().as_nanos() as u64 / iters;
    println!(
        "inference latency: {} per plan pair (paper: ~1 ms, later quoted < 0.1 ms)",
        format_latency(per)
    );
}
