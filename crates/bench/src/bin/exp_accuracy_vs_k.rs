//! F1 — §VI-B retrieval-depth sweep: accuracy and None-rate for K=1..5.
//! Paper: K=1 → 85% accurate, 8% None; K=2..5 → 89–91% with minimal
//! differences. The reproduced shape: K=1 strictly worse (more None), a
//! plateau from K=2 on.

use qpe_bench::{experiment_explainer, header, stats_row, test_set, TEST_QUERIES};
use qpe_core::eval::k_sweep;

fn main() {
    let mut explainer = experiment_explainer();
    let tests = test_set(TEST_QUERIES);
    header("F1: accuracy vs number of retrieved vectors K (200 queries, KB=20)");
    let rows = k_sweep(&mut explainer, &tests, &[1, 2, 3, 4, 5]).expect("sweep runs");
    for row in &rows {
        println!("{}", stats_row(&row.label, &row.stats));
    }
    let k1 = &rows[0].stats;
    let plateau: f64 = rows[1..]
        .iter()
        .map(|r| r.stats.accuracy())
        .fold(f64::INFINITY, f64::min);
    println!(
        "\nshape check: K=1 accuracy {:.1}% ≤ K≥2 plateau minimum {:.1}%; \
         K=1 None-rate {:.1}% is the highest",
        k1.accuracy() * 100.0,
        plateau * 100.0,
        k1.none_rate() * 100.0
    );
}
