//! E1 — §VI-B headline accuracy: grade 200 held-out queries with the full
//! RAG pipeline (KB=20, K=2). Paper: 91% accurate, 9% less precise (of
//! which 3.5% None).

use qpe_bench::{experiment_explainer, header, stats_row, test_set, TEST_QUERIES};
use qpe_core::eval::evaluate;

fn main() {
    let explainer = experiment_explainer();
    let tests = test_set(TEST_QUERIES);
    header("E1: explanation accuracy on 200 held-out queries (KB=20, K=2)");
    let stats = evaluate(&explainer, &tests).expect("evaluation runs");
    println!("{}", stats_row("RAG (K=2)", &stats));
    println!(
        "\npaper: 91% accurate / 9% less precise (3.5% None) — the reproduced \
         shape is: large accurate majority, small imprecise tail, small None rate"
    );
}
