//! E3 — §VI-C participant study (simulated readers; model in DESIGN.md).
//! Paper: plans-only group 60% correct, 8.2 min, difficulty 8.5 (plans) vs
//! 3 (explanation); LLM-first group 100% correct, 3.5 min.

use qpe_bench::{experiment_explainer, header};
use qpe_core::participant::{run_study, StudyConfig};
use qpe_core::workload::WorkloadGenerator;

fn main() {
    // Use the real Example 1 artifacts to size the reading material.
    let explainer = experiment_explainer();
    let sql = WorkloadGenerator::example_1();
    let outcome = explainer.system().run_sql(sql).expect("example 1 runs");
    let report = explainer.explain_outcome(&outcome, &[]);
    let plan_tokens = serde_json::to_string(&outcome.tp.plan.explain_json())
        .unwrap()
        .split_whitespace()
        .count()
        + serde_json::to_string(&outcome.ap.plan.explain_json())
            .unwrap()
            .split_whitespace()
            .count();
    let llm_tokens = report.output.token_count();

    let result = run_study(&StudyConfig {
        plan_tokens,
        llm_tokens,
        ..Default::default()
    });

    header("E3: participant study on Example 1 (10 simulated readers per group)");
    println!("artifact sizes: plan JSON ~{plan_tokens} tokens, explanation ~{llm_tokens} tokens\n");
    let g1 = &result.with_llm_first;
    let g2 = &result.plans_only_first;
    println!("group 1 (plans + LLM explanation from the start):");
    println!("  avg time to full understanding: {:.1} min   (paper: 3.5 min)", g1.avg_minutes);
    println!("  correct interpretations:        {:.0}%      (paper: 100%)", g1.final_correct_rate * 100.0);
    println!("group 2 (plans only, explanation afterwards):");
    println!("  avg time to full understanding: {:.1} min   (paper: 8.2 min)", g2.avg_minutes);
    println!("  initially correct:              {:.0}%      (paper: 60%)", g2.initial_correct_rate * 100.0);
    println!("  correct after explanation:      {:.0}%      (paper: 100%)", g2.final_correct_rate * 100.0);
    println!("difficulty ratings (0 easiest .. 10 hardest):");
    println!("  raw plan details:  {:.1}   (paper: 8.5)", g2.avg_plan_difficulty);
    println!("  LLM explanation:   {:.1}   (paper: 3)", g2.avg_llm_difficulty);
}
