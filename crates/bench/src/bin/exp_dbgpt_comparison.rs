//! E4 — §VI-D comparison with DBG-PT: grade distribution plus the four
//! documented failure modes, on the same 200-query test set.

use qpe_bench::{experiment_explainer, header, stats_row, test_set, TEST_QUERIES};
use qpe_core::eval::{dbgpt_eval, evaluate};

fn main() {
    let explainer = experiment_explainer();
    let tests = test_set(TEST_QUERIES);

    header("E4: our approach vs DBG-PT (200 held-out queries)");
    let rag = evaluate(&explainer, &tests).expect("RAG evaluation runs");
    println!("{}", stats_row("RAG (ours)", &rag));
    let dbgpt = dbgpt_eval(&explainer, &tests, &explainer.config().prompt)
        .expect("DBG-PT evaluation runs");
    println!("{}", stats_row("DBG-PT", &dbgpt.stats));

    header("DBG-PT failure-mode breakdown (paper's four categories)");
    let n = dbgpt.stats.total().max(1) as f64;
    println!(
        "1. fundamental errors (index misinterpretation): {:>4} ({:.1}%)",
        dbgpt.index_misinterpretation,
        dbgpt.index_misinterpretation as f64 / n * 100.0
    );
    println!(
        "2. overemphasis on column-oriented storage:      {:>4} ({:.1}%)",
        dbgpt.columnar_overemphasis,
        dbgpt.columnar_overemphasis as f64 / n * 100.0
    );
    println!(
        "3. cost comparison despite instructions:         {:>4} ({:.1}%)",
        dbgpt.cost_comparison_used,
        dbgpt.cost_comparison_used as f64 / n * 100.0
    );
    println!(
        "4. missed relative-value factors (OFFSET etc.):  {:>4} ({:.1}%)",
        dbgpt.missed_relative_value,
        dbgpt.missed_relative_value as f64 / n * 100.0
    );
}
