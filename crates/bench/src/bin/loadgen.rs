//! Multi-client traffic harness for the network front end.
//!
//! Starts a [`qpe_server::Server`] on an ephemeral loopback port over a
//! TPC-H-seeded [`HtapSystem`] and drives it with N concurrent wire
//! clients across four phases:
//!
//! 1. `point_lookup` — prepared TP-pinned PK point lookups (the OLTP
//!    serving shape; comparable against the in-process
//!    `prepared_point_lookup_qps` snapshot entry).
//! 2. `point_lookup_dual` — the same lookups dual-run (both engines +
//!    agreement check) for an honest pinned-vs-dual delta.
//! 3. `ap_scan` — AP-pinned group-by aggregates (the analytical class).
//! 4. `mixed` — 90% TP point reads, 8% DML (insert+delete cycles on
//!    client-private keys), 2% AP scans, all interleaved; read latencies
//!    are recorded separately so the run reports reader p99 **under DML**.
//!
//! Every phase records throughput and a latency histogram (p50/p95/p99).
//! Before any load runs, an equivalence gate proves wire results are
//! byte-identical to an in-process session (rows and counters, dual and
//! pinned), and after the load the server's `Stats` frame must report
//! **zero protocol errors** — loadgen traffic is well-formed by
//! construction, so any protocol error is a framing bug.
//!
//! ```text
//! cargo run --release --bin loadgen                 # print
//! cargo run --release --bin loadgen -- --record     # also merge into BENCH_exec.json
//! cargo run --release --bin loadgen -- --smoke      # short CI gate run
//! cargo run --release --bin loadgen -- --clients 16 --secs 3
//! ```
//!
//! Single-core note: on a 1-CPU host the server's connection threads, the
//! client threads and the engine all timeslice one core, so wire qps is
//! bounded by context-switch overhead on top of statement cost; the pinned
//! phase exists to show the protocol+scheduling overhead is paid back by
//! skipping the second engine run.

use qpe_htap::tpch::TpchConfig;
use qpe_htap::{HtapSystem, Session};
use qpe_server::client::{Client, ConnectOptions};
use qpe_server::protocol::EnginePref;
use qpe_server::server::{Server, ServerConfig};
use qpe_server::stats::ServerStats;
use qpe_sql::value::Value;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The prepared OLTP point lookup (same shape as the in-process
/// `prepared_point_lookup_qps` snapshot case).
const POINT_SQL: &str = "SELECT c_name, c_acctbal FROM customer \
    WHERE c_custkey = ? AND c_mktsegment = ? AND c_acctbal BETWEEN ? AND ? \
    AND c_nationkey <> ? AND c_phone <> ? AND c_name IS NOT NULL";

/// The analytical scan class.
const SCAN_SQL: &str = "SELECT c_nationkey, COUNT(*), SUM(c_acctbal) \
    FROM customer GROUP BY c_nationkey ORDER BY c_nationkey";

const INSERT_SQL: &str = "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, \
    c_acctbal, c_mktsegment) VALUES (?, ?, ?, '20-000-000-0000', 1.5, 'machinery')";
const DELETE_SQL: &str = "DELETE FROM customer WHERE c_custkey = ?";

fn point_params(key: i64) -> Vec<Value> {
    vec![
        Value::Int(key),
        Value::Str("machinery".into()),
        Value::Float(-100000.0),
        Value::Float(100000.0),
        Value::Int(26),
        Value::Str("none".into()),
    ]
}

fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * p / 100.0).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// One phase's merged measurements.
struct PhaseResult {
    ops: u64,
    qps: u64,
    lat_sorted: Vec<u64>,
}

impl PhaseResult {
    fn p(&self, p: f64) -> u64 {
        percentile(&self.lat_sorted, p)
    }
}

/// Runs `work` on `clients` threads for `dur`, merging op counts and
/// latencies. `work` gets (client_index, op_index) and returns the op's
/// recorded latency in ns, or None for ops excluded from the histogram.
fn run_phase(
    clients: usize,
    dur: Duration,
    mut mk: impl FnMut(usize) -> Box<dyn FnMut(u64) -> Option<u64> + Send>,
) -> PhaseResult {
    let total_ops = Arc::new(AtomicU64::new(0));
    let start = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let mut work = mk(c);
            let total_ops = Arc::clone(&total_ops);
            std::thread::spawn(move || {
                let mut lats = Vec::with_capacity(4096);
                let t0 = Instant::now();
                let mut i = 0u64;
                while t0.elapsed() < dur {
                    if let Some(ns) = work(i) {
                        lats.push(ns);
                    }
                    total_ops.fetch_add(1, Ordering::Relaxed);
                    i += 1;
                }
                lats
            })
        })
        .collect();
    let mut lat_sorted = Vec::new();
    for t in threads {
        lat_sorted.extend(t.join().expect("phase worker"));
    }
    let elapsed = start.elapsed().as_secs_f64();
    lat_sorted.sort_unstable();
    let ops = total_ops.load(Ordering::Relaxed);
    PhaseResult {
        ops,
        qps: (ops as f64 / elapsed) as u64,
        lat_sorted,
    }
}

/// Byte-identity gate: wire rows/counters (dual, TP, AP) against an
/// in-process session on the *same* system the server fronts.
fn equivalence_gate(addr: std::net::SocketAddr, sys: &Arc<HtapSystem>, n_keys: i64) {
    let oracle = Session::new(Arc::clone(sys));
    let stmt = oracle.prepare(POINT_SQL).expect("oracle prepare");
    let mut client = Client::connect(addr).expect("gate connect");
    let remote = client.prepare(POINT_SQL).expect("gate prepare");
    for key in [1, 42, n_keys / 2, n_keys] {
        let params = point_params(key);
        let want = stmt.execute(&params).expect("oracle execute");
        let want = want.as_query().expect("query");

        let dual = client.execute(remote.stmt_id, &params).expect("wire dual");
        let dual = dual.rows().expect("rows");
        assert_eq!(dual.rows, want.tp.rows, "dual rows diverged at key {key}");
        assert_eq!(dual.counters, want.tp.counters, "dual counters diverged at key {key}");

        let tp = client
            .execute_pref(remote.stmt_id, EnginePref::Tp, &params)
            .expect("wire tp");
        let tp = tp.rows().expect("rows");
        assert_eq!(tp.rows, want.tp.rows, "tp rows diverged at key {key}");
        assert_eq!(tp.counters, want.tp.counters, "tp counters diverged at key {key}");

        let ap = client
            .execute_pref(remote.stmt_id, EnginePref::Ap, &params)
            .expect("wire ap");
        let ap = ap.rows().expect("rows");
        assert_eq!(ap.rows, want.ap.rows, "ap rows diverged at key {key}");
        assert_eq!(ap.counters, want.ap.counters, "ap counters diverged at key {key}");
    }
    client.goodbye().expect("gate goodbye");
    println!("equivalence gate: wire ≡ in-process (rows + counters; dual, TP, AP)");
}

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let record = std::env::args().any(|a| a == "--record");
    let clients: usize = arg_value("--clients").and_then(|v| v.parse().ok()).unwrap_or(8);
    let secs: f64 = arg_value("--secs")
        .and_then(|v| v.parse().ok())
        .unwrap_or(if smoke { 0.4 } else { 2.0 });
    let dur = Duration::from_secs_f64(secs);

    let sys = Arc::new(HtapSystem::new(&TpchConfig::with_scale(0.002)));
    let n_keys = sys
        .database()
        .stored_table("customer")
        .expect("customer exists")
        .row_count() as i64;
    let server = Server::start(Arc::clone(&sys), "127.0.0.1:0", ServerConfig::default())
        .expect("server start");
    let addr = server.addr();
    println!(
        "loadgen: {clients} clients x {secs:.1}s/phase against {addr} \
         ({n_keys} customer rows)"
    );

    equivalence_gate(addr, &sys, n_keys);

    // Phase 1: prepared TP-pinned point lookups.
    let pinned = run_phase(clients, dur, |c| {
        let mut client = Client::connect_with(
            addr,
            &ConnectOptions { engine: EnginePref::Tp, ..ConnectOptions::default() },
        )
        .expect("connect");
        let stmt = client.prepare(POINT_SQL).expect("prepare");
        let base = (c as i64 * 7919) % n_keys;
        Box::new(move |i| {
            let key = 1 + (base + i as i64) % n_keys;
            let t = Instant::now();
            client.execute(stmt.stmt_id, &point_params(key)).expect("point lookup");
            Some(t.elapsed().as_nanos() as u64)
        })
    });
    println!(
        "server_point_lookup        {:>10} q/s  p50 {:>9} ns  p95 {:>9} ns  p99 {:>9} ns",
        pinned.qps,
        pinned.p(50.0),
        pinned.p(95.0),
        pinned.p(99.0)
    );

    // Phase 2: the same lookups dual-run.
    let dual = run_phase(clients, dur, |c| {
        let mut client = Client::connect(addr).expect("connect");
        let stmt = client.prepare(POINT_SQL).expect("prepare");
        let base = (c as i64 * 104_729) % n_keys;
        Box::new(move |i| {
            let key = 1 + (base + i as i64) % n_keys;
            let t = Instant::now();
            client.execute(stmt.stmt_id, &point_params(key)).expect("dual lookup");
            Some(t.elapsed().as_nanos() as u64)
        })
    });
    println!(
        "server_point_lookup_dual   {:>10} q/s  p50 {:>9} ns  p95 {:>9} ns  p99 {:>9} ns",
        dual.qps,
        dual.p(50.0),
        dual.p(95.0),
        dual.p(99.0)
    );

    // Phase 3: AP-pinned analytical scans.
    let scans = run_phase(clients, dur, |_| {
        let mut client = Client::connect_with(
            addr,
            &ConnectOptions { engine: EnginePref::Ap, ..ConnectOptions::default() },
        )
        .expect("connect");
        let stmt = client.prepare(SCAN_SQL).expect("prepare");
        Box::new(move |_| {
            let t = Instant::now();
            client.execute(stmt.stmt_id, &[]).expect("ap scan");
            Some(t.elapsed().as_nanos() as u64)
        })
    });
    println!(
        "server_ap_scan             {:>10} q/s  p50 {:>9} ns  p95 {:>9} ns  p99 {:>9} ns",
        scans.qps,
        scans.p(50.0),
        scans.p(95.0),
        scans.p(99.0)
    );

    // Phase 4: the mixed serving loop — 90% TP reads, 8% DML, 2% AP scans.
    // Only read latencies land in the histogram: the metric is reader p99
    // *under* concurrent DML, the HTAP isolation claim.
    let dml_ops = Arc::new(AtomicU64::new(0));
    let scan_ops = Arc::new(AtomicU64::new(0));
    let mixed = {
        let dml_ops = Arc::clone(&dml_ops);
        let scan_ops = Arc::clone(&scan_ops);
        run_phase(clients, dur, move |c| {
            let mut client = Client::connect_with(
                addr,
                &ConnectOptions { engine: EnginePref::Tp, ..ConnectOptions::default() },
            )
            .expect("connect");
            let point = client.prepare(POINT_SQL).expect("prepare point");
            let scan = client.prepare(SCAN_SQL).expect("prepare scan");
            let ins = client.prepare(INSERT_SQL).expect("prepare insert");
            let del = client.prepare(DELETE_SQL).expect("prepare delete");
            let base = (c as i64 * 15_485_863) % n_keys;
            // Client-private key space keeps insert/delete cycles steady-state.
            let dml_key = 950_000 + c as i64 * 1000;
            let dml_ops = Arc::clone(&dml_ops);
            let scan_ops = Arc::clone(&scan_ops);
            Box::new(move |i| match i % 50 {
                // 4 of 50 ops are DML (insert+delete pairs = 8%).
                0 | 25 => {
                    client
                        .execute(
                            ins.stmt_id,
                            &[
                                Value::Int(dml_key + (i as i64 / 25) % 500),
                                Value::Str(format!("lg#{c}:{i}")),
                                Value::Int(c as i64 % 25),
                            ],
                        )
                        .expect("insert");
                    dml_ops.fetch_add(1, Ordering::Relaxed);
                    None
                }
                1 | 26 => {
                    client
                        .execute(del.stmt_id, &[Value::Int(dml_key + (i as i64 / 25) % 500)])
                        .expect("delete");
                    dml_ops.fetch_add(1, Ordering::Relaxed);
                    None
                }
                // 1 of 50 ops is an AP scan (2%), dual-pref overridden to AP.
                40 => {
                    client
                        .execute_pref(scan.stmt_id, EnginePref::Ap, &[])
                        .expect("mixed scan");
                    scan_ops.fetch_add(1, Ordering::Relaxed);
                    None
                }
                // The rest are TP point reads; these feed the histogram.
                _ => {
                    let key = 1 + (base + i as i64) % n_keys;
                    let t = Instant::now();
                    client.execute(point.stmt_id, &point_params(key)).expect("mixed read");
                    Some(t.elapsed().as_nanos() as u64)
                }
            })
        })
    };
    println!(
        "server_mixed               {:>10} q/s  read p50 {:>9} ns  p95 {:>9} ns  p99 {:>9} ns",
        mixed.qps,
        mixed.p(50.0),
        mixed.p(95.0),
        mixed.p(99.0)
    );
    println!(
        "  (mix actually served: {} reads, {} DML, {} AP scans)",
        mixed.lat_sorted.len(),
        dml_ops.load(Ordering::Relaxed),
        scan_ops.load(Ordering::Relaxed)
    );

    // Post-load gates, read over the wire like everything else.
    let mut probe = Client::connect(addr).expect("stats connect");
    let stats = probe.stats().expect("stats frame");
    probe.goodbye().expect("goodbye");
    assert_eq!(
        stats.protocol_errors, 0,
        "loadgen traffic is well-formed; protocol errors mean a framing bug"
    );
    assert!(!stats.degraded, "the load must not trip degraded mode");
    println!(
        "server stats: {} stmts, {} conns, {} bytes in, {} bytes out, 0 protocol errors",
        stats.statements_executed,
        stats.connections_accepted,
        stats.bytes_read,
        stats.bytes_written
    );
    // Direct API view agrees with the wire view.
    assert_eq!(
        ServerStats::get(&server.stats().protocol_errors),
        0,
        "ServerStats API and Stats frame must agree"
    );

    if smoke {
        assert!(pinned.ops > 0 && dual.ops > 0 && scans.ops > 0, "all classes must run");
        assert!(
            dml_ops.load(Ordering::Relaxed) > 0 && scan_ops.load(Ordering::Relaxed) > 0,
            "the mixed phase must actually mix"
        );
        println!("smoke gates passed: equivalence, class coverage, zero protocol errors");
    }

    if record {
        let entries: Vec<(&str, u64)> = vec![
            ("server_point_lookup_qps", pinned.qps),
            ("server_point_lookup_p50_ns", pinned.p(50.0)),
            ("server_point_lookup_p95_ns", pinned.p(95.0)),
            ("server_point_lookup_p99_ns", pinned.p(99.0)),
            ("server_point_lookup_dual_qps", dual.qps),
            ("server_ap_scan_qps", scans.qps),
            ("server_ap_scan_p99_ns", scans.p(99.0)),
            ("server_mixed_qps", mixed.qps),
            ("server_mixed_read_p50_ns", mixed.p(50.0)),
            ("server_mixed_read_p95_ns", mixed.p(95.0)),
            ("server_reader_p99_under_dml_ns", mixed.p(99.0)),
        ];
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .join("BENCH_exec.json");
        // Merge-preserve: overlay onto the snapshot's existing entries.
        let mut obj = match std::fs::read_to_string(&path)
            .ok()
            .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
        {
            Some(serde_json::Value::Object(existing)) => existing,
            _ => serde_json::Map::new(),
        };
        for (label, v) in &entries {
            obj.insert((*label).to_string(), serde_json::Value::from(*v));
        }
        let json = serde_json::to_string_pretty(&serde_json::Value::Object(obj))
            .expect("serializes");
        std::fs::write(&path, json + "\n").expect("writes BENCH_exec.json");
        println!("recorded {} server entries into {}", entries.len(), path.display());
    }

    drop(server); // graceful shutdown via Drop
}
