//! Perf-trajectory snapshot: times the read cases from `engine_execution`
//! plus the write-path / delta-read / parallel-execution cases with
//! `std::time::Instant` and writes `BENCH_exec.json` (median ns per case) at
//! the repository root, so successive PRs can compare executor performance
//! against a checked-in baseline.
//!
//! Write-path cases:
//! * `dml_insert_delete_compact` — one INSERT + targeted DELETE + compact
//!   per iteration (steady-state: the table returns to baseline each time);
//! * `mixed_90_10` — a serving loop of 9 TP point reads per write cycle;
//! * `ap_scan_50pct_delta` — an AP aggregate scan over a table whose live
//!   rows are 50% delta-resident (the freshness-read cost, pre-compaction).
//!
//! Parallel cases (`par_*_tN` wall-clock at N worker threads, plus
//! `sim_par_*_tN` — the deterministic critical-path latency the router
//! sees) run the morsel-parallel executor at a larger scale (0.02) so the
//! inputs actually split into many morsels:
//! * `par_join_2way_tN` — 30k-row probe hash join;
//! * `par_ap_scan_50pct_delta_tN` — filtered aggregate over a 24k-row
//!   customer table whose live rows are 50% delta-resident.
//!
//! Wall-clock thread scaling is hardware-dependent (a single-core container
//! cannot show it; the simulated entries are the portable signal).
//!
//! Zone-map cases (`ap_point_lookup_pruned`, `ap_selective_scan_1pct` and
//! their `*_noprune` twins, plus `sim_*` modeled latencies) run at scale
//! 0.02 and measure block pruning directly: the same query with pushdown on
//! vs off on an identical table.
//!
//! Compressed-execution cases (`ap_eq_unclustered_bloom[_nobloom]`,
//! `ap_rle_predicate_scan[_plain]`, `ap_dict_join[_plain]`,
//! `ap_for_range_scan[_plain]`) pair each encoding-aware kernel — bloom
//! block pruning, run-at-a-time RLE predicates, dict-code hash joins,
//! FOR packed-domain range compares — with its de-specialized twin on
//! identical data; the printed ratios are the win. Expect ~15% wall-clock
//! drift between runs on shared hosts.
//!
//! Session cases (values are **queries per second**, not ns/iter):
//! * `prepared_point_lookup_qps` — `Session::prepare` once, `execute` 10k
//!   times with varying parameters (median of 3 runs);
//! * `unprepared_point_lookup_qps` — the same lookups as per-call SQL text
//!   through `execute_statement` (full front end every time);
//! * `mixed_clients_qps` — 4 threads × disjoint sessions over one shared
//!   system, all on the prepared path (`&self` reads under real
//!   concurrency).
//!
//! The prepared results are asserted row- and counter-identical to the
//! inlined-literal runs before timing, and the prepared/unprepared ratio
//! plus the plan-cache hit rate are printed.
//!
//! Durability cases (real disk I/O against a tempdir):
//! * `wal_commit_qps` — 8 client threads of durable single-row INSERTs
//!   under group commit, in queries per second;
//! * `wal_commit_qps_per_statement` — the same load with an fsync inside
//!   every statement (the naive contrast; the group-commit ratio is
//!   printed);
//! * `recovery_time_100k_rows` — wall-clock ns of `HtapSystem::open` on a
//!   directory whose WAL holds 100k uncheckpointed inserted rows;
//! * `background_compact_p99_write_stall` — p99 per-statement write
//!   latency (ns) while the background compactor repeatedly rebuilds and
//!   swaps the table underneath the writer.
//!
//! MVCC mixed-workload cases (the snapshot-read contention story):
//! * `mvcc_reader_p99_no_writer` — p99 latency (ns) of a prepared
//!   analytical reader (plan once; per read, pin a snapshot and execute)
//!   on an otherwise idle durable system;
//! * `mvcc_reader_p99_with_writer` — the same reads while a concurrent
//!   paced client streams durable insert/delete cycles (steady-state table
//!   size, periodic compaction). Snapshot reads hold no lock during
//!   execution, so the target is busy p99 ≤ 1.5x quiet p99; the ratio is
//!   printed and a warning fires above the target. Like the `par_*` thread
//!   scaling, this is hardware-dependent: on a single-core host reader and
//!   writer timeslice one CPU, the whole latency distribution shifts by
//!   scheduler interference with the locks never contended, and the
//!   printed note says so — judge the target on a multi-core host.
//!
//! ```sh
//! cargo run --release --bin bench_snapshot                # print + write
//! cargo run --release --bin bench_snapshot -- --check     # print only
//! cargo run --release --bin bench_snapshot -- --threads 4 # AP cases at 4 threads
//! cargo run --release --bin bench_snapshot -- --compare scalar,batch
//! cargo run --release --bin bench_snapshot -- --compare scalar,batch --dirty
//! cargo run --release --bin bench_snapshot -- --compare batch,par4
//! cargo run --release --bin bench_snapshot -- --compare scalar,batch --dirty --encoding rle
//! ```
//!
//! `--compare A,B` times any two executor modes side by side on every AP
//! plan; modes are `scalar` (row interpreter), `batch` (serial vectorized)
//! and `parN` (morsel-parallel at N threads). Bare `--compare` defaults to
//! `scalar,batch`; `--dirty` first applies uncompacted DML so the modes are
//! compared over the encoded-base + delta + tombstone read path;
//! `--encoding plain|dict|rle|for|auto` pins that base representation on
//! the compared tables first (the agreement assertions then gate the forced
//! encoding).

use qpe_htap::engine::{EngineKind, HtapSystem};
use qpe_htap::exec::{
    execute_parallel, execute_scalar, execute_vectorized, ExecConfig, Row, StatementLimits,
    WorkCounters,
};
use qpe_htap::opt::{ap, PlannerCtx};
use qpe_htap::tpch::TpchConfig;
use std::hint::black_box;
use std::time::Instant;

/// The same cases as `benches/engine_execution.rs`.
const CASES: [(&str, &str); 3] = [
    ("point_lookup", "SELECT c_name FROM customer WHERE c_custkey = 42"),
    (
        "join_2way",
        "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
    ),
    (
        "topn_indexed",
        "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10",
    ),
];

const SAMPLES: usize = 15;

fn median_ns(mut samples: Vec<f64>) -> u64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2] as u64
}

fn time_case(sys: &HtapSystem, sql: &str, engine: EngineKind) -> u64 {
    let bound = sys.bind(sql).expect("binds");
    // Warm up and estimate per-iteration cost.
    let warm = Instant::now();
    let mut warm_iters = 0u64;
    while warm.elapsed().as_millis() < 100 || warm_iters < 3 {
        black_box(sys.run_engine(black_box(&bound), engine).expect("runs"));
        warm_iters += 1;
    }
    let per_iter = warm.elapsed().as_nanos() as f64 / warm_iters as f64;
    // ~20ms of measurement per sample, at least one iteration.
    let iters = ((20e6 / per_iter.max(1.0)) as u64).max(1);
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(sys.run_engine(black_box(&bound), engine).expect("runs"));
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    median_ns(samples)
}

/// Times one closure with the shared warm-up/median protocol.
fn time_ns(mut f: impl FnMut()) -> u64 {
    let warm = Instant::now();
    let mut warm_iters = 0u64;
    while warm.elapsed().as_millis() < 100 || warm_iters < 3 {
        f();
        warm_iters += 1;
    }
    let per_iter = warm.elapsed().as_nanos() as f64 / warm_iters as f64;
    let iters = ((20e6 / per_iter.max(1.0)) as u64).max(1);
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    median_ns(samples)
}

/// An executor mode `--compare` can pit against another.
#[derive(Clone, Copy, Debug)]
enum Mode {
    /// Row interpreter.
    Scalar,
    /// Serial vectorized batch executor.
    Batch,
    /// Morsel-parallel batch executor at N threads.
    Par(usize),
}

impl Mode {
    fn parse(s: &str) -> Option<Mode> {
        match s {
            "scalar" => Some(Mode::Scalar),
            "batch" => Some(Mode::Batch),
            _ => s
                .strip_prefix("par")
                .and_then(|n| n.parse::<usize>().ok())
                .map(Mode::Par),
        }
    }

    fn label(&self) -> String {
        match self {
            Mode::Scalar => "scalar".into(),
            Mode::Batch => "batch".into(),
            Mode::Par(n) => format!("par{n}"),
        }
    }

    fn run(
        &self,
        plan: &qpe_htap::PlanNode,
        bound: &qpe_sql::binder::BoundQuery,
        db: &qpe_htap::Database,
    ) -> (Vec<Row>, WorkCounters) {
        match self {
            Mode::Scalar => execute_scalar(plan, bound, db, EngineKind::Ap).expect("scalar"),
            Mode::Batch => execute_vectorized(plan, bound, db).expect("batch"),
            Mode::Par(n) => {
                execute_parallel(plan, bound, db, &ExecConfig::with_threads(*n))
                    .expect("parallel")
            }
        }
    }
}

/// AP-plan execution: any two executor modes, side by side. Also verifies
/// the modes agree on rows and counters before timing them.
fn compare_executors(sys: &HtapSystem, a: Mode, b: Mode) {
    let db = sys.database();
    let (la, lb) = (a.label(), b.label());
    for (name, sql) in CASES {
        let bound = sys.bind(sql).expect("binds");
        let ctx = PlannerCtx::new(&bound, db.stats(), db.catalog());
        let plan = ap::plan(&ctx).expect("ap plan");
        let (rows_a, counters_a) = a.run(&plan, &bound, &db);
        let (rows_b, counters_b) = b.run(&plan, &bound, &db);
        assert_eq!(rows_a, rows_b, "{la} vs {lb} rows diverged for {name}");
        assert_eq!(counters_a, counters_b, "{la} vs {lb} counters diverged for {name}");
        let ns_a = time_ns(|| {
            black_box(a.run(black_box(&plan), &bound, &db));
        });
        let ns_b = time_ns(|| {
            black_box(b.run(black_box(&plan), &bound, &db));
        });
        println!(
            "ap_{name:<20} {la} {ns_a:>10} ns   {lb} {ns_b:>10} ns   speedup {:.2}x",
            ns_a as f64 / ns_b.max(1) as f64
        );
    }
}

/// Zone-map pruning cases at scale 0.02 (orders: 30k rows, ~59 adaptive
/// 512-row blocks): a point lookup and a 1%-selective key-range aggregate,
/// each timed
/// with pruning on and off (`*_noprune`), plus the modeled `sim_*` latencies
/// for the same counters so the pruned-block savings are visible in the
/// deterministic model the router consumes, not just in wall-clock.
fn pruning_cases() -> Vec<(String, u64)> {
    let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.02));
    let cases = [
        (
            "ap_point_lookup_pruned",
            "SELECT o_totalprice FROM orders WHERE o_orderkey = 4242",
        ),
        (
            "ap_selective_scan_1pct",
            "SELECT COUNT(*), SUM(o_totalprice) FROM orders \
             WHERE o_orderkey BETWEEN 12000 AND 12300",
        ),
    ];
    let mut out = Vec::new();
    for (name, sql) in cases {
        let mut entry = |sys: &HtapSystem, label: String| {
            let bound = sys.bind(sql).expect("binds");
            let ns = time_ns(|| {
                black_box(sys.run_engine(black_box(&bound), EngineKind::Ap).expect("runs"));
            });
            let run = sys.run_engine(&bound, EngineKind::Ap).expect("runs");
            out.push((label.clone(), ns));
            out.push((format!("sim_{label}"), run.latency_ns));
        };
        sys.set_pruning(true);
        entry(&sys, name.to_string());
        sys.set_pruning(false);
        entry(&sys, format!("{name}_noprune"));
        sys.set_pruning(true);
    }
    out
}

/// Times one AP-engine SQL case into `out` and returns the measured ns.
fn run_encoding_case(
    out: &mut Vec<(String, u64)>,
    sys: &HtapSystem,
    label: &str,
    sql: &str,
) -> u64 {
    let bound = sys.bind(sql).expect("binds");
    let ns = time_ns(|| {
        black_box(sys.run_engine(black_box(&bound), EngineKind::Ap).expect("runs"));
    });
    out.push((label.to_string(), ns));
    ns
}

/// Compressed-execution cases at scale 0.02 — each pairs a specialized
/// storage kernel with its de-specialized twin over identical data, so the
/// checked-in entries carry the win directly:
///
/// * `ap_eq_unclustered_bloom` vs `_nobloom` — point equality on
///   `o_custkey`, which is *unclustered*: every block's min/max spans most
///   of the key domain, so only the per-block bloom filters prune. The twin
///   drops the blooms (min/max pruning stays on and refutes ~nothing).
///   This pair runs at scale 0.1 with 512-row blocks pinned (the
///   granularity a multi-million-row table would get) so the key is
///   absent from ~97% of blocks.
/// * `ap_rle_predicate_scan` vs `_plain` — equality over a run-heavy int
///   column (seeded runs of 64) under a forced RLE policy: the kernel
///   evaluates once per run instead of once per row. Block pruning is
///   disabled so the kernel, not block skipping, is what's measured.
/// * `ap_dict_join` vs `_plain` — a string-keyed hash join
///   (`o_orderpriority = c_mktsegment`, with a seeded sliver of orders
///   whose priority is a real market segment so matches exist): dictionary
///   sides build and probe on `u32` codes through a build-space remap; the
///   plain twin hashes the strings themselves.
/// * `ap_for_range_scan` vs `_plain` — a selective int range predicate
///   under a forced FOR policy, zone pruning off: the kernel decides each
///   1024-row block wholesale against the encoding's own [ref, max]
///   envelope and reads packed words only in the straddling blocks.
///
/// Wall-clock ratios are host-dependent — expect ~15% drift between runs
/// on shared hardware; the checked-in numbers are one host's snapshot, and
/// the printed ratios are the signal reviewers should eyeball.
fn encoding_cases() -> Vec<(String, u64)> {
    use qpe_htap::storage::col_store::EncodingPolicy;

    let mut out = Vec::new();

    // Bloom pruning on an unclustered key: zone headers are useless here,
    // the blooms do all the refuting. Scale 0.1 (150k orders) so the probed
    // key is absent from ~97% of blocks — at toy scales every key lands in
    // a sizable fraction of the blocks and the effect is understated.
    {
        let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.1));
        // Production-style pruning granularity: the adaptive default would
        // pick 4096-row blocks for a 150k-row table, and at that coarseness
        // a 10-occurrence key still touches ~25% of blocks. 512-row blocks
        // are what a multi-million-row table would get per the same 8
        // bits/row bloom sizing, and let the filters refute ~97% of blocks.
        assert!(sys.database_mut().set_zone_block_rows("orders", 512));
        let sql = "SELECT o_totalprice FROM orders WHERE o_custkey = 1500";
        let with = run_encoding_case(&mut out, &sys, "ap_eq_unclustered_bloom", sql);
        assert!(sys.database_mut().set_bloom_filters("orders", false));
        let without = run_encoding_case(&mut out, &sys, "ap_eq_unclustered_bloom_nobloom", sql);
        println!(
            "  (blooms speed the unclustered equality up {:.2}x)",
            without as f64 / with.max(1) as f64
        );
    }

    // Run-aware predicate kernel: seed 27k rows whose c_nationkey forms
    // runs of 64, compact, then force RLE vs Plain over the same base.
    {
        let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.02));
        let mut key = 910_000usize;
        for _ in 0..9 {
            let values: Vec<String> = (0..3000)
                .map(|i| {
                    let k = key + i;
                    format!(
                        "({k}, 'customer#delta{k}', {}, '20-000-000-0000', {}.5, 'machinery')",
                        (k / 64) % 25,
                        k % 5000
                    )
                })
                .collect();
            sys.execute_statement(&format!(
                "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
                 c_mktsegment) VALUES {}",
                values.join(", ")
            ))
            .expect("seed run-heavy rows");
            key += 3000;
        }
        sys.database_mut().compact_table("customer");
        sys.set_pruning(false);
        let sql = "SELECT COUNT(*) FROM customer WHERE c_nationkey = 7";
        assert!(sys.database_mut().set_encoding_policy("customer", EncodingPolicy::Rle));
        let rle = run_encoding_case(&mut out, &sys, "ap_rle_predicate_scan", sql);
        assert!(sys.database_mut().set_encoding_policy("customer", EncodingPolicy::Plain));
        let plain = run_encoding_case(&mut out, &sys, "ap_rle_predicate_scan_plain", sql);
        println!(
            "  (run-aware RLE predicate kernel is {:.2}x the plain row-wise kernel)",
            plain as f64 / rle.max(1) as f64
        );
    }

    // Dict-code hash join: both key columns dictionary-encoded, probe codes
    // remapped into the build dictionary once, then integer hashing only.
    {
        let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.02));
        let segs = ["machinery", "building", "household"];
        let values: Vec<String> = (0..60)
            .map(|i| {
                format!("({}, {}, '{}', {}.0)", 900_000 + i, 1 + i % 3000, segs[i % 3], 100 + i)
            })
            .collect();
        sys.execute_statement(&format!(
            "INSERT INTO orders (o_orderkey, o_custkey, o_orderpriority, o_totalprice) \
             VALUES {}",
            values.join(", ")
        ))
        .expect("seed segment-valued orders");
        sys.database_mut().compact_table("orders");
        let sql = "SELECT COUNT(*) FROM customer, orders WHERE o_orderpriority = c_mktsegment";
        assert!(sys.database_mut().set_encoding_policy("customer", EncodingPolicy::Dict));
        assert!(sys.database_mut().set_encoding_policy("orders", EncodingPolicy::Dict));
        let dict = run_encoding_case(&mut out, &sys, "ap_dict_join", sql);
        assert!(sys.database_mut().set_encoding_policy("customer", EncodingPolicy::Plain));
        assert!(sys.database_mut().set_encoding_policy("orders", EncodingPolicy::Plain));
        let plain = run_encoding_case(&mut out, &sys, "ap_dict_join_plain", sql);
        println!(
            "  (dict-code join is {:.2}x the string-keyed join)",
            plain as f64 / dict.max(1) as f64
        );
    }

    // FOR range predicate: the kernel first decides each 1024-row block
    // against its stored [ref, max] envelope (whole-block fill or skip —
    // the encoding's own metadata, no zone maps involved: pruning is off),
    // then compares only the straddling blocks' bit-packed deltas in the
    // packed domain. The plain twin evaluates all 30k rows.
    {
        let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.02));
        sys.set_pruning(false);
        let sql = "SELECT COUNT(*) FROM orders WHERE o_orderkey BETWEEN 12000 AND 13500";
        assert!(sys.database_mut().set_encoding_policy("orders", EncodingPolicy::For));
        let forenc = run_encoding_case(&mut out, &sys, "ap_for_range_scan", sql);
        assert!(sys.database_mut().set_encoding_policy("orders", EncodingPolicy::Plain));
        let plain = run_encoding_case(&mut out, &sys, "ap_for_range_scan_plain", sql);
        println!(
            "  (FOR packed-domain range kernel is {:.2}x the plain kernel)",
            plain as f64 / forenc.max(1) as f64
        );
    }

    out
}

/// Applies uncompacted DML so `--compare --dirty` exercises the encoded
/// base + typed delta + tombstone read path: inserts grow a delta over
/// `customer` (whose segment column is dictionary-encoded at load) and
/// range deletes tombstone base rows.
fn dirty_for_compare(sys: &mut HtapSystem) {
    let base = sys
        .database()
        .stored_table("customer")
        .expect("customer exists")
        .row_count();
    bulk_insert_customers(sys, 920_000, (base / 4).max(8));
    sys.execute_statement("DELETE FROM customer WHERE c_custkey BETWEEN 10 AND 30")
        .expect("delete runs");
    let fresh = sys.freshness("customer").expect("freshness");
    assert!(fresh.delta_rows > 0 && fresh.deleted_rows > 0, "table must be dirty");
}

const INSERT_SQL: &str = "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, \
     c_acctbal, c_mktsegment) VALUES (900001, 'customer#900001', 4, '20-555-000-1111', \
     1234.56, 'machinery')";
const DELETE_SQL: &str = "DELETE FROM customer WHERE c_custkey = 900001";

/// Times the write-path and delta-read cases.
fn write_path_cases() -> Vec<(&'static str, u64)> {
    let mut out = Vec::new();

    // Steady-state write cycle: each iteration inserts one row, deletes it
    // through the PK index, and compacts both formats back to baseline.
    let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
    let ns = time_ns(|| {
        black_box(sys.execute_statement(INSERT_SQL).expect("insert"));
        black_box(sys.execute_statement(DELETE_SQL).expect("delete"));
        sys.database_mut().compact_table("customer");
    });
    out.push(("dml_insert_delete_compact", ns));

    // 90/10 serving mix: 9 TP point reads per write cycle.
    let point = sys
        .bind("SELECT c_name FROM customer WHERE c_custkey = 42")
        .expect("binds");
    let ns = time_ns(|| {
        for _ in 0..9 {
            black_box(sys.run_engine(black_box(&point), EngineKind::Tp).expect("read"));
        }
        black_box(sys.execute_statement(INSERT_SQL).expect("insert"));
        black_box(sys.execute_statement(DELETE_SQL).expect("delete"));
        sys.database_mut().compact_table("customer");
    });
    out.push(("mixed_90_10", ns));

    // AP scan over a half-delta table: double `customer` with uncompacted
    // inserts, then time the delta-aware aggregate scan (read-only, so the
    // 50% delta fraction holds for every sample).
    let dirty = HtapSystem::new(&TpchConfig::with_scale(0.002));
    let base_rows = dirty
        .database()
        .stored_table("customer")
        .expect("customer exists")
        .row_count();
    let mut values = Vec::with_capacity(base_rows);
    for i in 0..base_rows {
        values.push(format!(
            "({}, 'customer#delta{i}', {}, '20-000-000-0000', {}.5, 'machinery')",
            910_000 + i,
            i % 25,
            i % 5000
        ));
    }
    let bulk = format!(
        "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
         c_mktsegment) VALUES {}",
        values.join(", ")
    );
    dirty.execute_statement(&bulk).expect("bulk insert");
    let fresh = dirty.freshness("customer").expect("freshness");
    assert_eq!(fresh.delta_rows, base_rows, "half the live rows sit in the delta");
    let agg = dirty
        .bind("SELECT COUNT(*), SUM(c_acctbal) FROM customer WHERE c_mktsegment = 'machinery'")
        .expect("binds");
    let ns = time_ns(|| {
        black_box(dirty.run_engine(black_box(&agg), EngineKind::Ap).expect("scan"));
    });
    out.push(("ap_scan_50pct_delta", ns));

    out
}

/// Governance overhead: the same half-delta AP aggregate as
/// `ap_scan_50pct_delta`, once under unlimited statement limits (the guard's
/// fast path — one relaxed atomic load per block) and once under *real*
/// limits (a far deadline plus a huge memory budget, so every block checks
/// the clock and charges the budget without ever tripping). The PR 9 gate:
/// governed must stay within ~2% of ungoverned.
fn governance_cases() -> Vec<(String, u64)> {
    let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
    let base_rows = sys
        .database()
        .stored_table("customer")
        .expect("customer exists")
        .row_count();
    bulk_insert_customers(&mut sys, 910_000, base_rows);
    let fresh = sys.freshness("customer").expect("freshness");
    assert_eq!(fresh.delta_rows, base_rows, "half the live rows sit in the delta");
    let agg = sys
        .bind("SELECT COUNT(*), SUM(c_acctbal) FROM customer WHERE c_mktsegment = 'machinery'")
        .expect("binds");

    // A single-CPU host schedules background work into the middle of a
    // measurement, so the pair is timed in three interleaved rounds and
    // each side keeps its minimum — the usual microbenchmark noise floor.
    let mut ungoverned = u64::MAX;
    let mut governed = u64::MAX;
    for _ in 0..3 {
        sys.set_statement_limits(StatementLimits::unlimited());
        ungoverned = ungoverned.min(time_ns(|| {
            black_box(sys.run_engine(black_box(&agg), EngineKind::Ap).expect("scan"));
        }));
        sys.set_statement_limits(StatementLimits {
            timeout: Some(std::time::Duration::from_secs(3600)),
            memory_budget: Some(1 << 40),
        });
        governed = governed.min(time_ns(|| {
            black_box(sys.run_engine(black_box(&agg), EngineKind::Ap).expect("scan"));
        }));
    }
    sys.set_statement_limits(StatementLimits::unlimited());
    let overhead_pct = ((governed as f64 / ungoverned as f64 - 1.0) * 100.0).max(0.0).round();
    vec![
        ("ungoverned_ap_scan".to_string(), ungoverned),
        ("governed_ap_scan".to_string(), governed),
        ("governed_ap_scan_overhead_pct".to_string(), overhead_pct as u64),
    ]
}

/// Bulk-inserts `n` synthetic customers starting at key `key0`, in
/// 3000-row statements.
fn bulk_insert_customers(sys: &mut HtapSystem, key0: usize, n: usize) {
    let mut remaining = n;
    let mut key = key0;
    while remaining > 0 {
        let chunk = remaining.min(3000);
        let values: Vec<String> = (0..chunk)
            .map(|i| {
                format!(
                    "({}, 'customer#delta{}', {}, '20-000-000-0000', {}.5, 'machinery')",
                    key + i,
                    key + i,
                    (key + i) % 25,
                    (key + i) % 5000
                )
            })
            .collect();
        sys.execute_statement(&format!(
            "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
             c_mktsegment) VALUES {}",
            values.join(", ")
        ))
        .expect("bulk insert");
        key += chunk;
        remaining -= chunk;
    }
}

/// Morsel-parallel executor cases at a scale where inputs split into many
/// morsels (orders: 30k rows; dirty customer: 24k live rows, 50% in the
/// delta). Each case runs at 1, 2 and 4 worker threads; `par_*` entries are
/// wall-clock, `sim_par_*` entries are the deterministic critical-path
/// latency the router/explainer see for the same counters.
fn parallel_cases() -> Vec<(String, u64)> {
    let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.02));
    // Grow customer to 12k clean base rows, then add a 12k-row delta:
    // 50% of live rows are delta-resident, and morsels straddle the split.
    bulk_insert_customers(&mut sys, 910_000, 9_000);
    sys.database_mut().compact_table("customer");
    bulk_insert_customers(&mut sys, 930_000, 12_000);
    let fresh = sys.freshness("customer").expect("freshness");
    assert_eq!(fresh.live_delta_rows, 12_000, "half the live rows sit in the delta");

    let cases = [
        (
            "join_2way",
            "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
        ),
        (
            "ap_scan_50pct_delta",
            "SELECT COUNT(*), SUM(c_acctbal) FROM customer WHERE c_mktsegment = 'machinery'",
        ),
    ];
    let db = sys.database();
    let mut out = Vec::new();
    for (name, sql) in cases {
        let bound = sys.bind(sql).expect("binds");
        let ctx = PlannerCtx::new(&bound, db.stats(), db.catalog());
        let plan = ap::plan(&ctx).expect("ap plan");
        let (_, counters) = execute_vectorized(&plan, &bound, &db).expect("counters");
        for threads in [1usize, 2, 4] {
            let cfg = ExecConfig::with_threads(threads);
            let ns = time_ns(|| {
                black_box(execute_parallel(black_box(&plan), &bound, &db, &cfg).unwrap());
            });
            out.push((format!("par_{name}_t{threads}"), ns));
            // End-to-end simulated latency (includes the 15ms AP pipeline
            // startup) and the execution-phase portion alone — the modeled
            // counterpart of the wall-clock entry, where thread scaling is
            // visible regardless of how many cores this host happens to
            // have.
            let sim = sys.latency_model().ap_latency_ns_threads(&counters, threads as u64);
            out.push((format!("sim_par_{name}_t{threads}"), sim));
            out.push((
                format!("sim_exec_par_{name}_t{threads}"),
                sim - sys.latency_model().ap.fixed_ns,
            ));
        }
    }
    out
}

/// Prepared-statement session cases: the parse-once / execute-many contract.
///
/// * `prepared_point_lookup_qps` — one `Session::prepare`, then repeated
///   `execute(&[key])` with varying keys (front end paid once);
/// * `unprepared_point_lookup_qps` — the same point lookups as ad-hoc SQL
///   strings through `execute_statement` (lex+parse+bind+plan per call, the
///   realistic client that formats its literals into the text);
/// * `mixed_clients_qps` — 4 threads × disjoint sessions over one shared
///   `Arc<HtapSystem>`, all hammering the same prepared statement: the
///   `&self` read path under actual concurrency.
///
/// Values are **queries per second** (higher is better), unlike the ns/iter
/// entries. Before timing, prepared results are verified row- and
/// counter-identical to the inlined-literal runs.
fn session_cases() -> Vec<(&'static str, u64)> {
    use qpe_htap::session::Session;
    use qpe_sql::value::Value;
    use std::sync::Arc;

    // A realistic OLTP point lookup: PK equality plus the usual pile of
    // guard predicates. The per-statement front end (lex, parse, bind, two
    // planners) scales with the predicate count while execution stays
    // one-block cheap — exactly the overhead prepare-once amortizes.
    const PARAM_SQL: &str = "SELECT c_name, c_acctbal FROM customer \
        WHERE c_custkey = ? AND c_mktsegment = ? AND c_acctbal BETWEEN ? AND ? \
        AND c_nationkey <> ? AND c_phone <> ? AND c_name IS NOT NULL";
    let inlined_sql = |key: i64| {
        format!(
            "SELECT c_name, c_acctbal FROM customer WHERE c_custkey = {key} \
             AND c_mktsegment = 'machinery' AND c_acctbal BETWEEN -100000.0 AND 100000.0 \
             AND c_nationkey <> 26 AND c_phone <> 'none' AND c_name IS NOT NULL"
        )
    };
    let params_for = |key: i64| {
        vec![
            Value::Int(key),
            Value::Str("machinery".into()),
            Value::Float(-100000.0),
            Value::Float(100000.0),
            Value::Int(26),
            Value::Str("none".into()),
        ]
    };
    let sys = Arc::new(HtapSystem::new(&TpchConfig::with_scale(0.002)));
    let n_keys = sys
        .database()
        .stored_table("customer")
        .expect("customer exists")
        .row_count() as i64;
    let key_of = |i: u64| 1 + (i as i64 % n_keys);

    let session = Session::new(Arc::clone(&sys));
    let stmt = session.prepare(PARAM_SQL).expect("prepares");

    // Equivalence gate: prepared ≡ inlined on rows AND WorkCounters.
    for key in [1, 42, n_keys / 2, n_keys] {
        let prepared = stmt.execute(&params_for(key)).expect("prepared runs");
        let prepared = prepared.as_query().expect("is a query");
        let inlined = sys.run_sql(&inlined_sql(key)).expect("inlined runs");
        assert_eq!(prepared.tp.rows, inlined.tp.rows, "rows diverged at key {key}");
        assert_eq!(prepared.ap.rows, inlined.ap.rows, "rows diverged at key {key}");
        assert_eq!(prepared.tp.counters, inlined.tp.counters, "TP counters at {key}");
        assert_eq!(prepared.ap.counters, inlined.ap.counters, "AP counters at {key}");
    }

    const N: u64 = 10_000;
    let qps = |start: Instant, n: u64| (n as f64 / start.elapsed().as_secs_f64()) as u64;
    // Median of three 10k-execution runs per flavor, interleaved so both see
    // the same machine conditions.
    let mut prepared_runs = Vec::new();
    let mut unprepared_runs = Vec::new();
    for _ in 0..3 {
        let start = Instant::now();
        for i in 0..N {
            black_box(stmt.execute(&params_for(key_of(i))).expect("prepared runs"));
        }
        prepared_runs.push(qps(start, N));
        let start = Instant::now();
        for i in 0..N {
            black_box(sys.execute_statement(&inlined_sql(key_of(i))).expect("unprepared runs"));
        }
        unprepared_runs.push(qps(start, N));
    }
    prepared_runs.sort_unstable();
    unprepared_runs.sort_unstable();
    let prepared_qps = prepared_runs[1];
    let unprepared_qps = unprepared_runs[1];

    // Concurrent serving: 4 client threads, each with its own session and
    // prepared handle, disjoint key phases, one shared system. QPS is the
    // aggregate over all threads' wall-clock.
    const THREADS: u64 = 4;
    let start = Instant::now();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let sys = Arc::clone(&sys);
            scope.spawn(move || {
                let session = Session::new(sys);
                let stmt = session.prepare(PARAM_SQL).expect("prepares");
                for i in 0..N / THREADS {
                    let key = key_of(t * (N / THREADS) + i);
                    black_box(stmt.execute(&params_for(key)).expect("runs"));
                }
            });
        }
    });
    let mixed_qps = qps(start, N);

    let cache = sys.plan_cache_stats();
    println!(
        "(prepared {:.2}x unprepared; plan cache: {} hits / {} misses, hit rate {:.1}%)",
        prepared_qps as f64 / unprepared_qps.max(1) as f64,
        cache.hits,
        cache.misses,
        cache.hit_rate() * 100.0
    );

    vec![
        ("prepared_point_lookup_qps", prepared_qps),
        ("unprepared_point_lookup_qps", unprepared_qps),
        ("mixed_clients_qps", mixed_qps),
    ]
}

/// Durability cases — see the module docs. These do real file I/O (write,
/// fsync, reopen) in a per-process tempdir that is removed afterwards, so
/// the numbers reflect the host filesystem's actual fsync cost.
fn durability_cases() -> Vec<(&'static str, u64)> {
    use qpe_htap::engine::{BackgroundCompaction, DurabilityOptions};
    use qpe_htap::SyncPolicy;
    use std::time::Duration;

    let root = std::env::temp_dir().join(format!("qpe_bench_dur_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config = TpchConfig::with_scale(0.002);
    let mut out = Vec::new();

    // Group commit vs fsync-per-statement: 32 client threads on the
    // prepared path (front end paid once, so the metric is commit
    // throughput, not parse throughput), disjoint keys, every INSERT
    // acknowledged only once durable. Group commit releases the write lock
    // before the fsync and batches every statement that arrives while a
    // flush is in flight; per-statement fsyncs inside the lock, so the
    // client count buys it nothing.
    let commit_qps = |label: &str, sync: SyncPolicy| -> u64 {
        use qpe_htap::session::Session;
        use qpe_sql::value::Value;
        use std::sync::Arc;

        const THREADS: u64 = 32;
        const PER_THREAD: u64 = 128;
        const INSERT: &str = "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, \
             c_acctbal, c_mktsegment) VALUES (?, ?, 4, '20-555-000-1111', 10.5, 'machinery')";
        let dir = root.join(label);
        let opts = DurabilityOptions { sync, ..DurabilityOptions::default() };
        let sys =
            Arc::new(HtapSystem::open_with(&dir, &config, opts).expect("opens durable dir"));
        let start = Instant::now();
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let sys = Arc::clone(&sys);
                scope.spawn(move || {
                    let session = Session::new(sys);
                    let stmt = session.prepare(INSERT).expect("prepares");
                    for i in 0..PER_THREAD {
                        let key = (900_000 + t * PER_THREAD + i) as i64;
                        stmt.execute(&[Value::Int(key), Value::Str(format!("customer#{key}"))])
                            .expect("durable insert");
                    }
                });
            }
        });
        let qps = (THREADS * PER_THREAD) as f64 / start.elapsed().as_secs_f64();
        let wal = sys.wal_stats().expect("durable system");
        println!(
            "  ({label}: {} records / {} fsyncs = {:.1} records per fsync)",
            wal.records,
            wal.fsyncs,
            wal.records as f64 / wal.fsyncs.max(1) as f64
        );
        qps as u64
    };
    let group_qps = commit_qps("wal_commit_qps", SyncPolicy::GroupCommit {
        interval: Duration::ZERO,
    });
    let per_stmt_qps = commit_qps("wal_commit_qps_per_statement", SyncPolicy::PerStatement);
    let ratio = group_qps as f64 / per_stmt_qps.max(1) as f64;
    println!("  (group commit is {ratio:.1}x fsync-per-statement)");
    if ratio < 5.0 {
        println!("  (WARNING: group-commit win below the 5x target — fast-fsync host?)");
    }
    out.push(("wal_commit_qps", group_qps));
    out.push(("wal_commit_qps_per_statement", per_stmt_qps));

    // Recovery wall-clock: leave 100k inserted rows sitting in the WAL (no
    // checkpoint), then time the whole `open` — manifest + segment load,
    // chain replay, index and zone rebuild.
    {
        let dir = root.join("recovery_100k");
        let mut sys = HtapSystem::open_with(&dir, &config, DurabilityOptions::default())
            .expect("opens durable dir");
        let base = sys
            .database()
            .stored_table("customer")
            .expect("customer exists")
            .row_count();
        bulk_insert_customers(&mut sys, 1_000_000, 100_000);
        drop(sys); // kill without checkpoint: recovery must replay the WAL
        let start = Instant::now();
        let sys = HtapSystem::open(&dir, &config).expect("recovers");
        let ns = start.elapsed().as_nanos() as u64;
        let report = sys.recovery_report().expect("durable open").clone();
        let rows = sys
            .database()
            .stored_table("customer")
            .expect("customer exists")
            .row_count();
        assert_eq!(rows, base + 100_000, "recovery must replay all 100k rows");
        println!(
            "  (recovered {} WAL records across {} file(s) in {:?})",
            report.wal_records_replayed, report.wal_files_replayed, report.elapsed
        );
        out.push(("recovery_time_100k_rows", ns));
    }

    // Write stall under background compaction: a single writer streams
    // durable INSERTs while the compactor thread repeatedly rebuilds the
    // table offline and swaps it in. p99 statement latency is the stall
    // the swap (not the rebuild) costs the writer.
    {
        let dir = root.join("bg_compact");
        let opts = DurabilityOptions {
            background: Some(BackgroundCompaction {
                min_delta_rows: 1024,
                poll: Duration::from_millis(1),
            }),
            ..DurabilityOptions::default()
        };
        let sys = HtapSystem::open_with(&dir, &config, opts).expect("opens durable dir");
        const WRITES: usize = 6_000;
        let mut lat = Vec::with_capacity(WRITES);
        for i in 0..WRITES {
            let key = 2_000_000 + i;
            let sql = format!(
                "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
                 c_mktsegment) VALUES ({key}, 'customer#{key}', 4, '20-555-000-1111', \
                 10.5, 'machinery')"
            );
            let start = Instant::now();
            sys.execute_statement(&sql).expect("durable insert");
            lat.push(start.elapsed().as_nanos() as u64);
        }
        // Every insert lands in the delta; only a compaction swap shrinks
        // it, so a full delta means the compactor never ran.
        let fresh = sys.freshness("customer").expect("table exists");
        assert!(
            fresh.delta_rows < WRITES,
            "background compactor must have merged the delta at least once"
        );
        lat.sort_unstable();
        let p50 = lat[WRITES / 2];
        let p99 = lat[WRITES * 99 / 100];
        println!(
            "  ({} of {WRITES} inserted rows still delta-resident; write latency \
             p50 {p50} ns, p99 {p99} ns, max {} ns)",
            fresh.delta_rows,
            lat[WRITES - 1]
        );
        out.push(("background_compact_p99_write_stall", p99));
    }

    let _ = std::fs::remove_dir_all(&root);
    out
}

/// MVCC mixed-workload cases: reader p99 with and without a concurrent
/// durable writer. Each read pins a snapshot (a brief read lock to clone
/// the `Arc`'d column state) and executes the aggregate entirely lock-free,
/// so a writer streaming group-committed DML should cost readers almost
/// nothing. The writer runs steady-state insert/delete cycles with a
/// compact every 256 ops — the table stays near its baseline size (a
/// growing scan would inflate the busy p99 for reasons unrelated to
/// contention), while the write lock, the WAL and compaction's
/// copy-on-write swap all stay hot under the readers' feet.
fn mvcc_cases() -> Vec<(&'static str, u64)> {
    use qpe_htap::engine::DurabilityOptions;
    use qpe_htap::SyncPolicy;
    use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
    use std::sync::Arc;
    use std::time::Duration;

    let root = std::env::temp_dir().join(format!("qpe_bench_mvcc_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);
    let config = TpchConfig::with_scale(0.02);
    let opts = DurabilityOptions {
        sync: SyncPolicy::GroupCommit { interval: Duration::ZERO },
        ..DurabilityOptions::default()
    };
    let sys = Arc::new(HtapSystem::open_with(&root, &config, opts).expect("opens durable dir"));

    const READS: usize = 2_000;
    // A prepared analytical reader: bind + AP-plan once, then per read pin
    // a snapshot and execute the cached plan on it (parameter-free, so this
    // is exactly the prepared-statement serving loop; re-parsing per read
    // would double the read cost and measure the front end instead).
    let probe =
        "SELECT COUNT(*), SUM(c_acctbal) FROM customer WHERE c_mktsegment = 'machinery'";
    let (plan, bound) = sys.pin_snapshot().plan(probe).expect("plans");
    let read_p99 = |sys: &HtapSystem| -> u64 {
        let read_once = || {
            let snap = sys.pin_snapshot();
            black_box(execute_vectorized(&plan, &bound, snap.database()).expect("snapshot read"));
        };
        for _ in 0..50 {
            read_once();
        }
        let mut lat = Vec::with_capacity(READS);
        for _ in 0..READS {
            let start = Instant::now();
            read_once();
            lat.push(start.elapsed().as_nanos() as u64);
        }
        lat.sort_unstable();
        println!(
            "  (reads: p50 {} p90 {} p99 {} max {} ns)",
            lat[READS / 2],
            lat[READS * 90 / 100],
            lat[READS * 99 / 100],
            lat[READS - 1]
        );
        lat[READS * 99 / 100]
    };

    let quiet_p99 = read_p99(&sys);

    let stop = AtomicBool::new(false);
    let written = AtomicUsize::new(0);
    let busy_p99 = std::thread::scope(|scope| {
        scope.spawn(|| {
            let mut key = 4_000_000usize;
            while !stop.load(Ordering::Relaxed) {
                sys.execute_statement(&format!(
                    "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, \
                     c_acctbal, c_mktsegment) VALUES ({key}, 'customer#{key}', 4, \
                     '20-555-000-1111', 10.5, 'machinery')"
                ))
                .expect("durable insert");
                sys.execute_statement(&format!(
                    "DELETE FROM customer WHERE c_custkey = {key}"
                ))
                .expect("durable delete");
                if key.is_multiple_of(256) {
                    sys.compact("customer");
                }
                key += 1;
                written.fetch_add(1, Ordering::Relaxed);
                // An OLTP-style paced client, not a saturating loop: the
                // metric targets lock-induced reader stalls, and a writer
                // that pegs the CPU measures the kernel scheduler instead
                // (on a single-core host a spinning writer inflates reader
                // p99 by whole timeslices with the locks never contended).
                std::thread::sleep(Duration::from_micros(500));
            }
        });
        let p99 = read_p99(&sys);
        stop.store(true, Ordering::Relaxed);
        p99
    });

    let ratio = busy_p99 as f64 / quiet_p99.max(1) as f64;
    println!(
        "  (writer landed {} durable insert/delete cycles during the busy window; \
         reader p99 is {ratio:.2}x the quiet p99)",
        written.load(Ordering::Relaxed)
    );
    if ratio > 1.5 {
        let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        if cores <= 1 {
            println!(
                "  (NOTE: single-core host — reader and writer timeslice one CPU, so the \
                 ratio floor is scheduler-driven CPU sharing, not lock contention; judge \
                 the 1.5x target on a multi-core host)"
            );
        } else {
            println!(
                "  (WARNING: reader p99 above the 1.5x no-writer target — snapshot reads \
                 should not stall behind the writer)"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&root);
    vec![
        ("mvcc_reader_p99_no_writer", quiet_p99),
        ("mvcc_reader_p99_with_writer", busy_p99),
    ]
}

/// Value of a `--flag N` style argument, if present.
fn arg_value(flag: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

fn main() {
    let check_only = std::env::args().any(|a| a == "--check");
    let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
    // `--mvcc` runs just the mixed-workload snapshot-read cases,
    // print-only — the fast loop for chasing reader-stall regressions.
    if std::env::args().any(|a| a == "--mvcc") {
        for (label, ns) in mvcc_cases() {
            println!("{label:<32} {ns:>12} ns (p99)");
        }
        return;
    }
    // `--governance` runs just the governed-vs-ungoverned overhead pair,
    // print-only — the fast loop for chasing guard-poll regressions.
    if std::env::args().any(|a| a == "--governance") {
        for (label, v) in governance_cases() {
            let unit = if label.ends_with("pct") { "%" } else { "ns/iter" };
            println!("{label:<32} {v:>12} {unit}");
        }
        return;
    }
    if std::env::args().any(|a| a == "--compare") {
        let spec = arg_value("--compare").unwrap_or_default();
        let (a, b) = match spec.split_once(',') {
            Some((a, b)) => (
                Mode::parse(a.trim()).unwrap_or_else(|| panic!("unknown mode {a:?}")),
                Mode::parse(b.trim()).unwrap_or_else(|| panic!("unknown mode {b:?}")),
            ),
            None => (Mode::Scalar, Mode::Batch),
        };
        // `--dirty` leaves uncompacted writes in place so the comparison
        // exercises the encoded-base + delta + tombstone read path.
        if std::env::args().any(|a| a == "--dirty") {
            println!("(--dirty: comparing over an uncompacted post-DML table)");
            dirty_for_compare(&mut sys);
        }
        // `--encoding P` pins one base encoding (plain/dict/rle/for/auto)
        // on the compared tables, so the mode-agreement assertions run over
        // that forced representation (the CI forced-encoding gate).
        if let Some(enc) = arg_value("--encoding") {
            use qpe_htap::storage::col_store::EncodingPolicy;
            let policy = match enc.as_str() {
                "plain" => EncodingPolicy::Plain,
                "dict" => EncodingPolicy::Dict,
                "rle" => EncodingPolicy::Rle,
                "for" => EncodingPolicy::For,
                "auto" => EncodingPolicy::Auto,
                other => panic!("unknown encoding {other:?}"),
            };
            println!("(--encoding {enc}: bases re-encoded under the pinned policy)");
            for t in ["customer", "orders"] {
                assert!(sys.database_mut().set_encoding_policy(t, policy));
            }
        }
        compare_executors(&sys, a, b);
        return;
    }

    // `--threads N` runs the per-engine cases with a parallel AP executor
    // (the TP side and the snapshot's parallel cases are unaffected). The
    // ap_* labels don't encode the thread count, so a threads run is
    // print-only — it must never overwrite the serial baseline.
    let threads_override = arg_value("--threads").and_then(|v| v.parse::<usize>().ok());
    let check_only = check_only || threads_override.is_some();
    if let Some(t) = threads_override {
        println!("(--threads {t}: print-only, BENCH_exec.json untouched)");
        sys.set_ap_threads(t);
    }

    let mut entries = Vec::new();
    for (name, sql) in CASES {
        for engine in [EngineKind::Tp, EngineKind::Ap] {
            let label = format!("{}_{name}", engine.as_str().to_lowercase());
            let ns = time_case(&sys, sql, engine);
            println!("{label:<24} {ns:>12} ns/iter");
            entries.push((label, ns));
        }
    }

    for (label, ns) in write_path_cases() {
        println!("{label:<24} {ns:>12} ns/iter");
        entries.push((label.to_string(), ns));
    }

    for (label, qps) in session_cases() {
        println!("{label:<28} {qps:>12} q/s");
        entries.push((label.to_string(), qps));
    }

    for (label, v) in durability_cases() {
        let unit = if label.contains("qps") { "q/s" } else { "ns" };
        println!("{label:<36} {v:>12} {unit}");
        entries.push((label.to_string(), v));
    }

    for (label, ns) in mvcc_cases() {
        println!("{label:<32} {ns:>12} ns (p99)");
        entries.push((label.to_string(), ns));
    }

    for (label, ns) in pruning_cases() {
        println!("{label:<32} {ns:>12} ns/iter");
        entries.push((label, ns));
    }

    for (label, ns) in encoding_cases() {
        println!("{label:<32} {ns:>12} ns/iter");
        entries.push((label, ns));
    }

    for (label, ns) in parallel_cases() {
        println!("{label:<24} {ns:>12} ns/iter");
        entries.push((label, ns));
    }

    for (label, v) in governance_cases() {
        let unit = if label.ends_with("pct") { "%" } else { "ns/iter" };
        println!("{label:<32} {v:>12} {unit}");
        entries.push((label, v));
    }

    // Merge-preserve: overlay this run's entries onto whatever is already
    // in BENCH_exec.json, so keys written by other recorders (the server
    // loadgen's qps/latency entries) survive a snapshot refresh.
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_exec.json");
    let mut obj = match std::fs::read_to_string(&path)
        .ok()
        .and_then(|s| serde_json::from_str::<serde_json::Value>(&s).ok())
    {
        Some(serde_json::Value::Object(existing)) => existing,
        _ => serde_json::Map::new(),
    };
    for (label, ns) in &entries {
        obj.insert(label.clone(), serde_json::Value::from(*ns));
    }
    let json = serde_json::to_string_pretty(&serde_json::Value::Object(obj))
        .expect("snapshot serializes");
    if check_only {
        println!("{json}");
        return;
    }
    std::fs::write(&path, json + "\n").expect("writes BENCH_exec.json");
    println!("wrote {}", path.display());
}
