//! Perf-trajectory snapshot: times the read cases from `engine_execution`
//! plus the write-path / delta-read cases with `std::time::Instant` and
//! writes `BENCH_exec.json` (median ns per case) at the repository root, so
//! successive PRs can compare executor performance against a checked-in
//! baseline.
//!
//! Write-path cases:
//! * `dml_insert_delete_compact` — one INSERT + targeted DELETE + compact
//!   per iteration (steady-state: the table returns to baseline each time);
//! * `mixed_90_10` — a serving loop of 9 TP point reads per write cycle;
//! * `ap_scan_50pct_delta` — an AP aggregate scan over a table whose live
//!   rows are 50% delta-resident (the freshness-read cost, pre-compaction).
//!
//! ```sh
//! cargo run --release --bin bench_snapshot              # print + write
//! cargo run --release --bin bench_snapshot -- --check   # print only
//! cargo run --release --bin bench_snapshot -- --compare # AP scalar-vs-batch
//! ```

use qpe_htap::engine::{EngineKind, HtapSystem};
use qpe_htap::exec::{execute_scalar, execute_vectorized};
use qpe_htap::opt::{ap, PlannerCtx};
use qpe_htap::tpch::TpchConfig;
use std::hint::black_box;
use std::time::Instant;

/// The same cases as `benches/engine_execution.rs`.
const CASES: [(&str, &str); 3] = [
    ("point_lookup", "SELECT c_name FROM customer WHERE c_custkey = 42"),
    (
        "join_2way",
        "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
    ),
    (
        "topn_indexed",
        "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10",
    ),
];

const SAMPLES: usize = 15;

fn median_ns(mut samples: Vec<f64>) -> u64 {
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[samples.len() / 2] as u64
}

fn time_case(sys: &HtapSystem, sql: &str, engine: EngineKind) -> u64 {
    let bound = sys.bind(sql).expect("binds");
    // Warm up and estimate per-iteration cost.
    let warm = Instant::now();
    let mut warm_iters = 0u64;
    while warm.elapsed().as_millis() < 100 || warm_iters < 3 {
        black_box(sys.run_engine(black_box(&bound), engine).expect("runs"));
        warm_iters += 1;
    }
    let per_iter = warm.elapsed().as_nanos() as f64 / warm_iters as f64;
    // ~20ms of measurement per sample, at least one iteration.
    let iters = ((20e6 / per_iter.max(1.0)) as u64).max(1);
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            black_box(sys.run_engine(black_box(&bound), engine).expect("runs"));
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    median_ns(samples)
}

/// Times one closure with the shared warm-up/median protocol.
fn time_ns(mut f: impl FnMut()) -> u64 {
    let warm = Instant::now();
    let mut warm_iters = 0u64;
    while warm.elapsed().as_millis() < 100 || warm_iters < 3 {
        f();
        warm_iters += 1;
    }
    let per_iter = warm.elapsed().as_nanos() as f64 / warm_iters as f64;
    let iters = ((20e6 / per_iter.max(1.0)) as u64).max(1);
    let mut samples = Vec::with_capacity(SAMPLES);
    for _ in 0..SAMPLES {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    median_ns(samples)
}

/// AP-plan execution: row interpreter vs. batch executor, side by side.
fn compare_executors(sys: &HtapSystem) {
    let db = sys.database();
    for (name, sql) in CASES {
        let bound = sys.bind(sql).expect("binds");
        let ctx = PlannerCtx::new(&bound, db.stats(), db.catalog());
        let plan = ap::plan(&ctx).expect("ap plan");
        let scalar = time_ns(|| {
            black_box(execute_scalar(black_box(&plan), &bound, db, EngineKind::Ap).unwrap());
        });
        let batch = time_ns(|| {
            black_box(execute_vectorized(black_box(&plan), &bound, db).unwrap());
        });
        println!(
            "ap_{name:<20} scalar {scalar:>10} ns   batch {batch:>10} ns   speedup {:.2}x",
            scalar as f64 / batch.max(1) as f64
        );
    }
}

const INSERT_SQL: &str = "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, \
     c_acctbal, c_mktsegment) VALUES (900001, 'customer#900001', 4, '20-555-000-1111', \
     1234.56, 'machinery')";
const DELETE_SQL: &str = "DELETE FROM customer WHERE c_custkey = 900001";

/// Times the write-path and delta-read cases.
fn write_path_cases() -> Vec<(&'static str, u64)> {
    let mut out = Vec::new();

    // Steady-state write cycle: each iteration inserts one row, deletes it
    // through the PK index, and compacts both formats back to baseline.
    let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
    let ns = time_ns(|| {
        black_box(sys.execute_sql(INSERT_SQL).expect("insert"));
        black_box(sys.execute_sql(DELETE_SQL).expect("delete"));
        sys.database_mut().compact_table("customer");
    });
    out.push(("dml_insert_delete_compact", ns));

    // 90/10 serving mix: 9 TP point reads per write cycle.
    let point = sys
        .bind("SELECT c_name FROM customer WHERE c_custkey = 42")
        .expect("binds");
    let ns = time_ns(|| {
        for _ in 0..9 {
            black_box(sys.run_engine(black_box(&point), EngineKind::Tp).expect("read"));
        }
        black_box(sys.execute_sql(INSERT_SQL).expect("insert"));
        black_box(sys.execute_sql(DELETE_SQL).expect("delete"));
        sys.database_mut().compact_table("customer");
    });
    out.push(("mixed_90_10", ns));

    // AP scan over a half-delta table: double `customer` with uncompacted
    // inserts, then time the delta-aware aggregate scan (read-only, so the
    // 50% delta fraction holds for every sample).
    let mut dirty = HtapSystem::new(&TpchConfig::with_scale(0.002));
    let base_rows = dirty
        .database()
        .stored_table("customer")
        .expect("customer exists")
        .row_count();
    let mut values = Vec::with_capacity(base_rows);
    for i in 0..base_rows {
        values.push(format!(
            "({}, 'customer#delta{i}', {}, '20-000-000-0000', {}.5, 'machinery')",
            910_000 + i,
            i % 25,
            i % 5000
        ));
    }
    let bulk = format!(
        "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
         c_mktsegment) VALUES {}",
        values.join(", ")
    );
    dirty.execute_sql(&bulk).expect("bulk insert");
    let fresh = dirty.freshness("customer").expect("freshness");
    assert_eq!(fresh.delta_rows, base_rows, "half the live rows sit in the delta");
    let agg = dirty
        .bind("SELECT COUNT(*), SUM(c_acctbal) FROM customer WHERE c_mktsegment = 'machinery'")
        .expect("binds");
    let ns = time_ns(|| {
        black_box(dirty.run_engine(black_box(&agg), EngineKind::Ap).expect("scan"));
    });
    out.push(("ap_scan_50pct_delta", ns));

    out
}

fn main() {
    let check_only = std::env::args().any(|a| a == "--check");
    let sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
    if std::env::args().any(|a| a == "--compare") {
        compare_executors(&sys);
        return;
    }

    let mut entries = Vec::new();
    for (name, sql) in CASES {
        for engine in [EngineKind::Tp, EngineKind::Ap] {
            let label = format!("{}_{name}", engine.as_str().to_lowercase());
            let ns = time_case(&sys, sql, engine);
            println!("{label:<24} {ns:>12} ns/iter");
            entries.push((label, ns));
        }
    }

    for (label, ns) in write_path_cases() {
        println!("{label:<24} {ns:>12} ns/iter");
        entries.push((label.to_string(), ns));
    }

    let mut obj = serde_json::Map::new();
    for (label, ns) in &entries {
        obj.insert(label.clone(), serde_json::Value::from(*ns));
    }
    let json = serde_json::to_string_pretty(&serde_json::Value::Object(obj))
        .expect("snapshot serializes");
    if check_only {
        println!("{json}");
        return;
    }
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_exec.json");
    std::fs::write(&path, json + "\n").expect("writes BENCH_exec.json");
    println!("wrote {}", path.display());
}
