//! A1 — ablation: tree-CNN pair embeddings vs flat (structure-free) plan
//! features as retrieval keys. DESIGN.md's "task-specific design" claim:
//! router embeddings encode performance distinctions, so retrieval with
//! them should not lose to naive feature bags.

use qpe_bench::{experiment_explainer, header, stats_row, test_set};
use qpe_core::eval::{evaluate, flat_embedding_ablation};

fn main() {
    let explainer = experiment_explainer();
    let tests = test_set(100);

    header("A1: retrieval-key ablation (100 held-out queries, KB=20, K=2)");
    let treecnn = evaluate(&explainer, &tests).expect("tree-CNN evaluation runs");
    println!("{}", stats_row("tree-CNN key", &treecnn));
    let flat = flat_embedding_ablation(&explainer, &tests).expect("flat evaluation runs");
    println!("{}", stats_row("flat-feature", &flat));
    println!(
        "\nshape: the task-specific embedding should match or beat the flat bag \
         (tree-CNN {:.1}% vs flat {:.1}%)",
        treecnn.accuracy() * 100.0,
        flat.accuracy() * 100.0
    );
}
