//! T1 — regenerates Table I: the three-part prompt used in all experiments.

use qpe_bench::header;
use qpe_core::workload::WorkloadGenerator;
use qpe_htap::engine::HtapSystem;
use qpe_htap::tpch::TpchConfig;
use qpe_llm::prompt::{Prompt, PromptConfig, Question};

fn main() {
    let sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
    let sql = WorkloadGenerator::example_1();
    let out = sys.run_sql(sql).expect("example 1 runs");
    let prompt = Prompt {
        config: PromptConfig::default(),
        knowledge: vec![],
        question: Question {
            sql: sql.to_string(),
            tp_plan: out.tp.plan.clone(),
            ap_plan: out.ap.plan.clone(),
            winner: out.winner(),
            freshness: vec![],
        },
        user_context: vec![
            "Beyond the default indexes on primary and foreign keys, an additional \
             index has been created on the c_phone column in the customer table."
                .to_string(),
        ],
    };

    header("Table I: prompt engineering — background information");
    println!("{}", prompt.background());
    header("Table I: prompt engineering — task description");
    println!("{}", prompt.task_description());
    header("Table I: prompt engineering — additional user context");
    println!("{}", prompt.user_context.join(" "));
    header("KNOWLEDGE/QUESTION format (as rendered to the LLM)");
    println!("{}", prompt.render());
}
