//! T3 — regenerates Table III: expert vs our-approach vs DBG-PT
//! explanations for Example 1.

use qpe_bench::{experiment_explainer, header};
use qpe_core::workload::WorkloadGenerator;
use qpe_llm::dbgpt::DbgPt;
use qpe_llm::expert::ExpertOracle;
use qpe_llm::prompt::{Prompt, PromptConfig, Question};

fn main() {
    let explainer = experiment_explainer();
    let sql = WorkloadGenerator::example_1();
    let outcome = explainer.system().run_sql(sql).expect("example 1 runs");

    header("Explanation by experts for Example 1");
    let oracle = ExpertOracle::new(explainer.system().latency_model());
    let (truth, expert_text) = oracle.explain(&outcome);
    println!("{expert_text}");
    println!("\n(primary factor: {:?}; all factors: {:?})", truth.primary, truth.valid);

    header("Explanation by our approach for Example 1");
    let report = explainer.explain_outcome(
        &outcome,
        &["Beyond the default indexes on primary and foreign keys, an additional \
           index has been created on the c_phone column in the customer table."
            .to_string()],
    );
    println!("{}", report.output.text);
    println!(
        "\n(grade: {:?}; retrieved KB entries: {:?})",
        explainer.grade(&outcome, &report.output),
        report.retrieved_ids
    );

    header("Explanation by DBG-PT for Example 1");
    let dbgpt_prompt = Prompt {
        config: PromptConfig {
            include_rag: false,
            ..Default::default()
        },
        knowledge: vec![],
        question: Question {
            sql: sql.to_string(),
            tp_plan: outcome.tp.plan.clone(),
            ap_plan: outcome.ap.plan.clone(),
            winner: outcome.winner(),
            freshness: vec![],
        },
        user_context: vec![
            "An additional index has been created on the c_phone column in the \
             customer table."
                .to_string(),
        ],
    };
    let dbgpt_out = DbgPt::new().explain(&dbgpt_prompt);
    println!("{}", dbgpt_out.text);
    println!(
        "\n(grade: {:?}; cited factors: {:?})",
        explainer.grade(&outcome, &dbgpt_out),
        dbgpt_out.cited
    );
}
