//! T2 — regenerates Table II: TP and AP plans for the paper's Example 1,
//! as EXPLAIN JSON, plus measured latencies (the paper reports TP 5.80s vs
//! AP 310ms on their 100 GB cluster; our substrate reproduces the *shape* —
//! AP wins by a large factor — at laptop scale).

use qpe_bench::header;
use qpe_core::workload::WorkloadGenerator;
use qpe_htap::engine::HtapSystem;
use qpe_htap::latency::format_latency;
use qpe_htap::tpch::TpchConfig;

fn main() {
    // A larger scale factor than the accuracy experiments use: Example 1's
    // TP-vs-AP gap grows with data volume (the paper ran 100 GB), and this
    // is a single-query demo.
    let sys = HtapSystem::new(&TpchConfig::with_scale(0.05));
    let sql = WorkloadGenerator::example_1();
    let out = sys.run_sql(sql).expect("example 1 runs");

    header("Example 1 query");
    println!("{sql}");

    header("Details of TP's plan for Example 1");
    println!(
        "{}",
        serde_json::to_string_pretty(&out.tp.plan.explain_json()).unwrap()
    );

    header("Details of AP's plan for Example 1");
    println!(
        "{}",
        serde_json::to_string_pretty(&out.ap.plan.explain_json()).unwrap()
    );

    header("Execution result");
    println!(
        "TP latency: {}   AP latency: {}   winner: {}   speedup: {:.1}x",
        format_latency(out.tp.latency_ns),
        format_latency(out.ap.latency_ns),
        out.winner(),
        out.speedup()
    );
    println!(
        "(paper, 100GB/6-node cluster: TP 5.80s, AP 310ms, AP wins ~18.7x; \
         the winner and order-of-magnitude gap are the reproduced shape)"
    );
}
