//! End-to-end response-time breakdown (paper §VI-B).
//!
//! The paper decomposes response time into: smart-router encoding (<0.1 ms
//! measured), knowledge-base search (<0.1 ms at 20 entries), LLM thinking
//! (≤2 s) and generation (~10 s). Encoding and search are *measured* wall
//! clock here; the LLM components come from the deterministic timing model.

use qpe_llm::timing::LlmTiming;
use serde::{Deserialize, Serialize};

/// One explanation request's time breakdown, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EndToEndTiming {
    /// Smart-router plan-pair encoding (measured).
    pub encode_ns: u64,
    /// Knowledge-base top-K search (measured).
    pub search_ns: u64,
    /// LLM prompt processing (modeled).
    pub llm_think_ns: u64,
    /// LLM generation (modeled).
    pub llm_generation_ns: u64,
}

impl EndToEndTiming {
    /// Builds a breakdown from measured retrieval times and the LLM model.
    pub fn new(encode_ns: u64, search_ns: u64, llm: LlmTiming) -> Self {
        EndToEndTiming {
            encode_ns,
            search_ns,
            llm_think_ns: llm.think_ns,
            llm_generation_ns: llm.generation_ns,
        }
    }

    /// Total response time.
    pub fn total_ns(&self) -> u64 {
        self.encode_ns + self.search_ns + self.llm_think_ns + self.llm_generation_ns
    }

    /// Fraction of the total spent in retrieval (encode + search); the paper
    /// argues this stays negligible.
    pub fn retrieval_fraction(&self) -> f64 {
        let total = self.total_ns();
        if total == 0 {
            return 0.0;
        }
        (self.encode_ns + self.search_ns) as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_and_fraction() {
        let t = EndToEndTiming::new(50_000, 30_000, LlmTiming::estimate(500, 100));
        assert_eq!(
            t.total_ns(),
            50_000 + 30_000 + t.llm_think_ns + t.llm_generation_ns
        );
        assert!(t.retrieval_fraction() < 0.01, "retrieval should be negligible");
    }

    #[test]
    fn zero_total_fraction_is_zero() {
        let t = EndToEndTiming::new(0, 0, LlmTiming::estimate(0, 0));
        assert_eq!(t.retrieval_fraction(), 0.0);
    }
}
