//! Synthetic workload generation — the paper's §IV query families.
//!
//! The knowledge base and test sets are synthesized over the TPC-H schema
//! from two pattern families the paper names:
//!
//! 1. **Join queries** — multi-way joins "varying in the number of joined
//!    tables, table size, predicate selectivity, and index usage";
//! 2. **Top-N queries** — `ORDER BY` + `LIMIT` (+ sometimes `OFFSET`).
//!
//! Generation is seeded and deterministic; every emitted query binds and
//! executes on both engines.

use qpe_htap::tpch::{MKT_SEGMENTS, NATIONS, ORDER_PRIORITIES, ORDER_STATUS};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Workload generation options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct WorkloadConfig {
    /// RNG seed.
    pub seed: u64,
    /// Fraction of queries from the top-N family (the rest are joins).
    pub top_n_fraction: f64,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            seed: 7,
            top_n_fraction: 0.35,
        }
    }
}

/// Deterministic SQL workload generator.
pub struct WorkloadGenerator {
    rng: StdRng,
    config: WorkloadConfig,
}

impl WorkloadGenerator {
    /// Creates a generator.
    pub fn new(config: WorkloadConfig) -> Self {
        WorkloadGenerator {
            rng: StdRng::seed_from_u64(config.seed),
            config,
        }
    }

    /// Generates `n` queries.
    pub fn generate(&mut self, n: usize) -> Vec<String> {
        (0..n).map(|_| self.next_query()).collect()
    }

    /// Generates the next query.
    pub fn next_query(&mut self) -> String {
        if self.rng.gen_bool(self.config.top_n_fraction) {
            self.top_n_query()
        } else {
            self.join_query()
        }
    }

    /// A join-family query (1–3 tables; the single-table "joins" exercise
    /// index-vs-scan distinctions, which the paper folds into "index usage").
    pub fn join_query(&mut self) -> String {
        match self.rng.gen_range(0..6) {
            0 => self.point_lookup(),
            1 => self.selective_single_table(),
            2 => self.customer_orders_join(),
            3 => self.customer_nation_orders_join(),
            4 => self.orders_lineitem_join(),
            _ => self.supplier_nation_join(),
        }
    }

    /// A top-N-family query.
    pub fn top_n_query(&mut self) -> String {
        let limit = [5u64, 10, 20, 50][self.rng.gen_range(0..4)];
        let offset = match self.rng.gen_range(0..4) {
            0 => 0u64,
            1 => self.rng.gen_range(1..50),
            2 => self.rng.gen_range(100..500),
            _ => self.rng.gen_range(1500..5000),
        };
        let offset_clause = if offset > 0 {
            format!(" OFFSET {offset}")
        } else {
            String::new()
        };
        match self.rng.gen_range(0..4) {
            0 => {
                // Indexed sort key (primary key) — TP's sweet spot, until
                // OFFSET grows.
                format!(
                    "SELECT o_orderkey, o_totalprice FROM orders \
                     ORDER BY o_orderkey{} LIMIT {limit}{offset_clause}",
                    if self.rng.gen_bool(0.5) { " DESC" } else { "" }
                )
            }
            1 => {
                // Unindexed sort key — TP must fully sort.
                format!(
                    "SELECT o_orderkey, o_totalprice FROM orders \
                     WHERE o_orderstatus = '{}' \
                     ORDER BY o_totalprice DESC LIMIT {limit}{offset_clause}",
                    self.status()
                )
            }
            2 => format!(
                "SELECT c_custkey, c_acctbal FROM customer \
                 ORDER BY c_acctbal DESC LIMIT {limit}{offset_clause}"
            ),
            _ => format!(
                "SELECT l_orderkey, l_extendedprice FROM lineitem \
                 WHERE l_quantity >= {} \
                 ORDER BY l_extendedprice DESC LIMIT {limit}{offset_clause}",
                self.rng.gen_range(1..40)
            ),
        }
    }

    fn point_lookup(&mut self) -> String {
        match self.rng.gen_range(0..3) {
            0 => format!(
                "SELECT c_name, c_acctbal FROM customer WHERE c_custkey = {}",
                self.rng.gen_range(1..200)
            ),
            1 => format!(
                "SELECT o_totalprice, o_orderstatus FROM orders WHERE o_orderkey = {}",
                self.rng.gen_range(1..2000)
            ),
            _ => format!(
                "SELECT s_name FROM supplier WHERE s_suppkey = {}",
                self.rng.gen_range(1..20)
            ),
        }
    }

    fn selective_single_table(&mut self) -> String {
        match self.rng.gen_range(0..4) {
            0 => format!(
                "SELECT COUNT(*) FROM customer WHERE c_mktsegment = '{}'",
                self.segment()
            ),
            1 => format!(
                "SELECT COUNT(*) FROM customer \
                 WHERE SUBSTRING(c_phone, 1, 2) IN ({}) AND c_mktsegment = '{}'",
                self.phone_prefixes(),
                self.segment()
            ),
            2 => format!(
                "SELECT COUNT(*), AVG(o_totalprice) FROM orders \
                 WHERE o_orderstatus = '{}' AND o_totalprice > {}",
                self.status(),
                self.rng.gen_range(1000..400_000)
            ),
            _ => format!(
                "SELECT o_orderpriority, COUNT(*) FROM orders \
                 WHERE o_orderstatus = '{}' GROUP BY o_orderpriority",
                self.status()
            ),
        }
    }

    fn customer_orders_join(&mut self) -> String {
        match self.rng.gen_range(0..3) {
            0 => format!(
                "SELECT COUNT(*) FROM customer, orders \
                 WHERE o_custkey = c_custkey AND c_mktsegment = '{}'",
                self.segment()
            ),
            1 => format!(
                "SELECT COUNT(*) FROM orders, customer \
                 WHERE o_custkey = c_custkey AND o_orderkey < {}",
                self.rng.gen_range(20..200)
            ),
            _ => format!(
                "SELECT COUNT(*), SUM(o_totalprice) FROM customer, orders \
                 WHERE o_custkey = c_custkey AND o_orderstatus = '{}' \
                 AND c_acctbal > {}",
                self.status(),
                self.rng.gen_range(-500..5000)
            ),
        }
    }

    fn customer_nation_orders_join(&mut self) -> String {
        format!(
            "SELECT COUNT(*) FROM customer, nation, orders \
             WHERE SUBSTRING(c_phone, 1, 2) IN ({}) \
             AND c_mktsegment = '{}' AND n_name = '{}' \
             AND o_orderstatus = '{}' \
             AND o_custkey = c_custkey AND n_nationkey = c_nationkey",
            self.phone_prefixes(),
            self.segment(),
            self.nation(),
            self.status()
        )
    }

    fn orders_lineitem_join(&mut self) -> String {
        match self.rng.gen_range(0..2) {
            0 => format!(
                "SELECT COUNT(*), SUM(l_extendedprice) FROM orders, lineitem \
                 WHERE l_orderkey = o_orderkey AND o_orderstatus = '{}' \
                 AND l_discount > {}",
                self.status(),
                (self.rng.gen_range(0..8) as f64) / 100.0
            ),
            _ => format!(
                "SELECT COUNT(*) FROM orders, lineitem \
                 WHERE l_orderkey = o_orderkey AND o_orderkey < {}",
                self.rng.gen_range(20..150)
            ),
        }
    }

    fn supplier_nation_join(&mut self) -> String {
        format!(
            "SELECT COUNT(*) FROM supplier, nation \
             WHERE s_nationkey = n_nationkey AND n_name = '{}' AND s_acctbal > {}",
            self.nation(),
            self.rng.gen_range(-500..5000)
        )
    }

    fn segment(&mut self) -> &'static str {
        MKT_SEGMENTS[self.rng.gen_range(0..MKT_SEGMENTS.len())]
    }

    fn status(&mut self) -> &'static str {
        ORDER_STATUS[self.rng.gen_range(0..ORDER_STATUS.len())]
    }

    fn nation(&mut self) -> &'static str {
        NATIONS[self.rng.gen_range(0..NATIONS.len())]
    }

    fn phone_prefixes(&mut self) -> String {
        let k = self.rng.gen_range(2..8);
        let prefixes: Vec<String> = (0..k)
            .map(|_| format!("'{}'", self.rng.gen_range(10..45)))
            .collect();
        prefixes.join(", ")
    }

    /// The paper's Example 1, verbatim (used by the demo experiments).
    pub fn example_1() -> &'static str {
        "SELECT COUNT(*) FROM customer, nation, orders \
         WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40', '22', '30', '39', '42', '21') \
         AND c_mktsegment = 'machinery' \
         AND n_name = 'egypt' AND o_orderstatus = 'p' \
         AND o_custkey = c_custkey \
         AND n_nationkey = c_nationkey"
    }

    /// A stable reference to the priority list (exercised in tests so the
    /// re-export stays wired).
    pub fn priorities() -> &'static [&'static str] {
        &ORDER_PRIORITIES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_htap::engine::HtapSystem;
    use qpe_htap::tpch::TpchConfig;

    #[test]
    fn generation_is_deterministic() {
        let mut a = WorkloadGenerator::new(WorkloadConfig::default());
        let mut b = WorkloadGenerator::new(WorkloadConfig::default());
        assert_eq!(a.generate(20), b.generate(20));
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = WorkloadGenerator::new(WorkloadConfig { seed: 1, ..Default::default() });
        let mut b = WorkloadGenerator::new(WorkloadConfig { seed: 2, ..Default::default() });
        assert_ne!(a.generate(20), b.generate(20));
    }

    #[test]
    fn every_generated_query_executes_on_both_engines() {
        let sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
        let mut gen = WorkloadGenerator::new(WorkloadConfig::default());
        for sql in gen.generate(40) {
            let out = sys.run_sql(&sql);
            assert!(out.is_ok(), "query failed: {sql}\n{:?}", out.err().map(|e| e.to_string()));
        }
    }

    #[test]
    fn top_n_fraction_is_respected_roughly() {
        let mut gen = WorkloadGenerator::new(WorkloadConfig {
            seed: 3,
            top_n_fraction: 1.0,
        });
        for sql in gen.generate(10) {
            assert!(sql.contains("LIMIT"), "expected top-N: {sql}");
        }
        let mut gen0 = WorkloadGenerator::new(WorkloadConfig {
            seed: 3,
            top_n_fraction: 0.0,
        });
        let joins = gen0.generate(10);
        assert!(joins.iter().filter(|q| q.contains("LIMIT")).count() == 0);
    }

    #[test]
    fn example_1_matches_paper_text() {
        let sql = WorkloadGenerator::example_1();
        assert!(sql.contains("SUBSTRING(c_phone, 1, 2)"));
        assert!(sql.contains("'machinery'"));
        assert!(sql.contains("'egypt'"));
        let sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
        assert!(sys.run_sql(sql).is_ok());
    }

    #[test]
    fn workload_produces_both_winners() {
        let sys = HtapSystem::new(&TpchConfig::with_scale(0.005));
        let mut gen = WorkloadGenerator::new(WorkloadConfig::default());
        let mut tp = 0;
        let mut ap = 0;
        for sql in gen.generate(30) {
            match sys.run_sql(&sql).unwrap().winner() {
                qpe_htap::engine::EngineKind::Tp => tp += 1,
                qpe_htap::engine::EngineKind::Ap => ap += 1,
            }
        }
        assert!(tp > 0, "no TP wins in workload");
        assert!(ap > 0, "no AP wins in workload");
    }

    #[test]
    fn priorities_reference() {
        assert_eq!(WorkloadGenerator::priorities().len(), 5);
    }
}
