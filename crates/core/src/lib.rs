//! qpe-core: the end-to-end query-performance-explanation pipeline.
//!
//! This crate assembles the paper's full framework (Figure 1) from the
//! substrate crates:
//!
//! ```text
//!             ┌──────────────── HTAP system (qpe-htap) ───────────────┐
//!   SQL ────▶ │ bind → TP plan + AP plan → execute both → latencies   │
//!             └──────┬──────────────────────────────┬─────────────────┘
//!                    │ plans                        │ outcomes
//!             ┌──────▼──────┐                ┌──────▼──────────┐
//!             │ smart router│ 16-dim pair    │ expert oracle   │
//!             │ (qpe-treecnn)│──embeddings──▶│ (qpe-llm)       │
//!             └──────┬──────┘                └──────┬──────────┘
//!                    │ query key                    │ KB entries
//!             ┌──────▼───────────────────────────────▼─────┐
//!             │ knowledge base (qpe-vectordb), top-K search │
//!             └──────┬──────────────────────────────────────┘
//!                    │ KNOWLEDGE + QUESTION prompt (Table I)
//!             ┌──────▼──────────┐
//!             │ simulated LLM   │──▶ explanation / None
//!             └─────────────────┘
//! ```
//!
//! [`explainer::Explainer`] is the user-facing entry point;
//! [`workload`] synthesizes the paper's two query families (joins, top-N);
//! [`eval`] reproduces the §VI-B accuracy experiments;
//! [`participant`] simulates the §VI-C user study.

pub mod eval;
pub mod explainer;
pub mod participant;
pub mod timing;
pub mod workload;

pub use explainer::{ExplainReport, Explainer, PipelineConfig};
pub use timing::EndToEndTiming;
pub use workload::{WorkloadConfig, WorkloadGenerator};
