//! Simulated participant study (paper §VI-C).
//!
//! The paper measured ten-ish humans split into two groups reading Example
//! 1's plan pair with or without the LLM explanation. We substitute a
//! documented *reader model* (see DESIGN.md):
//!
//! * reading speed: ~220 tokens/minute for technical material;
//! * analysis overhead grows super-linearly with artifact difficulty
//!   (`0.21 · d^1.6` minutes), where raw EXPLAIN JSON is difficulty ≈ 8.5/10
//!   and LLM prose ≈ 3/10 — the paper's reported averages;
//! * without the explanation a reader identifies the right reason with
//!   probability 0.6 (the paper's 60%); with it, comprehension is reliable,
//!   and initially-wrong readers correct themselves after reading it;
//! * per-participant noise is seeded and deterministic.
//!
//! The *shape* this reproduces — explanation halves-plus the time, lifts
//! correctness to 100%, and slashes perceived difficulty — follows from the
//! model's structure; the constants are calibrated to the paper's numbers.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Reading speed in tokens per minute.
pub const TOKENS_PER_MINUTE: f64 = 220.0;
/// Analysis-overhead coefficient (minutes).
pub const ANALYSIS_COEFF: f64 = 0.21;
/// Analysis-overhead exponent.
pub const ANALYSIS_EXP: f64 = 1.6;
/// Perceived difficulty of raw plan JSON (0–10).
pub const PLAN_DIFFICULTY: f64 = 8.5;
/// Perceived difficulty of the LLM explanation (0–10).
pub const LLM_DIFFICULTY: f64 = 3.0;
/// Probability of identifying the right reason from plans alone.
pub const UNAIDED_CORRECT_P: f64 = 0.6;

/// Study configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyConfig {
    /// Participants per group.
    pub group_size: usize,
    /// RNG seed.
    pub seed: u64,
    /// Token count of the plan-pair JSON shown to participants.
    pub plan_tokens: usize,
    /// Token count of the LLM explanation.
    pub llm_tokens: usize,
}

impl Default for StudyConfig {
    fn default() -> Self {
        StudyConfig {
            group_size: 10,
            seed: 2026,
            plan_tokens: 420,
            llm_tokens: 170,
        }
    }
}

/// Aggregated results for one group.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroupResult {
    /// Mean minutes until self-reported full understanding.
    pub avg_minutes: f64,
    /// Fraction whose initial interpretation was correct.
    pub initial_correct_rate: f64,
    /// Fraction correct after (optionally) reading the LLM explanation.
    pub final_correct_rate: f64,
    /// Mean difficulty rating of the plan details (0–10).
    pub avg_plan_difficulty: f64,
    /// Mean difficulty rating of the LLM explanation (0–10).
    pub avg_llm_difficulty: f64,
}

/// Full study outcome.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StudyResult {
    /// Group 1: received plans + LLM explanation from the start.
    pub with_llm_first: GroupResult,
    /// Group 2: plans only, explanation afterwards.
    pub plans_only_first: GroupResult,
}

/// Runs the simulated study.
pub fn run_study(config: &StudyConfig) -> StudyResult {
    let mut rng = StdRng::seed_from_u64(config.seed);

    // Group 1: plans are skimmed (the explanation carries comprehension);
    // analysis effort tracks the explanation's difficulty.
    let mut g1_minutes = Vec::new();
    let mut g1_plan_diff = Vec::new();
    let mut g1_llm_diff = Vec::new();
    for _ in 0..config.group_size {
        let speed_factor: f64 = rng.gen_range(0.85..1.15);
        let skim = 0.3 * config.plan_tokens as f64 / TOKENS_PER_MINUTE;
        let read = config.llm_tokens as f64 / TOKENS_PER_MINUTE;
        let analysis = ANALYSIS_COEFF * LLM_DIFFICULTY.powf(ANALYSIS_EXP);
        g1_minutes.push((skim + read + analysis) * speed_factor);
        g1_plan_diff.push(clamp10(PLAN_DIFFICULTY + rng.gen_range(-0.8..0.8)));
        g1_llm_diff.push(clamp10(LLM_DIFFICULTY + rng.gen_range(-0.7..0.7)));
    }

    // Group 2: full plan reading + high-difficulty analysis.
    let mut g2_minutes = Vec::new();
    let mut g2_initial_correct = 0usize;
    let mut g2_plan_diff = Vec::new();
    let mut g2_llm_diff = Vec::new();
    for _ in 0..config.group_size {
        let speed_factor: f64 = rng.gen_range(0.85..1.15);
        let read = config.plan_tokens as f64 / TOKENS_PER_MINUTE;
        let analysis = ANALYSIS_COEFF * PLAN_DIFFICULTY.powf(ANALYSIS_EXP);
        g2_minutes.push((read + analysis) * speed_factor);
        if rng.gen_bool(UNAIDED_CORRECT_P) {
            g2_initial_correct += 1;
        }
        g2_plan_diff.push(clamp10(PLAN_DIFFICULTY + rng.gen_range(-0.8..0.8)));
        g2_llm_diff.push(clamp10(LLM_DIFFICULTY + rng.gen_range(-0.7..0.7)));
    }

    StudyResult {
        with_llm_first: GroupResult {
            avg_minutes: mean(&g1_minutes),
            initial_correct_rate: 1.0,
            final_correct_rate: 1.0,
            avg_plan_difficulty: mean(&g1_plan_diff),
            avg_llm_difficulty: mean(&g1_llm_diff),
        },
        plans_only_first: GroupResult {
            avg_minutes: mean(&g2_minutes),
            initial_correct_rate: g2_initial_correct as f64 / config.group_size as f64,
            // After reviewing the explanation, wrong readers corrected
            // themselves (paper: "they were able to correct their
            // understanding").
            final_correct_rate: 1.0,
            avg_plan_difficulty: mean(&g2_plan_diff),
            avg_llm_difficulty: mean(&g2_llm_diff),
        },
    }
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

fn clamp10(x: f64) -> f64 {
    x.clamp(0.0, 10.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shapes_match_the_paper() {
        let r = run_study(&StudyConfig::default());
        // Explanation cuts comprehension time by more than half.
        assert!(
            r.with_llm_first.avg_minutes * 2.0 < r.plans_only_first.avg_minutes,
            "{} vs {}",
            r.with_llm_first.avg_minutes,
            r.plans_only_first.avg_minutes
        );
        // Plans-only group lands near 8.2 minutes, LLM group near 3.5.
        assert!((6.0..11.0).contains(&r.plans_only_first.avg_minutes));
        assert!((2.0..5.0).contains(&r.with_llm_first.avg_minutes));
        // Correctness: ~60% unaided, 100% with/after the explanation.
        assert!((0.3..0.9).contains(&r.plans_only_first.initial_correct_rate));
        assert_eq!(r.plans_only_first.final_correct_rate, 1.0);
        assert_eq!(r.with_llm_first.final_correct_rate, 1.0);
        // Difficulty: plans ≈ 8.5, explanation ≈ 3.
        assert!((7.5..9.5).contains(&r.plans_only_first.avg_plan_difficulty));
        assert!((2.0..4.0).contains(&r.plans_only_first.avg_llm_difficulty));
    }

    #[test]
    fn study_is_deterministic() {
        let a = run_study(&StudyConfig::default());
        let b = run_study(&StudyConfig::default());
        assert_eq!(a.with_llm_first.avg_minutes, b.with_llm_first.avg_minutes);
        assert_eq!(
            a.plans_only_first.initial_correct_rate,
            b.plans_only_first.initial_correct_rate
        );
    }

    #[test]
    fn different_seeds_vary_but_stay_in_shape() {
        let r1 = run_study(&StudyConfig { seed: 1, ..Default::default() });
        let r2 = run_study(&StudyConfig { seed: 2, ..Default::default() });
        assert_ne!(
            r1.plans_only_first.avg_minutes,
            r2.plans_only_first.avg_minutes
        );
        for r in [r1, r2] {
            assert!(r.with_llm_first.avg_minutes < r.plans_only_first.avg_minutes);
        }
    }

    #[test]
    fn bigger_artifacts_take_longer() {
        let small = run_study(&StudyConfig::default());
        let big = run_study(&StudyConfig {
            plan_tokens: 2000,
            ..Default::default()
        });
        assert!(big.plans_only_first.avg_minutes > small.plans_only_first.avg_minutes);
    }
}
