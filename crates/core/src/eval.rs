//! Evaluation harness — the §VI-B experiments and the DESIGN.md ablations.

use crate::explainer::Explainer;
use qpe_htap::engine::{HtapError, QueryOutcome};
use qpe_llm::dbgpt::DbgPt;
use qpe_llm::expert::ExpertOracle;
use qpe_llm::factors::FactorKind;
use qpe_llm::grader::{Grade, GradeStats, Grader};
use qpe_llm::knowledge::KnowledgeEntry;
use qpe_llm::prompt::{Prompt, PromptConfig, Question};
use qpe_treecnn::features::flat_summary;
use qpe_vectordb::{KnowledgeStore, Metric, SearchBackend};
use serde::{Deserialize, Serialize};

/// Accuracy results for one configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EvalRow {
    /// Configuration label (e.g. `K=2`).
    pub label: String,
    /// Grade distribution.
    pub stats: GradeStats,
}

/// Runs the test queries through the explainer and grades every output.
pub fn evaluate(
    explainer: &Explainer,
    test_sqls: &[String],
) -> Result<GradeStats, HtapError> {
    let mut stats = GradeStats::default();
    for sql in test_sqls {
        let outcome = explainer.system().run_sql(sql)?;
        let report = explainer.explain_outcome(&outcome, &[]);
        stats.record(explainer.grade(&outcome, &report.output));
    }
    Ok(stats)
}

/// The §VI-B retrieval-depth sweep (K = 1..5).
pub fn k_sweep(
    explainer: &mut Explainer,
    test_sqls: &[String],
    ks: &[usize],
) -> Result<Vec<EvalRow>, HtapError> {
    let original_k = explainer.config().top_k;
    let mut rows = Vec::with_capacity(ks.len());
    for &k in ks {
        explainer.set_top_k(k);
        let stats = evaluate(explainer, test_sqls)?;
        rows.push(EvalRow {
            label: format!("K={k}"),
            stats,
        });
    }
    explainer.set_top_k(original_k);
    Ok(rows)
}

/// DBG-PT failure-mode categories (§VI-D).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DbgPtFailureBreakdown {
    /// Grade distribution of DBG-PT outputs.
    pub stats: GradeStats,
    /// Fundamental errors: cited index benefit that the ground truth
    /// contradicts (e.g. SUBSTRING-disabled index).
    pub index_misinterpretation: usize,
    /// Overemphasis: led with columnar storage when the true primary factor
    /// was something else.
    pub columnar_overemphasis: usize,
    /// Ignoring limitations: fell back to cross-engine cost comparison.
    pub cost_comparison_used: usize,
    /// Lack of relative-value context: the true primary factor was an
    /// offset/fixed-overhead magnitude judgment DBG-PT never cites.
    pub missed_relative_value: usize,
}

/// Evaluates the DBG-PT baseline on the same test set and categorizes its
/// errors into the paper's four failure modes.
pub fn dbgpt_eval(
    explainer: &Explainer,
    test_sqls: &[String],
    prompt_config: &PromptConfig,
) -> Result<DbgPtFailureBreakdown, HtapError> {
    let oracle = ExpertOracle::new(explainer.system().latency_model());
    let grader = Grader::new();
    let baseline = DbgPt::new();
    let mut out = DbgPtFailureBreakdown::default();
    for sql in test_sqls {
        let outcome = explainer.system().run_sql(sql)?;
        let truth = oracle.ground_truth(&outcome);
        let prompt = Prompt {
            config: PromptConfig {
                include_rag: false,
                ..prompt_config.clone()
            },
            knowledge: vec![],
            question: Question {
                sql: outcome.sql.clone(),
                tp_plan: outcome.tp.plan.clone(),
                ap_plan: outcome.ap.plan.clone(),
                winner: outcome.winner(),
                freshness: vec![],
            },
            user_context: vec![],
        };
        let output = baseline.explain(&prompt);
        out.stats.record(grader.grade(&output, &truth));

        if output
            .cited
            .iter()
            .any(|f| *f == FactorKind::IndexLookupAdvantage && truth.contradicted.contains(f))
        {
            out.index_misinterpretation += 1;
        }
        if output.primary == Some(FactorKind::ColumnarScanAdvantage)
            && truth.primary != FactorKind::ColumnarScanAdvantage
        {
            out.columnar_overemphasis += 1;
        }
        if output.text.contains("total cost estimate") {
            out.cost_comparison_used += 1;
        }
        if matches!(
            truth.primary,
            FactorKind::LargeOffsetPenalty | FactorKind::ApFixedOverhead
        ) && !output.cited.contains(&truth.primary)
        {
            out.missed_relative_value += 1;
        }
    }
    Ok(out)
}

/// Ablation A1: retrieve with flat (structure-free) plan-feature keys
/// instead of tree-CNN embeddings. Builds a parallel KB over the same
/// entries and evaluates the same test set.
pub fn flat_embedding_ablation(
    explainer: &Explainer,
    test_sqls: &[String],
) -> Result<GradeStats, HtapError> {
    // Parallel KB keyed by concatenated flat summaries.
    let mut kb: KnowledgeStore<KnowledgeEntry> =
        KnowledgeStore::new(Metric::Euclidean, SearchBackend::Exact);
    let oracle = ExpertOracle::new(explainer.system().latency_model());
    for o in explainer.kb_outcomes() {
        let mut key = flat_summary(&o.tp.plan);
        key.extend(flat_summary(&o.ap.plan));
        kb.insert(key, oracle.knowledge_entry(o));
    }
    let llm = qpe_llm::generator::SimulatedLlm::new();
    let grader = Grader::new();
    let k = explainer.config().top_k;
    let mut stats = GradeStats::default();
    for sql in test_sqls {
        let outcome = explainer.system().run_sql(sql)?;
        let mut key = flat_summary(&outcome.tp.plan);
        key.extend(flat_summary(&outcome.ap.plan));
        let hits = kb.search(&key, k);
        let prompt = Prompt {
            config: explainer.config().prompt.clone(),
            knowledge: hits.iter().map(|h| (h.value.clone(), h.distance)).collect(),
            question: Question {
                sql: outcome.sql.clone(),
                tp_plan: outcome.tp.plan.clone(),
                ap_plan: outcome.ap.plan.clone(),
                winner: outcome.winner(),
                freshness: vec![],
            },
            user_context: vec![],
        };
        let output = llm.explain(&prompt);
        let truth = oracle.ground_truth(&outcome);
        stats.record(grader.grade(&output, &truth));
    }
    Ok(stats)
}

/// Ablation A2: accuracy as the KB grows. `sizes` must be ascending; the KB
/// prefix of each size is used (entries are stratified, so prefixes stay
/// representative).
pub fn kb_size_sweep(
    explainer: &Explainer,
    extra_outcomes: &[QueryOutcome],
    test_sqls: &[String],
    sizes: &[usize],
) -> Result<Vec<EvalRow>, HtapError> {
    let oracle = ExpertOracle::new(explainer.system().latency_model());
    let llm = qpe_llm::generator::SimulatedLlm::new();
    let grader = Grader::new();
    let k = explainer.config().top_k;

    // Pool = current KB outcomes then extras.
    let pool: Vec<&QueryOutcome> = explainer
        .kb_outcomes()
        .iter()
        .chain(extra_outcomes.iter())
        .collect();

    let mut rows = Vec::new();
    for &size in sizes {
        let size = size.min(pool.len());
        let mut kb: KnowledgeStore<KnowledgeEntry> =
            KnowledgeStore::new(Metric::Euclidean, SearchBackend::Exact);
        for o in pool.iter().take(size) {
            let key = explainer.router().embed_pair(&o.tp.plan, &o.ap.plan);
            kb.insert(key, oracle.knowledge_entry(o));
        }
        let mut stats = GradeStats::default();
        for sql in test_sqls {
            let outcome = explainer.system().run_sql(sql)?;
            let key = explainer
                .router()
                .embed_pair(&outcome.tp.plan, &outcome.ap.plan);
            let hits = kb.search(&key, k);
            let prompt = Prompt {
                config: explainer.config().prompt.clone(),
                knowledge: hits.iter().map(|h| (h.value.clone(), h.distance)).collect(),
                question: Question {
                    sql: outcome.sql.clone(),
                    tp_plan: outcome.tp.plan.clone(),
                    ap_plan: outcome.ap.plan.clone(),
                    winner: outcome.winner(),
                    freshness: vec![],
                },
                user_context: vec![],
            };
            let output = llm.explain(&prompt);
            let truth = oracle.ground_truth(&outcome);
            stats.record(grader.grade(&output, &truth));
        }
        rows.push(EvalRow {
            label: format!("KB={size}"),
            stats,
        });
    }
    Ok(rows)
}

/// Smart-router accuracy on a held-out workload (E5).
pub fn router_accuracy(explainer: &Explainer, test_sqls: &[String]) -> Result<f64, HtapError> {
    let mut correct = 0usize;
    for sql in test_sqls {
        let outcome = explainer.system().run_sql(sql)?;
        let (predicted, _) = explainer
            .router()
            .route(&outcome.tp.plan, &outcome.ap.plan);
        if predicted == outcome.winner() {
            correct += 1;
        }
    }
    Ok(correct as f64 / test_sqls.len().max(1) as f64)
}

/// Records when outputs graded `Wrong`/`None` would be corrected by experts
/// and fed back; returns grades before and after one feedback round (the
/// paper's "corrections are incorporated for future retrieval").
pub fn feedback_round(
    explainer: &mut Explainer,
    test_sqls: &[String],
) -> Result<(GradeStats, GradeStats), HtapError> {
    let mut before = GradeStats::default();
    let mut corrections: Vec<QueryOutcome> = Vec::new();
    for sql in test_sqls {
        let outcome = explainer.system().run_sql(sql)?;
        let report = explainer.explain_outcome(&outcome, &[]);
        let grade = explainer.grade(&outcome, &report.output);
        before.record(grade);
        if matches!(grade, Grade::Wrong | Grade::None) {
            corrections.push(outcome);
        }
    }
    for o in &corrections {
        explainer.add_expert_correction(o);
    }
    let after = evaluate(explainer, test_sqls)?;
    Ok((before, after))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::explainer::PipelineConfig;
    use crate::workload::{WorkloadConfig, WorkloadGenerator};
    use qpe_htap::tpch::TpchConfig;
    use qpe_treecnn::train::TrainerConfig;

    fn explainer() -> Explainer {
        Explainer::build(PipelineConfig {
            tpch: TpchConfig::with_scale(0.002),
            n_train: 30,
            kb_size: 12,
            trainer: TrainerConfig {
                epochs: 10,
                ..TrainerConfig::default()
            },
            ..Default::default()
        })
        .unwrap()
    }

    fn test_queries(n: usize) -> Vec<String> {
        let mut gen = WorkloadGenerator::new(WorkloadConfig {
            seed: 999,
            ..Default::default()
        });
        gen.generate(n)
    }

    #[test]
    fn evaluate_produces_reasonable_accuracy() {
        let ex = explainer();
        let stats = evaluate(&ex, &test_queries(24)).unwrap();
        assert_eq!(stats.total(), 24);
        assert!(
            stats.accuracy() >= 0.5,
            "accuracy {} too low: {:?}",
            stats.accuracy(),
            stats
        );
    }

    #[test]
    fn k1_is_not_better_than_k3() {
        let mut ex = explainer();
        let tests = test_queries(20);
        let rows = k_sweep(&mut ex, &tests, &[1, 3]).unwrap();
        let acc1 = rows[0].stats.accuracy() + 1e-9;
        let acc3 = rows[1].stats.accuracy();
        assert!(
            acc3 + 0.15 >= acc1,
            "K=3 ({acc3}) much worse than K=1 ({acc1})"
        );
        // restoring K
        assert_eq!(ex.config().top_k, 2);
    }

    #[test]
    fn dbgpt_is_worse_than_rag() {
        let ex = explainer();
        let tests = test_queries(24);
        let rag = evaluate(&ex, &tests).unwrap();
        let dbgpt = dbgpt_eval(&ex, &tests, &ex.config().prompt).unwrap();
        assert!(
            rag.accuracy() > dbgpt.stats.accuracy(),
            "RAG {} vs DBG-PT {}",
            rag.accuracy(),
            dbgpt.stats.accuracy()
        );
    }

    #[test]
    fn dbgpt_without_cost_warning_compares_costs_more() {
        let ex = explainer();
        let tests = test_queries(16);
        let forbidden = dbgpt_eval(&ex, &tests, &PromptConfig::default()).unwrap();
        let allowed = dbgpt_eval(
            &ex,
            &tests,
            &PromptConfig {
                forbid_cost_comparison: false,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(allowed.cost_comparison_used >= forbidden.cost_comparison_used);
        assert!(allowed.cost_comparison_used > 0);
    }

    #[test]
    fn router_accuracy_beats_coin_flip() {
        let ex = explainer();
        let acc = router_accuracy(&ex, &test_queries(24)).unwrap();
        assert!(acc > 0.5, "router accuracy {acc}");
    }

    #[test]
    fn feedback_round_does_not_reduce_accuracy() {
        let mut ex = explainer();
        let tests = test_queries(12);
        let (before, after) = feedback_round(&mut ex, &tests).unwrap();
        assert_eq!(before.total(), after.total());
        assert!(
            after.accuracy() + 1e-9 >= before.accuracy(),
            "feedback hurt: {} -> {}",
            before.accuracy(),
            after.accuracy()
        );
    }

    #[test]
    fn flat_ablation_runs() {
        let ex = explainer();
        let stats = flat_embedding_ablation(&ex, &test_queries(10)).unwrap();
        assert_eq!(stats.total(), 10);
    }

    #[test]
    fn kb_size_sweep_rows() {
        let ex = explainer();
        let rows = kb_size_sweep(&ex, &[], &test_queries(8), &[4, 12]).unwrap();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].label, "KB=4");
        assert_eq!(rows[1].stats.total(), 8);
    }
}
