//! The end-to-end explainer pipeline (paper Figure 1).

use crate::timing::EndToEndTiming;
use crate::workload::{WorkloadConfig, WorkloadGenerator};
use qpe_htap::engine::{EngineKind, HtapError, HtapSystem, QueryOutcome, StatementOutcome};
use qpe_htap::session::Session;
use qpe_htap::tpch::TpchConfig;
use qpe_llm::expert::ExpertOracle;
use qpe_llm::factors::GroundTruth;
use qpe_llm::generator::{ExplanationOutput, SimulatedLlm};
use qpe_llm::grader::{Grade, Grader};
use qpe_llm::knowledge::KnowledgeEntry;
use qpe_llm::prompt::{Prompt, PromptConfig, Question};
use qpe_llm::timing::LlmTiming;
use qpe_treecnn::router::SmartRouter;
use qpe_treecnn::train::{PlanPairExample, TrainReport, TrainerConfig};
use qpe_vectordb::{KnowledgeStore, Metric, SearchBackend};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

/// Pipeline construction options.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PipelineConfig {
    /// TPC-H generation options.
    pub tpch: TpchConfig,
    /// Workload generator options.
    pub workload: WorkloadConfig,
    /// Number of historical queries run for router training (the KB is a
    /// subset of these, as in the paper: "these generated queries are also
    /// in the training set of the smart router").
    pub n_train: usize,
    /// Knowledge-base size (paper: 20 representative queries).
    pub kb_size: usize,
    /// Retrieval depth K (paper default: 2).
    pub top_k: usize,
    /// Router training hyperparameters.
    pub trainer: TrainerConfig,
    /// Prompt construction options.
    pub prompt: PromptConfig,
}

impl Default for PipelineConfig {
    fn default() -> Self {
        PipelineConfig {
            tpch: TpchConfig::with_scale(0.005),
            workload: WorkloadConfig::default(),
            n_train: 80,
            kb_size: 20,
            top_k: 2,
            trainer: TrainerConfig::default(),
            prompt: PromptConfig::default(),
        }
    }
}

/// The result of one explanation request.
#[derive(Debug, Clone)]
pub struct ExplainReport {
    /// The query.
    pub sql: String,
    /// Measured winner.
    pub winner: EngineKind,
    /// Loser/winner latency ratio.
    pub speedup: f64,
    /// TP simulated latency (ns).
    pub tp_latency_ns: u64,
    /// AP simulated latency (ns).
    pub ap_latency_ns: u64,
    /// The generated explanation.
    pub output: ExplanationOutput,
    /// The prompt that produced it (renderable for display).
    pub prompt: Prompt,
    /// KB ids of retrieved entries.
    pub retrieved_ids: Vec<u32>,
    /// Response-time breakdown.
    pub timing: EndToEndTiming,
}

/// The assembled framework: HTAP system + router + KB + LLM + grader.
///
/// The HTAP system is `Arc`-shared: the explainer talks to it through
/// [`Session`]s (the prepare/execute client API), and callers can open their
/// own concurrent sessions over [`Explainer::system_arc`].
pub struct Explainer {
    system: Arc<HtapSystem>,
    router: SmartRouter,
    router_report: TrainReport,
    kb: KnowledgeStore<KnowledgeEntry>,
    /// Plans of the KB entries, kept for the embedding-source ablation.
    kb_outcomes: Vec<QueryOutcome>,
    llm: SimulatedLlm,
    grader: Grader,
    config: PipelineConfig,
}

impl Explainer {
    /// Builds the full pipeline: generate data, run the training workload on
    /// both engines, train the router, select and annotate KB entries.
    pub fn build(config: PipelineConfig) -> Result<Self, HtapError> {
        let system = Arc::new(HtapSystem::new(&config.tpch));
        let mut gen = WorkloadGenerator::new(config.workload.clone());
        let sqls = gen.generate(config.n_train);
        // The training workload runs through a session: repeated statements
        // (the generator reuses shapes) hit the shared plan cache.
        let session = Session::new(Arc::clone(&system));
        let mut outcomes = Vec::with_capacity(sqls.len());
        for sql in &sqls {
            match session.execute_sql(sql)? {
                StatementOutcome::Query(q) => outcomes.push(*q),
                StatementOutcome::PinnedQuery(_) | StatementOutcome::Dml(_) => {
                    unreachable!("training workload is read-only and never pins an engine")
                }
            }
        }

        // Train the smart router on every historical query.
        let examples: Vec<PlanPairExample> = outcomes
            .iter()
            .map(|o| {
                PlanPairExample::from_plans(&o.tp.plan, &o.ap.plan, o.winner() == EngineKind::Ap)
            })
            .collect();
        let (router, router_report) = SmartRouter::train(&examples, config.trainer.clone());

        // Select KB entries: stratified round-robin over (winner, primary
        // factor) signatures so the 20 entries cover the distinction space.
        let oracle = ExpertOracle::new(system.latency_model());
        let truths: Vec<GroundTruth> = outcomes.iter().map(|o| oracle.ground_truth(o)).collect();
        let chosen = stratified_selection(&truths, config.kb_size);

        let mut kb = KnowledgeStore::new(Metric::Euclidean, SearchBackend::Exact);
        let mut kb_outcomes = Vec::with_capacity(chosen.len());
        for &i in &chosen {
            let o = &outcomes[i];
            let key = router.embed_pair(&o.tp.plan, &o.ap.plan);
            kb.insert(key, oracle.knowledge_entry(o));
            kb_outcomes.push(o.clone());
        }

        Ok(Explainer {
            system,
            router,
            router_report,
            kb,
            kb_outcomes,
            llm: SimulatedLlm::new(),
            grader: Grader::new(),
            config,
        })
    }

    /// Explains a SQL query end to end (runs it on both engines first, as
    /// the paper's post-execution setting requires).
    pub fn explain_sql(
        &self,
        sql: &str,
        user_context: &[String],
    ) -> Result<ExplainReport, HtapError> {
        let outcome = match self.session().execute_sql(sql)? {
            StatementOutcome::Query(q) => *q,
            StatementOutcome::PinnedQuery(_) => {
                unreachable!("explainer sessions never pin an engine: both runs are its input")
            }
            StatementOutcome::Dml(d) => {
                return Err(HtapError::Sql(qpe_sql::SqlError::Unsupported(format!(
                    "cannot explain a write statement: {}",
                    d.sql
                ))))
            }
        };
        Ok(self.explain_outcome(&outcome, user_context))
    }

    /// Explains an already-executed query.
    pub fn explain_outcome(&self, outcome: &QueryOutcome, user_context: &[String]) -> ExplainReport {
        let t0 = Instant::now();
        let key = self.router.embed_pair(&outcome.tp.plan, &outcome.ap.plan);
        let encode_ns = t0.elapsed().as_nanos() as u64;

        let t1 = Instant::now();
        let hits = self.kb.search(&key, self.config.top_k);
        let search_ns = t1.elapsed().as_nanos() as u64;

        let knowledge: Vec<(KnowledgeEntry, f64)> = hits
            .iter()
            .map(|h| (h.value.clone(), h.distance))
            .collect();
        let retrieved_ids: Vec<u32> = hits.iter().map(|h| h.id).collect();

        let prompt = Prompt {
            config: self.config.prompt.clone(),
            knowledge,
            question: Question {
                sql: outcome.sql.clone(),
                tp_plan: outcome.tp.plan.clone(),
                ap_plan: outcome.ap.plan.clone(),
                winner: outcome.winner(),
                // Delta-store freshness of the scanned tables: how much
                // recent write traffic the AP engine read through its delta
                // region for this query.
                freshness: outcome
                    .bound
                    .tables
                    .iter()
                    .filter_map(|t| self.system.database().freshness(&t.name))
                    .collect(),
            },
            user_context: user_context.to_vec(),
        };
        let output = self.llm.explain(&prompt);
        let llm_time = LlmTiming::estimate(prompt.token_count(), output.token_count());

        ExplainReport {
            sql: outcome.sql.clone(),
            winner: outcome.winner(),
            speedup: outcome.speedup(),
            tp_latency_ns: outcome.tp.latency_ns,
            ap_latency_ns: outcome.ap.latency_ns,
            output,
            prompt,
            retrieved_ids,
            timing: EndToEndTiming::new(encode_ns, search_ns, llm_time),
        }
    }

    /// Expert grade for a generated explanation of `outcome`.
    pub fn grade(&self, outcome: &QueryOutcome, output: &ExplanationOutput) -> Grade {
        let oracle = ExpertOracle::new(self.system.latency_model());
        let truth = oracle.ground_truth(outcome);
        self.grader.grade(output, &truth)
    }

    /// The paper's feedback loop: when experts judge an output wrong, they
    /// write the correct explanation and it enters the KB for future
    /// retrieval.
    pub fn add_expert_correction(&mut self, outcome: &QueryOutcome) -> u32 {
        let oracle = ExpertOracle::new(self.system.latency_model());
        let key = self.router.embed_pair(&outcome.tp.plan, &outcome.ap.plan);
        let id = self.kb.insert(key, oracle.knowledge_entry(outcome));
        self.kb_outcomes.push(outcome.clone());
        id
    }

    /// Routes a query without executing it (the smart router's primary job).
    pub fn route_sql(&self, sql: &str) -> Result<(EngineKind, f64), HtapError> {
        let bound = self.system.bind(sql)?;
        let tp = self.system.explain(&bound, EngineKind::Tp)?;
        let ap = self.system.explain(&bound, EngineKind::Ap)?;
        Ok(self.router.route(&tp, &ap))
    }

    /// Changes the retrieval depth K (the §VI-B sweep).
    pub fn set_top_k(&mut self, k: usize) {
        self.config.top_k = k;
    }

    /// Swaps the prompt configuration (ablations).
    pub fn set_prompt_config(&mut self, prompt: PromptConfig) {
        self.config.prompt = prompt;
    }

    /// The underlying HTAP system.
    pub fn system(&self) -> &HtapSystem {
        &self.system
    }

    /// The shared system handle — clone it to open independent concurrent
    /// [`Session`]s.
    pub fn system_arc(&self) -> &Arc<HtapSystem> {
        &self.system
    }

    /// Opens a fresh session over the shared system (cheap: one `Arc`
    /// clone). Prepared statements from any session share the system-wide
    /// plan cache.
    pub fn session(&self) -> Session {
        Session::new(Arc::clone(&self.system))
    }

    /// Mutable HTAP system access (index creation from user context).
    /// Requires that no other `Arc` handle (session or clone of
    /// [`Explainer::system_arc`]) is outstanding.
    ///
    /// Note: plans embedded in existing KB entries are not re-derived when
    /// the physical design changes; the paper leaves stale-knowledge
    /// management as future work, and so do we (see DESIGN.md).
    pub fn system_mut(&mut self) -> &mut HtapSystem {
        Arc::get_mut(&mut self.system)
            .expect("exclusive system access requires dropping outstanding sessions")
    }

    /// The trained router.
    pub fn router(&self) -> &SmartRouter {
        &self.router
    }

    /// Router training report.
    pub fn router_report(&self) -> &TrainReport {
        &self.router_report
    }

    /// The knowledge base.
    pub fn kb(&self) -> &KnowledgeStore<KnowledgeEntry> {
        &self.kb
    }

    /// The outcomes behind the KB entries (ablation input).
    pub fn kb_outcomes(&self) -> &[QueryOutcome] {
        &self.kb_outcomes
    }

    /// Active configuration.
    pub fn config(&self) -> &PipelineConfig {
        &self.config
    }
}

/// Round-robin stratified selection of `k` indices over (winner, primary)
/// signatures, preserving per-signature insertion order.
pub fn stratified_selection(truths: &[GroundTruth], k: usize) -> Vec<usize> {
    let mut groups: HashMap<String, Vec<usize>> = HashMap::new();
    let mut group_order: Vec<String> = Vec::new();
    for (i, t) in truths.iter().enumerate() {
        let sig = format!("{}:{}", t.winner, t.primary.key());
        if !groups.contains_key(&sig) {
            group_order.push(sig.clone());
        }
        groups.entry(sig).or_default().push(i);
    }
    let mut out = Vec::with_capacity(k);
    let mut round = 0usize;
    while out.len() < k {
        let mut advanced = false;
        for sig in &group_order {
            if out.len() >= k {
                break;
            }
            if let Some(&idx) = groups[sig].get(round) {
                out.push(idx);
                advanced = true;
            }
        }
        if !advanced {
            break; // fewer distinct examples than k
        }
        round += 1;
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_llm::factors::FactorKind;

    fn small_config() -> PipelineConfig {
        PipelineConfig {
            tpch: TpchConfig::with_scale(0.002),
            n_train: 24,
            kb_size: 8,
            trainer: TrainerConfig {
                epochs: 8,
                ..TrainerConfig::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn build_and_explain_end_to_end() {
        let ex = Explainer::build(small_config()).unwrap();
        assert_eq!(ex.kb().len(), 8);
        assert_eq!(ex.kb_outcomes().len(), 8);
        let report = ex
            .explain_sql(
                "SELECT COUNT(*) FROM customer, orders \
                 WHERE o_custkey = c_custkey AND c_mktsegment = 'machinery'",
                &[],
            )
            .unwrap();
        assert_eq!(report.retrieved_ids.len(), 2);
        assert!(report.timing.encode_ns > 0);
        assert!(report.timing.retrieval_fraction() < 0.05);
        assert!(report.speedup >= 1.0);
    }

    #[test]
    fn grading_works_through_pipeline() {
        let ex = Explainer::build(small_config()).unwrap();
        let outcome = ex
            .system()
            .run_sql("SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'")
            .unwrap();
        let report = ex.explain_outcome(&outcome, &[]);
        let grade = ex.grade(&outcome, &report.output);
        // Any grade is legal; the call must be total.
        let _ = grade;
    }

    #[test]
    fn expert_correction_grows_kb() {
        let mut ex = Explainer::build(small_config()).unwrap();
        let before = ex.kb().len();
        let outcome = ex
            .system()
            .run_sql("SELECT COUNT(*) FROM nation")
            .unwrap();
        let id = ex.add_expert_correction(&outcome);
        assert_eq!(ex.kb().len(), before + 1);
        assert_eq!(id as usize, before);
    }

    #[test]
    fn top_k_is_respected() {
        let mut ex = Explainer::build(small_config()).unwrap();
        ex.set_top_k(5);
        let report = ex
            .explain_sql("SELECT COUNT(*) FROM customer", &[])
            .unwrap();
        assert_eq!(report.retrieved_ids.len(), 5);
    }

    #[test]
    fn route_sql_does_not_execute() {
        let ex = Explainer::build(small_config()).unwrap();
        let (engine, conf) = ex
            .route_sql("SELECT c_name FROM customer WHERE c_custkey = 3")
            .unwrap();
        assert!(conf >= 0.5);
        let _ = engine;
    }

    #[test]
    fn stratified_selection_covers_groups() {
        use qpe_htap::engine::EngineKind;
        let mk = |winner, primary| GroundTruth {
            winner,
            speedup: 2.0,
            primary,
            valid: vec![primary],
            contradicted: vec![],
        };
        let truths = vec![
            mk(EngineKind::Ap, FactorKind::HashJoinVsNestedLoop),
            mk(EngineKind::Ap, FactorKind::HashJoinVsNestedLoop),
            mk(EngineKind::Ap, FactorKind::HashJoinVsNestedLoop),
            mk(EngineKind::Tp, FactorKind::IndexLookupAdvantage),
            mk(EngineKind::Ap, FactorKind::TopNHeapAdvantage),
        ];
        let sel = stratified_selection(&truths, 3);
        assert_eq!(sel.len(), 3);
        // one from each signature before repeats
        assert!(sel.contains(&0));
        assert!(sel.contains(&3));
        assert!(sel.contains(&4));
    }

    #[test]
    fn stratified_selection_handles_small_pools() {
        let truths: Vec<GroundTruth> = vec![];
        assert!(stratified_selection(&truths, 5).is_empty());
    }

    #[test]
    fn router_report_is_informative() {
        let ex = Explainer::build(small_config()).unwrap();
        let r = ex.router_report();
        assert_eq!(r.examples, 24);
        assert!(!r.epoch_losses.is_empty());
        assert!(r.train_accuracy > 0.5, "router accuracy {}", r.train_accuracy);
    }
}
