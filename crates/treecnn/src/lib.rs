//! The smart router: a from-scratch tree-CNN over query plan pairs.
//!
//! The paper's ByteHTAP carries a lightweight "smart router" — an enhanced
//! tree convolution classifier in the lineage of Bao/Neo/Lero — that predicts
//! which engine (TP or AP) will execute a query faster. Its penultimate
//! activations double as **plan-pair embeddings**: the 16-dim retrieval keys
//! of the RAG knowledge base (paper §III-A, §IV).
//!
//! Architecture (paper-faithful at miniature scale, <1 MB, ~µs inference):
//!
//! ```text
//!   plan  ──featurize──▶ binary feature tree (25-dim node features)
//!        ──tree-conv (25→32)──▶ ──tree-conv (32→16)──▶ dynamic max-pool
//!        ──FC (16→8)──▶ per-plan embedding
//!   pair  = concat(TP embedding, AP embedding)            // 16-dim key
//!        ──FC (16→16, ReLU)──▶ ──FC (16→2)──▶ softmax over {TP, AP}
//! ```
//!
//! Everything — tensors, layers, backprop, Adam — is implemented here with no
//! ML framework; the model is a few thousand parameters.

pub mod features;
pub mod network;
pub mod router;
pub mod tensor;
pub mod train;

pub use features::{featurize, FeatTree, NODE_FEATURE_DIM};
pub use network::RouterNetwork;
pub use router::{PairEmbedding, RouterConfig, SmartRouter, PAIR_EMBEDDING_DIM};
pub use train::{PlanPairExample, TrainReport, Trainer, TrainerConfig};
