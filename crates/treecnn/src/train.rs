//! Training loop for the smart router.

use crate::features::{featurize, FeatTree};
use crate::network::RouterNetwork;
use crate::tensor::Adam;
use qpe_htap::plan::PlanNode;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// One labelled training example: both plans plus which engine won.
#[derive(Debug, Clone)]
pub struct PlanPairExample {
    /// Featurized TP plan.
    pub tp: FeatTree,
    /// Featurized AP plan.
    pub ap: FeatTree,
    /// 0 = TP faster, 1 = AP faster.
    pub label: usize,
}

impl PlanPairExample {
    /// Builds an example from raw plans.
    pub fn from_plans(tp: &PlanNode, ap: &PlanNode, ap_faster: bool) -> Self {
        PlanPairExample {
            tp: featurize(tp),
            ap: featurize(ap),
            label: if ap_faster { 1 } else { 0 },
        }
    }
}

/// Trainer hyperparameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainerConfig {
    /// Number of epochs.
    pub epochs: usize,
    /// Minibatch size.
    pub batch_size: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Weight-init / shuffle seed.
    pub seed: u64,
}

impl Default for TrainerConfig {
    fn default() -> Self {
        TrainerConfig {
            epochs: 60,
            batch_size: 16,
            learning_rate: 5e-3,
            seed: 42,
        }
    }
}

/// Summary of a training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f64>,
    /// Training-set accuracy after the final epoch.
    pub train_accuracy: f64,
    /// Number of examples trained on.
    pub examples: usize,
}

/// Trains [`RouterNetwork`]s on labelled plan pairs.
pub struct Trainer {
    config: TrainerConfig,
}

impl Trainer {
    /// Creates a trainer.
    pub fn new(config: TrainerConfig) -> Self {
        Trainer { config }
    }

    /// Trains a fresh network on `examples`, returning it plus a report.
    pub fn train(&self, examples: &[PlanPairExample]) -> (RouterNetwork, TrainReport) {
        assert!(!examples.is_empty(), "cannot train on an empty dataset");
        let mut net = RouterNetwork::new(self.config.seed);
        let mut adam = Adam::new(net.param_count(), self.config.learning_rate);
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.config.seed ^ 0x5eed);
        let mut order: Vec<usize> = (0..examples.len()).collect();
        let mut epoch_losses = Vec::with_capacity(self.config.epochs);

        for _ in 0..self.config.epochs {
            order.shuffle(&mut rng);
            let mut epoch_loss = 0.0;
            for chunk in order.chunks(self.config.batch_size) {
                let mut grads = RouterNetwork::zeros_like();
                let mut batch_loss = 0.0;
                for &i in chunk {
                    let ex = &examples[i];
                    let fwd = net.forward_pair(&ex.tp, &ex.ap);
                    batch_loss += net.backward_pair(&ex.tp, &ex.ap, &fwd, ex.label, &mut grads);
                }
                let scale = 1.0 / chunk.len() as f64;
                let grad_flat: Vec<f64> = grads.flat().iter().map(|g| g * scale).collect();
                let mut params = net.flat();
                adam.step(&mut params, &grad_flat);
                net.set_flat(&params);
                epoch_loss += batch_loss;
            }
            epoch_losses.push(epoch_loss / examples.len() as f64);
        }

        let correct = examples
            .iter()
            .filter(|ex| {
                let p = net.predict(&ex.tp, &ex.ap);
                (p[1] > p[0]) == (ex.label == 1)
            })
            .count();
        let report = TrainReport {
            epoch_losses,
            train_accuracy: correct as f64 / examples.len() as f64,
            examples: examples.len(),
        };
        (net, report)
    }

    /// Accuracy of `net` on a held-out set.
    pub fn evaluate(net: &RouterNetwork, examples: &[PlanPairExample]) -> f64 {
        if examples.is_empty() {
            return 0.0;
        }
        let correct = examples
            .iter()
            .filter(|ex| {
                let p = net.predict(&ex.tp, &ex.ap);
                (p[1] > p[0]) == (ex.label == 1)
            })
            .count();
        correct as f64 / examples.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_htap::plan::{NodeType, PlanOp};

    /// Synthetic dataset where the winning engine is readable from plan
    /// structure: hash-join-shaped plans label AP, index-scan plans label TP.
    fn synthetic_dataset(n: usize) -> Vec<PlanPairExample> {
        let mut out = Vec::new();
        for i in 0..n {
            let ap_faster = i % 2 == 0;
            let (tp_cost, ap_cost) = if ap_faster { (1e5, 1e3) } else { (10.0, 1e4) };
            let tp_plan = if ap_faster {
                // TP stuck with a nested loop
                PlanNode::new(
                    NodeType::NestedLoopJoin,
                    PlanOp::NestedLoopJoin { conds: vec![], residual: None },
                )
                .with_estimates(tp_cost, 1e5 + i as f64)
                .with_child(scan("customer", 1e4))
                .with_child(scan("orders", 1e5))
            } else {
                PlanNode::new(
                    NodeType::IndexScan,
                    PlanOp::TableScan { table_slot: 0, columns: vec![0], pushed: None },
                )
                .with_relation("customer")
                .with_index("c_custkey")
                .with_estimates(tp_cost, 1.0 + (i % 7) as f64)
            };
            let ap_plan = PlanNode::new(
                NodeType::HashJoin,
                PlanOp::Hash,
            )
            .with_estimates(ap_cost, 1e4 + i as f64)
            .with_child(scan("orders", 1e5))
            .with_child(scan("customer", 1e4));
            out.push(PlanPairExample::from_plans(&tp_plan, &ap_plan, ap_faster));
        }
        out
    }

    fn scan(rel: &str, rows: f64) -> PlanNode {
        PlanNode::new(
            NodeType::TableScan,
            PlanOp::TableScan { table_slot: 0, columns: vec![0], pushed: None },
        )
        .with_relation(rel)
        .with_estimates(rows / 10.0, rows)
    }

    #[test]
    fn learns_separable_dataset() {
        let data = synthetic_dataset(60);
        let trainer = Trainer::new(TrainerConfig {
            epochs: 40,
            ..Default::default()
        });
        let (net, report) = trainer.train(&data);
        assert!(
            report.train_accuracy >= 0.95,
            "train accuracy {}",
            report.train_accuracy
        );
        // loss should broadly decrease
        let first = report.epoch_losses.first().copied().unwrap();
        let last = report.epoch_losses.last().copied().unwrap();
        assert!(last < first, "loss did not decrease: {first} -> {last}");
        // generalizes to freshly generated examples of the same pattern
        let held_out = synthetic_dataset(20);
        let acc = Trainer::evaluate(&net, &held_out);
        assert!(acc >= 0.9, "held-out accuracy {acc}");
    }

    #[test]
    fn training_is_deterministic() {
        let data = synthetic_dataset(16);
        let cfg = TrainerConfig { epochs: 3, ..Default::default() };
        let (net1, r1) = Trainer::new(cfg.clone()).train(&data);
        let (net2, r2) = Trainer::new(cfg).train(&data);
        assert_eq!(net1, net2);
        assert_eq!(r1.epoch_losses, r2.epoch_losses);
    }

    #[test]
    fn evaluate_empty_is_zero() {
        let (net, _) = Trainer::new(TrainerConfig { epochs: 1, ..Default::default() })
            .train(&synthetic_dataset(4));
        assert_eq!(Trainer::evaluate(&net, &[]), 0.0);
    }
}
