//! The tree-CNN network: layers, forward pass, and manual backprop.

use crate::features::{FeatTree, NODE_FEATURE_DIM};
use crate::tensor::{relu_inplace, softmax, Mat};
use rand::rngs::StdRng;
use serde::{Deserialize, Serialize};

/// Tree-conv layer 1 output width.
pub const CONV1_DIM: usize = 32;
/// Tree-conv layer 2 output width (= pooled vector width).
pub const CONV2_DIM: usize = 16;
/// Per-plan embedding width; the pair key is twice this.
pub const EMBED_DIM: usize = 8;
/// Classifier hidden width.
pub const HIDDEN_DIM: usize = 16;
/// Output classes ({TP faster, AP faster}).
pub const OUT_DIM: usize = 2;

/// A tree-convolution layer: looks at a node and its two children through
/// separate weight matrices (Mou-style triangular filter as used in Bao).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeConvLayer {
    /// Weights applied to the node itself.
    pub w_self: Mat,
    /// Weights applied to the left child (zeros input when absent).
    pub w_left: Mat,
    /// Weights applied to the right child.
    pub w_right: Mat,
    /// Bias.
    pub b: Vec<f64>,
}

impl TreeConvLayer {
    fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        TreeConvLayer {
            w_self: Mat::xavier(out_dim, in_dim, rng),
            w_left: Mat::xavier(out_dim, in_dim, rng),
            w_right: Mat::xavier(out_dim, in_dim, rng),
            b: vec![0.0; out_dim],
        }
    }

    fn zeros(in_dim: usize, out_dim: usize) -> Self {
        TreeConvLayer {
            w_self: Mat::zeros(out_dim, in_dim),
            w_left: Mat::zeros(out_dim, in_dim),
            w_right: Mat::zeros(out_dim, in_dim),
            b: vec![0.0; out_dim],
        }
    }

    /// Forward over the whole tree; returns per-node activations and ReLU
    /// masks.
    fn forward(&self, tree: &FeatTree, inputs: &[Vec<f64>]) -> (Vec<Vec<f64>>, Vec<Vec<bool>>) {
        let out_dim = self.b.len();
        let mut acts = Vec::with_capacity(inputs.len());
        let mut masks = Vec::with_capacity(inputs.len());
        for i in 0..inputs.len() {
            let mut z = self.b.clone();
            self.w_self.matvec_acc(&inputs[i], &mut z);
            if let Some(l) = tree.left[i] {
                self.w_left.matvec_acc(&inputs[l], &mut z);
            }
            if let Some(r) = tree.right[i] {
                self.w_right.matvec_acc(&inputs[r], &mut z);
            }
            let mask = relu_inplace(&mut z);
            debug_assert_eq!(z.len(), out_dim);
            acts.push(z);
            masks.push(mask);
        }
        (acts, masks)
    }

    /// Backward: `d_out[i]` is the loss gradient at node `i`'s output.
    /// Accumulates weight gradients into `grads` and returns per-node input
    /// gradients.
    #[allow(clippy::too_many_arguments)]
    fn backward(
        &self,
        tree: &FeatTree,
        inputs: &[Vec<f64>],
        masks: &[Vec<bool>],
        d_out: &[Vec<f64>],
        grads: &mut TreeConvLayer,
    ) -> Vec<Vec<f64>> {
        let in_dim = self.w_self.cols;
        let mut d_in: Vec<Vec<f64>> = inputs.iter().map(|_| vec![0.0; in_dim]).collect();
        for i in 0..inputs.len() {
            // gate by ReLU mask
            let dz: Vec<f64> = d_out[i]
                .iter()
                .zip(masks[i].iter())
                .map(|(g, m)| if *m { *g } else { 0.0 })
                .collect();
            if dz.iter().all(|v| *v == 0.0) {
                continue;
            }
            grads.w_self.outer_acc(&dz, &inputs[i]);
            self.w_self.matvec_t_acc(&dz, &mut d_in[i]);
            for (g, v) in grads.b.iter_mut().zip(dz.iter()) {
                *g += v;
            }
            if let Some(l) = tree.left[i] {
                grads.w_left.outer_acc(&dz, &inputs[l]);
                self.w_left.matvec_t_acc(&dz, &mut d_in[l]);
            }
            if let Some(r) = tree.right[i] {
                grads.w_right.outer_acc(&dz, &inputs[r]);
                self.w_right.matvec_t_acc(&dz, &mut d_in[r]);
            }
        }
        d_in
    }

    fn params(&self) -> impl Iterator<Item = &f64> {
        self.w_self
            .data
            .iter()
            .chain(self.w_left.data.iter())
            .chain(self.w_right.data.iter())
            .chain(self.b.iter())
    }

    fn params_mut(&mut self) -> impl Iterator<Item = &mut f64> {
        self.w_self
            .data
            .iter_mut()
            .chain(self.w_left.data.iter_mut())
            .chain(self.w_right.data.iter_mut())
            .chain(self.b.iter_mut())
    }
}

/// Fully-connected layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FcLayer {
    /// Weights, `out × in`.
    pub w: Mat,
    /// Bias.
    pub b: Vec<f64>,
}

impl FcLayer {
    fn new(in_dim: usize, out_dim: usize, rng: &mut StdRng) -> Self {
        FcLayer {
            w: Mat::xavier(out_dim, in_dim, rng),
            b: vec![0.0; out_dim],
        }
    }

    fn zeros(in_dim: usize, out_dim: usize) -> Self {
        FcLayer {
            w: Mat::zeros(out_dim, in_dim),
            b: vec![0.0; out_dim],
        }
    }

    fn forward(&self, x: &[f64]) -> Vec<f64> {
        let mut y = self.b.clone();
        self.w.matvec_acc(x, &mut y);
        y
    }

    fn backward(&self, x: &[f64], d_out: &[f64], grads: &mut FcLayer) -> Vec<f64> {
        grads.w.outer_acc(d_out, x);
        for (g, v) in grads.b.iter_mut().zip(d_out.iter()) {
            *g += v;
        }
        let mut d_in = vec![0.0; self.w.cols];
        self.w.matvec_t_acc(d_out, &mut d_in);
        d_in
    }

    fn params(&self) -> impl Iterator<Item = &f64> {
        self.w.data.iter().chain(self.b.iter())
    }

    fn params_mut(&mut self) -> impl Iterator<Item = &mut f64> {
        self.w.data.iter_mut().chain(self.b.iter_mut())
    }
}

/// The full router network (see crate docs for the architecture).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RouterNetwork {
    conv1: TreeConvLayer,
    conv2: TreeConvLayer,
    fc_embed: FcLayer,
    fc_hidden: FcLayer,
    fc_out: FcLayer,
}

/// Cached activations for one plan's encoder pass.
pub struct PlanForward {
    inputs: Vec<Vec<f64>>,
    h1: Vec<Vec<f64>>,
    mask1: Vec<Vec<bool>>,
    h2: Vec<Vec<f64>>,
    mask2: Vec<Vec<bool>>,
    pooled: Vec<f64>,
    argmax: Vec<usize>,
    /// Post-tanh per-plan embedding.
    pub embed: Vec<f64>,
}

/// Cached activations for one pair's classifier pass.
pub struct PairForward {
    /// TP-side encoder cache.
    pub tp: PlanForward,
    /// AP-side encoder cache.
    pub ap: PlanForward,
    /// The 16-dim pair key (concat of embeddings).
    pub pair: Vec<f64>,
    hidden: Vec<f64>,
    mask_h: Vec<bool>,
    /// Class probabilities `[P(TP faster), P(AP faster)]`.
    pub probs: Vec<f64>,
}

impl RouterNetwork {
    /// Fresh Xavier-initialized network.
    pub fn new(seed: u64) -> Self {
        let mut rng = crate::tensor::seeded_rng(seed);
        RouterNetwork {
            conv1: TreeConvLayer::new(NODE_FEATURE_DIM, CONV1_DIM, &mut rng),
            conv2: TreeConvLayer::new(CONV1_DIM, CONV2_DIM, &mut rng),
            fc_embed: FcLayer::new(CONV2_DIM, EMBED_DIM, &mut rng),
            fc_hidden: FcLayer::new(2 * EMBED_DIM, HIDDEN_DIM, &mut rng),
            fc_out: FcLayer::new(HIDDEN_DIM, OUT_DIM, &mut rng),
        }
    }

    /// All-zero network of identical shape (gradient accumulator).
    pub fn zeros_like() -> Self {
        RouterNetwork {
            conv1: TreeConvLayer::zeros(NODE_FEATURE_DIM, CONV1_DIM),
            conv2: TreeConvLayer::zeros(CONV1_DIM, CONV2_DIM),
            fc_embed: FcLayer::zeros(CONV2_DIM, EMBED_DIM),
            fc_hidden: FcLayer::zeros(2 * EMBED_DIM, HIDDEN_DIM),
            fc_out: FcLayer::zeros(HIDDEN_DIM, OUT_DIM),
        }
    }

    /// Total parameter count.
    pub fn param_count(&self) -> usize {
        self.flat().len()
    }

    /// Flattens all parameters into one vector (Adam's view).
    pub fn flat(&self) -> Vec<f64> {
        self.conv1
            .params()
            .chain(self.conv2.params())
            .chain(self.fc_embed.params())
            .chain(self.fc_hidden.params())
            .chain(self.fc_out.params())
            .copied()
            .collect()
    }

    /// Writes a flat parameter vector back into the layers.
    pub fn set_flat(&mut self, flat: &[f64]) {
        let mut it = flat.iter();
        for p in self
            .conv1
            .params_mut()
            .chain(self.conv2.params_mut())
            .chain(self.fc_embed.params_mut())
            .chain(self.fc_hidden.params_mut())
            .chain(self.fc_out.params_mut())
        {
            *p = *it.next().expect("flat vector too short");
        }
        assert!(it.next().is_none(), "flat vector too long");
    }

    /// Encodes one plan tree into its cached forward pass.
    pub fn encode_plan(&self, tree: &FeatTree) -> PlanForward {
        assert!(!tree.is_empty(), "cannot encode an empty plan");
        let inputs = tree.feats.clone();
        let (h1, mask1) = self.conv1.forward(tree, &inputs);
        let (h2, mask2) = self.conv2.forward(tree, &h1);
        // dynamic max pooling
        let mut pooled = vec![f64::NEG_INFINITY; CONV2_DIM];
        let mut argmax = vec![0usize; CONV2_DIM];
        for (i, h) in h2.iter().enumerate() {
            for d in 0..CONV2_DIM {
                if h[d] > pooled[d] {
                    pooled[d] = h[d];
                    argmax[d] = i;
                }
            }
        }
        let pre = self.fc_embed.forward(&pooled);
        let embed: Vec<f64> = pre.iter().map(|v| v.tanh()).collect();
        PlanForward {
            inputs,
            h1,
            mask1,
            h2,
            mask2,
            pooled,
            argmax,
            embed,
        }
    }

    /// Full pair forward pass: encoder on both plans + classifier head.
    pub fn forward_pair(&self, tp: &FeatTree, ap: &FeatTree) -> PairForward {
        let tp_f = self.encode_plan(tp);
        let ap_f = self.encode_plan(ap);
        let mut pair = tp_f.embed.clone();
        pair.extend_from_slice(&ap_f.embed);
        let mut hidden = self.fc_hidden.forward(&pair);
        let mask_h = relu_inplace(&mut hidden);
        let logits = self.fc_out.forward(&hidden);
        let probs = softmax(&logits);
        PairForward {
            tp: tp_f,
            ap: ap_f,
            pair,
            hidden,
            mask_h,
            probs,
        }
    }

    /// Backward pass for one pair; accumulates gradients into `grads` and
    /// returns the cross-entropy loss. `label` is 0 when TP was faster,
    /// 1 when AP was.
    pub fn backward_pair(
        &self,
        tp_tree: &FeatTree,
        ap_tree: &FeatTree,
        fwd: &PairForward,
        label: usize,
        grads: &mut RouterNetwork,
    ) -> f64 {
        let loss = -fwd.probs[label].max(1e-12).ln();
        // d logits
        let mut d_logits = fwd.probs.clone();
        d_logits[label] -= 1.0;
        let d_hidden_raw = self.fc_out.backward(&fwd.hidden, &d_logits, &mut grads.fc_out);
        let d_hidden: Vec<f64> = d_hidden_raw
            .iter()
            .zip(fwd.mask_h.iter())
            .map(|(g, m)| if *m { *g } else { 0.0 })
            .collect();
        let d_pair = self
            .fc_hidden
            .backward(&fwd.pair, &d_hidden, &mut grads.fc_hidden);
        let (d_tp_embed, d_ap_embed) = d_pair.split_at(EMBED_DIM);
        self.backward_plan(tp_tree, &fwd.tp, d_tp_embed, grads);
        self.backward_plan(ap_tree, &fwd.ap, d_ap_embed, grads);
        loss
    }

    fn backward_plan(
        &self,
        tree: &FeatTree,
        fwd: &PlanForward,
        d_embed: &[f64],
        grads: &mut RouterNetwork,
    ) {
        // tanh backward
        let d_pre: Vec<f64> = d_embed
            .iter()
            .zip(fwd.embed.iter())
            .map(|(g, y)| g * (1.0 - y * y))
            .collect();
        let d_pooled = self
            .fc_embed
            .backward(&fwd.pooled, &d_pre, &mut grads.fc_embed);
        // pooling backward: route to argmax nodes
        let mut d_h2: Vec<Vec<f64>> = fwd.h2.iter().map(|_| vec![0.0; CONV2_DIM]).collect();
        for d in 0..CONV2_DIM {
            d_h2[fwd.argmax[d]][d] += d_pooled[d];
        }
        let d_h1 = self
            .conv2
            .backward(tree, &fwd.h1, &fwd.mask2, &d_h2, &mut grads.conv2);
        let _ = self
            .conv1
            .backward(tree, &fwd.inputs, &fwd.mask1, &d_h1, &mut grads.conv1);
    }

    /// Per-plan embedding (post-tanh, [`EMBED_DIM`] wide).
    pub fn plan_embedding(&self, tree: &FeatTree) -> Vec<f64> {
        self.encode_plan(tree).embed
    }

    /// Class probabilities `[P(TP), P(AP)]` for a plan pair.
    pub fn predict(&self, tp: &FeatTree, ap: &FeatTree) -> Vec<f64> {
        self.forward_pair(tp, ap).probs
    }

    /// The 16-dim pair embedding — the knowledge-base retrieval key.
    pub fn pair_embedding(&self, tp: &FeatTree, ap: &FeatTree) -> Vec<f64> {
        self.forward_pair(tp, ap).pair
    }

    /// Serialized model size in bytes (the paper claims < 1 MB).
    pub fn serialized_size(&self) -> usize {
        serde_json::to_vec(self).map(|v| v.len()).unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::featurize;
    use qpe_htap::plan::{NodeType, PlanNode, PlanOp};

    fn tiny_tree(cost: f64) -> FeatTree {
        let scan = PlanNode::new(
            NodeType::TableScan,
            PlanOp::TableScan { table_slot: 0, columns: vec![0], pushed: None },
        )
        .with_relation("customer")
        .with_estimates(cost, 100.0);
        featurize(&scan)
    }

    #[test]
    fn forward_shapes() {
        let net = RouterNetwork::new(1);
        let fwd = net.forward_pair(&tiny_tree(10.0), &tiny_tree(20.0));
        assert_eq!(fwd.pair.len(), 2 * EMBED_DIM);
        assert_eq!(fwd.probs.len(), 2);
        assert!((fwd.probs.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(fwd.tp.embed.iter().all(|v| v.abs() <= 1.0), "tanh bounded");
    }

    #[test]
    fn param_roundtrip() {
        let net = RouterNetwork::new(2);
        let flat = net.flat();
        let mut net2 = RouterNetwork::zeros_like();
        net2.set_flat(&flat);
        assert_eq!(net, net2);
        assert_eq!(net.param_count(), flat.len());
    }

    #[test]
    fn model_is_small() {
        let net = RouterNetwork::new(3);
        assert!(net.param_count() < 10_000, "params={}", net.param_count());
        let bytes = net.serialized_size();
        assert!(bytes > 0 && bytes < 1_000_000, "size={bytes}");
    }

    #[test]
    fn gradient_check_numerical() {
        // Finite-difference check on a handful of parameters.
        let net = RouterNetwork::new(4);
        let tp = tiny_tree(10.0);
        let ap = tiny_tree(1000.0);
        let label = 1usize;

        let loss_at = |n: &RouterNetwork| -> f64 {
            let f = n.forward_pair(&tp, &ap);
            -f.probs[label].max(1e-12).ln()
        };

        let mut grads = RouterNetwork::zeros_like();
        let fwd = net.forward_pair(&tp, &ap);
        net.backward_pair(&tp, &ap, &fwd, label, &mut grads);
        let analytic = grads.flat();
        let base_params = net.flat();

        let eps = 1e-5;
        // probe a spread of parameter indices across all layers
        let n = base_params.len();
        for &i in &[0usize, 7, n / 4, n / 2, 3 * n / 4, n - 3, n - 1] {
            let mut plus = base_params.clone();
            plus[i] += eps;
            let mut net_p = RouterNetwork::zeros_like();
            net_p.set_flat(&plus);
            let mut minus = base_params.clone();
            minus[i] -= eps;
            let mut net_m = RouterNetwork::zeros_like();
            net_m.set_flat(&minus);
            let numeric = (loss_at(&net_p) - loss_at(&net_m)) / (2.0 * eps);
            let diff = (numeric - analytic[i]).abs();
            let scale = numeric.abs().max(analytic[i].abs()).max(1e-8);
            assert!(
                diff / scale < 1e-3 || diff < 1e-7,
                "grad mismatch at {i}: numeric={numeric}, analytic={}",
                analytic[i]
            );
        }
    }

    #[test]
    fn embeddings_differ_for_different_plans() {
        let net = RouterNetwork::new(5);
        let a = net.plan_embedding(&tiny_tree(1.0));
        let b = net.plan_embedding(&tiny_tree(1e6));
        assert_ne!(a, b);
    }

    #[test]
    fn pair_embedding_is_concat() {
        let net = RouterNetwork::new(6);
        let t1 = tiny_tree(5.0);
        let t2 = tiny_tree(50.0);
        let pair = net.pair_embedding(&t1, &t2);
        let e1 = net.plan_embedding(&t1);
        let e2 = net.plan_embedding(&t2);
        assert_eq!(&pair[..EMBED_DIM], e1.as_slice());
        assert_eq!(&pair[EMBED_DIM..], e2.as_slice());
    }

    #[test]
    fn deterministic_inference() {
        let net = RouterNetwork::new(7);
        let t = tiny_tree(42.0);
        assert_eq!(net.predict(&t, &t), net.predict(&t, &t));
    }
}
