//! Plan featurization: physical plan trees → binary feature trees.
//!
//! Following the Bao/Neo recipe the paper's smart router builds on, each
//! plan node becomes a fixed-width feature vector and the tree is binarized
//! so the tree-convolution filters (which look at a node and its two
//! children) apply uniformly.
//!
//! Per-node features (width [`NODE_FEATURE_DIM`], offsets derived from
//! [`NodeType::ALL`] so the layout tracks the plan vocabulary — the DML
//! node types occupy one-hot slots like any other operator):
//!
//! | slice | content |
//! |---|---|
//! | 0..N            | one-hot [`NodeType`] (N = `NodeType::ALL.len()`) |
//! | N (`COST_SLOT`) | log10(1 + Total Cost) / 8 (engine-local scale) |
//! | N+1 (`ROWS_SLOT`) | log10(1 + Plan Rows) / 8 |
//! | N+2 (`INDEX_SLOT`) | uses an index (0/1) |
//! | N+3..N+11 (`REL_BASE`..) | one-hot TPC-H relation (8 tables) |
//! | N+11 (`REL_UNKNOWN_SLOT`) | relation present but unknown |

use qpe_htap::plan::{NodeType, PlanNode};
use serde::{Deserialize, Serialize};

/// Number of one-hot operator slots.
const N_NODE_TYPES: usize = NodeType::ALL.len();
/// Slot holding the log-scaled cost.
const COST_SLOT: usize = N_NODE_TYPES;
/// Slot holding the log-scaled cardinality estimate.
const ROWS_SLOT: usize = N_NODE_TYPES + 1;
/// Slot flagging index usage.
const INDEX_SLOT: usize = N_NODE_TYPES + 2;
/// First relation one-hot slot.
const REL_BASE: usize = N_NODE_TYPES + 3;
/// Slot flagging a relation outside the TPC-H eight.
const REL_UNKNOWN_SLOT: usize = REL_BASE + TPCH_TABLES.len();

/// Width of a node feature vector.
pub const NODE_FEATURE_DIM: usize = REL_UNKNOWN_SLOT + 1;

const TPCH_TABLES: [&str; 8] = [
    "region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem",
];

/// A binarized feature tree stored as an arena; node 0 is the root.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FeatTree {
    /// Node feature vectors.
    pub feats: Vec<Vec<f64>>,
    /// Left child index per node.
    pub left: Vec<Option<usize>>,
    /// Right child index per node.
    pub right: Vec<Option<usize>>,
}

impl FeatTree {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.feats.len()
    }

    /// True when the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.feats.is_empty()
    }
}

/// Featurizes one plan into a binary feature tree.
pub fn featurize(plan: &PlanNode) -> FeatTree {
    let mut tree = FeatTree {
        feats: Vec::new(),
        left: Vec::new(),
        right: Vec::new(),
    };
    build(plan, &mut tree);
    tree
}

fn build(node: &PlanNode, tree: &mut FeatTree) -> usize {
    let idx = tree.feats.len();
    tree.feats.push(node_features(node));
    tree.left.push(None);
    tree.right.push(None);

    match node.children.len() {
        0 => {}
        1 => {
            let l = build(&node.children[0], tree);
            tree.left[idx] = Some(l);
        }
        2 => {
            let l = build(&node.children[0], tree);
            let r = build(&node.children[1], tree);
            tree.left[idx] = Some(l);
            tree.right[idx] = Some(r);
        }
        _ => {
            // Fold >2 children left-deep under synthetic copies of this node
            // (our optimizers never emit >2 today, but stay total).
            let l = build(&node.children[0], tree);
            tree.left[idx] = Some(l);
            let mut anchor = idx;
            for child in &node.children[1..] {
                let synth = tree.feats.len();
                tree.feats.push(node_features(node));
                tree.left.push(None);
                tree.right.push(None);
                let r = build(child, tree);
                tree.left[synth] = Some(r);
                tree.right[anchor] = Some(synth);
                anchor = synth;
            }
        }
    }
    idx
}

/// The feature vector of a single plan node.
pub fn node_features(node: &PlanNode) -> Vec<f64> {
    let mut f = vec![0.0; NODE_FEATURE_DIM];
    f[node.node_type.ordinal()] = 1.0;
    f[COST_SLOT] = (1.0 + node.total_cost.max(0.0)).log10() / 8.0;
    f[ROWS_SLOT] = (1.0 + node.plan_rows.max(0.0)).log10() / 8.0;
    f[INDEX_SLOT] = if node.index.is_some() { 1.0 } else { 0.0 };
    if let Some(rel) = &node.relation {
        match TPCH_TABLES.iter().position(|t| t == rel) {
            Some(i) => f[REL_BASE + i] = 1.0,
            None => f[REL_UNKNOWN_SLOT] = 1.0,
        }
    }
    f
}

/// True when `t` is one of the join node types (used by sanity tests and
/// the ablation that retrieves on raw plan features).
pub fn is_join_feature(feat: &[f64]) -> bool {
    NodeType::ALL
        .iter()
        .enumerate()
        .any(|(i, t)| t.is_join() && feat[i] == 1.0)
}

/// A flat, order-insensitive summary of a plan's features — the ablation
/// baseline for retrieval keys (A1 in DESIGN.md): sums of node one-hots plus
/// cost/row aggregates, no tree structure.
pub fn flat_summary(plan: &PlanNode) -> Vec<f64> {
    let mut acc = vec![0.0; NODE_FEATURE_DIM];
    plan.walk(&mut |n| {
        let f = node_features(n);
        for (a, v) in acc.iter_mut().zip(f.iter()) {
            *a += v;
        }
    });
    let n = plan.node_count() as f64;
    // Normalize count features by node count; keep cost/rows as means.
    for v in acc.iter_mut() {
        *v /= n;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_htap::plan::PlanOp;
    use qpe_sql::binder::BoundExpr;
    use qpe_sql::value::Value;

    fn scan(rel: &str) -> PlanNode {
        PlanNode::new(
            NodeType::TableScan,
            PlanOp::TableScan { table_slot: 0, columns: vec![0], pushed: None },
        )
        .with_relation(rel)
        .with_estimates(10.0, 100.0)
    }

    fn filter(child: PlanNode) -> PlanNode {
        PlanNode::new(
            NodeType::Filter,
            PlanOp::Filter { predicate: BoundExpr::Literal(Value::Int(1)) },
        )
        .with_estimates(20.0, 50.0)
        .with_child(child)
    }

    fn join(l: PlanNode, r: PlanNode) -> PlanNode {
        PlanNode::new(
            NodeType::NestedLoopJoin,
            PlanOp::NestedLoopJoin { conds: vec![], residual: None },
        )
        .with_estimates(100.0, 500.0)
        .with_child(l)
        .with_child(r)
    }

    #[test]
    fn featurize_preserves_structure() {
        let plan = join(filter(scan("customer")), scan("orders"));
        let t = featurize(&plan);
        assert_eq!(t.len(), 4);
        // root is the join with two children
        assert!(t.left[0].is_some() && t.right[0].is_some());
        // filter has only a left child
        let f_idx = t.left[0].unwrap();
        assert!(t.left[f_idx].is_some() && t.right[f_idx].is_none());
        assert!(!t.is_empty());
    }

    #[test]
    fn node_feature_layout() {
        let n = scan("customer").with_index("c_custkey");
        let f = node_features(&n);
        assert_eq!(f.len(), NODE_FEATURE_DIM);
        assert_eq!(f[NodeType::TableScan.ordinal()], 1.0);
        assert_eq!(f[INDEX_SLOT], 1.0, "index flag");
        assert_eq!(f[REL_BASE + 5], 1.0, "customer one-hot");
        assert!(f[COST_SLOT] > 0.0 && f[ROWS_SLOT] > 0.0);
    }

    #[test]
    fn unknown_relation_uses_fallback_slot() {
        let f = node_features(&scan("weird_table"));
        assert_eq!(f[REL_UNKNOWN_SLOT], 1.0);
        assert_eq!(f[REL_BASE..REL_UNKNOWN_SLOT].iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn no_relation_leaves_slots_zero() {
        let plan = filter(scan("orders"));
        let f = node_features(&plan);
        assert_eq!(f[REL_BASE..NODE_FEATURE_DIM].iter().sum::<f64>(), 0.0);
    }

    #[test]
    fn dml_node_types_one_hot_without_collision() {
        let ins = PlanNode::new(
            NodeType::Insert,
            PlanOp::Insert { table: "customer".into(), rows: 1 },
        )
        .with_relation("customer")
        .with_estimates(1.0, 1.0);
        let f = node_features(&ins);
        assert_eq!(f[NodeType::Insert.ordinal()], 1.0);
        // one-hot region and scalar slots stay disjoint
        assert!(NodeType::Insert.ordinal() < COST_SLOT);
        assert_eq!(f[REL_BASE + 5], 1.0);
    }

    #[test]
    fn cost_features_are_log_scaled() {
        let mut a = scan("orders");
        a.total_cost = 0.0;
        let mut b = scan("orders");
        b.total_cost = 1e7;
        let fa = node_features(&a);
        let fb = node_features(&b);
        assert!(fa[COST_SLOT] < fb[COST_SLOT]);
        assert!(fb[COST_SLOT] <= 1.0, "stays bounded: {}", fb[COST_SLOT]);
    }

    #[test]
    fn join_feature_detector() {
        let f = node_features(&join(scan("a"), scan("b")));
        assert!(is_join_feature(&f));
        assert!(!is_join_feature(&node_features(&scan("a"))));
    }

    #[test]
    fn flat_summary_is_order_insensitive_at_top() {
        let p1 = join(scan("customer"), scan("orders"));
        let p2 = join(scan("orders"), scan("customer"));
        assert_eq!(flat_summary(&p1), flat_summary(&p2));
    }

    #[test]
    fn deep_trees_binarize() {
        let deep = filter(filter(filter(scan("nation"))));
        let t = featurize(&deep);
        assert_eq!(t.len(), 4);
        // chain of left children
        let mut idx = 0;
        let mut depth = 0;
        while let Some(l) = t.left[idx] {
            idx = l;
            depth += 1;
        }
        assert_eq!(depth, 3);
    }
}
