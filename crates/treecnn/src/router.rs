//! The smart-router facade: predict the faster engine, emit pair embeddings.

use crate::features::featurize;
use crate::network::RouterNetwork;
use crate::train::{PlanPairExample, TrainReport, Trainer, TrainerConfig};
use qpe_htap::engine::EngineKind;
use qpe_htap::plan::PlanNode;
use serde::{Deserialize, Serialize};

/// Width of the plan-pair embedding — the paper's 16-dim retrieval key.
pub const PAIR_EMBEDDING_DIM: usize = 16;

/// A plan-pair embedding.
pub type PairEmbedding = Vec<f64>;

/// Router construction options.
#[derive(Debug, Clone, Serialize, Deserialize, Default)]
pub struct RouterConfig {
    /// Trainer hyperparameters.
    pub trainer: TrainerConfig,
}

/// The trained smart router.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SmartRouter {
    network: RouterNetwork,
}

impl SmartRouter {
    /// Trains a router on labelled plan pairs.
    pub fn train(examples: &[PlanPairExample], config: TrainerConfig) -> (Self, TrainReport) {
        let (network, report) = Trainer::new(config).train(examples);
        (SmartRouter { network }, report)
    }

    /// Wraps an already-trained network.
    pub fn from_network(network: RouterNetwork) -> Self {
        SmartRouter { network }
    }

    /// Predicts the faster engine with its confidence.
    pub fn route(&self, tp_plan: &PlanNode, ap_plan: &PlanNode) -> (EngineKind, f64) {
        let probs = self
            .network
            .predict(&featurize(tp_plan), &featurize(ap_plan));
        if probs[1] > probs[0] {
            (EngineKind::Ap, probs[1])
        } else {
            (EngineKind::Tp, probs[0])
        }
    }

    /// The 16-dim plan-pair embedding used as the knowledge-base key.
    pub fn embed_pair(&self, tp_plan: &PlanNode, ap_plan: &PlanNode) -> PairEmbedding {
        self.network
            .pair_embedding(&featurize(tp_plan), &featurize(ap_plan))
    }

    /// The underlying network (for size checks and persistence).
    pub fn network(&self) -> &RouterNetwork {
        &self.network
    }

    /// Serializes to JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string(self).expect("router serializes")
    }

    /// Deserializes from JSON.
    pub fn from_json(s: &str) -> Result<Self, serde_json::Error> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_htap::plan::{NodeType, PlanOp};

    fn plan(cost: f64, t: NodeType) -> PlanNode {
        PlanNode::new(t, PlanOp::Hash)
            .with_estimates(cost, 100.0)
            .with_child(
                PlanNode::new(
                    NodeType::TableScan,
                    PlanOp::TableScan { table_slot: 0, columns: vec![0], pushed: None },
                )
                .with_relation("orders")
                .with_estimates(cost / 2.0, 1000.0),
            )
    }

    fn quick_router() -> SmartRouter {
        let examples: Vec<PlanPairExample> = (0..8)
            .map(|i| {
                PlanPairExample::from_plans(
                    &plan(10.0 * (i + 1) as f64, NodeType::NestedLoopJoin),
                    &plan(5.0, NodeType::HashJoin),
                    i % 2 == 0,
                )
            })
            .collect();
        let cfg = TrainerConfig {
            epochs: 2,
            batch_size: 4,
            learning_rate: 1e-3,
            seed: 1,
        };
        SmartRouter::train(&examples, cfg).0
    }

    #[test]
    fn route_returns_confidence() {
        let r = quick_router();
        let (engine, conf) = r.route(
            &plan(10.0, NodeType::NestedLoopJoin),
            &plan(5.0, NodeType::HashJoin),
        );
        assert!((0.5..=1.0).contains(&conf));
        assert!(matches!(engine, EngineKind::Tp | EngineKind::Ap));
    }

    #[test]
    fn pair_embedding_has_paper_dimensions() {
        let r = quick_router();
        let e = r.embed_pair(
            &plan(10.0, NodeType::NestedLoopJoin),
            &plan(5.0, NodeType::HashJoin),
        );
        assert_eq!(e.len(), PAIR_EMBEDDING_DIM);
    }

    #[test]
    fn json_roundtrip_preserves_behavior() {
        let r = quick_router();
        let r2 = SmartRouter::from_json(&r.to_json()).unwrap();
        let tp = plan(10.0, NodeType::NestedLoopJoin);
        let ap = plan(5.0, NodeType::HashJoin);
        // JSON float formatting is shortest-roundtrip; embeddings must agree
        // to well below any retrieval-relevant tolerance.
        let e1 = r.embed_pair(&tp, &ap);
        let e2 = r2.embed_pair(&tp, &ap);
        for (a, b) in e1.iter().zip(e2.iter()) {
            assert!((a - b).abs() < 1e-9, "{a} vs {b}");
        }
    }
}
