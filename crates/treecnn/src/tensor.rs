//! Minimal dense linear algebra for the tree-CNN.
//!
//! The router has a few thousand parameters; plain `Vec<f64>` matrices with
//! straightforward loops are more than fast enough (and keep the crate free
//! of ML-framework dependencies, as the paper's <1 MB model demands).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A row-major dense matrix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mat {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major data, `data[r * cols + c]`.
    pub data: Vec<f64>,
}

impl Mat {
    /// Zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Mat { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Xavier/Glorot-uniform initialized matrix.
    pub fn xavier(rows: usize, cols: usize, rng: &mut StdRng) -> Self {
        let bound = (6.0 / (rows + cols) as f64).sqrt();
        let data = (0..rows * cols)
            .map(|_| rng.gen_range(-bound..bound))
            .collect();
        Mat { rows, cols, data }
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f64 {
        self.data[r * self.cols + c]
    }

    /// Mutable element accessor.
    #[inline]
    pub fn get_mut(&mut self, r: usize, c: usize) -> &mut f64 {
        &mut self.data[r * self.cols + c]
    }

    /// `y += self * x` (matrix-vector product accumulated into `y`).
    pub fn matvec_acc(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.cols);
        debug_assert_eq!(y.len(), self.rows);
        for (r, yr) in y.iter_mut().enumerate() {
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            let mut acc = 0.0;
            for (w, v) in row.iter().zip(x.iter()) {
                acc += w * v;
            }
            *yr += acc;
        }
    }

    /// `y = self * x`.
    pub fn matvec(&self, x: &[f64]) -> Vec<f64> {
        let mut y = vec![0.0; self.rows];
        self.matvec_acc(x, &mut y);
        y
    }

    /// `y += selfᵀ * x` (transposed matrix-vector product, for backprop).
    pub fn matvec_t_acc(&self, x: &[f64], y: &mut [f64]) {
        debug_assert_eq!(x.len(), self.rows);
        debug_assert_eq!(y.len(), self.cols);
        for (r, &g) in x.iter().enumerate() {
            if g == 0.0 {
                continue;
            }
            let row = &self.data[r * self.cols..(r + 1) * self.cols];
            for (yc, w) in y.iter_mut().zip(row.iter()) {
                *yc += g * w;
            }
        }
    }

    /// `self += g ⊗ x` (outer-product accumulation, for weight gradients).
    pub fn outer_acc(&mut self, g: &[f64], x: &[f64]) {
        debug_assert_eq!(g.len(), self.rows);
        debug_assert_eq!(x.len(), self.cols);
        for (r, &gr) in g.iter().enumerate() {
            if gr == 0.0 {
                continue;
            }
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (w, v) in row.iter_mut().zip(x.iter()) {
                *w += gr * v;
            }
        }
    }

    /// Number of parameters.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the matrix has no elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

/// In-place ReLU; returns a mask of active units for backprop.
pub fn relu_inplace(x: &mut [f64]) -> Vec<bool> {
    x.iter_mut()
        .map(|v| {
            if *v > 0.0 {
                true
            } else {
                *v = 0.0;
                false
            }
        })
        .collect()
}

/// Numerically-stable softmax.
pub fn softmax(logits: &[f64]) -> Vec<f64> {
    let max = logits.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let exps: Vec<f64> = logits.iter().map(|&v| (v - max).exp()).collect();
    let sum: f64 = exps.iter().sum();
    exps.into_iter().map(|e| e / sum).collect()
}

/// The Adam optimizer over a flat parameter view.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Adam {
    lr: f64,
    beta1: f64,
    beta2: f64,
    eps: f64,
    t: u64,
    m: Vec<f64>,
    v: Vec<f64>,
}

impl Adam {
    /// Creates an optimizer for `n` parameters.
    pub fn new(n: usize, lr: f64) -> Self {
        Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
            m: vec![0.0; n],
            v: vec![0.0; n],
        }
    }

    /// Applies one update step: `params -= lr * m̂ / (√v̂ + ε)`.
    pub fn step(&mut self, params: &mut [f64], grads: &[f64]) {
        assert_eq!(params.len(), self.m.len());
        assert_eq!(grads.len(), self.m.len());
        self.t += 1;
        let b1t = 1.0 - self.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.beta2.powi(self.t as i32);
        for i in 0..params.len() {
            self.m[i] = self.beta1 * self.m[i] + (1.0 - self.beta1) * grads[i];
            self.v[i] = self.beta2 * self.v[i] + (1.0 - self.beta2) * grads[i] * grads[i];
            let mhat = self.m[i] / b1t;
            let vhat = self.v[i] / b2t;
            params[i] -= self.lr * mhat / (vhat.sqrt() + self.eps);
        }
    }
}

/// Deterministic RNG for weight init.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matvec_basics() {
        let m = Mat { rows: 2, cols: 3, data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0] };
        assert_eq!(m.matvec(&[1.0, 0.0, -1.0]), vec![-2.0, -2.0]);
    }

    #[test]
    fn matvec_t_is_transpose() {
        let m = Mat { rows: 2, cols: 3, data: vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0] };
        let mut y = vec![0.0; 3];
        m.matvec_t_acc(&[1.0, 1.0], &mut y);
        assert_eq!(y, vec![5.0, 7.0, 9.0]);
    }

    #[test]
    fn outer_acc_accumulates() {
        let mut m = Mat::zeros(2, 2);
        m.outer_acc(&[1.0, 2.0], &[3.0, 4.0]);
        assert_eq!(m.data, vec![3.0, 4.0, 6.0, 8.0]);
        m.outer_acc(&[1.0, 0.0], &[1.0, 1.0]);
        assert_eq!(m.data, vec![4.0, 5.0, 6.0, 8.0]);
    }

    #[test]
    fn relu_masks() {
        let mut x = vec![-1.0, 0.0, 2.0];
        let mask = relu_inplace(&mut x);
        assert_eq!(x, vec![0.0, 0.0, 2.0]);
        assert_eq!(mask, vec![false, false, true]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_stable() {
        let p = softmax(&[1000.0, 1001.0]);
        assert!((p.iter().sum::<f64>() - 1.0).abs() < 1e-12);
        assert!(p[1] > p[0]);
        let q = softmax(&[0.0, 0.0, 0.0]);
        assert!((q[0] - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn adam_reduces_quadratic_loss() {
        // minimize (x-3)^2
        let mut params = vec![0.0];
        let mut adam = Adam::new(1, 0.1);
        for _ in 0..200 {
            let grad = vec![2.0 * (params[0] - 3.0)];
            adam.step(&mut params, &grad);
        }
        assert!((params[0] - 3.0).abs() < 0.05, "x={}", params[0]);
    }

    #[test]
    fn xavier_bounds() {
        let mut rng = seeded_rng(1);
        let m = Mat::xavier(10, 10, &mut rng);
        let bound = (6.0f64 / 20.0).sqrt();
        assert!(m.data.iter().all(|v| v.abs() <= bound));
        assert_eq!(m.len(), 100);
        assert!(!m.is_empty());
    }

    #[test]
    fn xavier_is_deterministic() {
        let a = Mat::xavier(4, 4, &mut seeded_rng(7));
        let b = Mat::xavier(4, 4, &mut seeded_rng(7));
        assert_eq!(a, b);
    }
}
