//! Property-based tests for the tree-CNN: featurization totality, network
//! numeric hygiene, and gradient correctness on random plan shapes.

use proptest::prelude::*;
use qpe_htap::plan::{NodeType, PlanNode, PlanOp};
use qpe_treecnn::features::{featurize, NODE_FEATURE_DIM};
use qpe_treecnn::network::RouterNetwork;

/// Strategy over random plan trees of bounded depth.
fn plan_tree() -> impl Strategy<Value = PlanNode> {
    let leaf = (0.0f64..1e7, 0.0f64..1e7, 0usize..8).prop_map(|(cost, rows, rel)| {
        let tables = ["region", "nation", "supplier", "part", "partsupp", "customer", "orders", "lineitem"];
        PlanNode::new(
            NodeType::TableScan,
            PlanOp::TableScan { table_slot: 0, columns: vec![0], pushed: None },
        )
        .with_relation(tables[rel])
        .with_estimates(cost, rows)
    });
    leaf.prop_recursive(4, 24, 2, |inner| {
        prop_oneof![
            (inner.clone(), 0.0f64..1e7).prop_map(|(child, cost)| {
                PlanNode::new(
                    NodeType::Filter,
                    PlanOp::Filter {
                        predicate: qpe_sql::binder::BoundExpr::Literal(
                            qpe_sql::value::Value::Int(1),
                        ),
                    },
                )
                .with_estimates(cost, child.plan_rows / 2.0)
                .with_child(child)
            }),
            (inner.clone(), inner, 0.0f64..1e7).prop_map(|(l, r, cost)| {
                PlanNode::new(
                    NodeType::HashJoin,
                    PlanOp::HashJoin { probe_keys: vec![], build_keys: vec![] },
                )
                .with_estimates(cost, l.plan_rows.max(r.plan_rows))
                .with_child(l)
                .with_child(r)
            }),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// Featurization is total: node count preserved, features bounded.
    #[test]
    fn featurize_total_and_bounded(plan in plan_tree()) {
        let tree = featurize(&plan);
        prop_assert_eq!(tree.len(), plan.node_count());
        for f in &tree.feats {
            prop_assert_eq!(f.len(), NODE_FEATURE_DIM);
            for v in f {
                prop_assert!(v.is_finite());
                prop_assert!((-0.01..=1.01).contains(v), "feature {v} out of range");
            }
        }
    }

    /// Forward passes are finite and produce proper probabilities for any
    /// tree pair.
    #[test]
    fn forward_is_numerically_sane(tp in plan_tree(), ap in plan_tree()) {
        let net = RouterNetwork::new(9);
        let fwd = net.forward_pair(&featurize(&tp), &featurize(&ap));
        prop_assert!((fwd.probs[0] + fwd.probs[1] - 1.0).abs() < 1e-9);
        prop_assert!(fwd.probs.iter().all(|p| p.is_finite() && *p >= 0.0));
        prop_assert!(fwd.pair.iter().all(|v| v.is_finite() && v.abs() <= 1.0));
    }

    /// Gradients are finite for any tree pair and both labels.
    #[test]
    fn gradients_finite(tp in plan_tree(), ap in plan_tree(), label in 0usize..2) {
        let net = RouterNetwork::new(10);
        let tpf = featurize(&tp);
        let apf = featurize(&ap);
        let fwd = net.forward_pair(&tpf, &apf);
        let mut grads = RouterNetwork::zeros_like();
        let loss = net.backward_pair(&tpf, &apf, &fwd, label, &mut grads);
        prop_assert!(loss.is_finite() && loss >= 0.0);
        prop_assert!(grads.flat().iter().all(|g| g.is_finite()));
    }

    /// Embeddings are permutation-sensitive: swapping the pair halves swaps
    /// the embedding halves.
    #[test]
    fn pair_embedding_order(a in plan_tree(), b in plan_tree()) {
        let net = RouterNetwork::new(11);
        let fa = featurize(&a);
        let fb = featurize(&b);
        let ab = net.pair_embedding(&fa, &fb);
        let ba = net.pair_embedding(&fb, &fa);
        let half = ab.len() / 2;
        prop_assert_eq!(&ab[..half], &ba[half..]);
        prop_assert_eq!(&ab[half..], &ba[..half]);
    }
}
