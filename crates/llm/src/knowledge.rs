//! Knowledge-base entry payloads.
//!
//! Each entry mirrors the paper's §IV tuple: `<plan pair encoding, plan
//! details, execution result, expert explanation>`. The embedding key lives
//! in the vector store; this is the value.

use crate::factors::FactorKind;
use qpe_htap::engine::EngineKind;
use serde::{Deserialize, Serialize};

/// One historical query with its expert explanation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct KnowledgeEntry {
    /// The historical SQL text.
    pub sql: String,
    /// TP plan details (EXPLAIN JSON, as the paper stores them).
    pub tp_plan: serde_json::Value,
    /// AP plan details.
    pub ap_plan: serde_json::Value,
    /// Execution result: which engine was faster.
    pub winner: EngineKind,
    /// Loser/winner latency ratio observed.
    pub speedup: f64,
    /// The expert's primary factor.
    pub primary_factor: FactorKind,
    /// All factors the expert cited.
    pub factors: Vec<FactorKind>,
    /// The expert's natural-language explanation.
    pub explanation: String,
}

impl KnowledgeEntry {
    /// Renders the entry as a KNOWLEDGE block for the prompt (paper format:
    /// historical query + plan pair + execution result + expert explanation).
    pub fn render(&self) -> String {
        format!(
            "KNOWLEDGE:\n  historical query: {}\n  historical TP plan: {}\n  \
             historical AP plan: {}\n  historical execution result: {} is faster \
             ({:.1}x)\n  historical expert explanation: {}\n",
            self.sql,
            compact_json(&self.tp_plan),
            compact_json(&self.ap_plan),
            self.winner,
            self.speedup,
            self.explanation
        )
    }
}

fn compact_json(v: &serde_json::Value) -> String {
    serde_json::to_string(v).unwrap_or_else(|_| "{}".into())
}

#[cfg(test)]
mod tests {
    use super::*;
    use serde_json::json;

    fn entry() -> KnowledgeEntry {
        KnowledgeEntry {
            sql: "SELECT COUNT(*) FROM orders".into(),
            tp_plan: json!({"Node Type": "Table Scan"}),
            ap_plan: json!({"Node Type": "Table Scan"}),
            winner: EngineKind::Ap,
            speedup: 3.5,
            primary_factor: FactorKind::ColumnarScanAdvantage,
            factors: vec![FactorKind::ColumnarScanAdvantage],
            explanation: "AP scans one column.".into(),
        }
    }

    #[test]
    fn render_contains_all_sections() {
        let text = entry().render();
        assert!(text.contains("historical query: SELECT COUNT(*)"));
        assert!(text.contains("historical execution result: AP is faster (3.5x)"));
        assert!(text.contains("historical expert explanation: AP scans one column."));
        assert!(text.contains("Table Scan"));
    }

    #[test]
    fn serde_roundtrip() {
        let e = entry();
        let json = serde_json::to_string(&e).unwrap();
        let e2: KnowledgeEntry = serde_json::from_str(&json).unwrap();
        assert_eq!(e, e2);
    }
}
