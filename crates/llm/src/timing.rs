//! LLM latency model.
//!
//! The paper's end-to-end timing (§VI-B): LLM "thinking" is fast (≤ 2 s),
//! generation averages ~10 s, retrieval and encoding are sub-millisecond.
//! We model thinking as prompt-length-bound (capped at 2 s) and generation
//! as output-token-bound, matching typical streaming-decoder behavior.

use serde::{Deserialize, Serialize};

/// Deterministic LLM timing estimates (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LlmTiming {
    /// Prompt-processing ("thinking") time.
    pub think_ns: u64,
    /// Token-by-token generation time.
    pub generation_ns: u64,
}

/// Per-prompt-token processing cost.
pub const THINK_NS_PER_TOKEN: u64 = 2_000_000; // 2 ms
/// Thinking cap — the paper observes ≤ 2 s.
pub const THINK_CAP_NS: u64 = 2_000_000_000;
/// Per-output-token decode cost (~55 ms/token ⇒ ~10 s for a ~180-token
/// explanation, the paper's average).
pub const GEN_NS_PER_TOKEN: u64 = 55_000_000;

impl LlmTiming {
    /// Estimates timing for a prompt/output token pair.
    pub fn estimate(prompt_tokens: usize, output_tokens: usize) -> Self {
        LlmTiming {
            think_ns: (prompt_tokens as u64 * THINK_NS_PER_TOKEN).min(THINK_CAP_NS),
            generation_ns: output_tokens as u64 * GEN_NS_PER_TOKEN,
        }
    }

    /// Total LLM-side time.
    pub fn total_ns(&self) -> u64 {
        self.think_ns + self.generation_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thinking_is_capped_at_two_seconds() {
        let t = LlmTiming::estimate(100_000, 10);
        assert_eq!(t.think_ns, THINK_CAP_NS);
    }

    #[test]
    fn typical_explanation_takes_about_ten_seconds() {
        let t = LlmTiming::estimate(800, 180);
        let gen_s = t.generation_ns as f64 / 1e9;
        assert!((8.0..12.0).contains(&gen_s), "generation {gen_s}s");
        assert!(t.think_ns <= THINK_CAP_NS);
    }

    #[test]
    fn total_is_sum() {
        let t = LlmTiming::estimate(10, 10);
        assert_eq!(t.total_ns(), t.think_ns + t.generation_ns);
    }

    #[test]
    fn zero_tokens_zero_time() {
        let t = LlmTiming::estimate(0, 0);
        assert_eq!(t.total_ns(), 0);
    }
}
