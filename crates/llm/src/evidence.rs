//! Plan evidence: what an LLM can legitimately read off the plan pair.
//!
//! Unlike [`crate::factors`], this module sees only what the paper's prompt
//! gives the LLM — the two EXPLAIN trees, the SQL, the execution result
//! (which engine won), and optional user context. No work counters, no
//! ground truth.

use crate::factors::FactorKind;
use qpe_htap::engine::EngineKind;
use qpe_htap::plan::{NodeType, PlanNode};
use qpe_htap::storage::TableFreshness;
use serde::{Deserialize, Serialize};

/// Structured facts readable from a plan pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanEvidence {
    /// TP plan contains a naive nested-loop join.
    pub tp_nested_loop: bool,
    /// TP plan contains an index nested-loop join.
    pub tp_index_nlj: bool,
    /// TP plan contains an index scan.
    pub tp_index_scan: bool,
    /// TP plan contains a full sort.
    pub tp_full_sort: bool,
    /// AP plan contains hash joins.
    pub ap_hash_join: bool,
    /// AP plan contains a dedicated top-N operator.
    pub ap_topn: bool,
    /// The query aggregates.
    pub has_aggregate: bool,
    /// The query is ORDER BY + LIMIT shaped.
    pub is_top_n: bool,
    /// OFFSET value if present.
    pub offset: u64,
    /// LIMIT value if present.
    pub limit: Option<u64>,
    /// Number of joins in the TP plan.
    pub join_count: usize,
    /// Largest estimated scan cardinality anywhere in either plan.
    pub max_scan_rows: f64,
    /// A `SUBSTRING`/function appears in some filter (visible in plan
    /// `Detail` fields and the SQL).
    pub function_over_column: bool,
    /// Relations scanned (union over both plans).
    pub relations: Vec<String>,
    /// Which engine the execution result reports as faster — the paper's
    /// QUESTION includes the "new execution result".
    pub winner: EngineKind,
    /// Freshness of the scanned relations (delta-region backlog + version
    /// stamp) at execution time — writes buffered since the last compaction
    /// that the AP engine read through its delta-aware scans. Restricted to
    /// relations the plans actually touch.
    pub freshness: Vec<TableFreshness>,
}

impl PlanEvidence {
    /// Extracts evidence from the QUESTION materials. `freshness` is the
    /// per-table snapshot the question carries (filtered here to scanned
    /// relations).
    pub fn extract(
        sql: &str,
        tp_plan: &PlanNode,
        ap_plan: &PlanNode,
        winner: EngineKind,
        freshness: &[TableFreshness],
    ) -> Self {
        let mut relations = Vec::new();
        let mut max_scan_rows: f64 = 0.0;
        for plan in [tp_plan, ap_plan] {
            plan.walk(&mut |n| {
                if let Some(rel) = &n.relation {
                    if !relations.contains(rel) {
                        relations.push(rel.clone());
                    }
                    max_scan_rows = max_scan_rows.max(n.plan_rows);
                }
            });
        }
        let mut function_over_column = sql.to_ascii_uppercase().contains("SUBSTRING");
        tp_plan.walk(&mut |n| {
            if let Some(d) = &n.detail {
                if d.contains("SUBSTRING") {
                    function_over_column = true;
                }
            }
        });
        // limit/offset read from plan Limit / TopNSort nodes
        let mut offset = 0u64;
        let mut limit = None;
        for plan in [tp_plan, ap_plan] {
            plan.walk(&mut |n| {
                match &n.op {
                    qpe_htap::plan::PlanOp::Limit { limit: l, offset: o } => {
                        if *l != u64::MAX {
                            limit = Some(*l);
                        }
                        offset = offset.max(*o);
                    }
                    qpe_htap::plan::PlanOp::TopNSort { limit: l, offset: o, .. } => {
                        limit = Some(*l);
                        offset = offset.max(*o);
                    }
                    _ => {}
                }
            });
        }
        let tp_full_sort = tp_plan.count_type(NodeType::Sort) > 0;
        let ap_topn = ap_plan.count_type(NodeType::TopNSort) > 0;
        PlanEvidence {
            tp_nested_loop: tp_plan.count_type(NodeType::NestedLoopJoin) > 0,
            tp_index_nlj: tp_plan.count_type(NodeType::IndexNLJoin) > 0,
            tp_index_scan: tp_plan.count_type(NodeType::IndexScan) > 0,
            tp_full_sort,
            ap_hash_join: ap_plan.count_type(NodeType::HashJoin) > 0,
            ap_topn,
            has_aggregate: tp_plan.count_type(NodeType::GroupAggregate) > 0
                || ap_plan.count_type(NodeType::HashAggregate) > 0,
            is_top_n: limit.is_some() && (tp_full_sort || ap_topn || tp_plan.count_type(NodeType::IndexScan) > 0),
            offset,
            limit,
            join_count: tp_plan.count_type(NodeType::NestedLoopJoin)
                + tp_plan.count_type(NodeType::IndexNLJoin),
            max_scan_rows,
            function_over_column,
            freshness: freshness
                .iter()
                .filter(|f| relations.contains(&f.table))
                .cloned()
                .collect(),
            relations,
            winner,
        }
    }

    /// Candidate factors this evidence can support for the reported winner.
    ///
    /// This is deliberately *over-complete* — several candidates usually
    /// survive, and retrieved expert knowledge is what picks the primary
    /// one. Ordering is a weak plausibility heuristic only.
    pub fn candidate_factors(&self) -> Vec<FactorKind> {
        let mut out = Vec::new();
        match self.winner {
            EngineKind::Ap => {
                if self.tp_nested_loop && self.ap_hash_join {
                    out.push(FactorKind::HashJoinVsNestedLoop);
                }
                if self.tp_nested_loop && !self.tp_index_scan && !self.tp_index_nlj {
                    out.push(FactorKind::NoUsableIndex);
                }
                if self.function_over_column && !self.tp_index_scan {
                    out.push(FactorKind::FunctionDisablesIndex);
                }
                if self.is_top_n && self.tp_full_sort && self.ap_topn {
                    out.push(FactorKind::TopNHeapAdvantage);
                }
                if self.is_top_n && self.offset >= 1000 {
                    out.push(FactorKind::LargeOffsetPenalty);
                }
                // Columnar/row-width framing is almost always *available* as
                // an AP story; listing it last models "minor factor unless
                // knowledge promotes it".
                out.push(FactorKind::ColumnarScanAdvantage);
                out.push(FactorKind::RowStoreOverhead);
                if self.has_aggregate {
                    out.push(FactorKind::HashAggregateAdvantage);
                }
            }
            EngineKind::Tp => {
                if self.tp_index_nlj {
                    out.push(FactorKind::IndexNestedLoopAdvantage);
                }
                if self.is_top_n && self.tp_index_scan && !self.tp_full_sort {
                    out.push(FactorKind::IndexOrderedTopN);
                }
                if self.tp_index_scan && !self.is_top_n {
                    out.push(FactorKind::IndexLookupAdvantage);
                }
                // Small inputs: AP startup dominating is always a candidate
                // story for a TP win.
                out.push(FactorKind::ApFixedOverhead);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_htap::engine::HtapSystem;
    use qpe_htap::tpch::TpchConfig;

    fn system() -> HtapSystem {
        HtapSystem::new(&TpchConfig::with_scale(0.005))
    }

    fn evidence_for(sql: &str) -> PlanEvidence {
        let sys = system();
        let out = sys.run_sql(sql).unwrap();
        let fresh = sys.database().freshness_all();
        PlanEvidence::extract(sql, &out.tp.plan, &out.ap.plan, out.winner(), &fresh)
    }

    #[test]
    fn example1_evidence() {
        let ev = evidence_for(
            "SELECT COUNT(*) FROM customer, nation, orders \
             WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40') \
             AND c_mktsegment = 'machinery' \
             AND n_name = 'egypt' AND o_orderstatus = 'p' \
             AND o_custkey = c_custkey AND n_nationkey = c_nationkey",
        );
        assert!(ev.tp_nested_loop);
        assert!(ev.ap_hash_join);
        assert!(ev.has_aggregate);
        assert!(ev.function_over_column);
        assert_eq!(ev.join_count, 2);
        assert_eq!(ev.relations.len(), 3);
    }

    #[test]
    fn point_lookup_evidence() {
        let ev = evidence_for("SELECT c_name FROM customer WHERE c_custkey = 7");
        assert!(ev.tp_index_scan);
        assert!(!ev.tp_nested_loop);
        assert_eq!(ev.winner, EngineKind::Tp);
        let candidates = ev.candidate_factors();
        assert!(candidates.contains(&FactorKind::IndexLookupAdvantage));
    }

    #[test]
    fn topn_evidence_reads_limit_offset() {
        let ev = evidence_for(
            "SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 10 OFFSET 20",
        );
        assert_eq!(ev.limit, Some(10));
        assert_eq!(ev.offset, 20);
        assert!(ev.is_top_n);
        assert!(ev.ap_topn);
    }

    #[test]
    fn candidates_always_argue_for_winner() {
        for sql in [
            "SELECT COUNT(*) FROM customer",
            "SELECT c_name FROM customer WHERE c_custkey = 7",
            "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey",
        ] {
            let ev = evidence_for(sql);
            for f in ev.candidate_factors() {
                assert_eq!(f.favors(), ev.winner, "{sql}: {f:?}");
            }
        }
    }

    #[test]
    fn freshness_restricted_to_scanned_relations() {
        let sys = system();
        sys.execute_statement(
            "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
             c_mktsegment) VALUES (900001, 'customer#900001', 4, '20-000-000-0000', 1.0, \
             'machinery')",
        )
        .unwrap();
        sys.execute_statement("DELETE FROM orders WHERE o_orderkey = 1").unwrap();
        let out = sys.run_sql("SELECT COUNT(*) FROM customer").unwrap();
        let fresh = sys.database().freshness_all();
        let ev = PlanEvidence::extract(
            &out.sql,
            &out.tp.plan,
            &out.ap.plan,
            out.winner(),
            &fresh,
        );
        // only the scanned relation's freshness survives extraction
        assert_eq!(ev.freshness.len(), 1);
        assert_eq!(ev.freshness[0].table, "customer");
        assert_eq!(ev.freshness[0].delta_rows, 1);
        assert!(ev.freshness[0].version > 0);
    }

    #[test]
    fn candidates_nonempty_for_all_outcomes() {
        for sql in [
            "SELECT COUNT(*) FROM nation",
            "SELECT COUNT(*) FROM customer, orders, lineitem \
             WHERE o_custkey = c_custkey AND l_orderkey = o_orderkey",
        ] {
            let ev = evidence_for(sql);
            assert!(!ev.candidate_factors().is_empty(), "{sql}");
        }
    }
}
