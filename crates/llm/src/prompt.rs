//! Prompt engineering — the paper's Table I, as code.
//!
//! The prompt has three authored parts (background, task description,
//! additional user context) plus the injected KNOWLEDGE blocks (retrieved
//! entries) and the QUESTION (new query + plan pair + execution result).

use crate::knowledge::KnowledgeEntry;
use qpe_htap::engine::EngineKind;
use serde::{Deserialize, Serialize};

/// Prompt construction options (the ablation switches of DESIGN.md A3).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PromptConfig {
    /// Include the "you are not allowed to compare the cost estimates"
    /// warning — the paper found omitting it re-enables a failure mode.
    pub forbid_cost_comparison: bool,
    /// Include retrieved KNOWLEDGE blocks (false = DBG-PT-style input).
    pub include_rag: bool,
    /// Scale-factor blurb for the background section.
    pub dataset_description: String,
}

impl Default for PromptConfig {
    fn default() -> Self {
        PromptConfig {
            forbid_cost_comparison: true,
            include_rag: true,
            dataset_description:
                "our dataset follows the default TPC-H schema and contains 100GB of data"
                    .to_string(),
        }
    }
}

/// The QUESTION block: the new query under explanation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Question {
    /// New query SQL.
    pub sql: String,
    /// New TP plan.
    pub tp_plan: qpe_htap::plan::PlanNode,
    /// New AP plan.
    pub ap_plan: qpe_htap::plan::PlanNode,
    /// New execution result — the paper's QUESTION includes it.
    pub winner: EngineKind,
    /// Per-table freshness of the scanned relations (delta backlog +
    /// version stamp) at execution time. Empty when the database was clean
    /// or the caller has no storage access.
    pub freshness: Vec<qpe_htap::storage::TableFreshness>,
}

/// A fully-assembled prompt.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Prompt {
    /// Construction options used.
    pub config: PromptConfig,
    /// Retrieved knowledge (empty without RAG) with retrieval distances.
    pub knowledge: Vec<(KnowledgeEntry, f64)>,
    /// The question.
    pub question: Question,
    /// Additional user-provided context lines (e.g. "an additional index has
    /// been created on the c_phone column in the customer table").
    pub user_context: Vec<String>,
}

impl Prompt {
    /// Background section (Table I, first block).
    pub fn background(&self) -> String {
        let mut s = String::from(
            "Background information: We are using RAG to assist database users in \
             understanding query performance across different engines in our HTAP \
             system\u{2014}specifically, why one engine performs faster while the other is \
             slower. Please ensure you are familiar with the TPC-H schema, and ",
        );
        s.push_str(&self.config.dataset_description);
        s.push_str(
            ". Our HTAP system has two database engines, \"TP\" and \"AP\". The TP \
             engine uses row-oriented storage, while the AP engine utilizes \
             column-oriented storage. Note that the optimizers for TP and AP engines \
             are distinct, leading to different execution plans.",
        );
        if self.config.forbid_cost_comparison {
            s.push_str(
                " Therefore, you are not allowed to compare the cost estimates of the \
                 execution plans from TP and AP engines.",
            );
        }
        s
    }

    /// Task-description section (Table I, second block).
    pub fn task_description(&self) -> String {
        let mut s = String::from(
            "Task description: I will input you the execution plans for the query from \
             both the TP and AP engines, please evaluate the likely performance of each \
             engine",
        );
        if self.config.forbid_cost_comparison {
            s.push_str(" without directly comparing the cost estimates");
        }
        s.push_str(
            ". Focus on factors such as the join methods used, the storage formats \
             (row-oriented vs. column-oriented), index utilization, and any potential \
             implications of the execution plan characteristics on query performance. \
             Your task is to explain which engine might perform better for this \
             specific query and why, based on these factors.",
        );
        if self.config.include_rag {
            s.push_str(
                " To assist you, we have a retriever that can find relevant historical \
                 plans from the knowledge base with precise performance explanation from \
                 our experts. You could use KNOWLEDGE to explain the new pair of plans \
                 in QUESTION. If the KNOWLEDGE does not contain the facts to answer the \
                 QUESTION return None.",
            );
        }
        s
    }

    /// Renders the complete prompt text sent to the (simulated) LLM.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&self.background());
        out.push_str("\n\n");
        out.push_str(&self.task_description());
        out.push_str("\n\n");
        if !self.user_context.is_empty() {
            out.push_str("Additional user context: ");
            out.push_str(&self.user_context.join(" "));
            out.push_str("\n\n");
        }
        if self.config.include_rag {
            for (entry, dist) in &self.knowledge {
                out.push_str(&entry.render());
                out.push_str(&format!("  (retrieval distance: {dist:.4})\n\n"));
            }
        }
        out.push_str(&format!(
            "QUESTION:\n  new query: {}\n  new TP plan: {}\n  new AP plan: {}\n  \
             new execution result: {} is faster\n",
            self.question.sql,
            serde_json::to_string(&self.question.tp_plan.explain_json()).unwrap_or_default(),
            serde_json::to_string(&self.question.ap_plan.explain_json()).unwrap_or_default(),
            self.question.winner,
        ));
        for f in &self.question.freshness {
            out.push_str(&format!(
                "  table freshness: {} version={} delta_rows={} deleted_rows={}\n",
                f.table, f.version, f.delta_rows, f.deleted_rows
            ));
        }
        out
    }

    /// Approximate token count of the rendered prompt (whitespace split —
    /// good enough for the latency model).
    pub fn token_count(&self) -> usize {
        self.render().split_whitespace().count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::FactorKind;
    use serde_json::json;

    fn question() -> Question {
        use qpe_htap::plan::{NodeType, PlanNode, PlanOp};
        let scan = |cost: f64| {
            PlanNode::new(
                NodeType::TableScan,
                PlanOp::TableScan { table_slot: 0, columns: vec![0], pushed: None },
            )
            .with_relation("orders")
            .with_estimates(cost, 100.0)
        };
        Question {
            sql: "SELECT COUNT(*) FROM orders".into(),
            tp_plan: scan(5213.0),
            ap_plan: scan(16_500_000.0),
            winner: EngineKind::Ap,
            freshness: vec![],
        }
    }

    fn entry() -> KnowledgeEntry {
        KnowledgeEntry {
            sql: "SELECT COUNT(*) FROM customer".into(),
            tp_plan: json!({"Node Type": "Table Scan"}),
            ap_plan: json!({"Node Type": "Table Scan"}),
            winner: EngineKind::Ap,
            speedup: 2.0,
            primary_factor: FactorKind::ColumnarScanAdvantage,
            factors: vec![FactorKind::ColumnarScanAdvantage],
            explanation: "columnar scan".into(),
        }
    }

    #[test]
    fn default_prompt_has_cost_warning() {
        let p = Prompt {
            config: PromptConfig::default(),
            knowledge: vec![(entry(), 0.1)],
            question: question(),
            user_context: vec![],
        };
        let text = p.render();
        assert!(text.contains("not allowed to compare the cost estimates"));
        assert!(text.contains("KNOWLEDGE:"));
        assert!(text.contains("QUESTION:"));
        assert!(text.contains("new execution result: AP is faster"));
    }

    #[test]
    fn ablated_prompt_drops_cost_warning() {
        let p = Prompt {
            config: PromptConfig {
                forbid_cost_comparison: false,
                ..Default::default()
            },
            knowledge: vec![],
            question: question(),
            user_context: vec![],
        };
        assert!(!p.render().contains("not allowed to compare"));
    }

    #[test]
    fn no_rag_prompt_has_no_knowledge_section() {
        let p = Prompt {
            config: PromptConfig {
                include_rag: false,
                ..Default::default()
            },
            knowledge: vec![(entry(), 0.1)],
            question: question(),
            user_context: vec![],
        };
        let text = p.render();
        assert!(!text.contains("KNOWLEDGE:"));
        assert!(!text.contains("return None"));
    }

    #[test]
    fn user_context_is_included() {
        let p = Prompt {
            config: PromptConfig::default(),
            knowledge: vec![],
            question: question(),
            user_context: vec![
                "Beyond the default indexes, an additional index has been created on \
                 the c_phone column in the customer table."
                    .into(),
            ],
        };
        assert!(p.render().contains("additional index has been created on the c_phone"));
    }

    #[test]
    fn token_count_is_positive_and_grows_with_knowledge() {
        let base = Prompt {
            config: PromptConfig::default(),
            knowledge: vec![],
            question: question(),
            user_context: vec![],
        };
        let with_k = Prompt {
            knowledge: vec![(entry(), 0.1), (entry(), 0.2)],
            ..base.clone()
        };
        assert!(base.token_count() > 50);
        assert!(with_k.token_count() > base.token_count());
    }
}
