//! The performance-factor model: *why* one engine beats the other.
//!
//! Ground truth is extracted from a full [`QueryOutcome`] — plans **and**
//! work counters — mirroring what the paper's human experts do when they
//! inspect plans and execution results. The simulated LLM never sees this
//! module's output directly; the grader does.

use qpe_htap::engine::{EngineKind, QueryOutcome};
use qpe_htap::latency::LatencyModel;
use qpe_htap::plan::NodeType;
use serde::{Deserialize, Serialize};

/// The reasons one engine can beat the other in this HTAP system. These are
/// the factor vocabulary of expert explanations, LLM outputs and the grader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FactorKind {
    /// AP's hash join beat TP's nested-loop join.
    HashJoinVsNestedLoop,
    /// TP's index nested-loop join beat AP's hash join.
    IndexNestedLoopAdvantage,
    /// TP answered via an index scan (point/range lookup).
    IndexLookupAdvantage,
    /// TP had no usable index for its predicates or join keys.
    NoUsableIndex,
    /// A function (e.g. `SUBSTRING`) on an indexed column disqualified the
    /// index — the trap DBG-PT misreads.
    FunctionDisablesIndex,
    /// AP touched only the referenced columns (columnar storage).
    ColumnarScanAdvantage,
    /// TP paid full-tuple reads on a wide scan (row storage).
    RowStoreOverhead,
    /// TP served ORDER BY + LIMIT straight from index order.
    IndexOrderedTopN,
    /// AP's bounded top-N heap beat TP's full sort.
    TopNHeapAdvantage,
    /// A large OFFSET made the top-N expensive (relative-value nuance).
    LargeOffsetPenalty,
    /// The query was tiny; AP's fixed startup dominated, so TP won.
    ApFixedOverhead,
    /// AP's hash aggregation processed grouped data efficiently.
    HashAggregateAdvantage,
}

impl FactorKind {
    /// Every factor, for iteration in tests and ablations.
    pub const ALL: [FactorKind; 12] = [
        FactorKind::HashJoinVsNestedLoop,
        FactorKind::IndexNestedLoopAdvantage,
        FactorKind::IndexLookupAdvantage,
        FactorKind::NoUsableIndex,
        FactorKind::FunctionDisablesIndex,
        FactorKind::ColumnarScanAdvantage,
        FactorKind::RowStoreOverhead,
        FactorKind::IndexOrderedTopN,
        FactorKind::TopNHeapAdvantage,
        FactorKind::LargeOffsetPenalty,
        FactorKind::ApFixedOverhead,
        FactorKind::HashAggregateAdvantage,
    ];

    /// Short identifier used in structured output and KB persistence.
    pub fn key(&self) -> &'static str {
        match self {
            FactorKind::HashJoinVsNestedLoop => "hash_join_vs_nested_loop",
            FactorKind::IndexNestedLoopAdvantage => "index_nested_loop",
            FactorKind::IndexLookupAdvantage => "index_lookup",
            FactorKind::NoUsableIndex => "no_usable_index",
            FactorKind::FunctionDisablesIndex => "function_disables_index",
            FactorKind::ColumnarScanAdvantage => "columnar_scan",
            FactorKind::RowStoreOverhead => "row_store_overhead",
            FactorKind::IndexOrderedTopN => "index_ordered_topn",
            FactorKind::TopNHeapAdvantage => "topn_heap",
            FactorKind::LargeOffsetPenalty => "large_offset",
            FactorKind::ApFixedOverhead => "ap_fixed_overhead",
            FactorKind::HashAggregateAdvantage => "hash_aggregate",
        }
    }

    /// Which engine this factor argues for.
    pub fn favors(&self) -> EngineKind {
        match self {
            FactorKind::HashJoinVsNestedLoop
            | FactorKind::NoUsableIndex
            | FactorKind::FunctionDisablesIndex
            | FactorKind::ColumnarScanAdvantage
            | FactorKind::RowStoreOverhead
            | FactorKind::TopNHeapAdvantage
            | FactorKind::LargeOffsetPenalty
            | FactorKind::HashAggregateAdvantage => EngineKind::Ap,
            FactorKind::IndexNestedLoopAdvantage
            | FactorKind::IndexLookupAdvantage
            | FactorKind::IndexOrderedTopN
            | FactorKind::ApFixedOverhead => EngineKind::Tp,
        }
    }
}

/// The graded truth about one query's performance distinction.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The engine that actually won.
    pub winner: EngineKind,
    /// Loser/winner latency ratio.
    pub speedup: f64,
    /// The single most load-bearing factor.
    pub primary: FactorKind,
    /// All factors genuinely present (primary included).
    pub valid: Vec<FactorKind>,
    /// Factors that would be *factually wrong* to cite for this query
    /// (e.g. claiming index benefit when the index was disqualified).
    pub contradicted: Vec<FactorKind>,
}

/// Extracts ground truth from a both-engine run.
///
/// Factors are scored by the latency contribution they explain; the largest
/// becomes primary. Scores use the same latency model the system measures
/// with, so "primary" is the component a human expert profiling the run
/// would point at.
pub fn extract_ground_truth(outcome: &QueryOutcome, model: &LatencyModel) -> GroundTruth {
    let winner = outcome.winner();
    let tp = &outcome.tp;
    let ap = &outcome.ap;
    let tpc = &tp.counters;
    let apc = &ap.counters;

    let tp_has_nlj = tp.plan.count_type(NodeType::NestedLoopJoin) > 0;
    let tp_has_inlj = tp.plan.count_type(NodeType::IndexNLJoin) > 0;
    let tp_has_index_scan = tp.plan.count_type(NodeType::IndexScan) > 0;
    let ap_has_hash_join = ap.plan.count_type(NodeType::HashJoin) > 0;
    let tp_has_sort = tp.plan.count_type(NodeType::Sort) > 0;
    let ap_has_topn = ap.plan.count_type(NodeType::TopNSort) > 0;
    let has_agg = tp.plan.count_type(NodeType::GroupAggregate) > 0;
    let is_topn = outcome.bound.is_top_n();
    let offset = outcome.bound.offset.unwrap_or(0);
    let tp_index_ordered_topn = is_topn && tp_has_index_scan && !tp_has_sort;

    // Does any filter apply a function/expression over an indexed column?
    let function_blocked_index = function_disables_index(outcome);

    let mut scored: Vec<(FactorKind, f64)> = Vec::new();

    // --- AP-favoring components (cost TP pays that AP avoids) ---
    let nlj_cost = (tpc.nlj_pairs * model.tp.nlj_pair_ns) as f64;
    if tp_has_nlj && ap_has_hash_join {
        let hash_cost = (apc.hash_build_rows * model.ap.hash_build_ns
            + apc.hash_probe_rows * model.ap.hash_probe_ns) as f64;
        scored.push((FactorKind::HashJoinVsNestedLoop, nlj_cost - hash_cost));
    }
    let row_scan_cost = (tpc.rows_scanned * model.tp.row_scan_ns) as f64;
    let cell_scan_cost = (apc.cells_scanned * model.ap.cell_scan_ns) as f64;
    scored.push((FactorKind::ColumnarScanAdvantage, row_scan_cost - cell_scan_cost));
    scored.push((
        FactorKind::RowStoreOverhead,
        (row_scan_cost - cell_scan_cost) * 0.9, // same phenomenon, TP-side framing
    ));
    if is_topn && tp_has_sort && ap_has_topn {
        let sort_cost = (tpc.sort_comparisons * model.tp.sort_cmp_ns) as f64;
        let heap_cost = (apc.topn_pushes * model.ap.topn_push_ns) as f64;
        scored.push((FactorKind::TopNHeapAdvantage, sort_cost - heap_cost));
    }
    if has_agg {
        let agg_gap =
            (tpc.agg_rows * model.tp.agg_row_ns) as f64 - (apc.agg_rows * model.ap.agg_row_ns) as f64;
        scored.push((FactorKind::HashAggregateAdvantage, agg_gap * 0.5));
    }
    if is_topn && offset >= 1000 && winner == EngineKind::Ap && tp_index_ordered_topn {
        // TP's ordered scan had to walk past the offset.
        scored.push((
            FactorKind::LargeOffsetPenalty,
            (tpc.index_fetches * model.tp.index_fetch_ns + tpc.rows_scanned * model.tp.row_scan_ns)
                as f64,
        ));
    }

    // --- TP-favoring components (cost AP pays that TP avoids) ---
    if tp_has_inlj {
        let probe_cost = (tpc.index_probes * model.tp.index_probe_ns
            + tpc.index_fetches * model.tp.index_fetch_ns) as f64;
        let hash_cost = (apc.hash_build_rows * model.ap.hash_build_ns
            + apc.hash_probe_rows * model.ap.hash_probe_ns
            + apc.cells_scanned * model.ap.cell_scan_ns) as f64;
        scored.push((FactorKind::IndexNestedLoopAdvantage, hash_cost - probe_cost));
    }
    if tp_has_index_scan && !is_topn {
        let tp_access = (tpc.index_probes * model.tp.index_probe_ns
            + tpc.index_fetches * model.tp.index_fetch_ns
            + tpc.rows_scanned * model.tp.row_scan_ns) as f64;
        let ap_access = cell_scan_cost + model.ap.fixed_ns as f64;
        scored.push((FactorKind::IndexLookupAdvantage, ap_access - tp_access));
    }
    if tp_index_ordered_topn {
        let ap_total = ap.latency_ns as f64;
        let tp_total = tp.latency_ns as f64;
        scored.push((FactorKind::IndexOrderedTopN, ap_total - tp_total));
    }
    // AP fixed overhead matters when it is a large share of AP's latency.
    let ap_fixed_share = model.ap.fixed_ns as f64 / ap.latency_ns.max(1) as f64;
    if ap_fixed_share > 0.5 {
        scored.push((
            FactorKind::ApFixedOverhead,
            model.ap.fixed_ns as f64 - tp.latency_ns as f64,
        ));
    }

    // Keep factors that argue for the actual winner with positive margin.
    let mut valid: Vec<(FactorKind, f64)> = scored
        .iter()
        .copied()
        .filter(|(f, s)| *s > 0.0 && f.favors() == winner)
        .collect();
    valid.sort_by(|a, b| b.1.total_cmp(&a.1));

    // Structural facts that hold regardless of magnitude.
    let mut extra: Vec<FactorKind> = Vec::new();
    if winner == EngineKind::Ap && tp_has_nlj && !tp_has_inlj && !tp_has_index_scan {
        extra.push(FactorKind::NoUsableIndex);
    }
    if winner == EngineKind::Ap && function_blocked_index {
        extra.push(FactorKind::FunctionDisablesIndex);
    }

    let primary = valid
        .first()
        .map(|(f, _)| *f)
        .or_else(|| extra.first().copied())
        .unwrap_or(if winner == EngineKind::Ap {
            FactorKind::ColumnarScanAdvantage
        } else {
            FactorKind::ApFixedOverhead
        });

    let mut valid_kinds: Vec<FactorKind> = valid.into_iter().map(|(f, _)| f).collect();
    for e in extra {
        if !valid_kinds.contains(&e) {
            valid_kinds.push(e);
        }
    }
    if !valid_kinds.contains(&primary) {
        valid_kinds.insert(0, primary);
    }

    // Contradicted claims: citing index benefits when TP used none, or
    // claiming the index-disabled trap when nothing was disabled.
    let mut contradicted = Vec::new();
    if !tp_has_index_scan && !tp_has_inlj {
        contradicted.push(FactorKind::IndexLookupAdvantage);
        contradicted.push(FactorKind::IndexNestedLoopAdvantage);
        contradicted.push(FactorKind::IndexOrderedTopN);
    }
    if !function_blocked_index {
        contradicted.push(FactorKind::FunctionDisablesIndex);
    }
    // Factors arguing for the loser are contradicted by the outcome.
    for f in FactorKind::ALL {
        if f.favors() != winner && !contradicted.contains(&f) {
            contradicted.push(f);
        }
    }
    contradicted.retain(|f| !valid_kinds.contains(f));

    GroundTruth {
        winner,
        speedup: outcome.speedup(),
        primary,
        valid: valid_kinds,
        contradicted,
    }
}

/// True when some filter applies a function/expression over a column that
/// has a TP-side index — so the index *looks* applicable but is not.
pub fn function_disables_index(outcome: &QueryOutcome) -> bool {
    use qpe_sql::binder::BoundExpr;
    let q = &outcome.bound;
    // We need catalog knowledge; approximate from the plan side instead:
    // TP chose a full Table Scan for a slot even though a filter mentions an
    // indexed column through a Substring. Detect Substring over any column
    // in filters, paired with no index scan in the TP plan.
    let mut has_substring_filter = false;
    for f in &q.filters {
        fn has_substr(e: &BoundExpr) -> bool {
            match e {
                BoundExpr::Substring { .. } => true,
                BoundExpr::Column(_) | BoundExpr::Literal(_) | BoundExpr::Param { .. } => false,
                BoundExpr::Binary { left, right, .. } => has_substr(left) || has_substr(right),
                BoundExpr::Not(x)
                | BoundExpr::InList { expr: x, .. }
                | BoundExpr::InListParam { expr: x, .. }
                | BoundExpr::Like { expr: x, .. }
                | BoundExpr::IsNull { expr: x, .. } => has_substr(x),
                BoundExpr::Between { expr, low, high } => {
                    has_substr(expr) || has_substr(low) || has_substr(high)
                }
                BoundExpr::Aggregate { arg, .. } => {
                    arg.as_ref().map(|a| has_substr(a)).unwrap_or(false)
                }
            }
        }
        if has_substr(&f.expr) {
            has_substring_filter = true;
        }
    }
    has_substring_filter && outcome.tp.plan.count_type(NodeType::IndexScan) == 0
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_htap::engine::HtapSystem;
    use qpe_htap::tpch::TpchConfig;

    fn system() -> HtapSystem {
        HtapSystem::new(&TpchConfig::with_scale(0.005))
    }

    #[test]
    fn factor_metadata_is_consistent() {
        let mut keys = std::collections::HashSet::new();
        for f in FactorKind::ALL {
            assert!(keys.insert(f.key()), "duplicate key {}", f.key());
            let _ = f.favors();
        }
    }

    #[test]
    fn point_lookup_truth_favors_tp_with_index_factor() {
        let sys = system();
        let out = sys
            .run_sql("SELECT c_name FROM customer WHERE c_custkey = 7")
            .unwrap();
        let gt = extract_ground_truth(&out, sys.latency_model());
        assert_eq!(gt.winner, EngineKind::Tp);
        assert!(
            gt.primary == FactorKind::IndexLookupAdvantage
                || gt.primary == FactorKind::ApFixedOverhead,
            "primary={:?}",
            gt.primary
        );
        assert!(gt.valid.contains(&gt.primary));
        assert!(!gt.contradicted.contains(&gt.primary));
    }

    #[test]
    fn example1_truth_cites_join_and_index_absence() {
        let sys = HtapSystem::new(&TpchConfig::with_scale(0.02));
        let out = sys
            .run_sql(
                "SELECT COUNT(*) FROM customer, nation, orders \
                 WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40', '22', '30', '39', '42', '21') \
                 AND c_mktsegment = 'machinery' \
                 AND n_name = 'egypt' AND o_orderstatus = 'p' \
                 AND o_custkey = c_custkey AND n_nationkey = c_nationkey",
            )
            .unwrap();
        assert_eq!(out.winner(), EngineKind::Ap, "speedup {}", out.speedup());
        let gt = extract_ground_truth(&out, sys.latency_model());
        assert_eq!(gt.winner, EngineKind::Ap);
        // The expert's reason in the paper: NLJ without index vs hash join,
        // plus columnar advantages.
        assert!(
            gt.valid.contains(&FactorKind::HashJoinVsNestedLoop)
                || gt.valid.contains(&FactorKind::ColumnarScanAdvantage),
            "valid={:?}",
            gt.valid
        );
        assert!(gt.valid.contains(&FactorKind::FunctionDisablesIndex));
    }

    #[test]
    fn contradicted_never_overlaps_valid() {
        let sys = system();
        for sql in [
            "SELECT COUNT(*) FROM customer",
            "SELECT c_name FROM customer WHERE c_custkey = 7",
            "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 5",
        ] {
            let out = sys.run_sql(sql).unwrap();
            let gt = extract_ground_truth(&out, sys.latency_model());
            for f in &gt.valid {
                assert!(!gt.contradicted.contains(f), "{sql}: {f:?} in both");
            }
        }
    }

    #[test]
    fn index_ordered_topn_truth() {
        let sys = system();
        let out = sys
            .run_sql("SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10")
            .unwrap();
        let gt = extract_ground_truth(&out, sys.latency_model());
        assert_eq!(gt.winner, EngineKind::Tp);
        assert!(gt.valid.contains(&FactorKind::IndexOrderedTopN), "{:?}", gt.valid);
    }

    #[test]
    fn function_disables_index_detection() {
        let sys = system();
        let blocked = sys
            .run_sql("SELECT COUNT(*) FROM customer WHERE SUBSTRING(c_phone, 1, 2) = '20'")
            .unwrap();
        assert!(function_disables_index(&blocked));
        let served = sys
            .run_sql("SELECT COUNT(*) FROM customer WHERE c_phone = '20-123-456-7890'")
            .unwrap();
        assert!(!function_disables_index(&served));
    }
}
