//! The automated grader — three database experts, operationalized.
//!
//! The paper's §VI-B accuracy numbers come from experts judging each
//! generated explanation for "correctness and completeness". Their rubric,
//! read off the paper's examples, is: did the explanation name the right
//! winner, and did it attribute the win to the actually-load-bearing
//! factor? The grader applies exactly that rubric against the ground truth
//! extracted from real execution.

use crate::factors::GroundTruth;
use crate::generator::ExplanationOutput;
use serde::{Deserialize, Serialize};

/// Expert judgment of one explanation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Grade {
    /// Right winner, primary factor identified — "accurate and informative".
    Accurate,
    /// Right winner but the main factor was missed or under-emphasized —
    /// "less precise than expert interpretations".
    Imprecise,
    /// Wrong winner, or a factually false claim (a contradicted factor).
    Wrong,
    /// The generator abstained with `None`.
    None,
}

impl Grade {
    /// Counts as usable output in the paper's accuracy metric.
    pub fn is_accurate(&self) -> bool {
        matches!(self, Grade::Accurate)
    }
}

/// Grades explanations against ground truth.
#[derive(Debug, Clone, Default)]
pub struct Grader;

impl Grader {
    /// Creates a grader.
    pub fn new() -> Self {
        Grader
    }

    /// Applies the expert rubric.
    pub fn grade(&self, output: &ExplanationOutput, truth: &GroundTruth) -> Grade {
        if output.is_none {
            return Grade::None;
        }
        match output.claimed_winner {
            Some(w) if w == truth.winner => {}
            _ => return Grade::Wrong,
        }
        // Any factually-false citation sinks the explanation.
        if output.cited.iter().any(|f| truth.contradicted.contains(f)) {
            return Grade::Wrong;
        }
        match output.primary {
            Some(p) if p == truth.primary => Grade::Accurate,
            // Citing the true primary factor as a secondary still reads as
            // broadly correct but under-emphasized.
            _ if output.cited.contains(&truth.primary) => Grade::Imprecise,
            _ => Grade::Imprecise,
        }
    }
}

/// Aggregate grading statistics over a test set (the paper's headline
/// numbers: 91% accurate / 9% less precise / 3.5% None).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GradeStats {
    /// Count of [`Grade::Accurate`].
    pub accurate: usize,
    /// Count of [`Grade::Imprecise`].
    pub imprecise: usize,
    /// Count of [`Grade::Wrong`].
    pub wrong: usize,
    /// Count of [`Grade::None`].
    pub none: usize,
}

impl GradeStats {
    /// Accumulates one grade.
    pub fn record(&mut self, g: Grade) {
        match g {
            Grade::Accurate => self.accurate += 1,
            Grade::Imprecise => self.imprecise += 1,
            Grade::Wrong => self.wrong += 1,
            Grade::None => self.none += 1,
        }
    }

    /// Total graded.
    pub fn total(&self) -> usize {
        self.accurate + self.imprecise + self.wrong + self.none
    }

    /// Fraction accurate (the paper's headline metric).
    pub fn accuracy(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.accurate as f64 / self.total() as f64
        }
    }

    /// Fraction abstaining.
    pub fn none_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.none as f64 / self.total() as f64
        }
    }

    /// Fraction wrong.
    pub fn wrong_rate(&self) -> f64 {
        if self.total() == 0 {
            0.0
        } else {
            self.wrong as f64 / self.total() as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::factors::FactorKind;
    use qpe_htap::engine::EngineKind;

    fn truth() -> GroundTruth {
        GroundTruth {
            winner: EngineKind::Ap,
            speedup: 5.0,
            primary: FactorKind::HashJoinVsNestedLoop,
            valid: vec![
                FactorKind::HashJoinVsNestedLoop,
                FactorKind::ColumnarScanAdvantage,
            ],
            contradicted: vec![FactorKind::IndexLookupAdvantage],
        }
    }

    fn output(
        winner: Option<EngineKind>,
        primary: Option<FactorKind>,
        cited: Vec<FactorKind>,
    ) -> ExplanationOutput {
        ExplanationOutput {
            text: "t".into(),
            claimed_winner: winner,
            primary,
            cited,
            is_none: false,
        }
    }

    #[test]
    fn accurate_when_primary_matches() {
        let g = Grader::new().grade(
            &output(
                Some(EngineKind::Ap),
                Some(FactorKind::HashJoinVsNestedLoop),
                vec![FactorKind::HashJoinVsNestedLoop],
            ),
            &truth(),
        );
        assert_eq!(g, Grade::Accurate);
        assert!(g.is_accurate());
    }

    #[test]
    fn imprecise_when_secondary_promoted() {
        let g = Grader::new().grade(
            &output(
                Some(EngineKind::Ap),
                Some(FactorKind::ColumnarScanAdvantage),
                vec![FactorKind::ColumnarScanAdvantage],
            ),
            &truth(),
        );
        assert_eq!(g, Grade::Imprecise);
    }

    #[test]
    fn wrong_winner_is_wrong() {
        let g = Grader::new().grade(
            &output(
                Some(EngineKind::Tp),
                Some(FactorKind::IndexLookupAdvantage),
                vec![FactorKind::IndexLookupAdvantage],
            ),
            &truth(),
        );
        assert_eq!(g, Grade::Wrong);
    }

    #[test]
    fn contradicted_citation_is_wrong() {
        let g = Grader::new().grade(
            &output(
                Some(EngineKind::Ap),
                Some(FactorKind::HashJoinVsNestedLoop),
                vec![
                    FactorKind::HashJoinVsNestedLoop,
                    FactorKind::IndexLookupAdvantage, // factually false here
                ],
            ),
            &truth(),
        );
        assert_eq!(g, Grade::Wrong);
    }

    #[test]
    fn abstention_is_none() {
        let g = Grader::new().grade(&ExplanationOutput::none(), &truth());
        assert_eq!(g, Grade::None);
    }

    #[test]
    fn stats_aggregate() {
        let mut s = GradeStats::default();
        s.record(Grade::Accurate);
        s.record(Grade::Accurate);
        s.record(Grade::Imprecise);
        s.record(Grade::None);
        assert_eq!(s.total(), 4);
        assert!((s.accuracy() - 0.5).abs() < 1e-12);
        assert!((s.none_rate() - 0.25).abs() < 1e-12);
        assert_eq!(s.wrong_rate(), 0.0);
    }

    #[test]
    fn empty_stats_are_zero() {
        let s = GradeStats::default();
        assert_eq!(s.accuracy(), 0.0);
        assert_eq!(s.none_rate(), 0.0);
        assert_eq!(s.wrong_rate(), 0.0);
    }
}
