//! The expert oracle: ground-truth explanations from real executions.
//!
//! Stands in for the paper's database experts. Given a both-engine run, it
//! extracts the ground-truth factor set (plans **and** counters — experts
//! get to profile) and writes the kind of terse, factor-centred explanation
//! the paper's Table III shows:
//!
//! > "AP is faster than TP because TP has to use nested loop join with no
//! >  index available. AP uses hash join, which is more efficient."

use crate::factors::{extract_ground_truth, FactorKind, GroundTruth};
use crate::knowledge::KnowledgeEntry;
use qpe_htap::engine::{EngineKind, QueryOutcome};
use qpe_htap::latency::LatencyModel;

/// Generates expert explanations and knowledge-base entries.
pub struct ExpertOracle<'a> {
    model: &'a LatencyModel,
}

impl<'a> ExpertOracle<'a> {
    /// Creates an oracle using the system's latency model.
    pub fn new(model: &'a LatencyModel) -> Self {
        ExpertOracle { model }
    }

    /// Ground truth for a run.
    pub fn ground_truth(&self, outcome: &QueryOutcome) -> GroundTruth {
        extract_ground_truth(outcome, self.model)
    }

    /// The expert's natural-language explanation for a run.
    pub fn explain(&self, outcome: &QueryOutcome) -> (GroundTruth, String) {
        let gt = self.ground_truth(outcome);
        let text = render_explanation(&gt);
        (gt, text)
    }

    /// Builds a full knowledge-base entry for a run.
    pub fn knowledge_entry(&self, outcome: &QueryOutcome) -> KnowledgeEntry {
        let (gt, explanation) = self.explain(outcome);
        KnowledgeEntry {
            sql: outcome.sql.clone(),
            tp_plan: outcome.tp.plan.explain_json(),
            ap_plan: outcome.ap.plan.explain_json(),
            winner: gt.winner,
            speedup: gt.speedup,
            primary_factor: gt.primary,
            factors: gt.valid.clone(),
            explanation,
        }
    }
}

/// Expert phrasing for each factor, in the paper's terse register.
pub fn factor_sentence(factor: FactorKind) -> &'static str {
    match factor {
        FactorKind::HashJoinVsNestedLoop => {
            "TP has to use nested loop join while AP uses hash join, which is far more \
             efficient for these input sizes"
        }
        FactorKind::IndexNestedLoopAdvantage => {
            "TP drives the join through a B-tree index on the join key, probing only \
             matching rows, while AP must scan and hash entire inputs"
        }
        FactorKind::IndexLookupAdvantage => {
            "TP answers the predicate directly from a B-tree index, touching only a \
             handful of rows, while AP must scan the column"
        }
        FactorKind::NoUsableIndex => {
            "no index is available for TP's predicates or join keys, so TP falls back \
             to full scans and nested loops"
        }
        FactorKind::FunctionDisablesIndex => {
            "applying a function such as SUBSTRING to an indexed column prevents the \
             index from being used, so the index does not help here"
        }
        FactorKind::ColumnarScanAdvantage => {
            "AP's column-oriented storage scans only the referenced columns and applies \
             filters before joining"
        }
        FactorKind::RowStoreOverhead => {
            "TP's row-oriented storage reads entire tuples even when only a few columns \
             are needed"
        }
        FactorKind::IndexOrderedTopN => {
            "TP serves ORDER BY ... LIMIT straight from index order and stops after the \
             first matching rows, while AP must examine the whole input"
        }
        FactorKind::TopNHeapAdvantage => {
            "AP keeps only the top rows in a bounded heap, while TP fully sorts its \
             input before applying the limit"
        }
        FactorKind::LargeOffsetPenalty => {
            "the large OFFSET forces TP's ordered scan to walk past many rows before \
             producing output, erasing its usual top-N advantage"
        }
        FactorKind::ApFixedOverhead => {
            "the query is small enough that AP's fixed startup cost (vectorized \
             pipeline and columnar segment setup) dominates its runtime"
        }
        FactorKind::HashAggregateAdvantage => {
            "AP's hash aggregation folds grouped rows efficiently over columnar data"
        }
    }
}

/// Renders the expert explanation: winner claim + primary factor + at most
/// two secondary factors.
pub fn render_explanation(gt: &GroundTruth) -> String {
    let (winner, loser) = match gt.winner {
        EngineKind::Ap => ("AP", "TP"),
        EngineKind::Tp => ("TP", "AP"),
    };
    let mut text = format!(
        "{winner} is faster than {loser} because {}.",
        factor_sentence(gt.primary)
    );
    let secondaries: Vec<&FactorKind> = gt
        .valid
        .iter()
        .filter(|f| **f != gt.primary)
        .take(2)
        .collect();
    if !secondaries.is_empty() {
        text.push_str(" In addition, ");
        let extra: Vec<String> = secondaries
            .iter()
            .map(|f| factor_sentence(**f).to_string())
            .collect();
        text.push_str(&extra.join("; moreover, "));
        text.push('.');
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_htap::engine::HtapSystem;
    use qpe_htap::tpch::TpchConfig;

    fn system() -> HtapSystem {
        HtapSystem::new(&TpchConfig::with_scale(0.005))
    }

    #[test]
    fn explanation_names_winner_and_reason() {
        let sys = system();
        let out = sys
            .run_sql("SELECT c_name FROM customer WHERE c_custkey = 7")
            .unwrap();
        let oracle = ExpertOracle::new(sys.latency_model());
        let (gt, text) = oracle.explain(&out);
        assert_eq!(gt.winner, EngineKind::Tp);
        assert!(text.starts_with("TP is faster than AP because"));
    }

    #[test]
    fn knowledge_entry_carries_plans_and_factors() {
        let sys = system();
        let out = sys
            .run_sql("SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'")
            .unwrap();
        let oracle = ExpertOracle::new(sys.latency_model());
        let entry = oracle.knowledge_entry(&out);
        assert_eq!(entry.sql, out.sql);
        assert!(entry.tp_plan["Node Type"].is_string());
        assert!(!entry.factors.is_empty());
        assert!(entry.factors.contains(&entry.primary_factor));
        assert!(!entry.explanation.is_empty());
    }

    #[test]
    fn every_factor_has_distinct_phrasing() {
        let mut seen = std::collections::HashSet::new();
        for f in FactorKind::ALL {
            assert!(seen.insert(factor_sentence(f)), "duplicate phrasing for {f:?}");
        }
    }

    #[test]
    fn secondaries_are_capped_at_two() {
        let gt = GroundTruth {
            winner: EngineKind::Ap,
            speedup: 4.0,
            primary: FactorKind::HashJoinVsNestedLoop,
            valid: vec![
                FactorKind::HashJoinVsNestedLoop,
                FactorKind::ColumnarScanAdvantage,
                FactorKind::RowStoreOverhead,
                FactorKind::NoUsableIndex,
                FactorKind::HashAggregateAdvantage,
            ],
            contradicted: vec![],
        };
        let text = render_explanation(&gt);
        // primary + exactly two secondaries
        assert!(text.contains("hash join"));
        assert!(text.contains("column-oriented"));
        assert!(text.contains("row-oriented"));
        assert!(!text.contains("hash aggregation"));
    }
}
