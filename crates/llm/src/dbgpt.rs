//! The DBG-PT baseline: LLM plan-diffing without retrieval.
//!
//! DBG-PT (Giannakouris & Trummer, VLDB'24) compares two structured plans
//! and reasons about their differences. The paper adapts it to the
//! cross-engine setting and documents four systematic failure modes
//! (§VI-D), all of which this implementation reproduces *mechanically* —
//! they are not injected noise, they fall out of plan-surface reasoning
//! without grounded knowledge:
//!
//! 1. **Fundamental errors** — it assumes an index helps whenever an index
//!    exists on a mentioned column, missing that `SUBSTRING(col, ...)`
//!    disqualifies the index.
//! 2. **Overemphasis on minor factors** — column-oriented storage is always
//!    its lead explanation for an AP win.
//! 3. **Ignoring limitations** — told not to compare costs across engines,
//!    it still falls back to cost comparison when the gap is extreme; and
//!    with the warning removed from the prompt it always compares.
//! 4. **No context for relative values** — it cannot judge whether an
//!    OFFSET/LIMIT is large, so it never cites offset effects.

use crate::evidence::PlanEvidence;
use crate::expert::factor_sentence;
use crate::factors::FactorKind;
use crate::generator::ExplanationOutput;
use crate::prompt::Prompt;
use qpe_htap::engine::EngineKind;
use serde::{Deserialize, Serialize};

/// Cost-ratio beyond which DBG-PT "cannot help itself" and compares costs
/// even when the prompt forbids it (failure mode 3). Cross-engine ratios of
/// this magnitude occur for index-served queries, where TP's cost units are
/// tiny next to AP's.
pub const COST_OVERRIDE_RATIO: f64 = 50.0;

/// The DBG-PT-style plan-diff explainer.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct DbgPt;

impl DbgPt {
    /// Creates the baseline explainer.
    pub fn new() -> Self {
        DbgPt
    }

    /// Explains from plan details alone. Retrieved knowledge in the prompt
    /// is ignored; the execution result is **not** used (the paper feeds
    /// DBG-PT only the plan details).
    pub fn explain(&self, prompt: &Prompt) -> ExplanationOutput {
        let q = &prompt.question;
        // Extract structure; the winner field of the evidence is NOT
        // consulted — DBG-PT must guess.
        let ev = PlanEvidence::extract(&q.sql, &q.tp_plan, &q.ap_plan, q.winner, &q.freshness);
        let tp_cost = q.tp_plan.total_cost;
        let ap_cost = q.ap_plan.total_cost;

        let index_mentioned = self.index_is_mentioned(prompt, &ev);

        // --- Winner guess ---
        let ratio = {
            let (lo, hi) = if tp_cost <= ap_cost { (tp_cost, ap_cost) } else { (ap_cost, tp_cost) };
            if lo <= 0.0 { f64::INFINITY } else { hi / lo }
        };
        let cost_comparison_used =
            !prompt.config.forbid_cost_comparison || ratio > COST_OVERRIDE_RATIO;
        let claimed = if cost_comparison_used {
            // Failure mode 3: cross-engine cost comparison. TP's cost scale
            // is much smaller, so this systematically favors TP.
            if tp_cost <= ap_cost {
                EngineKind::Tp
            } else {
                EngineKind::Ap
            }
        } else if ev.ap_hash_join && ev.tp_nested_loop {
            EngineKind::Ap
        } else if ev.tp_index_scan && !ev.is_top_n && ev.join_count == 0 && !index_mentioned {
            EngineKind::Tp
        } else {
            // Failure mode 2: default to the column-store story.
            EngineKind::Ap
        };

        // --- Cited factors ---
        let mut cited: Vec<FactorKind> = Vec::new();
        let primary;
        match claimed {
            EngineKind::Ap => {
                // Columnar storage is always its headline (failure mode 2).
                primary = FactorKind::ColumnarScanAdvantage;
                cited.push(primary);
                if ev.ap_hash_join {
                    cited.push(FactorKind::HashJoinVsNestedLoop);
                }
                if index_mentioned {
                    // Failure mode 1: "both engines likely benefit from the
                    // index" — even when SUBSTRING disqualified it.
                    cited.push(FactorKind::IndexLookupAdvantage);
                }
            }
            EngineKind::Tp => {
                primary = if ev.tp_index_scan || index_mentioned {
                    FactorKind::IndexLookupAdvantage
                } else if ev.tp_index_nlj {
                    FactorKind::IndexNestedLoopAdvantage
                } else {
                    // cost-comparison-driven TP claims with no structural
                    // story still need a reason; it reaches for indexes.
                    FactorKind::IndexLookupAdvantage
                };
                cited.push(primary);
            }
        }
        // Failure mode 4: LargeOffsetPenalty / ApFixedOverhead are never
        // cited — DBG-PT has no history to judge relative values against.
        debug_assert!(!cited.contains(&FactorKind::LargeOffsetPenalty));
        debug_assert!(!cited.contains(&FactorKind::ApFixedOverhead));

        let text = self.render_text(claimed, &cited, cost_comparison_used, index_mentioned, &ev);
        ExplanationOutput {
            text,
            claimed_winner: Some(claimed),
            primary: Some(primary),
            cited,
            is_none: false,
        }
    }

    /// True when an index is "visible": named in a plan, or declared in the
    /// user context for a column the query mentions.
    fn index_is_mentioned(&self, prompt: &Prompt, ev: &PlanEvidence) -> bool {
        let mut in_plans = false;
        for plan in [&prompt.question.tp_plan, &prompt.question.ap_plan] {
            plan.walk(&mut |n| {
                if n.index.is_some() {
                    in_plans = true;
                }
            });
        }
        if in_plans {
            return true;
        }
        let _ = ev;
        let sql_lower = prompt.question.sql.to_ascii_lowercase();
        prompt.user_context.iter().any(|ctx| {
            let ctx_lower = ctx.to_ascii_lowercase();
            ctx_lower.contains("index")
                && ctx_lower
                    .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
                    .any(|word| word.contains('_') && sql_lower.contains(word))
        })
    }

    fn render_text(
        &self,
        claimed: EngineKind,
        cited: &[FactorKind],
        cost_comparison_used: bool,
        index_mentioned: bool,
        ev: &PlanEvidence,
    ) -> String {
        let engine = claimed.as_str();
        let mut text = format!("The {engine} engine is likely faster in this case.");
        for (i, f) in cited.iter().enumerate() {
            if i == 0 {
                text.push_str(&format!(" Primarily, {}.", factor_sentence(*f)));
            } else if *f == FactorKind::IndexLookupAdvantage && index_mentioned {
                text.push_str(
                    " Both engines likely benefit from the available index on the \
                     filtered column, which speeds up access to qualifying rows.",
                );
            } else {
                text.push_str(&format!(" Also, {}.", factor_sentence(*f)));
            }
        }
        if cost_comparison_used {
            text.push_str(&format!(
                " Comparing the plan costs, the {engine} plan's total cost estimate is \
                 substantially lower, which indicates better expected performance."
            ));
        }
        if ev.is_top_n && ev.offset > 0 {
            text.push_str(
                " The query also uses OFFSET, though its impact on either plan is \
                 unclear from the plans alone.",
            );
        }
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::ExpertOracle;
    use crate::prompt::{PromptConfig, Question};
    use qpe_htap::engine::HtapSystem;
    use qpe_htap::tpch::TpchConfig;

    fn system() -> HtapSystem {
        HtapSystem::new(&TpchConfig::with_scale(0.005))
    }

    fn prompt(sys: &HtapSystem, sql: &str, forbid: bool, user_context: Vec<String>) -> Prompt {
        let out = sys.run_sql(sql).unwrap();
        let _ = ExpertOracle::new(sys.latency_model());
        Prompt {
            config: PromptConfig {
                forbid_cost_comparison: forbid,
                include_rag: false,
                ..Default::default()
            },
            knowledge: vec![],
            question: Question {
                sql: sql.into(),
                tp_plan: out.tp.plan.clone(),
                ap_plan: out.ap.plan.clone(),
                winner: out.winner(),
                freshness: vec![],
            },
            user_context,
        }
    }

    #[test]
    fn columnar_overemphasis_leads_for_ap_claims() {
        let sys = system();
        let p = prompt(
            &sys,
            "SELECT COUNT(*) FROM customer, orders \
             WHERE o_custkey = c_custkey AND c_mktsegment = 'machinery'",
            true,
            vec![],
        );
        let out = DbgPt::new().explain(&p);
        if out.claimed_winner == Some(EngineKind::Ap) {
            assert_eq!(out.primary, Some(FactorKind::ColumnarScanAdvantage));
        }
    }

    #[test]
    fn misreads_function_disabled_index() {
        let sys = system();
        // SUBSTRING over indexed c_phone: the index is useless, but DBG-PT
        // cites index benefit when the user mentions it.
        let p = prompt(
            &sys,
            "SELECT COUNT(*) FROM customer WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40')",
            true,
            vec!["An additional index has been created on the c_phone column.".into()],
        );
        let out = DbgPt::new().explain(&p);
        assert!(
            out.cited.contains(&FactorKind::IndexLookupAdvantage),
            "expected the fundamental index error, cited: {:?}",
            out.cited
        );
    }

    #[test]
    fn compares_costs_when_not_forbidden() {
        let sys = system();
        let sql = "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey";
        let p = prompt(&sys, sql, false, vec![]);
        let out = DbgPt::new().explain(&p);
        assert!(out.text.contains("total cost estimate is substantially lower"));
    }

    #[test]
    fn never_cites_relative_value_factors() {
        let sys = system();
        for sql in [
            "SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 10 OFFSET 2000",
            "SELECT COUNT(*) FROM nation",
            "SELECT c_name FROM customer WHERE c_custkey = 3",
        ] {
            let p = prompt(&sys, sql, true, vec![]);
            let out = DbgPt::new().explain(&p);
            assert!(!out.cited.contains(&FactorKind::LargeOffsetPenalty));
            assert!(!out.cited.contains(&FactorKind::ApFixedOverhead));
        }
    }

    #[test]
    fn never_abstains() {
        let sys = system();
        let p = prompt(&sys, "SELECT COUNT(*) FROM region", true, vec![]);
        let out = DbgPt::new().explain(&p);
        assert!(!out.is_none);
        assert!(out.claimed_winner.is_some());
    }
}
