//! The simulated LLM: knowledge-grounded explanation generation.
//!
//! The generator implements the paper's intended mechanism explicitly:
//!
//! 1. Read **plan evidence** from the QUESTION (the only inputs the real
//!    LLM gets): join operators, index usage, storage-format structure,
//!    top-N shape, the reported execution result.
//! 2. Derive *candidate* factors from that evidence — several usually
//!    survive, and evidence alone cannot rank them.
//! 3. Let the retrieved KNOWLEDGE vote: each retrieved expert explanation
//!    supports the candidates it shares, weighted by retrieval similarity
//!    (closer neighbors count more) and with extra weight on the expert's
//!    *primary* factor.
//! 4. If no retrieved entry overlaps the candidates at all, return `None` —
//!    the behavior the paper's prompt mandates ("If the KNOWLEDGE does not
//!    contain the facts to answer the QUESTION return None").
//!
//! Because steps 3–4 are the only ranking signal, explanation accuracy is a
//! function of retrieval quality (K, KB coverage, embedding fidelity) — the
//! dependence the paper's experiments measure.

use crate::dbgpt::DbgPt;
use crate::evidence::PlanEvidence;
use crate::expert::factor_sentence;
use crate::factors::FactorKind;
use crate::prompt::Prompt;
use qpe_htap::engine::EngineKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Structured output of an explanation generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExplanationOutput {
    /// The natural-language explanation shown to the user ("None" when the
    /// generator abstains).
    pub text: String,
    /// The engine the explanation claims is faster (None when abstaining).
    pub claimed_winner: Option<EngineKind>,
    /// The factor presented as the main reason.
    pub primary: Option<FactorKind>,
    /// All factors the explanation cites (primary first).
    pub cited: Vec<FactorKind>,
    /// True when the generator returned `None`.
    pub is_none: bool,
}

impl ExplanationOutput {
    /// The abstention output.
    pub fn none() -> Self {
        ExplanationOutput {
            text: "None".into(),
            claimed_winner: None,
            primary: None,
            cited: Vec::new(),
            is_none: true,
        }
    }

    /// Whitespace token count of the output (latency model input).
    pub fn token_count(&self) -> usize {
        self.text.split_whitespace().count()
    }
}

/// The simulated LLM.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimulatedLlm {
    /// Retrieval distance beyond which a neighbor is considered irrelevant
    /// and contributes no votes.
    pub max_retrieval_distance: f64,
    /// Maximum number of factors cited in one explanation.
    pub max_cited: usize,
}

impl Default for SimulatedLlm {
    fn default() -> Self {
        SimulatedLlm {
            max_retrieval_distance: 4.0,
            max_cited: 3,
        }
    }
}

impl SimulatedLlm {
    /// Creates a generator with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Generates an explanation for the prompt.
    pub fn explain(&self, prompt: &Prompt) -> ExplanationOutput {
        if !prompt.config.include_rag {
            // RAG removed (the paper's §VI-D "fair comparison" ablation):
            // degrade to plan-diff reasoning — structurally DBG-PT.
            return DbgPt::new().explain(prompt);
        }
        let q = &prompt.question;
        let ev = PlanEvidence::extract(&q.sql, &q.tp_plan, &q.ap_plan, q.winner, &q.freshness);
        let candidates = ev.candidate_factors();
        if candidates.is_empty() {
            return ExplanationOutput::none();
        }

        // Knowledge voting. An entry is *usable* only when (a) it describes
        // the same direction of performance distinction (same winner) and
        // (b) its expert's PRIMARY factor applies to this question — an
        // explanation whose main reason does not hold here cannot be
        // transferred, no matter how many secondary observations it shares.
        // This is why K=1 retrieval is fragile: a single near-miss neighbor
        // leaves nothing usable and forces a None, while K≥2 usually
        // includes at least one transferable explanation (the paper's
        // "increasing the number of retrieved vectors can mitigate" the
        // imperfect encoding).
        let mut votes: HashMap<FactorKind, f64> = HashMap::new();
        let mut any_usable = false;
        for (entry, dist) in &prompt.knowledge {
            if *dist > self.max_retrieval_distance {
                continue;
            }
            if entry.winner != ev.winner || !candidates.contains(&entry.primary_factor) {
                continue;
            }
            any_usable = true;
            let weight = 1.0 / (1.0 + dist);
            for f in &entry.factors {
                if candidates.contains(f) {
                    let bonus = if *f == entry.primary_factor { 2.0 } else { 1.0 };
                    *votes.entry(*f).or_insert(0.0) += weight * bonus;
                }
            }
        }
        if !any_usable {
            return ExplanationOutput::none();
        }

        // Primary = highest-voted candidate; ties resolve by candidate
        // (plausibility) order for determinism.
        let primary = candidates
            .iter()
            .copied()
            .max_by(|a, b| {
                let va = votes.get(a).copied().unwrap_or(0.0);
                let vb = votes.get(b).copied().unwrap_or(0.0);
                va.total_cmp(&vb).then_with(|| {
                    // earlier candidate wins ties
                    let pa = candidates.iter().position(|c| c == a).unwrap();
                    let pb = candidates.iter().position(|c| c == b).unwrap();
                    pb.cmp(&pa)
                })
            })
            .expect("candidates nonempty");

        let mut cited: Vec<FactorKind> = vec![primary];
        for f in &candidates {
            if cited.len() >= self.max_cited {
                break;
            }
            if *f != primary && votes.get(f).copied().unwrap_or(0.0) > 0.0 {
                cited.push(*f);
            }
        }

        let text = self.render_text(&ev, primary, &cited);
        ExplanationOutput {
            text,
            claimed_winner: Some(ev.winner),
            primary: Some(primary),
            cited,
            is_none: false,
        }
    }

    /// LLM-register prose: fuller than the expert's terse note, with the
    /// "additional insight" flourishes the paper observed (e.g. aggregation
    /// efficiency remarks the experts left implicit).
    fn render_text(&self, ev: &PlanEvidence, primary: FactorKind, cited: &[FactorKind]) -> String {
        let (winner, loser) = match ev.winner {
            EngineKind::Ap => ("AP", "TP"),
            EngineKind::Tp => ("TP", "AP"),
        };
        let mut text = format!(
            "{winner} is faster for this query. The main reason is that {}.",
            factor_sentence(primary)
        );
        for f in cited.iter().filter(|f| **f != primary) {
            text.push_str(&format!(" Additionally, {}.", factor_sentence(*f)));
        }
        if ev.has_aggregate && ev.winner == EngineKind::Ap {
            text.push_str(
                " AP's ability to aggregate over columnar data further widens the gap \
                 on queries like this one.",
            );
        }
        if ev.join_count >= 2 {
            text.push_str(&format!(
                " With {} joined tables, the choice of join strategy compounds across \
                 the plan, so {loser}'s disadvantage grows with each additional join.",
                ev.relations.len()
            ));
        }
        text.push_str(&format!(
            " Overall, {winner}'s execution strategy is the better fit for this \
             query's shape."
        ));
        text
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expert::ExpertOracle;
    use crate::prompt::{PromptConfig, Question};
    use qpe_htap::engine::HtapSystem;
    use qpe_htap::tpch::TpchConfig;

    fn system() -> HtapSystem {
        HtapSystem::new(&TpchConfig::with_scale(0.005))
    }

    fn prompt_for(
        sys: &HtapSystem,
        sql: &str,
        kb_sqls: &[&str],
        include_rag: bool,
    ) -> Prompt {
        let oracle = ExpertOracle::new(sys.latency_model());
        let knowledge: Vec<_> = kb_sqls
            .iter()
            .enumerate()
            .map(|(i, k)| {
                let out = sys.run_sql(k).unwrap();
                (oracle.knowledge_entry(&out), 0.1 + i as f64 * 0.1)
            })
            .collect();
        let out = sys.run_sql(sql).unwrap();
        Prompt {
            config: PromptConfig {
                include_rag,
                ..Default::default()
            },
            knowledge,
            question: Question {
                sql: sql.into(),
                tp_plan: out.tp.plan.clone(),
                ap_plan: out.ap.plan.clone(),
                winner: out.winner(),
                freshness: vec![],
            },
            user_context: vec![],
        }
    }

    #[test]
    fn grounded_explanation_matches_truth_with_relevant_knowledge() {
        let sys = system();
        let sql = "SELECT COUNT(*) FROM customer, orders \
                   WHERE o_custkey = c_custkey AND c_mktsegment = 'machinery'";
        // KB contains a structurally similar historical join query.
        let kb = ["SELECT COUNT(*) FROM customer, orders \
                   WHERE o_custkey = c_custkey AND c_mktsegment = 'building'"];
        let p = prompt_for(&sys, sql, &kb, true);
        let out = SimulatedLlm::new().explain(&p);
        assert!(!out.is_none);
        let truth = sys.run_sql(sql).unwrap();
        assert_eq!(out.claimed_winner, Some(truth.winner()));
        assert!(!out.cited.is_empty());
        assert!(out.text.contains("is faster"));
    }

    #[test]
    fn empty_knowledge_returns_none() {
        let sys = system();
        let p = prompt_for(&sys, "SELECT COUNT(*) FROM customer", &[], true);
        let out = SimulatedLlm::new().explain(&p);
        assert!(out.is_none);
        assert_eq!(out.text, "None");
        assert_eq!(out.token_count(), 1);
    }

    #[test]
    fn irrelevant_knowledge_returns_none() {
        let sys = system();
        // question: TP-winning point lookup; knowledge: AP-winning scan —
        // opposite winner, no overlapping factor.
        let p = prompt_for(
            &sys,
            "SELECT c_name FROM customer WHERE c_custkey = 7",
            &["SELECT COUNT(*) FROM customer, orders, lineitem \
               WHERE o_custkey = c_custkey AND l_orderkey = o_orderkey"],
            true,
        );
        let out = SimulatedLlm::new().explain(&p);
        assert!(out.is_none, "got: {}", out.text);
    }

    #[test]
    fn distance_cutoff_forces_none() {
        let sys = system();
        let sql = "SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'";
        let mut p = prompt_for(&sys, sql, &[sql], true);
        // push the (otherwise perfect) neighbor beyond the cutoff
        p.knowledge[0].1 = 100.0;
        let out = SimulatedLlm::new().explain(&p);
        assert!(out.is_none);
    }

    #[test]
    fn no_rag_prompt_falls_back_to_plan_diffing() {
        let sys = system();
        let sql = "SELECT COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey";
        let p = prompt_for(&sys, sql, &[], false);
        let out = SimulatedLlm::new().explain(&p);
        // DBG-PT always answers (never None) — it has no abstention rule.
        assert!(!out.is_none);
    }

    #[test]
    fn output_is_deterministic() {
        let sys = system();
        let sql = "SELECT COUNT(*) FROM customer, orders \
                   WHERE o_custkey = c_custkey AND c_mktsegment = 'machinery'";
        let kb = ["SELECT COUNT(*) FROM customer, orders \
                   WHERE o_custkey = c_custkey AND c_mktsegment = 'building'"];
        let p = prompt_for(&sys, sql, &kb, true);
        let llm = SimulatedLlm::new();
        assert_eq!(llm.explain(&p).text, llm.explain(&p).text);
    }

    #[test]
    fn primary_factor_is_first_cited() {
        let sys = system();
        let sql = "SELECT COUNT(*) FROM customer, orders \
                   WHERE o_custkey = c_custkey AND c_mktsegment = 'machinery'";
        let kb = [sql];
        let p = prompt_for(&sys, sql, &kb, true);
        let out = SimulatedLlm::new().explain(&p);
        assert_eq!(out.cited.first().copied(), out.primary);
        assert!(out.cited.len() <= SimulatedLlm::new().max_cited);
    }
}
