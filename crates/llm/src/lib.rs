//! Explanation generation: prompts, the simulated LLM, the DBG-PT baseline
//! and the factor-based grader.
//!
//! # Why a *simulated* LLM
//!
//! The paper steers pre-trained public LLMs (Doubao, ChatGPT-4). This
//! reproduction has no network access, so the LLM is replaced by a
//! deterministic *knowledge-grounded generation engine* that makes the
//! paper's central mechanism explicit and testable:
//!
//! * The generator sees exactly what the paper's prompt gives the LLM —
//!   the QUESTION (new query + plan pair + execution result) and the
//!   retrieved KNOWLEDGE (historical queries, plans, results, expert
//!   explanations). It never sees execution counters or ground truth
//!   factors.
//! * Plan evidence ([`evidence`]) proposes *candidate* reasons; retrieved
//!   expert knowledge is what disambiguates which reason is primary. No
//!   matching knowledge → the generator returns `None`, exactly as the
//!   paper's prompt instructs.
//! * With RAG disabled the same generator degrades into the DBG-PT
//!   baseline ([`dbgpt`]) with the four failure modes §VI-D documents.
//!
//! Accuracy therefore depends on retrieval quality (K, KB size, embedding
//! fidelity) through the same causal path the paper credits — which is what
//! the evaluation experiments measure.

pub mod dbgpt;
pub mod evidence;
pub mod expert;
pub mod factors;
pub mod generator;
pub mod grader;
pub mod knowledge;
pub mod prompt;
pub mod timing;

pub use dbgpt::DbgPt;
pub use evidence::PlanEvidence;
pub use expert::ExpertOracle;
pub use factors::{FactorKind, GroundTruth};
pub use generator::{ExplanationOutput, SimulatedLlm};
pub use grader::{Grade, Grader};
pub use knowledge::KnowledgeEntry;
pub use prompt::{Prompt, PromptConfig};
pub use timing::LlmTiming;
