//! The TCP server: thread-per-connection over a bounded accept pool.
//!
//! [`Server::start`] binds a listener and spawns one accept thread; every
//! accepted connection gets its own handler thread and its own
//! [`qpe_htap::Session`] over the shared [`qpe_htap::HtapSystem`], so the
//! engine's own concurrency story (shared read lock, MVCC snapshots,
//! single writer) carries over unchanged. The server adds the network
//! concerns on top:
//!
//! - **Handshake**: the first frame must be `Hello` (or an out-of-band
//!   `Cancel`). `Hello` negotiates the session's [`StatementLimits`] —
//!   the client's requested timeout/memory budget, clamped to the server's
//!   configured caps — and a default engine preference, and returns the
//!   `(conn_id, secret)` credentials another connection can use to cancel
//!   this one.
//! - **Admission control**: at most [`ServerConfig::max_connections`]
//!   concurrent connections, [`ServerConfig::max_inflight_statements`]
//!   concurrently-executing statements, and
//!   [`ServerConfig::max_prepared_statements`] open prepared handles per
//!   connection; beyond any cap the client gets a structured
//!   [`WireError::Busy`] frame (and, for connections, a disconnect),
//!   never a hang or a silent drop.
//! - **Out-of-band cancel**: a `Cancel { conn_id, secret }` frame — on a
//!   fresh connection or an established one — raises the target session's
//!   cancel flag through the same [`qpe_htap::exec::CancelHandle`] the
//!   in-process API uses; the target's in-flight statement returns a typed
//!   `Cancelled` error frame at its next block/morsel boundary.
//! - **Graceful shutdown**: [`Server::shutdown`] stops accepting, cancels
//!   every in-flight statement, lets each connection thread finish its
//!   current reply (the drain), then joins all threads. Handlers that are
//!   still blocked on a socket after a grace window — a peer that sent a
//!   partial frame and went silent, or one that stopped reading its reply
//!   — get their sockets forced shut so the join is always bounded.
//!
//! Connection handlers read with a short socket timeout and poll the stop
//! flag between (and during) frames, so shutdown is observed within
//! ~100 ms even by idle connections. Partial reads across a timeout are
//! preserved — a frame straddling poll ticks decodes intact. Once the
//! stop flag is up, a mid-frame read is abandoned after a bounded drain
//! window ([`STOP_DRAIN_POLLS`] ticks): the stream desync that would
//! normally forbid abandoning a partial read is irrelevant when the
//! connection is being torn down.

use crate::protocol::{
    encoded_row_len, write_frame, BusyWhat, ClientFrame, EnginePref, FrameError, ServerFrame,
    StatsSnapshot, WireError, DEFAULT_FETCH_ROWS, MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use crate::stats::{ServerStats, SessionStats};
use qpe_htap::exec::{CancelHandle, StatementLimits, WorkCounters};
use qpe_htap::{EngineKind, HtapSystem, PreparedStatement, Session, StatementOutcome};
use qpe_sql::value::Value;
use std::collections::hash_map::RandomState;
use std::collections::HashMap;
use std::hash::{BuildHasher, Hasher};
use std::io::{self, Read};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How often blocked reads wake up to poll the stop flag.
const POLL_INTERVAL: Duration = Duration::from_millis(100);

/// Extra poll ticks a mid-frame read is granted after the stop flag is
/// observed, so a frame already in flight can finish arriving. Past the
/// window the read is abandoned — the connection is being torn down, so
/// losing stream sync no longer matters.
const STOP_DRAIN_POLLS: u32 = 5;

/// How long [`Server::shutdown`] waits for handlers to drain gracefully
/// before forcing their sockets shut. Must exceed the read drain window
/// (`POLL_INTERVAL * STOP_DRAIN_POLLS`) so the forced path only fires for
/// handlers blocked somewhere polling cannot reach (e.g. a write to a
/// peer that stopped reading).
const SHUTDOWN_GRACE: Duration = Duration::from_secs(1);

/// Backoff after a failed `accept()`: a persistent error such as fd
/// exhaustion (precisely when the server is overloaded) must not turn the
/// accept thread into a 100% CPU busy-loop.
const ACCEPT_ERROR_BACKOFF: Duration = Duration::from_millis(50);

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Concurrent-connection cap; excess connects get `Busy` + disconnect.
    pub max_connections: u32,
    /// Concurrently-executing statement cap across all connections; excess
    /// `Execute`s get a `Busy` error (the connection stays usable).
    pub max_inflight_statements: u32,
    /// Per-connection cap on open prepared-statement handles; excess
    /// `Prepare`s get a `Busy` error until the client `CloseStmt`s some.
    /// Bounds server memory against a client preparing in a loop.
    pub max_prepared_statements: u32,
    /// Upper bound on the per-session statement timeout a `Hello` may
    /// request (`None` = no cap). Also applied when the client requests no
    /// timeout at all.
    pub max_statement_timeout: Option<Duration>,
    /// Upper bound on the per-session memory budget a `Hello` may request
    /// (`None` = no cap). Also applied when the client requests no budget.
    pub max_memory_budget: Option<u64>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            max_connections: 64,
            max_inflight_statements: 32,
            max_prepared_statements: 256,
            max_statement_timeout: None,
            max_memory_budget: None,
        }
    }
}

/// One live connection's cancellation entry in the server registry.
struct ConnEntry {
    secret: u64,
    cancel: CancelHandle,
}

/// State shared between the accept loop, connection threads, and the
/// embedding application.
struct Shared {
    system: Arc<HtapSystem>,
    config: ServerConfig,
    stats: ServerStats,
    stop: AtomicBool,
    /// Statements currently executing, across all connections.
    inflight: AtomicU32,
    next_conn_id: AtomicU64,
    /// conn_id → cancel credentials, for out-of-band `Cancel`.
    registry: Mutex<HashMap<u64, ConnEntry>>,
    /// Live connection-handler threads (reaped opportunistically, joined
    /// at shutdown).
    handlers: Mutex<Vec<JoinHandle<()>>>,
    /// Socket clones of live connections, keyed by an accept-time token
    /// (present from accept, before any `Hello`), so shutdown can force
    /// sockets shut under handlers still blocked on I/O after the grace
    /// window.
    sockets: Mutex<HashMap<u64, TcpStream>>,
    next_sock_token: AtomicU64,
}

/// A running network front end. Dropping without [`Server::shutdown`]
/// leaks the accept thread; call `shutdown` (the tests and binaries do).
pub struct Server {
    shared: Arc<Shared>,
    addr: SocketAddr,
    accept_thread: Option<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (use port 0 for an ephemeral port; [`Server::addr`]
    /// reports the resolved one) and starts accepting.
    pub fn start(
        system: Arc<HtapSystem>,
        addr: &str,
        config: ServerConfig,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let shared = Arc::new(Shared {
            system,
            config,
            stats: ServerStats::default(),
            stop: AtomicBool::new(false),
            inflight: AtomicU32::new(0),
            next_conn_id: AtomicU64::new(1),
            registry: Mutex::new(HashMap::new()),
            handlers: Mutex::new(Vec::new()),
            sockets: Mutex::new(HashMap::new()),
            next_sock_token: AtomicU64::new(1),
        });
        let accept_shared = Arc::clone(&shared);
        let accept_thread = std::thread::Builder::new()
            .name("qpe-server-accept".into())
            .spawn(move || accept_loop(listener, accept_shared))?;
        Ok(Server {
            shared,
            addr,
            accept_thread: Some(accept_thread),
        })
    }

    /// The bound address (resolved ephemeral port included).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Server-wide counters.
    pub fn stats(&self) -> &ServerStats {
        &self.shared.stats
    }

    /// The shared system this server fronts.
    pub fn system(&self) -> &Arc<HtapSystem> {
        &self.shared.system
    }

    /// Graceful shutdown: stop accepting, cancel every in-flight
    /// statement, drain connection threads (each finishes its current
    /// reply), join everything. Handlers still blocked on a socket after
    /// [`SHUTDOWN_GRACE`] — a peer that sent a partial frame and went
    /// silent, or stopped reading its reply — get their sockets forced
    /// shut, so this never hangs on a misbehaving client. Idempotent.
    pub fn shutdown(&mut self) {
        self.shared.stop.store(true, Ordering::SeqCst);
        // Cancel in-flight statements so the drain is bounded by one
        // block/morsel boundary, not one statement.
        {
            let registry = self.shared.registry.lock().expect("registry lock");
            for entry in registry.values() {
                entry.cancel.cancel();
            }
        }
        // Wake the accept loop out of `accept()` with a no-op connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        // Phase 1 (graceful): handlers observe the stop flag within one
        // poll tick (idle or between frames) or one drain window
        // (mid-frame) and exit after finishing their current reply.
        let deadline = Instant::now() + SHUTDOWN_GRACE;
        loop {
            let all_done = {
                let h = self.shared.handlers.lock().expect("handlers lock");
                h.iter().all(|t| t.is_finished())
            };
            if all_done || Instant::now() >= deadline {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        // Phase 2 (forced): whoever is still alive is blocked on a socket
        // polling cannot reach; shut the sockets down to unblock them.
        {
            let sockets = self.shared.sockets.lock().expect("sockets lock");
            for s in sockets.values() {
                let _ = s.shutdown(Shutdown::Both);
            }
        }
        let handlers = {
            let mut h = self.shared.handlers.lock().expect("handlers lock");
            std::mem::take(&mut *h)
        };
        for t in handlers {
            let _ = t.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let stream = match listener.accept() {
            Ok((s, _)) => s,
            Err(_) => {
                if shared.stop.load(Ordering::SeqCst) {
                    return;
                }
                std::thread::sleep(ACCEPT_ERROR_BACKOFF);
                continue;
            }
        };
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        // Connection admission: compare-and-bump under the registry lock's
        // shadow is overkill; a relaxed check is fine because the cap is a
        // soft protective bound, not an invariant.
        let active = ServerStats::get(&shared.stats.connections_active);
        if active >= shared.config.max_connections as u64 {
            ServerStats::bump(&shared.stats.connections_rejected);
            reject_busy(stream, &shared);
            continue;
        }
        ServerStats::bump(&shared.stats.connections_accepted);
        ServerStats::bump(&shared.stats.connections_active);
        // Register a socket clone so shutdown can force the stream shut
        // under a handler blocked on I/O (`Shutdown` acts on the shared
        // underlying socket, not the clone).
        let sock_token = shared.next_sock_token.fetch_add(1, Ordering::SeqCst);
        if let Ok(clone) = stream.try_clone() {
            let mut sockets = shared.sockets.lock().expect("sockets lock");
            sockets.insert(sock_token, clone);
        }
        let conn_shared = Arc::clone(&shared);
        let handle = std::thread::Builder::new()
            .name("qpe-server-conn".into())
            .spawn(move || {
                Connection::run(stream, Arc::clone(&conn_shared));
                conn_shared
                    .sockets
                    .lock()
                    .expect("sockets lock")
                    .remove(&sock_token);
                conn_shared
                    .stats
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
            });
        match handle {
            Ok(h) => {
                let mut handlers = shared.handlers.lock().expect("handlers lock");
                handlers.retain(|t| !t.is_finished());
                handlers.push(h);
            }
            Err(_) => {
                shared
                    .sockets
                    .lock()
                    .expect("sockets lock")
                    .remove(&sock_token);
                shared
                    .stats
                    .connections_active
                    .fetch_sub(1, Ordering::Relaxed);
            }
        }
    }
}

/// Tells an over-cap client why it is being turned away, then disconnects.
/// The brief read-drain matters: closing with the client's `Hello` still
/// unread would RST the connection and discard the `Busy` frame from the
/// client's receive buffer — draining until EOF (or a short timeout) lets
/// the rejection arrive intact.
fn reject_busy(mut stream: TcpStream, shared: &Shared) {
    let frame = ServerFrame::Error(WireError::Busy {
        what: BusyWhat::Connections,
        limit: shared.config.max_connections,
    });
    ServerStats::bump(&shared.stats.errors_sent);
    if write_frame(&mut stream, &frame.encode()).is_err() {
        return;
    }
    let _ = stream.set_read_timeout(Some(Duration::from_millis(200)));
    let mut sink = [0u8; 256];
    while matches!(stream.read(&mut sink), Ok(n) if n > 0) {}
}

/// Reads into `buf[*filled..]` until full, polling `stop` across read
/// timeouts. Partial progress survives a timeout — `filled` advances
/// monotonically, so a frame straddling poll ticks is reassembled intact.
/// Returns `Ok(true)` when full, `Ok(false)` when `stop` was observed and
/// the read abandoned — immediately when no bytes of `buf` had arrived,
/// after the [`STOP_DRAIN_POLLS`] drain window mid-buffer (a peer that
/// goes silent mid-frame must not pin this thread past shutdown) — and
/// `Err` on I/O failure (EOF included).
fn read_full_polling(
    stream: &mut TcpStream,
    buf: &mut [u8],
    filled: &mut usize,
    stop: &AtomicBool,
) -> io::Result<bool> {
    let mut stop_polls = 0u32;
    while *filled < buf.len() {
        match stream.read(&mut buf[*filled..]) {
            Ok(0) => return Err(io::ErrorKind::UnexpectedEof.into()),
            Ok(n) => *filled += n,
            Err(e) if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut => {
                if stop.load(Ordering::SeqCst) {
                    if *filled == 0 {
                        return Ok(false);
                    }
                    stop_polls += 1;
                    if stop_polls >= STOP_DRAIN_POLLS {
                        return Ok(false);
                    }
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(e),
        }
    }
    Ok(true)
}

/// What one poll-read of a frame produced.
enum PolledFrame {
    /// A complete, CRC-verified payload.
    Payload(Vec<u8>),
    /// The stop flag was raised at a frame boundary.
    Stopped,
    /// The peer closed or the stream failed; handler should exit quietly.
    Disconnected,
    /// Envelope-integrity failure (oversize/CRC); handler sends the error
    /// and disconnects.
    Broken(FrameError),
}

/// Reads one frame with stop-flag polling and the pre-allocation length
/// cap. Counts received bytes into both stat scopes.
fn read_frame_polling(
    stream: &mut TcpStream,
    shared: &Shared,
    session_stats: &SessionStats,
) -> PolledFrame {
    let mut header = [0u8; 8];
    let mut filled = 0;
    match read_full_polling(stream, &mut header, &mut filled, &shared.stop) {
        Ok(true) => {}
        Ok(false) => return PolledFrame::Stopped,
        Err(_) => return PolledFrame::Disconnected,
    }
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return PolledFrame::Broken(FrameError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    let mut filled = 0;
    // Mid-frame, stop abandons the read after a bounded drain window —
    // the connection is being torn down, so stream desync is moot.
    match read_full_polling(stream, &mut payload, &mut filled, &shared.stop) {
        Ok(true) => {}
        Ok(false) => return PolledFrame::Stopped,
        Err(_) => return PolledFrame::Disconnected,
    }
    let wire_bytes = 8 + len as u64;
    ServerStats::add(&shared.stats.bytes_read, wire_bytes);
    ServerStats::add(&session_stats.bytes_read, wire_bytes);
    if qpe_htap::storage::crc32(&payload) != crc {
        return PolledFrame::Broken(FrameError::BadCrc);
    }
    PolledFrame::Payload(payload)
}

/// RAII slot in the global in-flight statement budget.
struct InflightSlot<'a>(&'a Shared);

impl<'a> InflightSlot<'a> {
    /// Claims a slot, or reports the cap that refused it.
    fn claim(shared: &'a Shared) -> Result<InflightSlot<'a>, WireError> {
        let cap = shared.config.max_inflight_statements;
        let prev = shared.inflight.fetch_add(1, Ordering::SeqCst);
        if prev >= cap {
            shared.inflight.fetch_sub(1, Ordering::SeqCst);
            ServerStats::bump(&shared.stats.statements_rejected);
            return Err(WireError::Busy {
                what: BusyWhat::Statements,
                limit: cap,
            });
        }
        Ok(InflightSlot(shared))
    }
}

impl Drop for InflightSlot<'_> {
    fn drop(&mut self) {
        self.0.inflight.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Byte budget for one `Rows`/`RowsChunk` frame's row data, leaving
/// headroom under [`MAX_FRAME_LEN`] for the frame's fixed header fields
/// (opcode, engine, latencies, counters, totals — well under 4 KiB).
const CHUNK_BYTE_BUDGET: usize = MAX_FRAME_LEN as usize - 4096;

/// An open result cursor: the full materialized result, a read position,
/// and the chunk protocol's `more` flag derives from what's left.
struct Cursor {
    rows: Vec<Vec<Value>>,
    pos: usize,
}

impl Cursor {
    /// The next chunk, bounded by `max_rows` **and** by encoded byte size
    /// (wide string rows must not assemble a frame past the protocol's
    /// length cap). `Err(bytes)` means the single next row alone exceeds
    /// the budget and no frame can carry it.
    fn next_chunk(&mut self, max_rows: u32) -> Result<(Vec<Vec<Value>>, bool), usize> {
        let max = if max_rows == 0 {
            DEFAULT_FETCH_ROWS
        } else {
            max_rows
        } as usize;
        let mut bytes = 0usize;
        let mut end = self.pos;
        while end < self.rows.len() && end - self.pos < max {
            let row_bytes = encoded_row_len(&self.rows[end]);
            if bytes + row_bytes > CHUNK_BYTE_BUDGET {
                if end == self.pos {
                    return Err(row_bytes);
                }
                break;
            }
            bytes += row_bytes;
            end += 1;
        }
        let chunk = self.rows[self.pos..end].to_vec();
        self.pos = end;
        Ok((chunk, self.pos < self.rows.len()))
    }
}

/// The typed error for a result row no frame can carry.
fn oversized_row_error(bytes: usize) -> WireError {
    WireError::Exec(format!(
        "result row of {bytes} encoded bytes exceeds the {MAX_FRAME_LEN}-byte frame cap"
    ))
}

/// One connection's server-side state.
struct Connection {
    stream: TcpStream,
    shared: Arc<Shared>,
    session_stats: SessionStats,
    session: Option<Session>,
    limits: StatementLimits,
    conn_id: u64,
    statements: HashMap<u32, PreparedStatement>,
    next_stmt_id: u32,
    cursor: Option<Cursor>,
}

impl Connection {
    fn run(stream: TcpStream, shared: Arc<Shared>) {
        let _ = stream.set_read_timeout(Some(POLL_INTERVAL));
        let _ = stream.set_nodelay(true);
        let mut conn = Connection {
            stream,
            shared,
            session_stats: SessionStats::default(),
            session: None,
            limits: StatementLimits::unlimited(),
            conn_id: 0,
            statements: HashMap::new(),
            next_stmt_id: 1,
            cursor: None,
        };
        conn.serve();
        // Deregister (no-op when the handshake never completed).
        if conn.conn_id != 0 {
            let mut registry = conn.shared.registry.lock().expect("registry lock");
            registry.remove(&conn.conn_id);
        }
    }

    fn serve(&mut self) {
        loop {
            let shared = Arc::clone(&self.shared);
            let payload = match read_frame_polling(&mut self.stream, &shared, &self.session_stats) {
                PolledFrame::Payload(p) => p,
                PolledFrame::Stopped | PolledFrame::Disconnected => return,
                PolledFrame::Broken(e) => {
                    ServerStats::bump(&shared.stats.protocol_errors);
                    let _ = self.send(ServerFrame::Error(WireError::Protocol(e.to_string())));
                    return;
                }
            };
            let frame = match ClientFrame::decode(&payload) {
                Ok(f) => f,
                Err(e) => {
                    ServerStats::bump(&shared.stats.protocol_errors);
                    // The envelope was sound, so the stream is still in
                    // sync; report and keep serving.
                    let _ = self.send(ServerFrame::Error(WireError::Protocol(e.to_string())));
                    continue;
                }
            };
            if !self.dispatch(frame) {
                return;
            }
        }
    }

    /// Handles one decoded frame; `false` ends the connection.
    fn dispatch(&mut self, frame: ClientFrame) -> bool {
        match frame {
            ClientFrame::Hello { version, timeout_ns, memory_budget, engine } => {
                self.on_hello(version, timeout_ns, memory_budget, engine)
            }
            ClientFrame::Cancel { conn_id, secret } => {
                // Valid with or without a session of its own.
                let matched = self.shared.cancel_conn(conn_id, secret);
                let _ = self.send(ServerFrame::CancelOk { matched });
                // A pure cancel connection (no Hello) is one-shot.
                self.session.is_some()
            }
            _ if self.session.is_none() => {
                ServerStats::bump(&self.shared.stats.protocol_errors);
                let _ = self.send(ServerFrame::Error(WireError::Protocol(
                    "first frame must be Hello (or Cancel)".into(),
                )));
                false
            }
            ClientFrame::Prepare { sql } => self.on_prepare(&sql),
            ClientFrame::Execute { stmt_id, engine, max_rows, params } => {
                self.on_execute(stmt_id, engine, max_rows, &params)
            }
            ClientFrame::Fetch { max_rows } => self.on_fetch(max_rows),
            ClientFrame::CloseStmt { stmt_id } => {
                let reply = if self.statements.remove(&stmt_id).is_some() {
                    ServerFrame::Closed { stmt_id }
                } else {
                    ServerFrame::Error(WireError::UnknownStatement { stmt_id })
                };
                self.send(reply).is_ok()
            }
            ClientFrame::Stats => {
                let snapshot = self.stats_snapshot();
                self.send(ServerFrame::StatsReply(Box::new(snapshot))).is_ok()
            }
            ClientFrame::Goodbye => {
                let _ = self.send(ServerFrame::GoodbyeOk);
                false
            }
        }
    }

    fn on_hello(
        &mut self,
        version: u16,
        timeout_ns: u64,
        memory_budget: u64,
        engine: EnginePref,
    ) -> bool {
        if self.session.is_some() {
            let _ = self.send(ServerFrame::Error(WireError::Protocol(
                "duplicate Hello".into(),
            )));
            return true;
        }
        if version > PROTOCOL_VERSION {
            ServerStats::bump(&self.shared.stats.protocol_errors);
            let _ = self.send(ServerFrame::Error(WireError::Protocol(format!(
                "client protocol version {version} is newer than server {PROTOCOL_VERSION}"
            ))));
            return false;
        }
        // Negotiate limits: the client's request, clamped to server caps;
        // no request (0) adopts the cap itself, if any.
        let requested_timeout = (timeout_ns > 0).then(|| Duration::from_nanos(timeout_ns));
        let timeout = match (requested_timeout, self.shared.config.max_statement_timeout) {
            (Some(r), Some(cap)) => Some(r.min(cap)),
            (Some(r), None) => Some(r),
            (None, cap) => cap,
        };
        let requested_budget = (memory_budget > 0).then_some(memory_budget);
        let budget = match (requested_budget, self.shared.config.max_memory_budget) {
            (Some(r), Some(cap)) => Some(r.min(cap)),
            (Some(r), None) => Some(r),
            (None, cap) => cap,
        };
        self.limits = StatementLimits {
            timeout,
            memory_budget: budget,
        };

        let session = Session::new(Arc::clone(&self.shared.system));
        session.pin_engine(engine.engine());
        let conn_id = self.shared.next_conn_id.fetch_add(1, Ordering::SeqCst);
        let secret = fresh_secret(conn_id);
        {
            let mut registry = self.shared.registry.lock().expect("registry lock");
            registry.insert(
                conn_id,
                ConnEntry {
                    secret,
                    cancel: session.cancel_handle(),
                },
            );
        }
        self.session = Some(session);
        self.conn_id = conn_id;
        self.send(ServerFrame::HelloOk {
            conn_id,
            secret,
            version: PROTOCOL_VERSION,
        })
        .is_ok()
    }

    fn on_prepare(&mut self, sql: &str) -> bool {
        // Handle cap: ids are never reused, so without it a client
        // preparing in a loop would grow this map without bound.
        let cap = self.shared.config.max_prepared_statements;
        if self.statements.len() as u64 >= cap as u64 {
            ServerStats::bump(&self.shared.stats.statements_rejected);
            return self
                .send(ServerFrame::Error(WireError::Busy {
                    what: BusyWhat::PreparedStatements,
                    limit: cap,
                }))
                .is_ok();
        }
        let session = self.session.as_ref().expect("session after Hello");
        match session.prepare(sql) {
            Ok(stmt) => {
                let stmt_id = self.next_stmt_id;
                self.next_stmt_id += 1;
                let param_types = stmt.param_types().to_vec();
                self.statements.insert(stmt_id, stmt);
                self.send(ServerFrame::Prepared { stmt_id, param_types }).is_ok()
            }
            Err(e) => self.send(ServerFrame::Error(WireError::from(&e))).is_ok(),
        }
    }

    fn on_execute(
        &mut self,
        stmt_id: u32,
        engine: EnginePref,
        max_rows: u32,
        params: &[Value],
    ) -> bool {
        let Some(stmt) = self.statements.get(&stmt_id) else {
            return self
                .send(ServerFrame::Error(WireError::UnknownStatement { stmt_id }))
                .is_ok();
        };
        let shared = Arc::clone(&self.shared);
        let slot = match InflightSlot::claim(&shared) {
            Ok(s) => s,
            Err(busy) => return self.send(ServerFrame::Error(busy)).is_ok(),
        };
        let outcome = match engine {
            EnginePref::Default => stmt.execute_with(params, &self.limits),
            EnginePref::Tp => stmt.execute_on_with(EngineKind::Tp, params, &self.limits),
            EnginePref::Ap => stmt.execute_on_with(EngineKind::Ap, params, &self.limits),
            EnginePref::Dual => stmt.execute_dual_with(params, &self.limits),
        };
        drop(slot);
        ServerStats::bump(&self.shared.stats.statements_executed);
        ServerStats::bump(&self.session_stats.statements);
        match outcome {
            Ok(StatementOutcome::Query(q)) => {
                // Dual run: rows were verified identical across engines;
                // report the winner as the serving engine and the TP run's
                // counters (the deterministic choice — identical to what an
                // in-process caller reads off `QueryOutcome::tp`).
                let winner = q.winner();
                self.send_rows(
                    winner,
                    true,
                    q.tp.latency_ns,
                    q.ap.latency_ns,
                    q.tp.counters,
                    q.tp.rows,
                    max_rows,
                )
            }
            Ok(StatementOutcome::PinnedQuery(p)) => {
                let (tp_ns, ap_ns) = match p.run.engine {
                    EngineKind::Tp => (p.run.latency_ns, 0),
                    EngineKind::Ap => (0, p.run.latency_ns),
                };
                self.send_rows(
                    p.run.engine,
                    false,
                    tp_ns,
                    ap_ns,
                    p.run.counters,
                    p.run.rows,
                    max_rows,
                )
            }
            Ok(StatementOutcome::Dml(d)) => {
                self.cursor = None;
                ServerStats::add(&self.session_stats.rows, d.result.rows_affected);
                self.send(ServerFrame::DmlOk {
                    rows_affected: d.result.rows_affected,
                    latency_ns: d.latency_ns,
                    counters: d.counters,
                })
                .is_ok()
            }
            Err(e) => {
                self.cursor = None;
                self.send(ServerFrame::Error(WireError::from(&e))).is_ok()
            }
        }
    }

    /// Registers `all_rows` as the open cursor and sends the result
    /// header plus its first chunk. A row too wide for any frame becomes
    /// a typed error instead of an unsendable frame (the connection
    /// stays usable; the cursor is dropped).
    #[allow(clippy::too_many_arguments)]
    fn send_rows(
        &mut self,
        engine: EngineKind,
        dual: bool,
        tp_latency_ns: u64,
        ap_latency_ns: u64,
        counters: WorkCounters,
        all_rows: Vec<Vec<Value>>,
        max_rows: u32,
    ) -> bool {
        let total = all_rows.len() as u64;
        ServerStats::add(&self.session_stats.rows, total);
        let mut cursor = Cursor { rows: all_rows, pos: 0 };
        match cursor.next_chunk(max_rows) {
            Ok((rows, more)) => {
                self.cursor = more.then_some(cursor);
                self.send(ServerFrame::Rows {
                    engine,
                    dual,
                    tp_latency_ns,
                    ap_latency_ns,
                    counters,
                    total_rows: total,
                    rows,
                    more,
                })
                .is_ok()
            }
            Err(bytes) => {
                self.cursor = None;
                self.send(ServerFrame::Error(oversized_row_error(bytes))).is_ok()
            }
        }
    }

    fn on_fetch(&mut self, max_rows: u32) -> bool {
        let Some(cursor) = self.cursor.as_mut() else {
            return self.send(ServerFrame::Error(WireError::NoCursor)).is_ok();
        };
        match cursor.next_chunk(max_rows) {
            Ok((rows, more)) => {
                if !more {
                    self.cursor = None;
                }
                self.send(ServerFrame::RowsChunk { rows, more }).is_ok()
            }
            Err(bytes) => {
                self.cursor = None;
                self.send(ServerFrame::Error(oversized_row_error(bytes))).is_ok()
            }
        }
    }

    fn stats_snapshot(&self) -> StatsSnapshot {
        let s = &self.shared.stats;
        let health = self.shared.system.health();
        StatsSnapshot {
            connections_accepted: ServerStats::get(&s.connections_accepted),
            connections_rejected: ServerStats::get(&s.connections_rejected),
            connections_active: ServerStats::get(&s.connections_active),
            statements_executed: ServerStats::get(&s.statements_executed),
            statements_rejected: ServerStats::get(&s.statements_rejected),
            cancels_matched: ServerStats::get(&s.cancels_matched),
            protocol_errors: ServerStats::get(&s.protocol_errors),
            errors_sent: ServerStats::get(&s.errors_sent),
            bytes_read: ServerStats::get(&s.bytes_read),
            bytes_written: ServerStats::get(&s.bytes_written),
            session_statements: ServerStats::get(&self.session_stats.statements),
            session_rows: ServerStats::get(&self.session_stats.rows),
            session_bytes_read: ServerStats::get(&self.session_stats.bytes_read),
            session_bytes_written: ServerStats::get(&self.session_stats.bytes_written),
            degraded: health.degraded,
            degraded_cause: health.degraded_cause.unwrap_or_default(),
            writer_panics: health.writer_panics,
            wal_flush_retries: health.wal_flush_retries,
        }
    }

    /// Encodes and writes one reply, counting bytes and error frames.
    fn send(&mut self, frame: ServerFrame) -> io::Result<()> {
        if matches!(frame, ServerFrame::Error(_)) {
            ServerStats::bump(&self.shared.stats.errors_sent);
        }
        let n = write_frame(&mut self.stream, &frame.encode())?;
        ServerStats::add(&self.shared.stats.bytes_written, n);
        ServerStats::add(&self.session_stats.bytes_written, n);
        Ok(())
    }
}

impl Shared {
    /// Raises the cancel flag of the connection matching the credentials.
    fn cancel_conn(&self, conn_id: u64, secret: u64) -> bool {
        let registry = self.registry.lock().expect("registry lock");
        match registry.get(&conn_id) {
            Some(entry) if entry.secret == secret => {
                entry.cancel.cancel();
                ServerStats::bump(&self.stats.cancels_matched);
                true
            }
            _ => false,
        }
    }
}

/// An unguessable-enough cancel secret without a PRNG dependency: the
/// std hash map's per-instance random seed, keyed by the connection id.
fn fresh_secret(conn_id: u64) -> u64 {
    let mut h = RandomState::new().build_hasher();
    h.write_u64(conn_id);
    h.finish()
}
