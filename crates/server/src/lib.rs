//! Network front end for the dual-engine HTAP system.
//!
//! This crate puts the in-process [`qpe_htap::Session`] API on a socket: a
//! thread-per-connection TCP [`server`] speaking a length-prefixed,
//! CRC-checked binary [`protocol`], a blocking [`client`] library used by
//! the tests and the `loadgen` traffic harness, and [`stats`] counters
//! surfacing server observability over the same protocol.
//!
//! The server adds exactly the concerns a network boundary introduces —
//! framing, handshake/limit negotiation, admission control, out-of-band
//! cancellation, graceful shutdown — and delegates everything else to the
//! HTAP session layer, so a statement executed over the wire returns
//! byte-identical rows (and the same typed errors) as one executed
//! in-process.

pub mod client;
pub mod protocol;
pub mod server;
pub mod stats;

pub use client::{Client, ClientError, ExecOutcome, QueryResult};
pub use protocol::{
    ClientFrame, EnginePref, FrameError, ServerFrame, StatsSnapshot, WireError, MAX_FRAME_LEN,
    PROTOCOL_VERSION,
};
pub use server::{Server, ServerConfig};
pub use stats::{ServerStats, SessionStats};
