//! Server observability: lock-free counters at server and session scope.
//!
//! [`ServerStats`] is shared (behind `Arc`) between the accept loop, every
//! connection thread, and the embedding application; [`SessionStats`] is
//! per-connection. Both are plain relaxed atomics — they are monotonic
//! tallies, not synchronization — and both snapshot into the wire-level
//! [`StatsSnapshot`](crate::protocol::StatsSnapshot) served by the `Stats`
//! frame, which additionally folds in system health (degraded mode, writer
//! panics, WAL retries) from [`qpe_htap::HtapSystem::health`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Server-wide counters. All increments are relaxed; readers see a
/// near-point-in-time snapshot, which is all observability needs.
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Connections accepted since start.
    pub connections_accepted: AtomicU64,
    /// Connections rejected by admission control (connection cap).
    pub connections_rejected: AtomicU64,
    /// Currently open connections.
    pub connections_active: AtomicU64,
    /// Statements executed to completion (success or statement error).
    pub statements_executed: AtomicU64,
    /// Statements rejected by admission control (in-flight or
    /// prepared-statement caps).
    pub statements_rejected: AtomicU64,
    /// Out-of-band cancel requests that matched a live connection.
    pub cancels_matched: AtomicU64,
    /// Frames that failed to decode (malformed, bad CRC, oversized).
    pub protocol_errors: AtomicU64,
    /// Error frames sent (statement errors included).
    pub errors_sent: AtomicU64,
    /// Total bytes read from clients.
    pub bytes_read: AtomicU64,
    /// Total bytes written to clients.
    pub bytes_written: AtomicU64,
}

impl ServerStats {
    /// Relaxed add helper.
    pub fn add(counter: &AtomicU64, n: u64) {
        counter.fetch_add(n, Ordering::Relaxed);
    }

    /// Relaxed increment helper.
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Relaxed read helper.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }
}

/// Per-connection counters.
#[derive(Debug, Default)]
pub struct SessionStats {
    /// Statements this session executed (success or error).
    pub statements: AtomicU64,
    /// Result + DML rows this session received.
    pub rows: AtomicU64,
    /// Bytes read from this session's connection.
    pub bytes_read: AtomicU64,
    /// Bytes written to this session's connection.
    pub bytes_written: AtomicU64,
}
