//! The binary wire protocol: length-prefixed, CRC-checked frames.
//!
//! # Frame envelope
//!
//! Every message in either direction is one frame:
//!
//! ```text
//! [len: u32 le][crc: u32 le][payload: len bytes]
//! payload = [opcode: u8][body...]
//! ```
//!
//! `len` is the payload length and is validated against
//! [`MAX_FRAME_LEN`] **before** any allocation happens — a hostile or
//! corrupt length prefix can never trigger an unbounded allocation. `crc`
//! is IEEE CRC-32 over the payload (the same polynomial the WAL uses); a
//! mismatch means the stream integrity is unknown, so the peer receives a
//! structured [`WireError::Protocol`] frame and the connection closes.
//!
//! # Body encoding
//!
//! All integers are little-endian. Strings and byte blobs are
//! `u32`-length-prefixed; since they are sliced out of an
//! already-length-capped payload, decoding allocates at most one frame's
//! worth of memory. [`Value`]s are tagged (`0`=NULL, `1`=Int, `2`=Float as
//! IEEE bits, `3`=Str, `4`=Date), so every parameter and result cell —
//! NULL included — round-trips typed.
//!
//! Errors travel as first-class frames: every [`qpe_htap::HtapError`]
//! variant has a wire form ([`WireError`]) that preserves its structure —
//! `Cancelled`, `Timeout { limit }`, `MemoryBudget { budget, attempted }`
//! and `ReadOnly { cause }` arrive as typed errors a client can match on,
//! never as opaque strings.

use qpe_htap::exec::WorkCounters;
use qpe_htap::{EngineKind, HtapError};
use qpe_sql::catalog::DataType;
use qpe_sql::value::Value;
use qpe_sql::SqlError;
use std::io::{self, Read, Write};
use std::time::Duration;

/// Protocol version spoken by this crate. `Hello` carries the client's
/// version; the server rejects anything newer than its own.
pub const PROTOCOL_VERSION: u16 = 1;

/// Hard cap on one frame's payload length, enforced before allocating.
pub const MAX_FRAME_LEN: u32 = 8 * 1024 * 1024;

/// Default number of rows per `Rows`/`RowsChunk` frame when the client
/// does not ask for a specific chunk size.
pub const DEFAULT_FETCH_ROWS: u32 = 1024;

// ---------------------------------------------------------------------------
// Frame envelope I/O
// ---------------------------------------------------------------------------

/// Why a frame could not be read or decoded.
#[derive(Debug)]
pub enum FrameError {
    /// Underlying socket error (includes clean EOF as `UnexpectedEof`).
    Io(io::Error),
    /// The length prefix exceeds [`MAX_FRAME_LEN`]; nothing was allocated.
    Oversized {
        /// The advertised payload length.
        len: u32,
    },
    /// The payload did not checksum; stream integrity is unknown.
    BadCrc,
    /// The envelope was sound but the payload does not decode (unknown
    /// opcode, truncated body, trailing bytes, invalid tag...).
    Malformed(String),
}

impl std::fmt::Display for FrameError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FrameError::Io(e) => write!(f, "io: {e}"),
            FrameError::Oversized { len } => {
                write!(f, "frame length {len} exceeds the {MAX_FRAME_LEN}-byte cap")
            }
            FrameError::BadCrc => write!(f, "frame payload failed its CRC check"),
            FrameError::Malformed(m) => write!(f, "malformed frame: {m}"),
        }
    }
}

impl std::error::Error for FrameError {}

impl From<io::Error> for FrameError {
    fn from(e: io::Error) -> Self {
        FrameError::Io(e)
    }
}

/// Writes one frame (envelope + payload) and flushes. Returns the total
/// bytes put on the wire. Payloads over [`MAX_FRAME_LEN`] are refused
/// (in every build profile) before anything reaches the stream — the
/// receiver would reject the length prefix, and a half-delivered
/// oversized frame would poison the connection for every later reply.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<u64> {
    if payload.len() as u64 > MAX_FRAME_LEN as u64 {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "frame payload of {} bytes exceeds the {MAX_FRAME_LEN}-byte cap",
                payload.len()
            ),
        ));
    }
    let len = payload.len() as u32;
    let crc = qpe_htap::storage::crc32(payload);
    // Envelope and payload go out in ONE write: sockets here run with
    // TCP_NODELAY, so three small writes would emit three segments and
    // wake the peer's read loop three times per frame.
    let mut wire = Vec::with_capacity(8 + payload.len());
    wire.extend_from_slice(&len.to_le_bytes());
    wire.extend_from_slice(&crc.to_le_bytes());
    wire.extend_from_slice(payload);
    w.write_all(&wire)?;
    w.flush()?;
    Ok(wire.len() as u64)
}

/// Reads one frame's payload, enforcing [`MAX_FRAME_LEN`] before the
/// payload allocation and verifying the CRC after the read.
pub fn read_frame(r: &mut impl Read) -> Result<Vec<u8>, FrameError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().expect("4 bytes"));
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len > MAX_FRAME_LEN {
        return Err(FrameError::Oversized { len });
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    if qpe_htap::storage::crc32(&payload) != crc {
        return Err(FrameError::BadCrc);
    }
    Ok(payload)
}

// ---------------------------------------------------------------------------
// Body primitives
// ---------------------------------------------------------------------------

/// Append-only payload builder.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// A builder starting with `opcode`.
    pub fn with_opcode(opcode: u8) -> Writer {
        Writer { buf: vec![opcode] }
    }

    /// The finished payload.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }

    fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }
    fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }
    fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Int(i) => {
                self.put_u8(1);
                self.put_i64(*i);
            }
            Value::Float(f) => {
                self.put_u8(2);
                self.put_f64(*f);
            }
            Value::Str(s) => {
                self.put_u8(3);
                self.put_str(s);
            }
            Value::Date(d) => {
                self.put_u8(4);
                self.put_i32(*d);
            }
        }
    }

    fn put_row(&mut self, row: &[Value]) {
        self.put_u32(row.len() as u32);
        for v in row {
            self.put_value(v);
        }
    }

    fn put_counters(&mut self, c: &WorkCounters) {
        let fields = counters_to_array(c);
        self.put_u8(fields.len() as u8);
        for f in fields {
            self.put_u64(f);
        }
    }
}

/// Cursor over a payload; every read is bounds-checked against the frame.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

type DecodeResult<T> = Result<T, FrameError>;

fn malformed(msg: impl Into<String>) -> FrameError {
    FrameError::Malformed(msg.into())
}

impl<'a> Reader<'a> {
    /// A reader over one frame payload.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> DecodeResult<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return Err(malformed(format!(
                "body truncated: wanted {n} bytes at offset {}, frame has {}",
                self.pos,
                self.buf.len()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn u8(&mut self) -> DecodeResult<u8> {
        Ok(self.take(1)?[0])
    }
    fn u16(&mut self) -> DecodeResult<u16> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().expect("2 bytes")))
    }
    fn u32(&mut self) -> DecodeResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn u64(&mut self) -> DecodeResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn i64(&mut self) -> DecodeResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8 bytes")))
    }
    fn i32(&mut self) -> DecodeResult<i32> {
        Ok(i32::from_le_bytes(self.take(4)?.try_into().expect("4 bytes")))
    }
    fn f64(&mut self) -> DecodeResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn bool(&mut self) -> DecodeResult<bool> {
        Ok(self.u8()? != 0)
    }

    fn string(&mut self) -> DecodeResult<String> {
        let n = self.u32()? as usize;
        // `take` bounds n against the remaining frame, so the allocation
        // below is capped by the (already capped) frame length.
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| malformed("string is not UTF-8"))
    }

    fn value(&mut self) -> DecodeResult<Value> {
        Ok(match self.u8()? {
            0 => Value::Null,
            1 => Value::Int(self.i64()?),
            2 => Value::Float(self.f64()?),
            3 => Value::Str(self.string()?),
            4 => Value::Date(self.i32()?),
            t => return Err(malformed(format!("unknown value tag {t}"))),
        })
    }

    fn row(&mut self) -> DecodeResult<Vec<Value>> {
        let n = self.u32()? as usize;
        // Each value is ≥1 byte, so a row longer than the remaining frame
        // cannot decode; cap the pre-allocation the same way.
        let mut row = Vec::with_capacity(n.min(self.buf.len() - self.pos));
        for _ in 0..n {
            row.push(self.value()?);
        }
        Ok(row)
    }

    fn counters(&mut self) -> DecodeResult<WorkCounters> {
        let n = self.u8()? as usize;
        let mut fields = [0u64; COUNTER_FIELDS];
        // A longer list than we know (a newer peer) decodes its known
        // prefix; the surplus is consumed and dropped.
        for i in 0..n {
            let v = self.u64()?;
            if let Some(slot) = fields.get_mut(i) {
                *slot = v;
            }
        }
        Ok(counters_from_array(&fields))
    }

    /// Fails unless the whole payload was consumed — trailing garbage after
    /// a valid body means the peer and we disagree on the format.
    pub fn expect_end(&self) -> DecodeResult<()> {
        if self.pos != self.buf.len() {
            return Err(malformed(format!(
                "{} trailing byte(s) after a complete body",
                self.buf.len() - self.pos
            )));
        }
        Ok(())
    }
}

/// Number of [`WorkCounters`] fields carried on the wire.
const COUNTER_FIELDS: usize = 18;

/// The wire order of [`WorkCounters`] fields (append-only: new counters go
/// at the end so old readers keep decoding the prefix they know).
fn counters_to_array(c: &WorkCounters) -> [u64; COUNTER_FIELDS] {
    [
        c.rows_scanned,
        c.cells_scanned,
        c.index_probes,
        c.index_fetches,
        c.filter_evals,
        c.nlj_pairs,
        c.hash_build_rows,
        c.hash_probe_rows,
        c.sort_comparisons,
        c.topn_pushes,
        c.agg_rows,
        c.output_rows,
        c.rows_inserted,
        c.rows_updated,
        c.rows_deleted,
        c.index_updates,
        c.blocks_checked,
        c.blocks_pruned,
    ]
}

fn counters_from_array(f: &[u64; COUNTER_FIELDS]) -> WorkCounters {
    WorkCounters {
        rows_scanned: f[0],
        cells_scanned: f[1],
        index_probes: f[2],
        index_fetches: f[3],
        filter_evals: f[4],
        nlj_pairs: f[5],
        hash_build_rows: f[6],
        hash_probe_rows: f[7],
        sort_comparisons: f[8],
        topn_pushes: f[9],
        agg_rows: f[10],
        output_rows: f[11],
        rows_inserted: f[12],
        rows_updated: f[13],
        rows_deleted: f[14],
        index_updates: f[15],
        blocks_checked: f[16],
        blocks_pruned: f[17],
    }
}

/// Exact encoded size of one value cell, matching `Writer::put_value`.
pub(crate) fn encoded_value_len(v: &Value) -> usize {
    1 + match v {
        Value::Null => 0,
        Value::Int(_) | Value::Float(_) => 8,
        Value::Str(s) => 4 + s.len(),
        Value::Date(_) => 4,
    }
}

/// Exact encoded size of one row, matching `Writer::put_row`.
pub(crate) fn encoded_row_len(row: &[Value]) -> usize {
    4 + row.iter().map(encoded_value_len).sum::<usize>()
}

fn put_data_type(w: &mut Writer, ty: Option<DataType>) {
    w.put_u8(match ty {
        None => 255,
        Some(DataType::Int) => 0,
        Some(DataType::Float) => 1,
        Some(DataType::Str) => 2,
        Some(DataType::Date) => 3,
    });
}

fn data_type(r: &mut Reader) -> DecodeResult<Option<DataType>> {
    Ok(match r.u8()? {
        255 => None,
        0 => Some(DataType::Int),
        1 => Some(DataType::Float),
        2 => Some(DataType::Str),
        3 => Some(DataType::Date),
        t => return Err(malformed(format!("unknown data type tag {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Engine preference
// ---------------------------------------------------------------------------

/// Which engine(s) an `Execute` should run on — or, in `Hello`, the
/// session's default.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum EnginePref {
    /// Use the session default negotiated at `Hello` (in `Hello` itself:
    /// dual-run).
    #[default]
    Default,
    /// Pin to the row (OLTP) engine.
    Tp,
    /// Pin to the column (OLAP) engine.
    Ap,
    /// Explicit dual-run (both engines + agreement check), overriding a
    /// pinned session default.
    Dual,
}

impl EnginePref {
    fn code(self) -> u8 {
        match self {
            EnginePref::Default => 0,
            EnginePref::Tp => 1,
            EnginePref::Ap => 2,
            EnginePref::Dual => 3,
        }
    }

    fn from_code(c: u8) -> DecodeResult<EnginePref> {
        Ok(match c {
            0 => EnginePref::Default,
            1 => EnginePref::Tp,
            2 => EnginePref::Ap,
            3 => EnginePref::Dual,
            t => return Err(malformed(format!("unknown engine preference {t}"))),
        })
    }

    /// The pinned engine, if this preference names one.
    pub fn engine(self) -> Option<EngineKind> {
        match self {
            EnginePref::Tp => Some(EngineKind::Tp),
            EnginePref::Ap => Some(EngineKind::Ap),
            EnginePref::Default | EnginePref::Dual => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Structured errors
// ---------------------------------------------------------------------------

/// Which SQL front-end stage rejected the statement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SqlStage {
    /// Lexer error.
    Lex,
    /// Parser error.
    Parse,
    /// Binder error.
    Bind,
    /// Valid SQL outside the supported subset.
    Unsupported,
    /// A placeholder in a position that cannot be prepared parametrically.
    ParamNotSupported,
}

/// What resource-admission limit rejected the request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BusyWhat {
    /// The server is at its connection cap.
    Connections,
    /// The server is at its in-flight statement cap.
    Statements,
    /// This connection is at its prepared-statement cap; close handles
    /// with `CloseStmt` to free slots.
    PreparedStatements,
}

/// The wire form of every error the server can send. [`HtapError`]
/// variants map 1:1 (via [`WireError::from`]) so governance and
/// degraded-mode errors — `Cancelled`, `Timeout`, `MemoryBudget`,
/// `ReadOnly` — stay typed across the wire; the protocol adds its own
/// variants for admission (`Busy`), framing (`Protocol`) and statement
/// bookkeeping (`UnknownStatement`, `NoCursor`).
#[derive(Debug, Clone, PartialEq)]
pub enum WireError {
    /// SQL front-end failure.
    Sql {
        /// The stage that rejected the statement.
        stage: SqlStage,
        /// Byte offset for lex/parse errors (0 otherwise).
        pos: u64,
        /// Human-readable description (the clause, for `ParamNotSupported`).
        message: String,
    },
    /// Planner failure.
    Opt(String),
    /// Executor failure.
    Exec(String),
    /// Dual-run engines disagreed (an engine bug surfacing loudly).
    EngineMismatch {
        /// The query.
        sql: String,
        /// TP row count.
        tp_rows: u64,
        /// AP row count.
        ap_rows: u64,
    },
    /// Wrong number of parameter values.
    ParamCountMismatch {
        /// Declared parameter count.
        expected: u32,
        /// Supplied value count.
        got: u32,
    },
    /// A parameter value does not fit its inferred type.
    ParamTypeMismatch {
        /// 0-based parameter index.
        idx: u32,
        /// The inferred type.
        expected: DataType,
        /// The offending value.
        got: Value,
    },
    /// Durable storage failure.
    Durability(String),
    /// The statement was cancelled (session cancel or out-of-band
    /// `Cancel` frame).
    Cancelled,
    /// The statement exceeded its wall-clock budget.
    Timeout {
        /// The configured limit.
        limit: Duration,
    },
    /// The statement exceeded its memory budget.
    MemoryBudget {
        /// The configured budget in approximate bytes.
        budget_bytes: u64,
        /// What the statement had charged when it tripped.
        attempted_bytes: u64,
    },
    /// The system is in read-only degraded mode; writes are rejected.
    ReadOnly {
        /// Root cause of the degradation.
        cause: String,
    },
    /// A contained executor panic.
    Internal(String),
    /// Admission control rejected the request; retry later.
    Busy {
        /// Which limit was hit.
        what: BusyWhat,
        /// The configured cap.
        limit: u32,
    },
    /// Protocol violation (bad frame, bad opcode, handshake out of order).
    Protocol(String),
    /// `Execute`/`CloseStmt` named a statement id this connection never
    /// prepared (or already closed).
    UnknownStatement {
        /// The offending id.
        stmt_id: u32,
    },
    /// `Fetch` with no open cursor.
    NoCursor,
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Sql { stage, pos, message } => {
                write!(f, "sql ({stage:?} at byte {pos}): {message}")
            }
            WireError::Opt(m) => write!(f, "optimizer: {m}"),
            WireError::Exec(m) => write!(f, "executor: {m}"),
            WireError::EngineMismatch { sql, tp_rows, ap_rows } => write!(
                f,
                "engines disagree on {sql:?}: TP returned {tp_rows} rows, AP {ap_rows}"
            ),
            WireError::ParamCountMismatch { expected, got } => {
                write!(f, "statement expects {expected} parameter(s), {got} supplied")
            }
            WireError::ParamTypeMismatch { idx, expected, got } => {
                write!(f, "parameter ${} expects a {expected:?} value, got {got}", idx + 1)
            }
            WireError::Durability(m) => write!(f, "durability: {m}"),
            WireError::Cancelled => write!(f, "statement cancelled"),
            WireError::Timeout { limit } => write!(f, "statement timed out (limit {limit:?})"),
            WireError::MemoryBudget { budget_bytes, attempted_bytes } => write!(
                f,
                "statement exceeded its memory budget ({attempted_bytes} of {budget_bytes} \
                 approx bytes)"
            ),
            WireError::ReadOnly { cause } => {
                write!(f, "system is read-only (degraded mode): {cause}")
            }
            WireError::Internal(m) => write!(f, "internal executor panic (contained): {m}"),
            WireError::Busy { what, limit } => write!(
                f,
                "server busy: {} cap ({limit}) reached, retry later",
                match what {
                    BusyWhat::Connections => "connection",
                    BusyWhat::Statements => "in-flight statement",
                    BusyWhat::PreparedStatements => "prepared statement",
                }
            ),
            WireError::Protocol(m) => write!(f, "protocol: {m}"),
            WireError::UnknownStatement { stmt_id } => {
                write!(f, "unknown prepared statement id {stmt_id}")
            }
            WireError::NoCursor => write!(f, "no open cursor to fetch from"),
        }
    }
}

impl std::error::Error for WireError {}

impl From<&HtapError> for WireError {
    fn from(e: &HtapError) -> Self {
        match e {
            HtapError::Sql(s) => match s {
                SqlError::Lex { pos, message } => WireError::Sql {
                    stage: SqlStage::Lex,
                    pos: *pos as u64,
                    message: message.clone(),
                },
                SqlError::Parse { pos, message } => WireError::Sql {
                    stage: SqlStage::Parse,
                    pos: *pos as u64,
                    message: message.clone(),
                },
                SqlError::Bind(m) => WireError::Sql {
                    stage: SqlStage::Bind,
                    pos: 0,
                    message: m.clone(),
                },
                SqlError::Unsupported(m) => WireError::Sql {
                    stage: SqlStage::Unsupported,
                    pos: 0,
                    message: m.clone(),
                },
                SqlError::ParamNotSupported { clause } => WireError::Sql {
                    stage: SqlStage::ParamNotSupported,
                    pos: 0,
                    message: (*clause).to_string(),
                },
            },
            HtapError::Opt(o) => WireError::Opt(o.to_string()),
            HtapError::Exec(x) => WireError::Exec(x.to_string()),
            HtapError::EngineMismatch { sql, tp_rows, ap_rows } => WireError::EngineMismatch {
                sql: sql.clone(),
                tp_rows: *tp_rows as u64,
                ap_rows: *ap_rows as u64,
            },
            HtapError::ParamCountMismatch { expected, got } => WireError::ParamCountMismatch {
                expected: *expected as u32,
                got: *got as u32,
            },
            HtapError::ParamTypeMismatch { idx, expected, got } => WireError::ParamTypeMismatch {
                idx: *idx as u32,
                expected: *expected,
                got: got.clone(),
            },
            HtapError::Durability(d) => WireError::Durability(d.to_string()),
            HtapError::Cancelled => WireError::Cancelled,
            HtapError::Timeout { limit } => WireError::Timeout { limit: *limit },
            HtapError::MemoryBudget { budget_bytes, attempted_bytes } => WireError::MemoryBudget {
                budget_bytes: *budget_bytes,
                attempted_bytes: *attempted_bytes,
            },
            HtapError::ReadOnly { cause } => WireError::ReadOnly { cause: cause.clone() },
            HtapError::Internal(m) => WireError::Internal(m.clone()),
        }
    }
}

const ERR_SQL: u8 = 1;
const ERR_OPT: u8 = 2;
const ERR_EXEC: u8 = 3;
const ERR_ENGINE_MISMATCH: u8 = 4;
const ERR_PARAM_COUNT: u8 = 5;
const ERR_PARAM_TYPE: u8 = 6;
const ERR_DURABILITY: u8 = 7;
const ERR_CANCELLED: u8 = 8;
const ERR_TIMEOUT: u8 = 9;
const ERR_MEMORY: u8 = 10;
const ERR_READ_ONLY: u8 = 11;
const ERR_INTERNAL: u8 = 12;
const ERR_BUSY: u8 = 13;
const ERR_PROTOCOL: u8 = 14;
const ERR_UNKNOWN_STMT: u8 = 15;
const ERR_NO_CURSOR: u8 = 16;

fn put_wire_error(w: &mut Writer, e: &WireError) {
    match e {
        WireError::Sql { stage, pos, message } => {
            w.put_u8(ERR_SQL);
            w.put_u8(match stage {
                SqlStage::Lex => 0,
                SqlStage::Parse => 1,
                SqlStage::Bind => 2,
                SqlStage::Unsupported => 3,
                SqlStage::ParamNotSupported => 4,
            });
            w.put_u64(*pos);
            w.put_str(message);
        }
        WireError::Opt(m) => {
            w.put_u8(ERR_OPT);
            w.put_str(m);
        }
        WireError::Exec(m) => {
            w.put_u8(ERR_EXEC);
            w.put_str(m);
        }
        WireError::EngineMismatch { sql, tp_rows, ap_rows } => {
            w.put_u8(ERR_ENGINE_MISMATCH);
            w.put_str(sql);
            w.put_u64(*tp_rows);
            w.put_u64(*ap_rows);
        }
        WireError::ParamCountMismatch { expected, got } => {
            w.put_u8(ERR_PARAM_COUNT);
            w.put_u32(*expected);
            w.put_u32(*got);
        }
        WireError::ParamTypeMismatch { idx, expected, got } => {
            w.put_u8(ERR_PARAM_TYPE);
            w.put_u32(*idx);
            put_data_type(w, Some(*expected));
            w.put_value(got);
        }
        WireError::Durability(m) => {
            w.put_u8(ERR_DURABILITY);
            w.put_str(m);
        }
        WireError::Cancelled => w.put_u8(ERR_CANCELLED),
        WireError::Timeout { limit } => {
            w.put_u8(ERR_TIMEOUT);
            w.put_u64(limit.as_nanos().min(u64::MAX as u128) as u64);
        }
        WireError::MemoryBudget { budget_bytes, attempted_bytes } => {
            w.put_u8(ERR_MEMORY);
            w.put_u64(*budget_bytes);
            w.put_u64(*attempted_bytes);
        }
        WireError::ReadOnly { cause } => {
            w.put_u8(ERR_READ_ONLY);
            w.put_str(cause);
        }
        WireError::Internal(m) => {
            w.put_u8(ERR_INTERNAL);
            w.put_str(m);
        }
        WireError::Busy { what, limit } => {
            w.put_u8(ERR_BUSY);
            w.put_u8(match what {
                BusyWhat::Connections => 0,
                BusyWhat::Statements => 1,
                BusyWhat::PreparedStatements => 2,
            });
            w.put_u32(*limit);
        }
        WireError::Protocol(m) => {
            w.put_u8(ERR_PROTOCOL);
            w.put_str(m);
        }
        WireError::UnknownStatement { stmt_id } => {
            w.put_u8(ERR_UNKNOWN_STMT);
            w.put_u32(*stmt_id);
        }
        WireError::NoCursor => w.put_u8(ERR_NO_CURSOR),
    }
}

fn wire_error(r: &mut Reader) -> DecodeResult<WireError> {
    Ok(match r.u8()? {
        ERR_SQL => WireError::Sql {
            stage: match r.u8()? {
                0 => SqlStage::Lex,
                1 => SqlStage::Parse,
                2 => SqlStage::Bind,
                3 => SqlStage::Unsupported,
                4 => SqlStage::ParamNotSupported,
                t => return Err(malformed(format!("unknown sql stage {t}"))),
            },
            pos: r.u64()?,
            message: r.string()?,
        },
        ERR_OPT => WireError::Opt(r.string()?),
        ERR_EXEC => WireError::Exec(r.string()?),
        ERR_ENGINE_MISMATCH => WireError::EngineMismatch {
            sql: r.string()?,
            tp_rows: r.u64()?,
            ap_rows: r.u64()?,
        },
        ERR_PARAM_COUNT => WireError::ParamCountMismatch {
            expected: r.u32()?,
            got: r.u32()?,
        },
        ERR_PARAM_TYPE => WireError::ParamTypeMismatch {
            idx: r.u32()?,
            expected: data_type(r)?.ok_or_else(|| malformed("param type cannot be None"))?,
            got: r.value()?,
        },
        ERR_DURABILITY => WireError::Durability(r.string()?),
        ERR_CANCELLED => WireError::Cancelled,
        ERR_TIMEOUT => WireError::Timeout {
            limit: Duration::from_nanos(r.u64()?),
        },
        ERR_MEMORY => WireError::MemoryBudget {
            budget_bytes: r.u64()?,
            attempted_bytes: r.u64()?,
        },
        ERR_READ_ONLY => WireError::ReadOnly { cause: r.string()? },
        ERR_INTERNAL => WireError::Internal(r.string()?),
        ERR_BUSY => WireError::Busy {
            what: match r.u8()? {
                0 => BusyWhat::Connections,
                1 => BusyWhat::Statements,
                2 => BusyWhat::PreparedStatements,
                t => return Err(malformed(format!("unknown busy kind {t}"))),
            },
            limit: r.u32()?,
        },
        ERR_PROTOCOL => WireError::Protocol(r.string()?),
        ERR_UNKNOWN_STMT => WireError::UnknownStatement { stmt_id: r.u32()? },
        ERR_NO_CURSOR => WireError::NoCursor,
        t => return Err(malformed(format!("unknown error code {t}"))),
    })
}

// ---------------------------------------------------------------------------
// Frames
// ---------------------------------------------------------------------------

const OP_HELLO: u8 = 1;
const OP_PREPARE: u8 = 2;
const OP_EXECUTE: u8 = 3;
const OP_FETCH: u8 = 4;
const OP_CLOSE_STMT: u8 = 5;
const OP_CANCEL: u8 = 6;
const OP_STATS: u8 = 7;
const OP_GOODBYE: u8 = 8;

const OP_HELLO_OK: u8 = 128;
const OP_PREPARED: u8 = 129;
const OP_ROWS: u8 = 130;
const OP_DML_OK: u8 = 131;
const OP_ROWS_CHUNK: u8 = 132;
const OP_CLOSED: u8 = 133;
const OP_CANCEL_OK: u8 = 134;
const OP_STATS_REPLY: u8 = 135;
const OP_GOODBYE_OK: u8 = 136;
const OP_ERROR: u8 = 137;

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum ClientFrame {
    /// Handshake: must be the first frame on a connection (except
    /// [`ClientFrame::Cancel`], which needs no session). Negotiates the
    /// session's [`StatementLimits`] (0 = unlimited; the server additionally
    /// applies its own caps) and default engine preference.
    Hello {
        /// Client protocol version.
        version: u16,
        /// Requested statement timeout in nanoseconds (0 = none).
        timeout_ns: u64,
        /// Requested memory budget in approximate bytes (0 = none).
        memory_budget: u64,
        /// Session-default engine routing (`Default` = dual-run).
        engine: EnginePref,
    },
    /// Runs the SQL front end once; the statement is cached server-side
    /// (and in the system-wide plan cache).
    Prepare {
        /// The SQL text, `?`/`$n` placeholders included.
        sql: String,
    },
    /// Executes a prepared statement with typed parameter values.
    Execute {
        /// Id from [`ServerFrame::Prepared`].
        stmt_id: u32,
        /// Engine routing for this execution (`Default` = session default).
        engine: EnginePref,
        /// Max rows in the inline first chunk (0 = server default).
        max_rows: u32,
        /// Parameter values, in declaration order.
        params: Vec<Value>,
    },
    /// Pulls the next chunk of the open result cursor.
    Fetch {
        /// Max rows in the reply (0 = server default).
        max_rows: u32,
    },
    /// Drops a prepared statement's connection-local handle.
    CloseStmt {
        /// Id from [`ServerFrame::Prepared`].
        stmt_id: u32,
    },
    /// Out-of-band cancellation of *another* connection's in-flight
    /// statement, addressed by the target's `Hello` credentials. Valid as
    /// the first frame of a fresh connection (the canceling side cannot
    /// wait for its own in-flight request to finish).
    Cancel {
        /// Target connection id.
        conn_id: u64,
        /// Target's secret (anti-spoofing).
        secret: u64,
    },
    /// Requests server-wide + session counters and health.
    Stats,
    /// Clean disconnect.
    Goodbye,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum ServerFrame {
    /// Handshake accepted; `conn_id`/`secret` are the cancellation
    /// credentials another connection may use against this one.
    HelloOk {
        /// This connection's id.
        conn_id: u64,
        /// This connection's cancel secret.
        secret: u64,
        /// Server protocol version.
        version: u16,
    },
    /// Statement prepared.
    Prepared {
        /// Connection-local statement id.
        stmt_id: u32,
        /// Per-parameter inferred types (`None` = unconstrained).
        param_types: Vec<Option<DataType>>,
    },
    /// A query's result header plus its first row chunk.
    Rows {
        /// Engine whose run produced these rows (dual runs report the
        /// winner; both engines' rows are verified identical first).
        engine: EngineKind,
        /// True when this was a dual run (both latencies populated).
        dual: bool,
        /// Simulated TP latency in ns (0 when not run).
        tp_latency_ns: u64,
        /// Simulated AP latency in ns (0 when not run).
        ap_latency_ns: u64,
        /// Work performed. Dual runs always carry the TP run's counters
        /// (the deterministic side, matching what an in-process caller
        /// reads off `QueryOutcome::tp`) even when `engine` names AP as
        /// the latency winner; pinned runs carry the pinned engine's.
        counters: WorkCounters,
        /// Total rows in the result (across all chunks).
        total_rows: u64,
        /// This chunk's rows.
        rows: Vec<Vec<Value>>,
        /// True when more chunks remain (use [`ClientFrame::Fetch`]).
        more: bool,
    },
    /// A write statement's outcome.
    DmlOk {
        /// Rows affected.
        rows_affected: u64,
        /// Simulated TP latency in ns.
        latency_ns: u64,
        /// Work performed (scan + write counters).
        counters: WorkCounters,
    },
    /// A follow-up chunk of the open cursor.
    RowsChunk {
        /// This chunk's rows.
        rows: Vec<Vec<Value>>,
        /// True when more chunks remain.
        more: bool,
    },
    /// Statement closed.
    Closed {
        /// The closed statement id.
        stmt_id: u32,
    },
    /// Cancellation processed.
    CancelOk {
        /// Whether a live connection matched the credentials.
        matched: bool,
    },
    /// Counters + health snapshot.
    StatsReply(Box<StatsSnapshot>),
    /// Clean disconnect acknowledged; the server closes after sending.
    GoodbyeOk,
    /// The request failed; the connection stays usable unless the error is
    /// a framing-integrity one (CRC/oversize), after which the server
    /// disconnects.
    Error(WireError),
}

/// Server-wide and per-session counters plus system health, as carried by
/// [`ServerFrame::StatsReply`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Connections accepted since start.
    pub connections_accepted: u64,
    /// Connections rejected by admission control.
    pub connections_rejected: u64,
    /// Currently open connections.
    pub connections_active: u64,
    /// Statements executed to completion (success or statement error).
    pub statements_executed: u64,
    /// Statements rejected by admission control (in-flight or
    /// prepared-statement caps).
    pub statements_rejected: u64,
    /// Out-of-band cancel requests that matched a live connection.
    pub cancels_matched: u64,
    /// Frames that failed to decode (malformed, bad CRC, oversized).
    pub protocol_errors: u64,
    /// Error frames sent (statement errors included).
    pub errors_sent: u64,
    /// Total bytes read from clients.
    pub bytes_read: u64,
    /// Total bytes written to clients.
    pub bytes_written: u64,
    /// Statements this session executed (success or error).
    pub session_statements: u64,
    /// Result + DML rows this session received.
    pub session_rows: u64,
    /// Bytes read from this session's connection.
    pub session_bytes_read: u64,
    /// Bytes written to this session's connection.
    pub session_bytes_written: u64,
    /// True while the system is in read-only degraded mode.
    pub degraded: bool,
    /// Root cause when degraded (empty otherwise).
    pub degraded_cause: String,
    /// Writer panics absorbed by the engine.
    pub writer_panics: u64,
    /// WAL flush retries absorbed by the engine.
    pub wal_flush_retries: u64,
}

impl ClientFrame {
    /// Serializes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ClientFrame::Hello { version, timeout_ns, memory_budget, engine } => {
                let mut w = Writer::with_opcode(OP_HELLO);
                w.put_u16(*version);
                w.put_u64(*timeout_ns);
                w.put_u64(*memory_budget);
                w.put_u8(engine.code());
                w.finish()
            }
            ClientFrame::Prepare { sql } => {
                let mut w = Writer::with_opcode(OP_PREPARE);
                w.put_str(sql);
                w.finish()
            }
            ClientFrame::Execute { stmt_id, engine, max_rows, params } => {
                let mut w = Writer::with_opcode(OP_EXECUTE);
                w.put_u32(*stmt_id);
                w.put_u8(engine.code());
                w.put_u32(*max_rows);
                w.put_u16(params.len() as u16);
                for p in params {
                    w.put_value(p);
                }
                w.finish()
            }
            ClientFrame::Fetch { max_rows } => {
                let mut w = Writer::with_opcode(OP_FETCH);
                w.put_u32(*max_rows);
                w.finish()
            }
            ClientFrame::CloseStmt { stmt_id } => {
                let mut w = Writer::with_opcode(OP_CLOSE_STMT);
                w.put_u32(*stmt_id);
                w.finish()
            }
            ClientFrame::Cancel { conn_id, secret } => {
                let mut w = Writer::with_opcode(OP_CANCEL);
                w.put_u64(*conn_id);
                w.put_u64(*secret);
                w.finish()
            }
            ClientFrame::Stats => Writer::with_opcode(OP_STATS).finish(),
            ClientFrame::Goodbye => Writer::with_opcode(OP_GOODBYE).finish(),
        }
    }

    /// Decodes a frame payload; rejects unknown opcodes, truncated bodies
    /// and trailing bytes.
    pub fn decode(payload: &[u8]) -> DecodeResult<ClientFrame> {
        let mut r = Reader::new(payload);
        let frame = match r.u8()? {
            OP_HELLO => ClientFrame::Hello {
                version: r.u16()?,
                timeout_ns: r.u64()?,
                memory_budget: r.u64()?,
                engine: EnginePref::from_code(r.u8()?)?,
            },
            OP_PREPARE => ClientFrame::Prepare { sql: r.string()? },
            OP_EXECUTE => {
                let stmt_id = r.u32()?;
                let engine = EnginePref::from_code(r.u8()?)?;
                let max_rows = r.u32()?;
                let n = r.u16()? as usize;
                let mut params = Vec::with_capacity(n.min(payload.len()));
                for _ in 0..n {
                    params.push(r.value()?);
                }
                ClientFrame::Execute { stmt_id, engine, max_rows, params }
            }
            OP_FETCH => ClientFrame::Fetch { max_rows: r.u32()? },
            OP_CLOSE_STMT => ClientFrame::CloseStmt { stmt_id: r.u32()? },
            OP_CANCEL => ClientFrame::Cancel {
                conn_id: r.u64()?,
                secret: r.u64()?,
            },
            OP_STATS => ClientFrame::Stats,
            OP_GOODBYE => ClientFrame::Goodbye,
            op => return Err(malformed(format!("unknown client opcode {op}"))),
        };
        r.expect_end()?;
        Ok(frame)
    }
}

fn put_engine_kind(w: &mut Writer, e: EngineKind) {
    w.put_u8(match e {
        EngineKind::Tp => 1,
        EngineKind::Ap => 2,
    });
}

fn engine_kind(r: &mut Reader) -> DecodeResult<EngineKind> {
    Ok(match r.u8()? {
        1 => EngineKind::Tp,
        2 => EngineKind::Ap,
        t => return Err(malformed(format!("unknown engine kind {t}"))),
    })
}

impl ServerFrame {
    /// Serializes into a frame payload.
    pub fn encode(&self) -> Vec<u8> {
        match self {
            ServerFrame::HelloOk { conn_id, secret, version } => {
                let mut w = Writer::with_opcode(OP_HELLO_OK);
                w.put_u64(*conn_id);
                w.put_u64(*secret);
                w.put_u16(*version);
                w.finish()
            }
            ServerFrame::Prepared { stmt_id, param_types } => {
                let mut w = Writer::with_opcode(OP_PREPARED);
                w.put_u32(*stmt_id);
                w.put_u16(param_types.len() as u16);
                for t in param_types {
                    put_data_type(&mut w, *t);
                }
                w.finish()
            }
            ServerFrame::Rows {
                engine,
                dual,
                tp_latency_ns,
                ap_latency_ns,
                counters,
                total_rows,
                rows,
                more,
            } => {
                let mut w = Writer::with_opcode(OP_ROWS);
                put_engine_kind(&mut w, *engine);
                w.put_bool(*dual);
                w.put_u64(*tp_latency_ns);
                w.put_u64(*ap_latency_ns);
                w.put_counters(counters);
                w.put_u64(*total_rows);
                w.put_u32(rows.len() as u32);
                for row in rows {
                    w.put_row(row);
                }
                w.put_bool(*more);
                w.finish()
            }
            ServerFrame::DmlOk { rows_affected, latency_ns, counters } => {
                let mut w = Writer::with_opcode(OP_DML_OK);
                w.put_u64(*rows_affected);
                w.put_u64(*latency_ns);
                w.put_counters(counters);
                w.finish()
            }
            ServerFrame::RowsChunk { rows, more } => {
                let mut w = Writer::with_opcode(OP_ROWS_CHUNK);
                w.put_u32(rows.len() as u32);
                for row in rows {
                    w.put_row(row);
                }
                w.put_bool(*more);
                w.finish()
            }
            ServerFrame::Closed { stmt_id } => {
                let mut w = Writer::with_opcode(OP_CLOSED);
                w.put_u32(*stmt_id);
                w.finish()
            }
            ServerFrame::CancelOk { matched } => {
                let mut w = Writer::with_opcode(OP_CANCEL_OK);
                w.put_bool(*matched);
                w.finish()
            }
            ServerFrame::StatsReply(s) => {
                let mut w = Writer::with_opcode(OP_STATS_REPLY);
                w.put_u64(s.connections_accepted);
                w.put_u64(s.connections_rejected);
                w.put_u64(s.connections_active);
                w.put_u64(s.statements_executed);
                w.put_u64(s.statements_rejected);
                w.put_u64(s.cancels_matched);
                w.put_u64(s.protocol_errors);
                w.put_u64(s.errors_sent);
                w.put_u64(s.bytes_read);
                w.put_u64(s.bytes_written);
                w.put_u64(s.session_statements);
                w.put_u64(s.session_rows);
                w.put_u64(s.session_bytes_read);
                w.put_u64(s.session_bytes_written);
                w.put_bool(s.degraded);
                w.put_str(&s.degraded_cause);
                w.put_u64(s.writer_panics);
                w.put_u64(s.wal_flush_retries);
                w.finish()
            }
            ServerFrame::GoodbyeOk => Writer::with_opcode(OP_GOODBYE_OK).finish(),
            ServerFrame::Error(e) => {
                let mut w = Writer::with_opcode(OP_ERROR);
                put_wire_error(&mut w, e);
                w.finish()
            }
        }
    }

    /// Decodes a frame payload; rejects unknown opcodes, truncated bodies
    /// and trailing bytes.
    pub fn decode(payload: &[u8]) -> DecodeResult<ServerFrame> {
        let mut r = Reader::new(payload);
        let frame = match r.u8()? {
            OP_HELLO_OK => ServerFrame::HelloOk {
                conn_id: r.u64()?,
                secret: r.u64()?,
                version: r.u16()?,
            },
            OP_PREPARED => {
                let stmt_id = r.u32()?;
                let n = r.u16()? as usize;
                let mut param_types = Vec::with_capacity(n.min(payload.len()));
                for _ in 0..n {
                    param_types.push(data_type(&mut r)?);
                }
                ServerFrame::Prepared { stmt_id, param_types }
            }
            OP_ROWS => {
                let engine = engine_kind(&mut r)?;
                let dual = r.bool()?;
                let tp_latency_ns = r.u64()?;
                let ap_latency_ns = r.u64()?;
                let counters = r.counters()?;
                let total_rows = r.u64()?;
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(payload.len()));
                for _ in 0..n {
                    rows.push(r.row()?);
                }
                let more = r.bool()?;
                ServerFrame::Rows {
                    engine,
                    dual,
                    tp_latency_ns,
                    ap_latency_ns,
                    counters,
                    total_rows,
                    rows,
                    more,
                }
            }
            OP_DML_OK => ServerFrame::DmlOk {
                rows_affected: r.u64()?,
                latency_ns: r.u64()?,
                counters: r.counters()?,
            },
            OP_ROWS_CHUNK => {
                let n = r.u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(payload.len()));
                for _ in 0..n {
                    rows.push(r.row()?);
                }
                let more = r.bool()?;
                ServerFrame::RowsChunk { rows, more }
            }
            OP_CLOSED => ServerFrame::Closed { stmt_id: r.u32()? },
            OP_CANCEL_OK => ServerFrame::CancelOk { matched: r.bool()? },
            OP_STATS_REPLY => ServerFrame::StatsReply(Box::new(StatsSnapshot {
                connections_accepted: r.u64()?,
                connections_rejected: r.u64()?,
                connections_active: r.u64()?,
                statements_executed: r.u64()?,
                statements_rejected: r.u64()?,
                cancels_matched: r.u64()?,
                protocol_errors: r.u64()?,
                errors_sent: r.u64()?,
                bytes_read: r.u64()?,
                bytes_written: r.u64()?,
                session_statements: r.u64()?,
                session_rows: r.u64()?,
                session_bytes_read: r.u64()?,
                session_bytes_written: r.u64()?,
                degraded: r.bool()?,
                degraded_cause: r.string()?,
                writer_panics: r.u64()?,
                wal_flush_retries: r.u64()?,
            })),
            OP_GOODBYE_OK => ServerFrame::GoodbyeOk,
            OP_ERROR => ServerFrame::Error(wire_error(&mut r)?),
            op => return Err(malformed(format!("unknown server opcode {op}"))),
        };
        r.expect_end()?;
        Ok(frame)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_client(f: ClientFrame) {
        let payload = f.encode();
        assert_eq!(ClientFrame::decode(&payload).unwrap(), f);
    }

    fn round_trip_server(f: ServerFrame) {
        let payload = f.encode();
        assert_eq!(ServerFrame::decode(&payload).unwrap(), f);
    }

    #[test]
    fn client_frames_round_trip() {
        round_trip_client(ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            timeout_ns: 5_000_000,
            memory_budget: 1 << 20,
            engine: EnginePref::Tp,
        });
        round_trip_client(ClientFrame::Prepare {
            sql: "SELECT * FROM customer WHERE c_custkey = ?".into(),
        });
        round_trip_client(ClientFrame::Execute {
            stmt_id: 7,
            engine: EnginePref::Dual,
            max_rows: 100,
            params: vec![
                Value::Null,
                Value::Int(-42),
                Value::Float(2.5),
                Value::Str("naïve ünïcode".into()),
                Value::Date(9501),
            ],
        });
        round_trip_client(ClientFrame::Fetch { max_rows: 0 });
        round_trip_client(ClientFrame::CloseStmt { stmt_id: 3 });
        round_trip_client(ClientFrame::Cancel { conn_id: 11, secret: u64::MAX });
        round_trip_client(ClientFrame::Stats);
        round_trip_client(ClientFrame::Goodbye);
    }

    #[test]
    fn server_frames_round_trip() {
        round_trip_server(ServerFrame::HelloOk {
            conn_id: 3,
            secret: 0xDEAD_BEEF,
            version: PROTOCOL_VERSION,
        });
        round_trip_server(ServerFrame::Prepared {
            stmt_id: 1,
            param_types: vec![Some(DataType::Int), None, Some(DataType::Str)],
        });
        round_trip_server(ServerFrame::Rows {
            engine: EngineKind::Ap,
            dual: true,
            tp_latency_ns: 123,
            ap_latency_ns: 456,
            counters: WorkCounters {
                rows_scanned: 10,
                blocks_pruned: 3,
                ..WorkCounters::default()
            },
            total_rows: 2,
            rows: vec![
                vec![Value::Int(1), Value::Null],
                vec![Value::Int(2), Value::Str("x".into())],
            ],
            more: false,
        });
        round_trip_server(ServerFrame::DmlOk {
            rows_affected: 5,
            latency_ns: 999,
            counters: WorkCounters { rows_inserted: 5, ..WorkCounters::default() },
        });
        round_trip_server(ServerFrame::RowsChunk {
            rows: vec![vec![Value::Float(0.5)]],
            more: true,
        });
        round_trip_server(ServerFrame::Closed { stmt_id: 9 });
        round_trip_server(ServerFrame::CancelOk { matched: true });
        round_trip_server(ServerFrame::StatsReply(Box::new(StatsSnapshot {
            connections_accepted: 4,
            degraded: true,
            degraded_cause: "wal".into(),
            ..StatsSnapshot::default()
        })));
        round_trip_server(ServerFrame::GoodbyeOk);
    }

    #[test]
    fn every_wire_error_round_trips() {
        for e in [
            WireError::Sql {
                stage: SqlStage::Parse,
                pos: 17,
                message: "expected FROM".into(),
            },
            WireError::Sql {
                stage: SqlStage::ParamNotSupported,
                pos: 0,
                message: "LIMIT".into(),
            },
            WireError::Opt("no plan".into()),
            WireError::Exec("bad plan".into()),
            WireError::EngineMismatch { sql: "SELECT 1".into(), tp_rows: 1, ap_rows: 2 },
            WireError::ParamCountMismatch { expected: 2, got: 0 },
            WireError::ParamTypeMismatch {
                idx: 1,
                expected: DataType::Int,
                got: Value::Str("x".into()),
            },
            WireError::Durability("fsync failed".into()),
            WireError::Cancelled,
            WireError::Timeout { limit: Duration::from_millis(250) },
            WireError::MemoryBudget { budget_bytes: 64, attempted_bytes: 128 },
            WireError::ReadOnly { cause: "wal append failed".into() },
            WireError::Internal("panicked at ...".into()),
            WireError::Busy { what: BusyWhat::Connections, limit: 64 },
            WireError::Busy { what: BusyWhat::Statements, limit: 32 },
            WireError::Busy { what: BusyWhat::PreparedStatements, limit: 256 },
            WireError::Protocol("unknown opcode 99".into()),
            WireError::UnknownStatement { stmt_id: 12 },
            WireError::NoCursor,
        ] {
            round_trip_server(ServerFrame::Error(e));
        }
    }

    #[test]
    fn htap_errors_map_typed() {
        // The governance/degraded variants the server must round-trip as
        // typed errors, not strings.
        assert_eq!(WireError::from(&HtapError::Cancelled), WireError::Cancelled);
        assert_eq!(
            WireError::from(&HtapError::Timeout { limit: Duration::from_secs(1) }),
            WireError::Timeout { limit: Duration::from_secs(1) }
        );
        assert_eq!(
            WireError::from(&HtapError::MemoryBudget { budget_bytes: 10, attempted_bytes: 20 }),
            WireError::MemoryBudget { budget_bytes: 10, attempted_bytes: 20 }
        );
        assert_eq!(
            WireError::from(&HtapError::ReadOnly { cause: "wal".into() }),
            WireError::ReadOnly { cause: "wal".into() }
        );
        assert_eq!(
            WireError::from(&HtapError::ParamCountMismatch { expected: 3, got: 1 }),
            WireError::ParamCountMismatch { expected: 3, got: 1 }
        );
    }

    #[test]
    fn envelope_round_trips_and_validates() {
        let payload = ClientFrame::Stats.encode();
        let mut wire = Vec::new();
        let written = write_frame(&mut wire, &payload).unwrap();
        assert_eq!(written as usize, wire.len());
        let back = read_frame(&mut wire.as_slice()).unwrap();
        assert_eq!(back, payload);

        // Flip one payload bit: CRC must catch it.
        let mut corrupt = wire.clone();
        let last = corrupt.len() - 1;
        corrupt[last] ^= 0x40;
        assert!(matches!(
            read_frame(&mut corrupt.as_slice()),
            Err(FrameError::BadCrc)
        ));

        // Oversized length prefix: rejected before allocation.
        let mut oversized = Vec::new();
        oversized.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
        oversized.extend_from_slice(&0u32.to_le_bytes());
        assert!(matches!(
            read_frame(&mut oversized.as_slice()),
            Err(FrameError::Oversized { .. })
        ));

        // Truncated stream: clean I/O error, not a hang or panic.
        let truncated = &wire[..wire.len() - 2];
        assert!(matches!(
            read_frame(&mut &truncated[..]),
            Err(FrameError::Io(_))
        ));
    }

    #[test]
    fn write_frame_refuses_oversized_payloads_in_release_builds() {
        let payload = vec![0u8; MAX_FRAME_LEN as usize + 1];
        let mut wire = Vec::new();
        let err = write_frame(&mut wire, &payload).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(wire.is_empty(), "nothing may reach the stream");
    }

    #[test]
    fn encoded_row_len_matches_the_writer() {
        let row = vec![
            Value::Null,
            Value::Int(7),
            Value::Float(1.5),
            Value::Str("naïve".into()),
            Value::Date(9501),
        ];
        let mut w = Writer::default();
        w.put_row(&row);
        assert_eq!(encoded_row_len(&row), w.finish().len());
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut payload = ClientFrame::Goodbye.encode();
        payload.push(0);
        assert!(matches!(
            ClientFrame::decode(&payload),
            Err(FrameError::Malformed(_))
        ));
    }

    #[test]
    fn counters_survive_the_wire() {
        let c = WorkCounters {
            rows_scanned: 1,
            cells_scanned: 2,
            index_probes: 3,
            index_fetches: 4,
            filter_evals: 5,
            nlj_pairs: 6,
            hash_build_rows: 7,
            hash_probe_rows: 8,
            sort_comparisons: 9,
            topn_pushes: 10,
            agg_rows: 11,
            output_rows: 12,
            rows_inserted: 13,
            rows_updated: 14,
            rows_deleted: 15,
            index_updates: 16,
            blocks_checked: 17,
            blocks_pruned: 18,
        };
        let mut w = Writer::default();
        w.put_counters(&c);
        let buf = w.finish();
        let mut r = Reader::new(&buf);
        assert_eq!(r.counters().unwrap(), c);
        r.expect_end().unwrap();
    }
}
