//! Blocking client library for the wire protocol.
//!
//! [`Client`] wraps one TCP connection: `connect` performs the `Hello`
//! handshake, `prepare`/`execute` drive the statement lifecycle, and
//! result chunks are drained transparently (or stepped manually with
//! [`Client::execute_chunked`] / [`Client::fetch`]). Errors split three
//! ways: transport ([`ClientError::Io`]/[`ClientError::Frame`]), protocol
//! surprises ([`ClientError::Unexpected`]), and the server's own typed
//! [`WireError`]s ([`ClientError::Server`]) — so `Cancelled`, `Timeout`,
//! `MemoryBudget`, `ReadOnly` and `Busy` stay matchable at the client.

use crate::protocol::{
    read_frame, write_frame, ClientFrame, EnginePref, FrameError, ServerFrame, StatsSnapshot,
    WireError, PROTOCOL_VERSION,
};
use qpe_htap::exec::WorkCounters;
use qpe_htap::EngineKind;
use qpe_sql::catalog::DataType;
use qpe_sql::value::Value;
use std::io;
use std::net::{SocketAddr, TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(io::Error),
    /// The server's bytes did not frame/decode.
    Frame(FrameError),
    /// The server replied with a typed error frame.
    Server(WireError),
    /// The server replied with a well-formed frame of the wrong kind.
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Frame(e) => write!(f, "frame: {e}"),
            ClientError::Server(e) => write!(f, "server: {e}"),
            ClientError::Unexpected(m) => write!(f, "unexpected reply: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<FrameError> for ClientError {
    fn from(e: FrameError) -> Self {
        ClientError::Frame(e)
    }
}

impl ClientError {
    /// The server-side typed error, if that is what this is.
    pub fn as_server(&self) -> Option<&WireError> {
        match self {
            ClientError::Server(e) => Some(e),
            _ => None,
        }
    }
}

type ClientResult<T> = Result<T, ClientError>;

/// Session options negotiated at `Hello`.
#[derive(Debug, Clone, Default)]
pub struct ConnectOptions {
    /// Requested per-statement timeout (server may clamp).
    pub timeout: Option<Duration>,
    /// Requested per-statement memory budget (server may clamp).
    pub memory_budget: Option<u64>,
    /// Session-default engine routing.
    pub engine: EnginePref,
}

/// A prepared statement's client-side handle.
#[derive(Debug, Clone)]
pub struct RemoteStatement {
    /// Connection-local id to pass to `execute`.
    pub stmt_id: u32,
    /// Per-parameter inferred types (`None` = unconstrained).
    pub param_types: Vec<Option<DataType>>,
}

/// A query's full result, chunks drained.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// Engine that served the rows (dual runs report the faster one).
    pub engine: EngineKind,
    /// True when both engines ran (and agreed).
    pub dual: bool,
    /// Simulated TP latency in ns (0 when TP did not run).
    pub tp_latency_ns: u64,
    /// Simulated AP latency in ns (0 when AP did not run).
    pub ap_latency_ns: u64,
    /// Work performed. Dual runs always report the TP run's counters
    /// (the deterministic side, matching what an in-process caller reads
    /// off `QueryOutcome::tp`) even when `engine` names AP as the latency
    /// winner; pinned runs report the pinned engine's counters.
    pub counters: WorkCounters,
    /// All result rows.
    pub rows: Vec<Vec<Value>>,
}

/// A DML statement's outcome.
#[derive(Debug, Clone)]
pub struct DmlSummary {
    /// Rows affected.
    pub rows_affected: u64,
    /// Simulated TP latency in ns.
    pub latency_ns: u64,
    /// Work performed.
    pub counters: WorkCounters,
}

/// What one `execute` produced.
#[derive(Debug, Clone)]
pub enum ExecOutcome {
    /// A read's rows.
    Rows(QueryResult),
    /// A write's summary.
    Dml(DmlSummary),
}

impl ExecOutcome {
    /// The query result, if this was a read.
    pub fn rows(&self) -> Option<&QueryResult> {
        match self {
            ExecOutcome::Rows(q) => Some(q),
            ExecOutcome::Dml(_) => None,
        }
    }

    /// The DML summary, if this was a write.
    pub fn dml(&self) -> Option<&DmlSummary> {
        match self {
            ExecOutcome::Dml(d) => Some(d),
            ExecOutcome::Rows(_) => None,
        }
    }
}

/// One client connection (post-handshake).
pub struct Client {
    stream: TcpStream,
    conn_id: u64,
    secret: u64,
}

impl Client {
    /// Connects and handshakes with default options (no limits, dual-run).
    pub fn connect(addr: impl ToSocketAddrs) -> ClientResult<Client> {
        Client::connect_with(addr, &ConnectOptions::default())
    }

    /// Connects and handshakes with explicit session options.
    pub fn connect_with(addr: impl ToSocketAddrs, opts: &ConnectOptions) -> ClientResult<Client> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        let mut client = Client {
            stream,
            conn_id: 0,
            secret: 0,
        };
        let timeout_ns = opts
            .timeout
            .map(|t| t.as_nanos().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let reply = client.round_trip(ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            timeout_ns,
            memory_budget: opts.memory_budget.unwrap_or(0),
            engine: opts.engine,
        })?;
        match reply {
            ServerFrame::HelloOk { conn_id, secret, .. } => {
                client.conn_id = conn_id;
                client.secret = secret;
                Ok(client)
            }
            other => Err(unexpected("HelloOk", &other)),
        }
    }

    /// The credentials another connection needs to cancel this one's
    /// in-flight statement ([`Client::cancel_other`]).
    pub fn cancel_credentials(&self) -> (u64, u64) {
        (self.conn_id, self.secret)
    }

    /// Out-of-band cancel: opens a fresh connection to `addr` and sends a
    /// bare `Cancel` frame (no handshake needed). Returns whether the
    /// credentials matched a live connection.
    pub fn cancel_other(
        addr: impl ToSocketAddrs,
        conn_id: u64,
        secret: u64,
    ) -> ClientResult<bool> {
        let mut stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        write_frame(&mut stream, &ClientFrame::Cancel { conn_id, secret }.encode())?;
        let payload = read_frame(&mut stream)?;
        match ServerFrame::decode(&payload)? {
            ServerFrame::CancelOk { matched } => Ok(matched),
            ServerFrame::Error(e) => Err(ClientError::Server(e)),
            other => Err(unexpected("CancelOk", &other)),
        }
    }

    /// Prepares a statement server-side.
    pub fn prepare(&mut self, sql: &str) -> ClientResult<RemoteStatement> {
        match self.round_trip(ClientFrame::Prepare { sql: sql.into() })? {
            ServerFrame::Prepared { stmt_id, param_types } => {
                Ok(RemoteStatement { stmt_id, param_types })
            }
            other => Err(unexpected("Prepared", &other)),
        }
    }

    /// Executes a prepared statement under the session's default engine
    /// routing, draining every result chunk.
    pub fn execute(&mut self, stmt_id: u32, params: &[Value]) -> ClientResult<ExecOutcome> {
        self.execute_pref(stmt_id, EnginePref::Default, params)
    }

    /// Executes pinned to one engine (or [`EnginePref::Dual`] to force a
    /// dual-run over a pinned session), draining every result chunk.
    pub fn execute_pref(
        &mut self,
        stmt_id: u32,
        engine: EnginePref,
        params: &[Value],
    ) -> ClientResult<ExecOutcome> {
        let (mut outcome, mut more) = self.execute_chunked(stmt_id, engine, 0, params)?;
        while more {
            let (chunk, m) = self.fetch(0)?;
            if let ExecOutcome::Rows(q) = &mut outcome {
                q.rows.extend(chunk);
            }
            more = m;
        }
        Ok(outcome)
    }

    /// Executes without draining: returns the first chunk (of at most
    /// `max_rows` rows; 0 = server default) and whether more remain.
    pub fn execute_chunked(
        &mut self,
        stmt_id: u32,
        engine: EnginePref,
        max_rows: u32,
        params: &[Value],
    ) -> ClientResult<(ExecOutcome, bool)> {
        let reply = self.round_trip(ClientFrame::Execute {
            stmt_id,
            engine,
            max_rows,
            params: params.to_vec(),
        })?;
        match reply {
            ServerFrame::Rows {
                engine,
                dual,
                tp_latency_ns,
                ap_latency_ns,
                counters,
                rows,
                more,
                ..
            } => Ok((
                ExecOutcome::Rows(QueryResult {
                    engine,
                    dual,
                    tp_latency_ns,
                    ap_latency_ns,
                    counters,
                    rows,
                }),
                more,
            )),
            ServerFrame::DmlOk { rows_affected, latency_ns, counters } => Ok((
                ExecOutcome::Dml(DmlSummary {
                    rows_affected,
                    latency_ns,
                    counters,
                }),
                false,
            )),
            other => Err(unexpected("Rows or DmlOk", &other)),
        }
    }

    /// Pulls the next chunk of the open cursor.
    pub fn fetch(&mut self, max_rows: u32) -> ClientResult<(Vec<Vec<Value>>, bool)> {
        match self.round_trip(ClientFrame::Fetch { max_rows })? {
            ServerFrame::RowsChunk { rows, more } => Ok((rows, more)),
            other => Err(unexpected("RowsChunk", &other)),
        }
    }

    /// Closes a prepared statement's server-side handle.
    pub fn close_stmt(&mut self, stmt_id: u32) -> ClientResult<()> {
        match self.round_trip(ClientFrame::CloseStmt { stmt_id })? {
            ServerFrame::Closed { .. } => Ok(()),
            other => Err(unexpected("Closed", &other)),
        }
    }

    /// Server + session counters and system health.
    pub fn stats(&mut self) -> ClientResult<StatsSnapshot> {
        match self.round_trip(ClientFrame::Stats)? {
            ServerFrame::StatsReply(s) => Ok(*s),
            other => Err(unexpected("StatsReply", &other)),
        }
    }

    /// Clean disconnect: `Goodbye`, await the ack, drop the socket.
    pub fn goodbye(mut self) -> ClientResult<()> {
        match self.round_trip(ClientFrame::Goodbye)? {
            ServerFrame::GoodbyeOk => Ok(()),
            other => Err(unexpected("GoodbyeOk", &other)),
        }
    }

    /// Sends one frame and reads one reply, turning server `Error` frames
    /// into [`ClientError::Server`].
    fn round_trip(&mut self, frame: ClientFrame) -> ClientResult<ServerFrame> {
        write_frame(&mut self.stream, &frame.encode())?;
        let payload = read_frame(&mut self.stream)?;
        match ServerFrame::decode(&payload)? {
            ServerFrame::Error(e) => Err(ClientError::Server(e)),
            f => Ok(f),
        }
    }

    /// The peer address (the server).
    pub fn server_addr(&self) -> io::Result<SocketAddr> {
        self.stream.peer_addr()
    }
}

fn unexpected(wanted: &str, got: &ServerFrame) -> ClientError {
    ClientError::Unexpected(format!("wanted {wanted}, got {got:?}"))
}
