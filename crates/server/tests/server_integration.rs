//! End-to-end server tests: results over the wire must be **byte-identical**
//! to the in-process session API — rows, WorkCounters, simulated latencies —
//! and every governance error (`Cancelled`, `Timeout`, `MemoryBudget`,
//! `ReadOnly`) must round-trip as a *typed* error frame, not a string.
//! Plus the network-only concerns: admission control (`Busy` rejections),
//! out-of-band cancel, result-chunk streaming, the `Stats` frame, and
//! graceful shutdown draining in-flight statements.

use qpe_htap::engine::DurabilityOptions;
use qpe_htap::storage::{FailPoints, SyncPolicy};
use qpe_htap::tpch::TpchConfig;
use qpe_htap::{EngineKind, HtapError, HtapSystem, RetryPolicy, Session};
use qpe_server::client::{Client, ClientError, ConnectOptions};
use qpe_server::protocol::{BusyWhat, EnginePref, SqlStage, WireError, MAX_FRAME_LEN};
use qpe_server::server::{Server, ServerConfig};
use qpe_sql::catalog::DataType;
use qpe_sql::value::Value;
use std::io::Write;
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Unique temp directory, removed on drop.
struct TmpDir(PathBuf);

impl TmpDir {
    fn new(tag: &str) -> TmpDir {
        static COUNTER: AtomicU64 = AtomicU64::new(0);
        let n = COUNTER.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!("qpe_server_{tag}_{}_{n}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TmpDir(path)
    }
}

impl Drop for TmpDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn start(scale: f64, config: ServerConfig) -> (Server, SocketAddr, Arc<HtapSystem>) {
    let sys = Arc::new(HtapSystem::new(&TpchConfig::with_scale(scale)));
    let server = Server::start(Arc::clone(&sys), "127.0.0.1:0", config).expect("bind");
    let addr = server.addr();
    (server, addr, sys)
}

/// The query/param matrix both sides execute: point lookup, pruned range
/// aggregate, join group-by, and an ORDER BY projection.
fn cases() -> Vec<(&'static str, Vec<Value>)> {
    vec![
        (
            "SELECT c_name, c_acctbal FROM customer WHERE c_custkey = ?",
            vec![Value::Int(17)],
        ),
        (
            "SELECT COUNT(*), SUM(c_acctbal) FROM customer WHERE c_custkey BETWEEN ? AND ?",
            vec![Value::Int(40), Value::Int(180)],
        ),
        (
            "SELECT c_nationkey, COUNT(*) FROM customer, orders WHERE o_custkey = c_custkey \
             AND c_mktsegment = ? GROUP BY c_nationkey ORDER BY c_nationkey",
            vec![Value::Str("machinery".into())],
        ),
        (
            "SELECT c_custkey, c_name FROM customer WHERE c_nationkey = ? \
             ORDER BY c_acctbal DESC LIMIT 10",
            vec![Value::Int(7)],
        ),
    ]
}

/// Tentpole equivalence: N concurrent wire clients, each running the full
/// case matrix dual-run, TP-pinned and AP-pinned, every result compared
/// field-by-field against an in-process session on an identically-seeded
/// system — rows, counters, and simulated latencies all byte-identical.
#[test]
fn wire_results_are_byte_identical_to_in_process() {
    let (_server, addr, _sys) = start(0.002, ServerConfig::default());
    // The oracle runs in-process on its own identically-generated system.
    let oracle_sys = Arc::new(HtapSystem::new(&TpchConfig::with_scale(0.002)));

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let oracle_sys = Arc::clone(&oracle_sys);
            std::thread::spawn(move || {
                let oracle = Session::new(oracle_sys);
                let mut client = Client::connect(addr).expect("connect");
                for (sql, params) in cases() {
                    let stmt = oracle.prepare(sql).expect("oracle prepare");
                    let want = stmt.execute(&params).expect("oracle execute");
                    let want = want.as_query().expect("query case");

                    let remote = client.prepare(sql).expect("wire prepare");
                    assert_eq!(remote.param_types, stmt.param_types().to_vec());

                    // Dual-run over the wire: winner engine, both latencies,
                    // TP counters, TP rows (both engines' rows agree).
                    let got = client.execute(remote.stmt_id, &params).expect("wire execute");
                    let q = got.rows().expect("rows outcome");
                    assert!(q.dual);
                    assert_eq!(q.rows, want.tp.rows, "dual rows diverged: {sql}");
                    assert_eq!(q.counters, want.tp.counters, "dual counters diverged: {sql}");
                    assert_eq!(q.engine, want.winner());
                    assert_eq!(q.tp_latency_ns, want.tp.latency_ns);
                    assert_eq!(q.ap_latency_ns, want.ap.latency_ns);

                    // Pinned runs match the corresponding dual-run side.
                    for (pref, engine) in
                        [(EnginePref::Tp, EngineKind::Tp), (EnginePref::Ap, EngineKind::Ap)]
                    {
                        let got = client
                            .execute_pref(remote.stmt_id, pref, &params)
                            .expect("pinned execute");
                        let q = got.rows().expect("rows outcome");
                        let side = match engine {
                            EngineKind::Tp => &want.tp,
                            EngineKind::Ap => &want.ap,
                        };
                        assert!(!q.dual);
                        assert_eq!(q.engine, engine);
                        assert_eq!(q.rows, side.rows, "pinned rows diverged: {sql}");
                        assert_eq!(q.counters, side.counters, "pinned counters diverged: {sql}");
                    }
                }
                client.goodbye().expect("goodbye");
            })
        })
        .collect();
    for t in threads {
        t.join().expect("client thread");
    }
}

/// DML over the wire: parameterized INSERT/UPDATE/DELETE land identically
/// to the in-process twin — same rows_affected, same counters, and the
/// post-state SELECT returns identical rows.
#[test]
fn wire_dml_matches_in_process() {
    let (_server, addr, _sys) = start(0.002, ServerConfig::default());
    let oracle_sys = Arc::new(HtapSystem::new(&TpchConfig::with_scale(0.002)));
    let oracle = Session::new(oracle_sys);
    let mut client = Client::connect(addr).expect("connect");

    let steps: Vec<(&str, Vec<Value>)> = vec![
        (
            "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
             c_mktsegment) VALUES (?, ?, ?, '20-000-000-0000', ?, 'machinery')",
            vec![
                Value::Int(910_001),
                Value::Str("wire#1".into()),
                Value::Int(3),
                Value::Float(12.5),
            ],
        ),
        (
            "UPDATE customer SET c_acctbal = ? WHERE c_custkey BETWEEN ? AND ?",
            vec![Value::Float(77.25), Value::Int(10), Value::Int(30)],
        ),
        ("DELETE FROM customer WHERE c_custkey = ?", vec![Value::Int(55)]),
    ];
    for (sql, params) in steps {
        let want_stmt = oracle.prepare(sql).expect("oracle prepare");
        let want = want_stmt.execute(&params).expect("oracle dml");
        let want = want.as_dml().expect("dml case");

        let remote = client.prepare(sql).expect("wire prepare");
        let got = client.execute(remote.stmt_id, &params).expect("wire dml");
        let got = got.dml().expect("dml outcome");
        assert_eq!(got.rows_affected, want.result.rows_affected, "{sql}");
        assert_eq!(got.counters, want.counters, "{sql}");
        assert_eq!(got.latency_ns, want.latency_ns, "{sql}");
    }

    // Post-state equivalence.
    let probe = "SELECT c_custkey, c_name, c_acctbal FROM customer \
                 WHERE c_custkey BETWEEN 1 AND 920000 ORDER BY c_custkey";
    let want = oracle.execute_sql(probe).expect("oracle probe");
    let remote = client.prepare(probe).expect("wire prepare");
    let got = client.execute(remote.stmt_id, &[]).expect("wire probe");
    assert_eq!(got.rows().expect("rows").rows, want.as_query().expect("query").tp.rows);
    client.goodbye().expect("goodbye");
}

/// Front-end and parameter errors arrive as structured frames with their
/// payloads intact.
#[test]
fn sql_and_param_errors_round_trip_typed() {
    let (_server, addr, _sys) = start(0.0005, ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");

    // Parse error: stage + position survive.
    match client.prepare("SELEC oops") {
        Err(ClientError::Server(WireError::Sql { stage, .. })) => {
            assert!(matches!(stage, SqlStage::Parse | SqlStage::Lex), "stage {stage:?}")
        }
        other => panic!("expected typed Sql error, got {other:?}"),
    }

    let stmt = client
        .prepare("SELECT c_name FROM customer WHERE c_custkey = ?")
        .expect("prepare");
    assert_eq!(stmt.param_types, vec![Some(DataType::Int)]);

    match client.execute(stmt.stmt_id, &[]) {
        Err(ClientError::Server(WireError::ParamCountMismatch { expected: 1, got: 0 })) => {}
        other => panic!("expected ParamCountMismatch, got {other:?}"),
    }
    match client.execute(stmt.stmt_id, &[Value::Str("not-an-int".into())]) {
        Err(ClientError::Server(WireError::ParamTypeMismatch { idx: 0, expected, got })) => {
            assert_eq!(expected, DataType::Int);
            assert_eq!(got, Value::Str("not-an-int".into()));
        }
        other => panic!("expected ParamTypeMismatch, got {other:?}"),
    }

    // Statement bookkeeping errors.
    match client.execute(999, &[]) {
        Err(ClientError::Server(WireError::UnknownStatement { stmt_id: 999 })) => {}
        other => panic!("expected UnknownStatement, got {other:?}"),
    }
    match client.fetch(10) {
        Err(ClientError::Server(WireError::NoCursor)) => {}
        other => panic!("expected NoCursor, got {other:?}"),
    }

    // The connection stays fully usable after every statement error.
    let out = client.execute(stmt.stmt_id, &[Value::Int(5)]).expect("recovered execute");
    assert!(out.rows().is_some());
    client.goodbye().expect("goodbye");
}

/// `Hello`-negotiated limits govern the session's statements, and the
/// resulting `Timeout` / `MemoryBudget` errors round-trip with their
/// numeric payloads.
#[test]
fn negotiated_limits_trip_typed_governance_errors() {
    let (_server, addr, _sys) = start(0.002, ServerConfig::default());

    // A 1 ns deadline trips at the first governance check.
    let mut strict = Client::connect_with(
        addr,
        &ConnectOptions {
            timeout: Some(Duration::from_nanos(1)),
            ..ConnectOptions::default()
        },
    )
    .expect("connect");
    let stmt = strict.prepare("SELECT COUNT(*) FROM customer").expect("prepare");
    match strict.execute(stmt.stmt_id, &[]) {
        Err(ClientError::Server(WireError::Timeout { limit })) => {
            assert_eq!(limit, Duration::from_nanos(1));
        }
        other => panic!("expected typed Timeout, got {other:?}"),
    }
    strict.goodbye().expect("goodbye");

    // A 16-byte budget trips on the first materialization charge.
    let mut tiny = Client::connect_with(
        addr,
        &ConnectOptions {
            memory_budget: Some(16),
            ..ConnectOptions::default()
        },
    )
    .expect("connect");
    let stmt = tiny.prepare("SELECT c_name FROM customer").expect("prepare");
    match tiny.execute(stmt.stmt_id, &[]) {
        Err(ClientError::Server(WireError::MemoryBudget { budget_bytes, attempted_bytes })) => {
            assert_eq!(budget_bytes, 16);
            assert!(attempted_bytes > 16);
        }
        other => panic!("expected typed MemoryBudget, got {other:?}"),
    }
    tiny.goodbye().expect("goodbye");

    // Server-side caps clamp what the client asked for: a permissive client
    // request still runs under the server's 1 ns ceiling.
    let (_capped_server, capped_addr, _s) = start(
        0.002,
        ServerConfig {
            max_statement_timeout: Some(Duration::from_nanos(1)),
            ..ServerConfig::default()
        },
    );
    let mut capped = Client::connect_with(
        capped_addr,
        &ConnectOptions {
            timeout: Some(Duration::from_secs(3600)),
            ..ConnectOptions::default()
        },
    )
    .expect("connect");
    let stmt = capped.prepare("SELECT COUNT(*) FROM customer").expect("prepare");
    match capped.execute(stmt.stmt_id, &[]) {
        Err(ClientError::Server(WireError::Timeout { limit })) => {
            assert_eq!(limit, Duration::from_nanos(1), "server cap wins");
        }
        other => panic!("expected capped Timeout, got {other:?}"),
    }
}

/// Read-only degraded mode crosses the wire typed: writes fail with
/// `ReadOnly { cause }`, reads keep serving, and the `Stats` frame folds in
/// the health snapshot.
#[test]
fn degraded_mode_round_trips_and_shows_in_stats() {
    let dir = TmpDir::new("degraded");
    let cfg = TpchConfig::with_scale(0.0005);
    let fp = FailPoints::default();
    let sys = Arc::new(
        HtapSystem::open_with(
            &dir.0,
            &cfg,
            DurabilityOptions {
                sync: SyncPolicy::GroupCommit { interval: Duration::ZERO },
                failpoints: fp.clone(),
                retry: RetryPolicy {
                    max_attempts: 2,
                    base_backoff: Duration::ZERO,
                    max_backoff: Duration::ZERO,
                },
                ..DurabilityOptions::default()
            },
        )
        .expect("open"),
    );
    let server = Server::start(Arc::clone(&sys), "127.0.0.1:0", ServerConfig::default())
        .expect("bind");
    let mut client = Client::connect(server.addr()).expect("connect");

    // Trip degraded mode: a WAL fault that outlives the retry budget.
    fp.arm_errors("wal", u32::MAX);
    let insert = "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
                  c_mktsegment) VALUES (?, 'x', 1, '20-000-000-0000', 1.5, 'machinery')";
    let stmt = client.prepare(insert).expect("prepare");
    let first = client.execute(stmt.stmt_id, &[Value::Int(930_001)]);
    assert!(first.is_err(), "exhausted retries must surface");

    match client.execute(stmt.stmt_id, &[Value::Int(930_002)]) {
        Err(ClientError::Server(WireError::ReadOnly { cause })) => {
            assert!(cause.contains("wal"), "cause names the site: {cause}");
        }
        other => panic!("expected typed ReadOnly, got {other:?}"),
    }

    // Reads keep serving over the same connection.
    let read = client.prepare("SELECT COUNT(*) FROM customer").expect("prepare");
    assert!(client.execute(read.stmt_id, &[]).is_ok());

    // The Stats frame folds in the health state.
    let stats = client.stats().expect("stats");
    assert!(stats.degraded);
    assert!(stats.degraded_cause.contains("wal"), "cause: {}", stats.degraded_cause);
    assert!(stats.errors_sent >= 2);
    client.goodbye().expect("goodbye");
}

/// Out-of-band cancel: a second connection armed with the first's
/// `(conn_id, secret)` stops its in-flight statement, which surfaces as a
/// typed `Cancelled` frame; the victim connection stays usable. Wrong
/// credentials match nothing.
#[test]
fn cancel_over_the_wire_lands_typed() {
    let (_server, addr, _sys) = start(0.004, ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let (conn_id, secret) = client.cancel_credentials();

    // Wrong secret: no match, no effect.
    assert!(!Client::cancel_other(addr, conn_id, secret ^ 1).expect("cancel rpc"));

    let sql = "SELECT c_nationkey, COUNT(*), SUM(c_acctbal), AVG(c_acctbal) \
               FROM customer, orders WHERE o_custkey = c_custkey \
               GROUP BY c_nationkey ORDER BY c_nationkey";
    let stmt = client.prepare(sql).expect("prepare");

    // The cancel must land while the statement is in flight; sweep the
    // delay until one does (the same pattern the in-process cancel test
    // uses — a cancel that lands between statements is cleared at the next
    // statement's start and the execution legitimately succeeds).
    let mut cancelled = false;
    for attempt in 0..80u64 {
        let canceller = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_micros(attempt * 120));
            Client::cancel_other(addr, conn_id, secret).expect("cancel rpc")
        });
        let out = client.execute(stmt.stmt_id, &[]);
        let matched = canceller.join().expect("canceller");
        assert!(matched, "credentials must match the live connection");
        match out {
            Err(ClientError::Server(WireError::Cancelled)) => {
                cancelled = true;
                break;
            }
            Ok(_) => {} // cancel landed between statements; retry
            other => panic!("cancellation must surface as Cancelled, got {other:?}"),
        }
    }
    assert!(cancelled, "no cancel landed in-flight across the delay sweep");

    // The victim connection runs the next statement clean.
    let next = client.prepare("SELECT COUNT(*) FROM customer").expect("prepare");
    assert!(client.execute(next.stmt_id, &[]).is_ok());
    client.goodbye().expect("goodbye");
}

/// Admission control: over-cap connections are told `Busy` and turned
/// away; over-cap statements get `Busy` on a connection that stays usable.
#[test]
fn admission_control_rejects_with_typed_busy() {
    // Connection cap of 1: the second connect gets Busy{Connections}.
    let (server, addr, _sys) = start(
        0.0005,
        ServerConfig { max_connections: 1, ..ServerConfig::default() },
    );
    let client = Client::connect(addr).expect("first connect");
    match Client::connect(addr).map(|_| ()) {
        Err(ClientError::Server(WireError::Busy { what: BusyWhat::Connections, limit: 1 })) => {}
        other => panic!("expected Busy(connections), got {other:?}"),
    }
    assert!(qpe_server::stats::ServerStats::get(&server.stats().connections_rejected) >= 1);
    client.goodbye().expect("goodbye");

    // Statement cap of 0: every execute is rejected, the connection lives.
    let (_server2, addr2, _sys2) = start(
        0.0005,
        ServerConfig { max_inflight_statements: 0, ..ServerConfig::default() },
    );
    let mut c2 = Client::connect(addr2).expect("connect");
    let stmt = c2.prepare("SELECT COUNT(*) FROM customer").expect("prepare");
    match c2.execute(stmt.stmt_id, &[]) {
        Err(ClientError::Server(WireError::Busy { what: BusyWhat::Statements, limit: 0 })) => {}
        other => panic!("expected Busy(statements), got {other:?}"),
    }
    let stats = c2.stats().expect("stats frame still served");
    assert!(stats.statements_rejected >= 1);
    c2.goodbye().expect("goodbye");
}

/// Result-chunk streaming: a capped first chunk plus `Fetch` continuations
/// reassemble exactly the rows a one-shot execute returns; the drained
/// cursor then reports `NoCursor`.
#[test]
fn fetch_streams_chunks_losslessly() {
    let (_server, addr, _sys) = start(0.002, ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let sql = "SELECT c_custkey, c_name FROM customer ORDER BY c_custkey";
    let stmt = client.prepare(sql).expect("prepare");

    let all = client.execute(stmt.stmt_id, &[]).expect("one-shot");
    let all = all.rows().expect("rows").rows.clone();
    assert!(all.len() > 25, "need a multi-chunk result, got {} rows", all.len());

    let (first, mut more) = client
        .execute_chunked(stmt.stmt_id, EnginePref::Default, 10, &[])
        .expect("chunked execute");
    let mut rebuilt = first.rows().expect("rows").rows.clone();
    assert_eq!(rebuilt.len(), 10);
    assert!(more);
    while more {
        let (chunk, m) = client.fetch(7).expect("fetch");
        rebuilt.extend(chunk);
        more = m;
    }
    assert_eq!(rebuilt, all, "chunked reassembly must be lossless");

    match client.fetch(5) {
        Err(ClientError::Server(WireError::NoCursor)) => {}
        other => panic!("drained cursor must report NoCursor, got {other:?}"),
    }
    client.goodbye().expect("goodbye");
}

/// The `Stats` frame reports real work at both scopes.
#[test]
fn stats_frame_reports_server_and_session_counters() {
    let (_server, addr, _sys) = start(0.0005, ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let stmt = client.prepare("SELECT COUNT(*) FROM customer").expect("prepare");
    client.execute(stmt.stmt_id, &[]).expect("execute");
    client.execute(stmt.stmt_id, &[]).expect("execute");

    let stats = client.stats().expect("stats");
    assert_eq!(stats.connections_active, 1);
    assert!(stats.connections_accepted >= 1);
    assert_eq!(stats.statements_executed, 2);
    assert_eq!(stats.session_statements, 2);
    assert_eq!(stats.session_rows, 2, "two COUNT(*) result rows");
    assert!(stats.bytes_read > 0 && stats.bytes_written > 0);
    assert!(stats.session_bytes_read > 0 && stats.session_bytes_written > 0);
    assert!(!stats.degraded);
    client.goodbye().expect("goodbye");
}

/// Graceful shutdown: stops accepting, cancels in-flight statements (the
/// client sees a typed `Cancelled` or a completed result, never a hang),
/// and drains cleanly.
#[test]
fn shutdown_cancels_inflight_and_drains() {
    let (mut server, addr, _sys) = start(0.004, ServerConfig::default());
    let worker = std::thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        let sql = "SELECT c_nationkey, COUNT(*), SUM(c_acctbal) \
                   FROM customer, orders WHERE o_custkey = c_custkey \
                   GROUP BY c_nationkey ORDER BY c_nationkey";
        let stmt = client.prepare(sql).expect("prepare");
        // Drive executions until shutdown interrupts one (typed Cancelled)
        // or the connection is closed out from under us (clean I/O error).
        loop {
            match client.execute(stmt.stmt_id, &[]) {
                Ok(_) => continue,
                Err(ClientError::Server(WireError::Cancelled)) => return "cancelled",
                Err(ClientError::Io(_)) | Err(ClientError::Frame(_)) => return "disconnected",
                Err(e) => panic!("unexpected shutdown-path error: {e}"),
            }
        }
    });

    std::thread::sleep(Duration::from_millis(60));
    server.shutdown();
    let outcome = worker.join().expect("worker");
    assert!(
        outcome == "cancelled" || outcome == "disconnected",
        "draining must end the client loop, got {outcome}"
    );

    // The listener is gone: new connections are refused.
    assert!(Client::connect(addr).is_err(), "shutdown must stop accepting");
}

/// A client that sends a partial frame (header plus a few payload bytes)
/// and goes silent must not pin its handler thread — and therefore
/// `Server::shutdown`, which joins all handlers — forever. The mid-frame
/// read is abandoned after a bounded drain window once stop is raised.
#[test]
fn shutdown_is_not_blocked_by_a_stalled_partial_frame() {
    let (server, addr, _sys) = start(0.0005, ServerConfig::default());
    let mut stalled = TcpStream::connect(addr).expect("connect");
    let mut partial = Vec::new();
    partial.extend_from_slice(&100u32.to_le_bytes()); // claims 100 payload bytes
    partial.extend_from_slice(&0u32.to_le_bytes());
    partial.extend_from_slice(&[0u8; 10]); // ...delivers 10, then silence
    stalled.write_all(&partial).expect("partial write");
    // Let the handler enter the mid-payload read before shutting down.
    std::thread::sleep(Duration::from_millis(150));

    let (tx, rx) = std::sync::mpsc::channel();
    let shutter = std::thread::spawn(move || {
        let mut server = server;
        server.shutdown();
        tx.send(()).expect("send");
    });
    rx.recv_timeout(Duration::from_secs(10))
        .expect("shutdown must not hang on a stalled partial frame");
    shutter.join().expect("shutdown thread");
    drop(stalled);
}

/// The per-connection prepared-statement map is bounded: past the cap,
/// `Prepare` earns a typed `Busy` and `CloseStmt` frees a slot.
#[test]
fn prepared_statement_cap_rejects_with_typed_busy() {
    let (_server, addr, _sys) = start(
        0.0005,
        ServerConfig { max_prepared_statements: 2, ..ServerConfig::default() },
    );
    let mut client = Client::connect(addr).expect("connect");
    let s1 = client.prepare("SELECT COUNT(*) FROM customer").expect("prepare 1");
    let _s2 = client
        .prepare("SELECT c_name FROM customer WHERE c_custkey = ?")
        .expect("prepare 2");
    match client.prepare("SELECT c_acctbal FROM customer WHERE c_custkey = ?") {
        Err(ClientError::Server(WireError::Busy {
            what: BusyWhat::PreparedStatements,
            limit: 2,
        })) => {}
        other => panic!("expected Busy(prepared statements), got {other:?}"),
    }
    // Closing a handle frees a slot; the connection stays fully usable.
    client.close_stmt(s1.stmt_id).expect("close");
    let s3 = client
        .prepare("SELECT c_acctbal FROM customer WHERE c_custkey = ?")
        .expect("prepare after close");
    assert!(client.execute(s3.stmt_id, &[Value::Int(1)]).is_ok());
    client.goodbye().expect("goodbye");
}

/// Chunks are bounded by encoded byte size, not just row count: a result
/// whose default-sized chunk would exceed the frame cap streams through
/// in smaller chunks instead of poisoning the connection.
#[test]
fn wide_rows_chunk_by_bytes_not_just_row_count() {
    let (_server, addr, _sys) = start(0.0005, ServerConfig::default());
    let mut client = Client::connect(addr).expect("connect");
    let insert = client
        .prepare(
            "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
             c_mktsegment) VALUES (?, ?, 1, '20-000-000-0000', 0.0, 'machinery')",
        )
        .expect("prepare insert");
    let wide = "w".repeat(1 << 20); // 1 MiB per row
    for i in 0..20 {
        client
            .execute(insert.stmt_id, &[Value::Int(940_000 + i), Value::Str(wide.clone())])
            .expect("insert wide row");
    }
    // ~20 MiB of row data in under 1024 rows: a row-count-only chunker
    // would encode one > MAX_FRAME_LEN frame and poison the stream.
    let select = client
        .prepare("SELECT c_custkey, c_name FROM customer WHERE c_custkey >= ? ORDER BY c_custkey")
        .expect("prepare select");
    let out = client.execute(select.stmt_id, &[Value::Int(940_000)]).expect("wide select");
    let rows = &out.rows().expect("rows").rows;
    assert_eq!(rows.len(), 20);
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row[0], Value::Int(940_000 + i as i64));
        assert_eq!(row[1], Value::Str(wide.clone()));
    }
    client.goodbye().expect("goodbye");
}

/// A single row whose encoding exceeds the frame cap cannot be delivered
/// at all — it must surface as a typed error on a connection that stays
/// usable, never as an oversized frame the client rejects.
#[test]
fn an_unframeable_row_is_a_typed_error_not_a_poisoned_stream() {
    let (_server, addr, sys) = start(0.0005, ServerConfig::default());
    // Only an in-process session can create such a row: the wire itself
    // refuses to send any frame past the cap.
    let session = Session::new(Arc::clone(&sys));
    let giant = "g".repeat(MAX_FRAME_LEN as usize + 1024);
    let stmt = session
        .prepare(
            "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
             c_mktsegment) VALUES (?, ?, 1, '20-000-000-0000', 0.0, 'machinery')",
        )
        .expect("prepare");
    stmt.execute(&[Value::Int(950_001), Value::Str(giant)]).expect("insert giant row");

    let mut client = Client::connect(addr).expect("connect");
    let select = client
        .prepare("SELECT c_name FROM customer WHERE c_custkey = ?")
        .expect("prepare");
    match client.execute(select.stmt_id, &[Value::Int(950_001)]) {
        Err(ClientError::Server(WireError::Exec(m))) => {
            assert!(m.contains("frame cap"), "message: {m}");
        }
        other => panic!("expected typed Exec error, got {other:?}"),
    }
    // The error replaced the unsendable frame; the connection survives.
    let count = client.prepare("SELECT COUNT(*) FROM customer").expect("prepare");
    assert!(client.execute(count.stmt_id, &[]).is_ok());
    client.goodbye().expect("goodbye");
}

/// A `ReadOnly` error mapped from a real `HtapError` through the server's
/// conversion matches what the engine reports in-process (sanity-check of
/// the From impl over a live error, not a hand-built one).
#[test]
fn wire_error_conversion_matches_engine_error() {
    let sys = HtapSystem::new(&TpchConfig::with_scale(0.0005));
    let err = sys
        .execute_statement("INSERT INTO nosuch (a) VALUES (1)")
        .expect_err("must fail");
    let wire = WireError::from(&err);
    match (&err, &wire) {
        (HtapError::Sql(_), WireError::Sql { stage: SqlStage::Bind, .. }) => {}
        other => panic!("bind error must map to Sql/Bind, got {other:?}"),
    }
}
