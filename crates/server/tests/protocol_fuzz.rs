//! Panic/robustness audit of the wire protocol, mirroring the SQL front
//! end's fuzz suite: any byte stream a client can send — garbage,
//! truncated, oversized, bit-flipped — must come back as a structured
//! error frame or a clean disconnect. The server must never panic, hang,
//! or allocate unboundedly (frame lengths are capped **before** the
//! payload allocation), and must keep serving well-formed clients after
//! every hostile connection.

use proptest::prelude::*;
use qpe_htap::tpch::TpchConfig;
use qpe_htap::HtapSystem;
use qpe_server::client::Client;
use qpe_server::protocol::{
    read_frame, write_frame, ClientFrame, EnginePref, FrameError, ServerFrame, WireError,
    MAX_FRAME_LEN, PROTOCOL_VERSION,
};
use qpe_server::server::{Server, ServerConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, OnceLock};
use std::time::Duration;

/// One server shared by every fuzz case (never shut down — the static owns
/// it for the life of the test process).
fn server_addr() -> SocketAddr {
    static SERVER: OnceLock<Server> = OnceLock::new();
    SERVER
        .get_or_init(|| {
            let sys = Arc::new(HtapSystem::new(&TpchConfig::with_scale(0.0005)));
            Server::start(sys, "127.0.0.1:0", ServerConfig::default()).expect("bind")
        })
        .addr()
}

/// Deterministic byte stream from a seed (the proptest shim generates
/// scalars; bytes derive from an LCG over them).
fn garbage(seed: u64, len: usize) -> Vec<u8> {
    let mut x = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1);
    (0..len)
        .map(|_| {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (x >> 33) as u8
        })
        .collect()
}

/// Writes raw bytes to a fresh connection and drains whatever comes back
/// (error frames and/or EOF) under a timeout. The return is every payload
/// the server framed back before closing or going idle.
fn poke(addr: SocketAddr, bytes: &[u8]) -> Vec<Vec<u8>> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.set_nodelay(true).expect("nodelay");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    // The server may disconnect mid-write (e.g. after an oversized length
    // prefix); a failed write is part of the expected clean-rejection path.
    let _ = stream.write_all(bytes);
    let _ = stream.shutdown(std::net::Shutdown::Write);
    let mut replies = Vec::new();
    while let Ok(payload) = read_frame(&mut stream) {
        replies.push(payload);
    }
    replies
}

/// Every reply a hostile connection receives must still be a well-formed
/// `ServerFrame` — and an `Error` one at that.
fn assert_structured_errors(replies: &[Vec<u8>]) {
    for payload in replies {
        match ServerFrame::decode(payload) {
            Ok(ServerFrame::Error(_)) => {}
            Ok(other) => panic!("hostile bytes earned a non-error reply: {other:?}"),
            Err(e) => panic!("server sent an undecodable frame: {e}"),
        }
    }
}

/// The server keeps serving well-formed clients after a hostile peer.
fn assert_still_serving(addr: SocketAddr) {
    let mut client = Client::connect(addr).expect("server must survive hostile input");
    let stmt = client.prepare("SELECT COUNT(*) FROM customer").expect("prepare");
    let out = client.execute(stmt.stmt_id, &[]).expect("execute");
    assert!(out.rows().is_some());
    client.goodbye().expect("goodbye");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// Arbitrary garbage byte streams: structured error or clean
    /// disconnect, never a panic or a hang, and the server stays up.
    #[test]
    fn server_total_on_garbage(seed in 0u64..1_000_000_000, len in 0usize..600) {
        let addr = server_addr();
        let replies = poke(addr, &garbage(seed, len));
        assert_structured_errors(&replies);
        assert_still_serving(addr);
    }

    /// Prefix-truncations of a valid handshake + statement exchange — the
    /// "connection died mid-frame" shape. No reply is also fine (EOF
    /// mid-frame is a clean disconnect), but any reply must be structured.
    #[test]
    fn server_total_on_truncations(cut in 0usize..200) {
        let mut valid = Vec::new();
        write_frame(&mut valid, &ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            timeout_ns: 0,
            memory_budget: 0,
            engine: EnginePref::Default,
        }.encode()).expect("encode");
        write_frame(&mut valid, &ClientFrame::Prepare {
            sql: "SELECT COUNT(*) FROM customer".into(),
        }.encode()).expect("encode");
        let cut = cut.min(valid.len());
        let addr = server_addr();
        let replies = poke(addr, &valid[..cut]);
        for payload in &replies {
            // Whole frames before the cut get real replies; after the cut
            // only structured errors may follow.
            ServerFrame::decode(payload).expect("well-formed reply");
        }
        assert_still_serving(addr);
    }

    /// Single-bit flips of a valid exchange: CRC (or the length cap, when
    /// the flip lands in the length prefix) catches every one.
    #[test]
    fn server_total_on_bit_flips(bit in 0usize..1000, seed in 0u64..1_000_000) {
        let mut valid = Vec::new();
        write_frame(&mut valid, &ClientFrame::Hello {
            version: PROTOCOL_VERSION,
            timeout_ns: seed, // vary the payload too
            memory_budget: 0,
            engine: EnginePref::Default,
        }.encode()).expect("encode");
        let nbits = valid.len() * 8;
        let bit = bit % nbits;
        valid[bit / 8] ^= 1 << (bit % 8);
        let addr = server_addr();
        let replies = poke(addr, &valid);
        assert_structured_errors(&replies);
        assert_still_serving(addr);
    }

    /// The decoders are total on garbage payloads (no live server needed).
    #[test]
    fn decoders_total_on_garbage(seed in 0u64..1_000_000_000, len in 0usize..300) {
        let payload = garbage(seed, len);
        let _ = ClientFrame::decode(&payload);
        let _ = ServerFrame::decode(&payload);
    }
}

/// An adversarial length prefix (4 GiB claim) is rejected *before* any
/// allocation: the reply is a structured protocol error naming the cap,
/// then a disconnect — and the process obviously hasn't tried to reserve
/// 4 GiB.
#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    // Codec level: no payload allocation happens (read_frame returns
    // Oversized straight from the header).
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    hostile.extend_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        read_frame(&mut hostile.as_slice()),
        Err(FrameError::Oversized { len: u32::MAX })
    ));

    // Server level: structured rejection + disconnect, still serving.
    let addr = server_addr();
    let replies = poke(addr, &hostile);
    assert_eq!(replies.len(), 1, "one rejection frame, then disconnect");
    match ServerFrame::decode(&replies[0]) {
        Ok(ServerFrame::Error(WireError::Protocol(m))) => {
            assert!(m.contains("cap") || m.contains("exceeds"), "message: {m}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert_still_serving(addr);
}

/// A frame right at the cap boundary: `MAX_FRAME_LEN` itself must be
/// readable (it is the advertised maximum), one past it must not.
#[test]
fn frame_length_cap_is_exact() {
    let payload = vec![0x7u8; 64];
    let mut ok = Vec::new();
    write_frame(&mut ok, &payload).expect("write");
    assert_eq!(read_frame(&mut ok.as_slice()).expect("read"), payload);

    let mut over = Vec::new();
    over.extend_from_slice(&(MAX_FRAME_LEN + 1).to_le_bytes());
    over.extend_from_slice(&0u32.to_le_bytes());
    assert!(matches!(
        read_frame(&mut over.as_slice()),
        Err(FrameError::Oversized { .. })
    ));
}

/// Out-of-order protocol use on a virgin connection: a frame that is
/// well-formed but premature (no `Hello` yet) earns a structured protocol
/// error and a disconnect, not a hang.
#[test]
fn statement_before_hello_is_a_structured_error() {
    let addr = server_addr();
    let mut bytes = Vec::new();
    write_frame(&mut bytes, &ClientFrame::Prepare { sql: "SELECT 1".into() }.encode())
        .expect("encode");
    let replies = poke(addr, &bytes);
    assert_eq!(replies.len(), 1);
    match ServerFrame::decode(&replies[0]) {
        Ok(ServerFrame::Error(WireError::Protocol(m))) => {
            assert!(m.contains("Hello"), "message: {m}");
        }
        other => panic!("expected protocol error, got {other:?}"),
    }
    assert_still_serving(addr);
}

/// A read of a stream that dies mid-payload surfaces as a clean I/O error
/// at the codec level (the client-side mirror of the server's disconnect
/// handling).
#[test]
fn truncated_payload_is_a_clean_io_error() {
    let mut full = Vec::new();
    write_frame(&mut full, &ClientFrame::Goodbye.encode()).expect("encode");
    for cut in 1..full.len() {
        match read_frame(&mut &full[..cut]) {
            Err(FrameError::Io(e)) => {
                assert_eq!(e.kind(), std::io::ErrorKind::UnexpectedEof)
            }
            other => panic!("cut at {cut}: expected EOF error, got {other:?}"),
        }
    }
}

/// Keeping a connection open without sending anything must not wedge the
/// server (handlers poll with a read timeout), and dropping it without
/// `Goodbye` is a clean disconnect.
#[test]
fn idle_and_abandoned_connections_are_harmless() {
    let addr = server_addr();
    {
        let _idle = TcpStream::connect(addr).expect("connect");
        std::thread::sleep(Duration::from_millis(250));
        assert_still_serving(addr);
        // _idle drops here with no Goodbye.
    }
    std::thread::sleep(Duration::from_millis(50));
    assert_still_serving(addr);
}

/// Writes after the server rejected the stream (post-oversize disconnect)
/// fail cleanly client-side rather than blocking.
#[test]
fn writes_to_a_rejected_stream_fail_cleanly() {
    let addr = server_addr();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&u32::MAX.to_le_bytes());
    hostile.extend_from_slice(&0u32.to_le_bytes());
    stream.write_all(&hostile).expect("initial write");
    // Drain the rejection + EOF.
    let mut sink = Vec::new();
    let _ = stream.read_to_end(&mut sink);
    // Subsequent writes observe the closed peer as an error within a
    // bounded number of attempts (the kernel may buffer the first).
    let mut failed = false;
    for _ in 0..32 {
        if stream.write_all(&[0u8; 1024]).is_err() {
            failed = true;
            break;
        }
    }
    assert!(failed, "writes to a closed stream must start failing");
    assert_still_serving(addr);
}
