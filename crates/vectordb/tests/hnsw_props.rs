//! Property-based tests for the vector knowledge base: HNSW must track
//! exact search closely, and the store must preserve its key invariants
//! under arbitrary insert/search sequences.

use proptest::prelude::*;
use qpe_vectordb::{ExactIndex, HnswConfig, HnswIndex, KnowledgeStore, Metric, SearchBackend};

fn vectors(n: usize, dim: usize) -> impl Strategy<Value = Vec<Vec<f64>>> {
    prop::collection::vec(
        prop::collection::vec(-10.0f64..10.0, dim..=dim),
        n..=n,
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    /// HNSW's top-1 equals exact top-1 on small sets (HNSW is exact when the
    /// graph spans everything).
    #[test]
    fn hnsw_top1_matches_exact_on_small_sets(vs in vectors(30, 8), q in prop::collection::vec(-10.0f64..10.0, 8)) {
        let mut exact = ExactIndex::new(Metric::Euclidean);
        let mut hnsw = HnswIndex::new(HnswConfig::default());
        for v in &vs {
            exact.add(v.clone());
            hnsw.add(v.clone());
        }
        let e = exact.search(&q, 1)[0];
        let h = hnsw.search(&q, 1)[0];
        // ids may differ only under exact distance ties
        prop_assert!((e.1 - h.1).abs() < 1e-9, "exact d={} hnsw d={}", e.1, h.1);
    }

    /// Search results are sorted ascending by distance and within bounds.
    #[test]
    fn hnsw_results_sorted_and_bounded(vs in vectors(50, 4), k in 1usize..20) {
        let mut hnsw = HnswIndex::new(HnswConfig::default());
        for v in &vs {
            hnsw.add(v.clone());
        }
        let hits = hnsw.search(&[0.0; 4], k);
        prop_assert!(hits.len() <= k.min(vs.len()));
        for w in hits.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
        for (id, _) in &hits {
            prop_assert!((*id as usize) < vs.len());
        }
    }

    /// Recall@5 over a moderately-sized set stays high for any data draw.
    #[test]
    fn hnsw_recall_at_5(vs in vectors(150, 8)) {
        let mut exact = ExactIndex::new(Metric::Euclidean);
        let mut hnsw = HnswIndex::new(HnswConfig::default());
        for v in &vs {
            exact.add(v.clone());
            hnsw.add(v.clone());
        }
        let q = vec![0.5; 8];
        let truth: Vec<u32> = exact.search(&q, 5).into_iter().map(|(i, _)| i).collect();
        let approx: Vec<u32> = hnsw.search(&q, 5).into_iter().map(|(i, _)| i).collect();
        let hit = truth.iter().filter(|t| approx.contains(t)).count();
        prop_assert!(hit >= 4, "recall {hit}/5");
    }

    /// The store returns exactly the payload inserted under each id, for
    /// both backends, and search never returns duplicate ids.
    #[test]
    fn store_integrity(vs in vectors(25, 6), backend in prop_oneof![Just(SearchBackend::Exact), Just(SearchBackend::Hnsw)]) {
        let mut store: KnowledgeStore<usize> = KnowledgeStore::new(Metric::Euclidean, backend);
        for (i, v) in vs.iter().enumerate() {
            let id = store.insert(v.clone(), i);
            prop_assert_eq!(id as usize, i);
        }
        for (i, v) in vs.iter().enumerate() {
            prop_assert_eq!(store.get(i as u32), Some(&i));
            prop_assert_eq!(store.vector(i as u32), Some(v.as_slice()));
        }
        let hits = store.search(&vs[0], 10);
        let mut ids: Vec<u32> = hits.iter().map(|h| h.id).collect();
        let before = ids.len();
        ids.dedup();
        prop_assert_eq!(before, ids.len(), "duplicate ids in results");
    }

    /// Exact search self-query always returns the queried vector first
    /// (distance zero).
    #[test]
    fn exact_self_query_is_first(vs in vectors(20, 5), pick in 0usize..20) {
        let mut exact = ExactIndex::new(Metric::Euclidean);
        for v in &vs {
            exact.add(v.clone());
        }
        let hits = exact.search(&vs[pick], 3);
        prop_assert_eq!(hits[0].1, 0.0);
    }
}
