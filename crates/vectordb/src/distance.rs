//! Distance metrics for embedding search.

use serde::{Deserialize, Serialize};

/// Supported distance metrics. All are *distances*: smaller is more similar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Metric {
    /// Squared Euclidean distance (default; monotone with Euclidean).
    #[default]
    Euclidean,
    /// Cosine distance `1 − cos(a, b)`.
    Cosine,
    /// Negative dot product (for normalized embeddings).
    NegativeDot,
}

impl Metric {
    /// Distance between two vectors (must be equal length).
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "vector dimensions differ");
        match self {
            Metric::Euclidean => a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum(),
            Metric::Cosine => {
                let mut dot = 0.0;
                let mut na = 0.0;
                let mut nb = 0.0;
                for (x, y) in a.iter().zip(b.iter()) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                if na == 0.0 || nb == 0.0 {
                    return 1.0;
                }
                1.0 - dot / (na.sqrt() * nb.sqrt())
            }
            Metric::NegativeDot => -a.iter().zip(b.iter()).map(|(x, y)| x * y).sum::<f64>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_is_squared_l2() {
        let d = Metric::Euclidean.distance(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((d - 25.0).abs() < 1e-12);
    }

    #[test]
    fn identical_vectors_have_zero_distance() {
        let v = vec![1.0, -2.0, 0.5];
        assert_eq!(Metric::Euclidean.distance(&v, &v), 0.0);
        assert!(Metric::Cosine.distance(&v, &v).abs() < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        let d = Metric::Cosine.distance(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_opposite_is_two() {
        let d = Metric::Cosine.distance(&[1.0, 0.0], &[-1.0, 0.0]);
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_max() {
        assert_eq!(Metric::Cosine.distance(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn negative_dot_prefers_aligned() {
        let q = [1.0, 1.0];
        let close = Metric::NegativeDot.distance(&q, &[2.0, 2.0]);
        let far = Metric::NegativeDot.distance(&q, &[-1.0, 0.0]);
        assert!(close < far);
    }
}
