//! Distance metrics for embedding search.

use serde::{Deserialize, Serialize};

/// Supported distance metrics. All are *distances*: smaller is more similar.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Metric {
    /// Squared Euclidean distance (default; monotone with Euclidean).
    #[default]
    Euclidean,
    /// Cosine distance `1 − cos(a, b)`.
    Cosine,
    /// Negative dot product (for normalized embeddings).
    NegativeDot,
}

impl Metric {
    /// Distance with an early-abandon bound: once the running accumulation
    /// provably exceeds `bound`, stop and return the partial sum (which is
    /// `> bound` — callers only compare the result against `bound`).
    ///
    /// Only squared Euclidean accumulates monotonically, so only it can
    /// abandon; the other metrics compute the full distance.
    pub fn distance_upper_bounded(&self, a: &[f64], b: &[f64], bound: f64) -> f64 {
        match self {
            Metric::Euclidean => {
                debug_assert_eq!(a.len(), b.len(), "vector dimensions differ");
                let mut sum = 0.0;
                // Check the bound once per 8-lane chunk: cheap enough to
                // win on far-away candidates, coarse enough not to cost on
                // near ones.
                for (ca, cb) in a.chunks(8).zip(b.chunks(8)) {
                    for (x, y) in ca.iter().zip(cb.iter()) {
                        sum += (x - y) * (x - y);
                    }
                    if sum > bound {
                        return sum;
                    }
                }
                sum
            }
            _ => self.distance(a, b),
        }
    }

    /// Distance between two vectors (must be equal length).
    pub fn distance(&self, a: &[f64], b: &[f64]) -> f64 {
        debug_assert_eq!(a.len(), b.len(), "vector dimensions differ");
        match self {
            Metric::Euclidean => a
                .iter()
                .zip(b.iter())
                .map(|(x, y)| (x - y) * (x - y))
                .sum(),
            Metric::Cosine => {
                let mut dot = 0.0;
                let mut na = 0.0;
                let mut nb = 0.0;
                for (x, y) in a.iter().zip(b.iter()) {
                    dot += x * y;
                    na += x * x;
                    nb += y * y;
                }
                if na == 0.0 || nb == 0.0 {
                    return 1.0;
                }
                1.0 - dot / (na.sqrt() * nb.sqrt())
            }
            Metric::NegativeDot => -a.iter().zip(b.iter()).map(|(x, y)| x * y).sum::<f64>(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn euclidean_is_squared_l2() {
        let d = Metric::Euclidean.distance(&[0.0, 0.0], &[3.0, 4.0]);
        assert!((d - 25.0).abs() < 1e-12);
    }

    #[test]
    fn identical_vectors_have_zero_distance() {
        let v = vec![1.0, -2.0, 0.5];
        assert_eq!(Metric::Euclidean.distance(&v, &v), 0.0);
        assert!(Metric::Cosine.distance(&v, &v).abs() < 1e-12);
    }

    #[test]
    fn cosine_orthogonal_is_one() {
        let d = Metric::Cosine.distance(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_opposite_is_two() {
        let d = Metric::Cosine.distance(&[1.0, 0.0], &[-1.0, 0.0]);
        assert!((d - 2.0).abs() < 1e-12);
    }

    #[test]
    fn cosine_zero_vector_is_max() {
        assert_eq!(Metric::Cosine.distance(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    fn bounded_distance_agrees_below_bound_and_abandons_above() {
        let a: Vec<f64> = (0..32).map(|i| i as f64).collect();
        let b: Vec<f64> = (0..32).map(|i| (i * 2) as f64).collect();
        let full = Metric::Euclidean.distance(&a, &b);
        // Loose bound: identical exact result.
        assert_eq!(Metric::Euclidean.distance_upper_bounded(&a, &b, full + 1.0), full);
        // Tight bound: the partial sum must still prove "farther than bound".
        let partial = Metric::Euclidean.distance_upper_bounded(&a, &b, 10.0);
        assert!(partial > 10.0 && partial <= full);
        // Non-monotone metrics fall back to the exact distance.
        let cos = Metric::Cosine.distance(&a, &b);
        assert_eq!(Metric::Cosine.distance_upper_bounded(&a, &b, 0.0), cos);
    }

    #[test]
    fn negative_dot_prefers_aligned() {
        let q = [1.0, 1.0];
        let close = Metric::NegativeDot.distance(&q, &[2.0, 2.0]);
        let far = Metric::NegativeDot.distance(&q, &[-1.0, 0.0]);
        assert!(close < far);
    }
}
