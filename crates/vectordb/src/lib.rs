//! The RAG knowledge base: a small vector database.
//!
//! The paper stores `<plan-pair embedding, plan details, execution result,
//! expert explanation>` tuples keyed by 16-dim embeddings and retrieves the
//! top-K most similar pairs for each new query (§IV, K=2 by default over 20
//! entries). At that size an exact scan is instant; the paper cites HNSW
//! [Malkov & Yashunin] for how search stays sub-dominant as the KB grows, so
//! this crate provides both:
//!
//! * [`exact`] — brute-force exact top-K (the reference semantics),
//! * [`hnsw`] — a from-scratch Hierarchical Navigable Small World index,
//! * [`store`] — the typed entry store gluing vectors to payloads with
//!   JSON persistence.

pub mod distance;
pub mod exact;
pub mod hnsw;
pub mod store;

pub use distance::Metric;
pub use exact::ExactIndex;
pub use hnsw::{HnswConfig, HnswIndex};
pub use store::{KnowledgeStore, SearchBackend, SearchHit};
