//! The typed knowledge store: vectors + payloads + persistence.
//!
//! This is the paper's knowledge base container: entries are appended (new
//! expert explanations arrive over time, including corrections of wrong LLM
//! outputs), searched by embedding, and persisted as JSON.

use crate::distance::Metric;
use crate::exact::ExactIndex;
use crate::hnsw::{HnswConfig, HnswIndex};
use serde::de::DeserializeOwned;
use serde::{Deserialize, Serialize};
use std::path::Path;

/// Which search structure backs the store.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SearchBackend {
    /// Exact linear scan — the right default at the paper's KB size.
    #[default]
    Exact,
    /// HNSW approximate index — for the KB-growth experiments.
    Hnsw,
}

/// One search result.
#[derive(Debug, Clone, PartialEq)]
pub struct SearchHit<'a, V> {
    /// Entry id.
    pub id: u32,
    /// Distance to the query (smaller = more similar).
    pub distance: f64,
    /// The stored payload.
    pub value: &'a V,
}

/// A vector-keyed store of payloads.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct KnowledgeStore<V> {
    metric: Metric,
    backend: SearchBackend,
    exact: ExactIndex,
    hnsw: HnswIndex,
    values: Vec<V>,
}

impl<V: Clone + Serialize + DeserializeOwned> KnowledgeStore<V> {
    /// Creates an empty store.
    pub fn new(metric: Metric, backend: SearchBackend) -> Self {
        let hnsw_cfg = HnswConfig {
            metric,
            ..Default::default()
        };
        KnowledgeStore {
            metric,
            backend,
            exact: ExactIndex::new(metric),
            hnsw: HnswIndex::new(hnsw_cfg),
            values: Vec::new(),
        }
    }

    /// Inserts an entry; both indexes stay in sync so the backend can be
    /// switched at any time (used by the exact-vs-HNSW benchmark).
    pub fn insert(&mut self, vector: Vec<f64>, value: V) -> u32 {
        let id = self.exact.add(vector.clone());
        let hid = self.hnsw.add(vector);
        debug_assert_eq!(id, hid);
        self.values.push(value);
        id
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The payload for an id.
    pub fn get(&self, id: u32) -> Option<&V> {
        self.values.get(id as usize)
    }

    /// Mutable payload access (expert corrections overwrite in place).
    pub fn get_mut(&mut self, id: u32) -> Option<&mut V> {
        self.values.get_mut(id as usize)
    }

    /// The stored key vector for an id.
    pub fn vector(&self, id: u32) -> Option<&[f64]> {
        self.exact.vector(id)
    }

    /// The active metric.
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The active backend.
    pub fn backend(&self) -> SearchBackend {
        self.backend
    }

    /// Switches search backend.
    pub fn set_backend(&mut self, backend: SearchBackend) {
        self.backend = backend;
    }

    /// Top-`k` most similar entries.
    pub fn search(&self, query: &[f64], k: usize) -> Vec<SearchHit<'_, V>> {
        let ids = match self.backend {
            SearchBackend::Exact => self.exact.search(query, k),
            SearchBackend::Hnsw => self.hnsw.search(query, k),
        };
        ids.into_iter()
            .map(|(id, distance)| SearchHit {
                id,
                distance,
                value: &self.values[id as usize],
            })
            .collect()
    }

    /// Serializes to a JSON string.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Deserializes from a JSON string.
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }

    /// Saves to a file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        let json = self
            .to_json()
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))?;
        std::fs::write(path, json)
    }

    /// Loads from a file.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        let json = std::fs::read_to_string(path)?;
        Self::from_json(&json)
            .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
    struct Payload {
        name: String,
    }

    fn store() -> KnowledgeStore<Payload> {
        let mut s = KnowledgeStore::new(Metric::Euclidean, SearchBackend::Exact);
        s.insert(vec![0.0, 0.0], Payload { name: "origin".into() });
        s.insert(vec![1.0, 0.0], Payload { name: "east".into() });
        s.insert(vec![0.0, 1.0], Payload { name: "north".into() });
        s
    }

    #[test]
    fn insert_and_search() {
        let s = store();
        assert_eq!(s.len(), 3);
        let hits = s.search(&[0.9, 0.0], 2);
        assert_eq!(hits[0].value.name, "east");
        assert_eq!(hits[1].value.name, "origin");
        assert!(hits[0].distance < hits[1].distance);
    }

    #[test]
    fn backends_agree_on_small_stores() {
        let mut s = store();
        let exact: Vec<u32> = s.search(&[0.5, 0.5], 3).iter().map(|h| h.id).collect();
        s.set_backend(SearchBackend::Hnsw);
        let approx: Vec<u32> = s.search(&[0.5, 0.5], 3).iter().map(|h| h.id).collect();
        assert_eq!(exact, approx);
        assert_eq!(s.backend(), SearchBackend::Hnsw);
    }

    #[test]
    fn get_and_correct_in_place() {
        let mut s = store();
        assert_eq!(s.get(1).unwrap().name, "east");
        s.get_mut(1).unwrap().name = "corrected".into();
        assert_eq!(s.get(1).unwrap().name, "corrected");
        assert!(s.get(99).is_none());
    }

    #[test]
    fn json_roundtrip() {
        let s = store();
        let json = s.to_json().unwrap();
        let s2: KnowledgeStore<Payload> = KnowledgeStore::from_json(&json).unwrap();
        assert_eq!(s2.len(), 3);
        assert_eq!(s2.get(0).unwrap().name, "origin");
        let h1: Vec<u32> = s.search(&[1.0, 1.0], 2).iter().map(|h| h.id).collect();
        let h2: Vec<u32> = s2.search(&[1.0, 1.0], 2).iter().map(|h| h.id).collect();
        assert_eq!(h1, h2);
    }

    #[test]
    fn file_persistence() {
        let s = store();
        let dir = std::env::temp_dir().join("qpe_vectordb_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("kb.json");
        s.save(&path).unwrap();
        let s2: KnowledgeStore<Payload> = KnowledgeStore::load(&path).unwrap();
        assert_eq!(s2.len(), s.len());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_store_behaviour() {
        let s: KnowledgeStore<Payload> = KnowledgeStore::new(Metric::Cosine, SearchBackend::Exact);
        assert!(s.is_empty());
        assert!(s.search(&[1.0, 2.0], 5).is_empty());
        assert_eq!(s.metric(), Metric::Cosine);
    }

    #[test]
    fn vector_accessor() {
        let s = store();
        assert_eq!(s.vector(1), Some(&[1.0, 0.0][..]));
    }
}
