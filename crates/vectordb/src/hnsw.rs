//! A from-scratch Hierarchical Navigable Small World (HNSW) index.
//!
//! Implements the construction and search algorithms of Malkov & Yashunin
//! (the paper's citation [10] for why KB search will not dominate as the
//! knowledge base grows): layered proximity graphs, greedy descent from the
//! top layer, and beam search (`ef`) at the base layer.
//!
//! Insertions draw levels from the standard geometric distribution with
//! `mL = 1/ln(M)`; neighbor sets are pruned to `M` (2·M at the base layer)
//! by distance.

use crate::distance::Metric;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::collections::HashSet;

/// HNSW construction/search parameters.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswConfig {
    /// Max neighbors per node per layer (base layer allows 2·M).
    pub m: usize,
    /// Beam width during construction.
    pub ef_construction: usize,
    /// Beam width during search (must be ≥ k for good recall).
    pub ef_search: usize,
    /// Distance metric.
    pub metric: Metric,
    /// Level-draw seed.
    pub seed: u64,
}

impl Default for HnswConfig {
    fn default() -> Self {
        HnswConfig {
            m: 12,
            ef_construction: 100,
            ef_search: 64,
            metric: Metric::Euclidean,
            seed: 42,
        }
    }
}

#[derive(Debug, Clone, Serialize, Deserialize)]
struct Node {
    vector: Vec<f64>,
    /// `neighbors[layer]` = adjacent node ids at that layer.
    neighbors: Vec<Vec<u32>>,
}

/// The HNSW index.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct HnswIndex {
    config: HnswConfig,
    nodes: Vec<Node>,
    entry: Option<u32>,
    rng_state: u64,
}

/// Max-heap entry by distance (for result sets).
#[derive(PartialEq)]
struct Far(f64, u32);
impl Eq for Far {}
impl PartialOrd for Far {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Far {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0).then(self.1.cmp(&other.1))
    }
}

/// Min-heap entry by distance (for candidate queues), via reversed ordering.
#[derive(PartialEq)]
struct Near(f64, u32);
impl Eq for Near {}
impl PartialOrd for Near {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Near {
    fn cmp(&self, other: &Self) -> Ordering {
        other.0.total_cmp(&self.0).then(other.1.cmp(&self.1))
    }
}

impl HnswIndex {
    /// Creates an empty index.
    pub fn new(config: HnswConfig) -> Self {
        let rng_state = config.seed;
        HnswIndex {
            config,
            nodes: Vec::new(),
            entry: None,
            rng_state,
        }
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The stored vector for an id.
    pub fn vector(&self, id: u32) -> Option<&[f64]> {
        self.nodes.get(id as usize).map(|n| n.vector.as_slice())
    }

    fn draw_level(&mut self) -> usize {
        // Deterministic per-insert RNG stream.
        let mut rng = StdRng::seed_from_u64(self.rng_state);
        self.rng_state = self.rng_state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let ml = 1.0 / (self.config.m as f64).ln();
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        ((-u.ln()) * ml).floor() as usize
    }

    fn dist(&self, a: &[f64], id: u32) -> f64 {
        self.config.metric.distance(a, &self.nodes[id as usize].vector)
    }

    /// Greedy beam search within one layer. Returns up to `ef` closest
    /// nodes (ascending distance).
    fn search_layer(&self, query: &[f64], entry: u32, layer: usize, ef: usize) -> Vec<(u32, f64)> {
        let mut visited: HashSet<u32> = HashSet::new();
        visited.insert(entry);
        let d0 = self.dist(query, entry);
        let mut candidates: BinaryHeap<Near> = BinaryHeap::new();
        candidates.push(Near(d0, entry));
        let mut results: BinaryHeap<Far> = BinaryHeap::new();
        results.push(Far(d0, entry));

        while let Some(Near(dc, c)) = candidates.pop() {
            let worst = results.peek().map(|f| f.0).unwrap_or(f64::INFINITY);
            if dc > worst && results.len() >= ef {
                break;
            }
            let neighbors = &self.nodes[c as usize].neighbors;
            if layer >= neighbors.len() {
                continue;
            }
            for &nb in &neighbors[layer] {
                if !visited.insert(nb) {
                    continue;
                }
                let worst = results.peek().map(|f| f.0).unwrap_or(f64::INFINITY);
                // Once the result set is full, a candidate only matters if
                // it beats the current worst — let Euclidean abandon the
                // accumulation as soon as that is impossible. Admitted
                // candidates always carry their exact distance.
                let d = if results.len() < ef {
                    self.dist(query, nb)
                } else {
                    self.config.metric.distance_upper_bounded(
                        query,
                        &self.nodes[nb as usize].vector,
                        worst,
                    )
                };
                if results.len() < ef || d < worst {
                    candidates.push(Near(d, nb));
                    results.push(Far(d, nb));
                    if results.len() > ef {
                        results.pop();
                    }
                }
            }
        }
        let mut out: Vec<(u32, f64)> = results.into_iter().map(|Far(d, id)| (id, d)).collect();
        out.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Inserts a vector, returning its id.
    pub fn add(&mut self, vector: Vec<f64>) -> u32 {
        let id = self.nodes.len() as u32;
        let level = self.draw_level();
        self.nodes.push(Node {
            vector,
            neighbors: vec![Vec::new(); level + 1],
        });

        let Some(mut ep) = self.entry else {
            self.entry = Some(id);
            return id;
        };

        let query = self.nodes[id as usize].vector.clone();
        let top = self.nodes[ep as usize].neighbors.len() - 1;

        // Greedy descent through layers above the new node's level.
        let entry_top = self.top_layer(ep);
        let mut layer = entry_top;
        while layer > level {
            let found = self.search_layer(&query, ep, layer, 1);
            if let Some(&(best, _)) = found.first() {
                ep = best;
            }
            if layer == 0 {
                break;
            }
            layer -= 1;
        }
        let _ = top;

        // Connect at each layer from min(level, entry_top) down to 0.
        let mut layer = level.min(entry_top);
        loop {
            let found = self.search_layer(&query, ep, layer, self.config.ef_construction);
            let max_links = if layer == 0 {
                2 * self.config.m
            } else {
                self.config.m
            };
            let selected: Vec<u32> = found.iter().take(max_links).map(|&(i, _)| i).collect();
            for &nb in &selected {
                self.nodes[id as usize].neighbors[layer].push(nb);
                self.nodes[nb as usize].neighbors[layer].push(id);
                self.prune(nb, layer, max_links);
            }
            if let Some(&(best, _)) = found.first() {
                ep = best;
            }
            if layer == 0 {
                break;
            }
            layer -= 1;
        }

        // New global entry point if the new node reaches higher.
        if level > self.top_layer(self.entry.unwrap()) {
            self.entry = Some(id);
        }
        id
    }

    fn top_layer(&self, id: u32) -> usize {
        self.nodes[id as usize].neighbors.len() - 1
    }

    /// Keeps only the `max_links` nearest neighbors of `id` at `layer`.
    fn prune(&mut self, id: u32, layer: usize, max_links: usize) {
        let n = &self.nodes[id as usize];
        if n.neighbors[layer].len() <= max_links {
            return;
        }
        // Score through shared borrows — no base-vector clone per prune.
        let mut scored: Vec<(u32, f64)> = {
            let base = &n.vector;
            n.neighbors[layer]
                .iter()
                .map(|&nb| {
                    (nb, self.config.metric.distance(base, &self.nodes[nb as usize].vector))
                })
                .collect()
        };
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        scored.truncate(max_links);
        self.nodes[id as usize].neighbors[layer] = scored.into_iter().map(|(i, _)| i).collect();
    }

    /// Approximate top-`k` nearest ids with distances (ascending).
    pub fn search(&self, query: &[f64], k: usize) -> Vec<(u32, f64)> {
        let Some(mut ep) = self.entry else {
            return Vec::new();
        };
        if k == 0 {
            return Vec::new();
        }
        let mut layer = self.top_layer(ep);
        while layer > 0 {
            let found = self.search_layer(query, ep, layer, 1);
            if let Some(&(best, _)) = found.first() {
                ep = best;
            }
            layer -= 1;
        }
        let ef = self.config.ef_search.max(k);
        let mut out = self.search_layer(query, ep, 0, ef);
        out.truncate(k);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exact::ExactIndex;
    use rand::Rng;

    fn random_vectors(n: usize, dim: usize, seed: u64) -> Vec<Vec<f64>> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect())
            .collect()
    }

    #[test]
    fn empty_index_returns_nothing() {
        let idx = HnswIndex::new(HnswConfig::default());
        assert!(idx.search(&[0.0, 0.0], 5).is_empty());
        assert!(idx.is_empty());
    }

    #[test]
    fn single_element() {
        let mut idx = HnswIndex::new(HnswConfig::default());
        idx.add(vec![1.0, 2.0]);
        let hits = idx.search(&[1.0, 2.0], 3);
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[0].1, 0.0);
    }

    #[test]
    fn finds_exact_nearest_on_small_set() {
        let mut idx = HnswIndex::new(HnswConfig::default());
        for v in random_vectors(50, 8, 7) {
            idx.add(v);
        }
        let query = vec![0.1; 8];
        let hits = idx.search(&query, 1);
        // brute-force ground truth
        let mut exact = ExactIndex::new(Metric::Euclidean);
        for i in 0..50 {
            exact.add(idx.vector(i).unwrap().to_vec());
        }
        let truth = exact.search(&query, 1);
        assert_eq!(hits[0].0, truth[0].0);
    }

    #[test]
    fn recall_at_10_is_high() {
        let vectors = random_vectors(500, 16, 13);
        let mut idx = HnswIndex::new(HnswConfig::default());
        let mut exact = ExactIndex::new(Metric::Euclidean);
        for v in &vectors {
            idx.add(v.clone());
            exact.add(v.clone());
        }
        let queries = random_vectors(20, 16, 99);
        let mut hit = 0usize;
        let mut total = 0usize;
        for q in &queries {
            let approx: HashSet<u32> = idx.search(q, 10).into_iter().map(|(i, _)| i).collect();
            for (id, _) in exact.search(q, 10) {
                total += 1;
                if approx.contains(&id) {
                    hit += 1;
                }
            }
        }
        let recall = hit as f64 / total as f64;
        assert!(recall >= 0.9, "recall@10 = {recall}");
    }

    #[test]
    fn results_are_sorted_by_distance() {
        let mut idx = HnswIndex::new(HnswConfig::default());
        for v in random_vectors(100, 4, 3) {
            idx.add(v);
        }
        let hits = idx.search(&[0.0; 4], 10);
        for w in hits.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn construction_is_deterministic() {
        let vectors = random_vectors(80, 8, 21);
        let build = || {
            let mut idx = HnswIndex::new(HnswConfig::default());
            for v in &vectors {
                idx.add(v.clone());
            }
            idx.search(&[0.5; 8], 5)
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn serde_roundtrip() {
        let mut idx = HnswIndex::new(HnswConfig::default());
        for v in random_vectors(30, 4, 5) {
            idx.add(v);
        }
        let json = serde_json::to_string(&idx).unwrap();
        let idx2: HnswIndex = serde_json::from_str(&json).unwrap();
        assert_eq!(idx.search(&[0.0; 4], 5), idx2.search(&[0.0; 4], 5));
        assert_eq!(idx.len(), idx2.len());
    }

    #[test]
    fn cosine_metric_search() {
        let cfg = HnswConfig { metric: Metric::Cosine, ..HnswConfig::default() };
        let mut idx = HnswIndex::new(cfg);
        idx.add(vec![1.0, 0.0]);
        idx.add(vec![0.0, 1.0]);
        idx.add(vec![0.7, 0.7]);
        let hits = idx.search(&[1.0, 0.1], 1);
        assert_eq!(hits[0].0, 0);
    }
}
