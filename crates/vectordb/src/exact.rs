//! Brute-force exact top-K search — the reference semantics and the right
//! choice at the paper's knowledge-base size (20 entries, <0.1 ms).

use crate::distance::Metric;
use serde::{Deserialize, Serialize};

/// An exact (linear scan) vector index.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct ExactIndex {
    vectors: Vec<Vec<f64>>,
    metric: Metric,
}

impl ExactIndex {
    /// Creates an empty index with the given metric.
    pub fn new(metric: Metric) -> Self {
        ExactIndex {
            vectors: Vec::new(),
            metric,
        }
    }

    /// Adds a vector; returns its id (insertion order).
    pub fn add(&mut self, vector: Vec<f64>) -> u32 {
        let id = self.vectors.len() as u32;
        self.vectors.push(vector);
        id
    }

    /// Number of stored vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// The stored vector for an id.
    pub fn vector(&self, id: u32) -> Option<&[f64]> {
        self.vectors.get(id as usize).map(|v| v.as_slice())
    }

    /// Exact top-`k` nearest ids with distances, ascending by distance
    /// (ties broken by id for determinism).
    pub fn search(&self, query: &[f64], k: usize) -> Vec<(u32, f64)> {
        let mut scored: Vec<(u32, f64)> = self
            .vectors
            .iter()
            .enumerate()
            .map(|(i, v)| (i as u32, self.metric.distance(query, v)))
            .collect();
        scored.sort_by(|a, b| a.1.total_cmp(&b.1).then(a.0.cmp(&b.0)));
        scored.truncate(k);
        scored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn index() -> ExactIndex {
        let mut idx = ExactIndex::new(Metric::Euclidean);
        idx.add(vec![0.0, 0.0]);
        idx.add(vec![1.0, 0.0]);
        idx.add(vec![0.0, 2.0]);
        idx.add(vec![5.0, 5.0]);
        idx
    }

    #[test]
    fn returns_nearest_first() {
        let idx = index();
        let hits = idx.search(&[0.9, 0.1], 2);
        assert_eq!(hits[0].0, 1);
        assert_eq!(hits[1].0, 0);
    }

    #[test]
    fn k_larger_than_size_returns_all() {
        let idx = index();
        assert_eq!(idx.search(&[0.0, 0.0], 100).len(), 4);
    }

    #[test]
    fn k_zero_returns_empty() {
        assert!(index().search(&[0.0, 0.0], 0).is_empty());
    }

    #[test]
    fn ties_break_by_id() {
        let mut idx = ExactIndex::new(Metric::Euclidean);
        idx.add(vec![1.0]);
        idx.add(vec![1.0]);
        let hits = idx.search(&[1.0], 2);
        assert_eq!(hits[0].0, 0);
        assert_eq!(hits[1].0, 1);
    }

    #[test]
    fn accessors() {
        let idx = index();
        assert_eq!(idx.len(), 4);
        assert!(!idx.is_empty());
        assert_eq!(idx.vector(2), Some(&[0.0, 2.0][..]));
        assert_eq!(idx.vector(99), None);
    }
}
