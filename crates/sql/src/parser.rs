//! Recursive-descent parser for the supported SQL subset.

use crate::ast::*;
use crate::error::SqlError;
use crate::lexer::{tokenize, Token, TokenKind};
use crate::value::Value;

/// Parses a single `SELECT` statement.
pub fn parse_select(input: &str) -> Result<SelectStatement, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser::new(tokens);
    let stmt = p.select()?;
    p.expect_eof()?;
    Ok(stmt)
}

/// Parses any statement in the subset: `SELECT`, `INSERT`, `UPDATE` or
/// `DELETE` (dispatching on the first keyword).
pub fn parse_statement(input: &str) -> Result<Statement, SqlError> {
    let tokens = tokenize(input)?;
    let mut p = Parser::new(tokens);
    let stmt = match p.peek() {
        TokenKind::Keyword(k) if k == "INSERT" => Statement::Insert(p.insert()?),
        TokenKind::Keyword(k) if k == "UPDATE" => Statement::Update(p.update()?),
        TokenKind::Keyword(k) if k == "DELETE" => Statement::Delete(p.delete()?),
        _ => Statement::Select(p.select()?),
    };
    p.expect_eof()?;
    Ok(stmt)
}

/// Maximum expression nesting before the parser rejects the statement
/// instead of converting input depth into native stack depth.
const MAX_EXPR_DEPTH: usize = 128;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    /// Next index handed to an anonymous `?` placeholder.
    next_anon: u32,
    /// Placeholder styles seen so far — `?` and `$n` must not mix in one
    /// statement (their numberings would silently collide).
    saw_anon: bool,
    saw_numbered: bool,
    /// Current expression recursion depth (see [`MAX_EXPR_DEPTH`]).
    depth: usize,
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Self {
        Parser { tokens, pos: 0, next_anon: 0, saw_anon: false, saw_numbered: false, depth: 0 }
    }

    fn peek(&self) -> &TokenKind {
        &self.tokens[self.pos].kind
    }

    /// Resolves one placeholder token to a 0-based parameter index: `?`
    /// numbers by order of appearance, `$n` is explicit (1-based as written).
    fn param_index(&mut self, numbered: Option<u32>, pos: usize) -> Result<u32, SqlError> {
        /// Upper bound on `$n` — parameter numbers size bind-time tables, so
        /// an absurd written number must fail here, not as a giant
        /// allocation downstream.
        const MAX_PARAM_NUMBER: u32 = 1 << 16;
        match numbered {
            Some(n) => {
                if self.saw_anon {
                    return Err(SqlError::parse(
                        pos,
                        "cannot mix '?' and '$n' parameter styles in one statement",
                    ));
                }
                if n > MAX_PARAM_NUMBER {
                    return Err(SqlError::parse(
                        pos,
                        format!("parameter number ${n} exceeds the maximum ${MAX_PARAM_NUMBER}"),
                    ));
                }
                self.saw_numbered = true;
                Ok(n - 1)
            }
            None => {
                if self.saw_numbered {
                    return Err(SqlError::parse(
                        pos,
                        "cannot mix '?' and '$n' parameter styles in one statement",
                    ));
                }
                self.saw_anon = true;
                let idx = self.next_anon;
                self.next_anon += 1;
                Ok(idx)
            }
        }
    }

    fn peek_pos(&self) -> usize {
        self.tokens[self.pos].pos
    }

    fn advance(&mut self) -> TokenKind {
        let k = self.tokens[self.pos].kind.clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        k
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if matches!(self.peek(), TokenKind::Keyword(k) if k == kw) {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<(), SqlError> {
        if self.eat_keyword(kw) {
            Ok(())
        } else {
            Err(SqlError::parse(
                self.peek_pos(),
                format!("expected {kw}, found {:?}", self.peek()),
            ))
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == kind {
            self.advance();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: &TokenKind) -> Result<(), SqlError> {
        if self.eat(kind) {
            Ok(())
        } else {
            Err(SqlError::parse(
                self.peek_pos(),
                format!("expected {kind:?}, found {:?}", self.peek()),
            ))
        }
    }

    fn expect_eof(&mut self) -> Result<(), SqlError> {
        // Trailing semicolons are tolerated by the lexer? No — lexer has no
        // semicolon token, so strip it before tokenizing is the caller's job.
        if matches!(self.peek(), TokenKind::Eof) {
            Ok(())
        } else {
            Err(SqlError::parse(
                self.peek_pos(),
                format!("unexpected trailing input: {:?}", self.peek()),
            ))
        }
    }

    fn ident(&mut self) -> Result<String, SqlError> {
        match self.advance() {
            TokenKind::Ident(s) => Ok(s),
            other => Err(SqlError::parse(
                self.peek_pos(),
                format!("expected identifier, found {other:?}"),
            )),
        }
    }

    /// Surfaces a structured [`SqlError::ParamNotSupported`] when a
    /// placeholder sits in a plan-shape-affecting position (`LIMIT` /
    /// `OFFSET` choose between top-N and full-sort plans by value).
    fn reject_param_here(&mut self, clause: &'static str) -> Result<(), SqlError> {
        if matches!(self.peek(), TokenKind::Question | TokenKind::Dollar(_)) {
            return Err(SqlError::ParamNotSupported { clause });
        }
        Ok(())
    }

    fn integer(&mut self) -> Result<i64, SqlError> {
        match self.advance() {
            TokenKind::Int(v) => Ok(v),
            other => Err(SqlError::parse(
                self.peek_pos(),
                format!("expected integer, found {other:?}"),
            )),
        }
    }

    fn select(&mut self) -> Result<SelectStatement, SqlError> {
        self.expect_keyword("SELECT")?;
        let projections = self.select_items()?;
        self.expect_keyword("FROM")?;
        let from = self.table_refs()?;
        let selection = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut group_by = Vec::new();
        if self.eat_keyword("GROUP") {
            self.expect_keyword("BY")?;
            loop {
                group_by.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let having = if self.eat_keyword("HAVING") {
            Some(self.expr()?)
        } else {
            None
        };
        let mut order_by = Vec::new();
        if self.eat_keyword("ORDER") {
            self.expect_keyword("BY")?;
            loop {
                let expr = self.expr()?;
                let desc = if self.eat_keyword("DESC") {
                    true
                } else {
                    self.eat_keyword("ASC");
                    false
                };
                order_by.push(OrderByItem { expr, desc });
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let limit = if self.eat_keyword("LIMIT") {
            self.reject_param_here("LIMIT")?;
            Some(self.integer()? as u64)
        } else {
            None
        };
        let offset = if self.eat_keyword("OFFSET") {
            self.reject_param_here("OFFSET")?;
            Some(self.integer()? as u64)
        } else {
            None
        };
        Ok(SelectStatement {
            projections,
            from,
            selection,
            group_by,
            having,
            order_by,
            limit,
            offset,
        })
    }

    fn insert(&mut self) -> Result<InsertStatement, SqlError> {
        self.expect_keyword("INSERT")?;
        self.expect_keyword("INTO")?;
        let table = self.ident()?;
        let columns = if self.eat(&TokenKind::LParen) {
            let mut cols = Vec::new();
            loop {
                cols.push(self.ident()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            Some(cols)
        } else {
            None
        };
        self.expect_keyword("VALUES")?;
        let mut rows = Vec::new();
        loop {
            self.expect(&TokenKind::LParen)?;
            let mut row = Vec::new();
            loop {
                row.push(self.insert_value()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            rows.push(row);
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(InsertStatement { table, columns, rows })
    }

    /// One cell in a `VALUES` row: a plain literal, `DATE 'yyyy-mm-dd'`, or a
    /// parameter placeholder.
    fn insert_value(&mut self) -> Result<Expr, SqlError> {
        let pos = self.peek_pos();
        match self.peek() {
            TokenKind::Question => {
                self.advance();
                let idx = self.param_index(None, pos)?;
                return Ok(Expr::Param(idx));
            }
            TokenKind::Dollar(n) => {
                let n = *n;
                self.advance();
                let idx = self.param_index(Some(n), pos)?;
                return Ok(Expr::Param(idx));
            }
            _ => {}
        }
        if matches!(self.peek(), TokenKind::Keyword(k) if k == "DATE") {
            self.advance();
            return match self.advance() {
                TokenKind::Str(s) => {
                    let days = parse_date(&s)
                        .ok_or_else(|| SqlError::parse(pos, format!("bad date literal {s:?}")))?;
                    Ok(Expr::Literal(Value::Date(days)))
                }
                other => Err(SqlError::parse(
                    pos,
                    format!("expected string after DATE, found {other:?}"),
                )),
            };
        }
        self.literal_value().map(Expr::Literal)
    }

    fn update(&mut self) -> Result<UpdateStatement, SqlError> {
        self.expect_keyword("UPDATE")?;
        let table = self.ident()?;
        self.expect_keyword("SET")?;
        let mut assignments = Vec::new();
        loop {
            let col = self.ident()?;
            self.expect(&TokenKind::Eq)?;
            let expr = self.expr()?;
            assignments.push((col, expr));
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        let selection = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(UpdateStatement { table, assignments, selection })
    }

    fn delete(&mut self) -> Result<DeleteStatement, SqlError> {
        self.expect_keyword("DELETE")?;
        self.expect_keyword("FROM")?;
        let table = self.ident()?;
        let selection = if self.eat_keyword("WHERE") {
            Some(self.expr()?)
        } else {
            None
        };
        Ok(DeleteStatement { table, selection })
    }

    fn select_items(&mut self) -> Result<Vec<SelectItem>, SqlError> {
        let mut items = Vec::new();
        loop {
            if self.eat(&TokenKind::Star) {
                items.push(SelectItem::Wildcard);
            } else {
                let expr = self.expr()?;
                let alias = if self.eat_keyword("AS") {
                    Some(self.ident()?)
                } else {
                    None
                };
                items.push(SelectItem::Expr { expr, alias });
            }
            if !self.eat(&TokenKind::Comma) {
                break;
            }
        }
        Ok(items)
    }

    fn table_refs(&mut self) -> Result<Vec<TableRef>, SqlError> {
        let mut refs = Vec::new();
        let first = self.table_ref()?;
        refs.push(first);
        loop {
            if self.eat(&TokenKind::Comma) {
                refs.push(self.table_ref()?);
            } else if self.eat_keyword("INNER") {
                self.expect_keyword("JOIN")?;
                let mut r = self.table_ref()?;
                self.expect_keyword("ON")?;
                r.join_on = Some(self.expr()?);
                refs.push(r);
            } else if self.eat_keyword("JOIN") {
                let mut r = self.table_ref()?;
                self.expect_keyword("ON")?;
                r.join_on = Some(self.expr()?);
                refs.push(r);
            } else {
                break;
            }
        }
        Ok(refs)
    }

    fn table_ref(&mut self) -> Result<TableRef, SqlError> {
        let name = self.ident()?;
        // Optional alias: bare identifier or `AS ident`, but not a keyword.
        // `AS alias` or a bare identifier alias.
        let alias = if self.eat_keyword("AS") || matches!(self.peek(), TokenKind::Ident(_)) {
            Some(self.ident()?)
        } else {
            None
        };
        Ok(TableRef {
            name,
            alias,
            join_on: None,
        })
    }

    // --- expression grammar: OR < AND < NOT < predicate < additive < mult < primary

    fn expr(&mut self) -> Result<Expr, SqlError> {
        // Recursion guard: `( expr )` in `primary` and chained `NOT` both
        // re-enter the expression grammar, so adversarial input like
        // `((((…1…))))` or `NOT NOT NOT … 1` would otherwise convert
        // nesting depth into native stack depth and abort the process.
        // Anything a human (or the workload generators) writes stays far
        // below this bound.
        if self.depth >= MAX_EXPR_DEPTH {
            return Err(SqlError::parse(
                self.peek_pos(),
                format!("expression nesting exceeds the maximum depth of {MAX_EXPR_DEPTH}"),
            ));
        }
        self.depth += 1;
        let result = self.or_expr();
        self.depth -= 1;
        result
    }

    fn or_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.and_expr()?;
        while self.eat_keyword("OR") {
            let right = self.and_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::Or,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn and_expr(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.not_expr()?;
        while self.eat_keyword("AND") {
            let right = self.not_expr()?;
            left = Expr::Binary {
                left: Box::new(left),
                op: BinaryOp::And,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn not_expr(&mut self) -> Result<Expr, SqlError> {
        // Iterative on purpose, but still bounded: each NOT nests the AST
        // one level, and every downstream consumer of the tree (binder,
        // drop glue) recurses over that nesting — an unbounded chain would
        // just move the stack overflow out of the parser.
        let mut nots = 0usize;
        while self.eat_keyword("NOT") {
            nots += 1;
            if nots > MAX_EXPR_DEPTH {
                return Err(SqlError::parse(
                    self.peek_pos(),
                    format!("NOT chain exceeds the maximum depth of {MAX_EXPR_DEPTH}"),
                ));
            }
        }
        let mut e = self.predicate()?;
        for _ in 0..nots {
            e = Expr::Not(Box::new(e));
        }
        Ok(e)
    }

    fn predicate(&mut self) -> Result<Expr, SqlError> {
        let left = self.additive()?;
        // comparison operators
        let op = match self.peek() {
            TokenKind::Eq => Some(BinaryOp::Eq),
            TokenKind::NotEq => Some(BinaryOp::NotEq),
            TokenKind::Lt => Some(BinaryOp::Lt),
            TokenKind::LtEq => Some(BinaryOp::LtEq),
            TokenKind::Gt => Some(BinaryOp::Gt),
            TokenKind::GtEq => Some(BinaryOp::GtEq),
            _ => None,
        };
        if let Some(op) = op {
            self.advance();
            let right = self.additive()?;
            return Ok(Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            });
        }
        // IN / NOT IN / BETWEEN / LIKE / NOT LIKE / IS [NOT] NULL
        let negated = {
            let save = self.pos;
            if self.eat_keyword("NOT") {
                if matches!(self.peek(), TokenKind::Keyword(k) if k == "IN" || k == "LIKE") {
                    true
                } else {
                    self.pos = save;
                    false
                }
            } else {
                false
            }
        };
        if self.eat_keyword("IN") {
            self.expect(&TokenKind::LParen)?;
            let mut items = Vec::new();
            loop {
                let pos = self.peek_pos();
                match self.peek() {
                    TokenKind::Question => {
                        self.advance();
                        items.push(InListItem::Param(self.param_index(None, pos)?));
                    }
                    TokenKind::Dollar(n) => {
                        let n = *n;
                        self.advance();
                        items.push(InListItem::Param(self.param_index(Some(n), pos)?));
                    }
                    _ => items.push(InListItem::Lit(self.literal_value()?)),
                }
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
            self.expect(&TokenKind::RParen)?;
            // All-literal lists keep the plain value-list form; one or more
            // placeholders switch to the parameterized form the binder
            // lowers at injection time.
            if items.iter().all(|it| matches!(it, InListItem::Lit(_))) {
                let list = items
                    .into_iter()
                    .map(|it| match it {
                        InListItem::Lit(v) => v,
                        InListItem::Param(_) => unreachable!(),
                    })
                    .collect();
                return Ok(Expr::InList { expr: Box::new(left), list, negated });
            }
            return Ok(Expr::InListParam {
                expr: Box::new(left),
                items,
                negated,
            });
        }
        if self.eat_keyword("LIKE") {
            match self.advance() {
                TokenKind::Str(pattern) => {
                    return Ok(Expr::Like {
                        expr: Box::new(left),
                        pattern,
                        negated,
                    })
                }
                other => {
                    return Err(SqlError::parse(
                        self.peek_pos(),
                        format!("expected string pattern after LIKE, found {other:?}"),
                    ))
                }
            }
        }
        if negated {
            return Err(SqlError::parse(
                self.peek_pos(),
                "expected IN or LIKE after NOT in predicate position",
            ));
        }
        if self.eat_keyword("BETWEEN") {
            let low = self.additive()?;
            self.expect_keyword("AND")?;
            let high = self.additive()?;
            return Ok(Expr::Between {
                expr: Box::new(left),
                low: Box::new(low),
                high: Box::new(high),
            });
        }
        if self.eat_keyword("IS") {
            let negated = self.eat_keyword("NOT");
            self.expect_keyword("NULL")?;
            return Ok(Expr::IsNull {
                expr: Box::new(left),
                negated,
            });
        }
        Ok(left)
    }

    fn additive(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.multiplicative()?;
        loop {
            let op = match self.peek() {
                TokenKind::Plus => BinaryOp::Add,
                TokenKind::Minus => BinaryOp::Sub,
                _ => break,
            };
            self.advance();
            let right = self.multiplicative()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn multiplicative(&mut self) -> Result<Expr, SqlError> {
        let mut left = self.primary()?;
        loop {
            let op = match self.peek() {
                TokenKind::Star => BinaryOp::Mul,
                TokenKind::Slash => BinaryOp::Div,
                _ => break,
            };
            self.advance();
            let right = self.primary()?;
            left = Expr::Binary {
                left: Box::new(left),
                op,
                right: Box::new(right),
            };
        }
        Ok(left)
    }

    fn primary(&mut self) -> Result<Expr, SqlError> {
        let pos = self.peek_pos();
        match self.advance() {
            TokenKind::Int(v) => Ok(Expr::Literal(Value::Int(v))),
            TokenKind::Float(v) => Ok(Expr::Literal(Value::Float(v))),
            TokenKind::Str(s) => Ok(Expr::Literal(Value::Str(s))),
            TokenKind::Question => {
                let idx = self.param_index(None, pos)?;
                Ok(Expr::Param(idx))
            }
            TokenKind::Dollar(n) => {
                let idx = self.param_index(Some(n), pos)?;
                Ok(Expr::Param(idx))
            }
            TokenKind::Minus => {
                // unary minus on numeric literal
                match self.advance() {
                    TokenKind::Int(v) => Ok(Expr::Literal(Value::Int(-v))),
                    TokenKind::Float(v) => Ok(Expr::Literal(Value::Float(-v))),
                    other => Err(SqlError::parse(
                        pos,
                        format!("expected numeric literal after unary '-', found {other:?}"),
                    )),
                }
            }
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen)?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::Dot) {
                    let col = self.ident()?;
                    Ok(Expr::Column {
                        table: Some(name),
                        name: col,
                    })
                } else {
                    Ok(Expr::Column { table: None, name })
                }
            }
            TokenKind::Keyword(kw) => self.keyword_primary(&kw, pos),
            other => Err(SqlError::parse(
                pos,
                format!("expected expression, found {other:?}"),
            )),
        }
    }

    fn keyword_primary(&mut self, kw: &str, pos: usize) -> Result<Expr, SqlError> {
        match kw {
            "NULL" => Ok(Expr::Literal(Value::Null)),
            "DATE" => match self.advance() {
                TokenKind::Str(s) => {
                    let days = parse_date(&s).ok_or_else(|| {
                        SqlError::parse(pos, format!("bad date literal {s:?}"))
                    })?;
                    Ok(Expr::Literal(Value::Date(days)))
                }
                other => Err(SqlError::parse(
                    pos,
                    format!("expected string after DATE, found {other:?}"),
                )),
            },
            "SUBSTRING" => {
                self.expect(&TokenKind::LParen)?;
                let expr = self.expr()?;
                self.expect(&TokenKind::Comma)?;
                let start = self.integer()?;
                self.expect(&TokenKind::Comma)?;
                let len = self.integer()?;
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Substring {
                    expr: Box::new(expr),
                    start,
                    len,
                })
            }
            "COUNT" | "SUM" | "AVG" | "MIN" | "MAX" => {
                let func = match kw {
                    "COUNT" => AggFunc::Count,
                    "SUM" => AggFunc::Sum,
                    "AVG" => AggFunc::Avg,
                    "MIN" => AggFunc::Min,
                    _ => AggFunc::Max,
                };
                self.expect(&TokenKind::LParen)?;
                let distinct = self.eat_keyword("DISTINCT");
                let arg = if self.eat(&TokenKind::Star) {
                    if func != AggFunc::Count {
                        return Err(SqlError::parse(pos, format!("{kw}(*) is not valid")));
                    }
                    None
                } else {
                    Some(Box::new(self.expr()?))
                };
                self.expect(&TokenKind::RParen)?;
                Ok(Expr::Aggregate { func, arg, distinct })
            }
            other => Err(SqlError::parse(
                pos,
                format!("keyword {other} cannot start an expression"),
            )),
        }
    }

    fn literal_value(&mut self) -> Result<Value, SqlError> {
        let pos = self.peek_pos();
        match self.advance() {
            TokenKind::Int(v) => Ok(Value::Int(v)),
            TokenKind::Float(v) => Ok(Value::Float(v)),
            TokenKind::Str(s) => Ok(Value::Str(s)),
            TokenKind::Minus => match self.advance() {
                TokenKind::Int(v) => Ok(Value::Int(-v)),
                TokenKind::Float(v) => Ok(Value::Float(-v)),
                other => Err(SqlError::parse(
                    pos,
                    format!("expected numeric literal after '-', found {other:?}"),
                )),
            },
            TokenKind::Keyword(kw) if kw == "NULL" => Ok(Value::Null),
            other => Err(SqlError::parse(
                pos,
                format!("expected literal, found {other:?}"),
            )),
        }
    }
}

/// Parses `YYYY-MM-DD` into days since 1970-01-01 (proleptic Gregorian).
pub fn parse_date(s: &str) -> Option<i32> {
    let mut it = s.split('-');
    let y: i64 = it.next()?.parse().ok()?;
    let m: u32 = it.next()?.parse().ok()?;
    let d: u32 = it.next()?.parse().ok()?;
    if it.next().is_some() || !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    // Days-from-civil algorithm (Howard Hinnant).
    let y = y - if m <= 2 { 1 } else { 0 };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400;
    let mp = ((m + 9) % 12) as i64;
    let doy = (153 * mp + 2) / 5 + d as i64 - 1;
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy;
    Some((era * 146097 + doe - 719468) as i32)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Example 1 query must parse.
    #[test]
    fn parses_paper_example_1() {
        let sql = "SELECT COUNT(*) FROM customer, nation, orders \
                   WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40', '22', '30', '39', '42', '21') \
                   AND c_mktsegment = 'machinery' \
                   AND n_name = 'egypt' AND o_orderstatus = 'p' \
                   AND o_custkey = c_custkey \
                   AND n_nationkey = c_nationkey";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.from.len(), 3);
        assert_eq!(stmt.projections.len(), 1);
        let conjuncts = stmt.selection.as_ref().unwrap().split_conjuncts();
        assert_eq!(conjuncts.len(), 6);
    }

    #[test]
    fn parses_top_n_query() {
        let sql = "SELECT o_orderkey, o_totalprice FROM orders \
                   WHERE o_orderstatus = 'f' ORDER BY o_totalprice DESC LIMIT 10 OFFSET 5";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.order_by.len(), 1);
        assert!(stmt.order_by[0].desc);
        assert_eq!(stmt.limit, Some(10));
        assert_eq!(stmt.offset, Some(5));
    }

    #[test]
    fn parses_explicit_join_syntax() {
        let sql = "SELECT * FROM customer INNER JOIN orders ON o_custkey = c_custkey";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.from.len(), 2);
        assert!(stmt.from[1].join_on.is_some());
    }

    #[test]
    fn parses_group_by_having() {
        let sql = "SELECT c_mktsegment, COUNT(*) FROM customer \
                   GROUP BY c_mktsegment HAVING COUNT(*) > 10";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.group_by.len(), 1);
        assert!(stmt.having.is_some());
    }

    #[test]
    fn parses_between_and_like() {
        let sql = "SELECT * FROM orders WHERE o_totalprice BETWEEN 100 AND 200 \
                   AND o_comment LIKE '%urgent%'";
        let stmt = parse_select(sql).unwrap();
        let conj = stmt.selection.unwrap();
        let parts = conj.split_conjuncts();
        assert!(matches!(parts[0], Expr::Between { .. }));
        assert!(matches!(parts[1], Expr::Like { .. }));
    }

    #[test]
    fn parses_not_in() {
        let sql = "SELECT * FROM nation WHERE n_name NOT IN ('egypt', 'kenya')";
        let stmt = parse_select(sql).unwrap();
        assert!(matches!(
            stmt.selection.unwrap(),
            Expr::InList { negated: true, .. }
        ));
    }

    #[test]
    fn parses_is_not_null() {
        let sql = "SELECT * FROM orders WHERE o_comment IS NOT NULL";
        let stmt = parse_select(sql).unwrap();
        assert!(matches!(
            stmt.selection.unwrap(),
            Expr::IsNull { negated: true, .. }
        ));
    }

    #[test]
    fn parses_qualified_columns_and_aliases() {
        let sql = "SELECT c.c_name AS name FROM customer c WHERE c.c_acctbal > 0";
        let stmt = parse_select(sql).unwrap();
        assert_eq!(stmt.from[0].alias.as_deref(), Some("c"));
        match &stmt.projections[0] {
            SelectItem::Expr { expr, alias } => {
                assert_eq!(alias.as_deref(), Some("name"));
                assert!(matches!(expr, Expr::Column { table: Some(t), .. } if t == "c"));
            }
            _ => panic!("expected expression projection"),
        }
    }

    #[test]
    fn parses_date_literal() {
        let sql = "SELECT * FROM orders WHERE o_orderdate < DATE '1995-03-15'";
        let stmt = parse_select(sql).unwrap();
        match stmt.selection.unwrap() {
            Expr::Binary { right, .. } => {
                assert!(matches!(*right, Expr::Literal(Value::Date(_))));
            }
            _ => panic!("expected comparison"),
        }
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let sql = "SELECT * FROM orders WHERE o_totalprice > 100 + 2 * 50";
        let stmt = parse_select(sql).unwrap();
        // RHS must be (100 + (2 * 50))
        match stmt.selection.unwrap() {
            Expr::Binary { right, .. } => match *right {
                Expr::Binary { op: BinaryOp::Add, right: mul, .. } => {
                    assert!(matches!(*mul, Expr::Binary { op: BinaryOp::Mul, .. }));
                }
                other => panic!("expected Add at top of RHS, got {other:?}"),
            },
            _ => panic!("expected comparison"),
        }
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse_select("SELECT * FROM t WHERE a = 1 garbage garbage").is_err());
    }

    #[test]
    fn rejects_sum_star() {
        assert!(parse_select("SELECT SUM(*) FROM t").is_err());
    }

    #[test]
    fn rejects_missing_from() {
        assert!(parse_select("SELECT 1").is_err());
    }

    #[test]
    fn parse_date_known_values() {
        assert_eq!(parse_date("1970-01-01"), Some(0));
        assert_eq!(parse_date("1970-01-02"), Some(1));
        assert_eq!(parse_date("2000-03-01"), Some(11017));
        assert_eq!(parse_date("1969-12-31"), Some(-1));
        assert_eq!(parse_date("1995-13-01"), None);
        assert_eq!(parse_date("bogus"), None);
    }

    #[test]
    fn count_distinct_parses() {
        let sql = "SELECT COUNT(DISTINCT c_mktsegment) FROM customer";
        let stmt = parse_select(sql).unwrap();
        match &stmt.projections[0] {
            SelectItem::Expr { expr: Expr::Aggregate { distinct, .. }, .. } => {
                assert!(*distinct)
            }
            other => panic!("unexpected projection {other:?}"),
        }
    }

    #[test]
    fn parses_insert_with_column_list() {
        let sql = "INSERT INTO customer (c_custkey, c_name) VALUES (1, 'a'), (2, 'b')";
        let Statement::Insert(ins) = parse_statement(sql).unwrap() else {
            panic!("expected insert");
        };
        assert_eq!(ins.table, "customer");
        assert_eq!(ins.columns.as_deref(), Some(&["c_custkey".to_string(), "c_name".into()][..]));
        assert_eq!(ins.rows.len(), 2);
        assert_eq!(
            ins.rows[1],
            vec![
                Expr::Literal(Value::Int(2)),
                Expr::Literal(Value::Str("b".into()))
            ]
        );
    }

    #[test]
    fn parses_insert_full_width_with_date_and_null() {
        let sql = "INSERT INTO orders VALUES (9, 1, 'p', -3.5, DATE '1995-03-15', NULL)";
        let Statement::Insert(ins) = parse_statement(sql).unwrap() else {
            panic!("expected insert");
        };
        assert!(ins.columns.is_none());
        assert_eq!(ins.rows[0][3], Expr::Literal(Value::Float(-3.5)));
        assert_eq!(
            ins.rows[0][4],
            Expr::Literal(Value::Date(parse_date("1995-03-15").unwrap()))
        );
        assert_eq!(ins.rows[0][5], Expr::Literal(Value::Null));
    }

    #[test]
    fn parses_anonymous_parameters_in_order() {
        let stmt = parse_select("SELECT * FROM t WHERE a = ? AND b BETWEEN ? AND ?").unwrap();
        let conj = stmt.selection.unwrap();
        let parts = conj.split_conjuncts();
        assert!(matches!(
            parts[0],
            Expr::Binary { right, .. } if matches!(**right, Expr::Param(0))
        ));
        match parts[1] {
            Expr::Between { low, high, .. } => {
                assert_eq!(**low, Expr::Param(1));
                assert_eq!(**high, Expr::Param(2));
            }
            other => panic!("expected BETWEEN, got {other:?}"),
        }
    }

    #[test]
    fn parses_numbered_parameters() {
        let stmt = parse_select("SELECT * FROM t WHERE a = $2 AND b = $1").unwrap();
        let conj = stmt.selection.unwrap();
        let parts = conj.split_conjuncts();
        assert!(matches!(
            parts[0],
            Expr::Binary { right, .. } if matches!(**right, Expr::Param(1))
        ));
        assert!(matches!(
            parts[1],
            Expr::Binary { right, .. } if matches!(**right, Expr::Param(0))
        ));
    }

    #[test]
    fn rejects_mixed_parameter_styles() {
        assert!(parse_select("SELECT * FROM t WHERE a = ? AND b = $2").is_err());
        assert!(parse_select("SELECT * FROM t WHERE a = $1 AND b = ?").is_err());
    }

    #[test]
    fn rejects_absurd_parameter_numbers() {
        // Must fail at parse time, not as a multi-gigabyte bind-time table.
        assert!(parse_select("SELECT * FROM t WHERE a = $4294967295").is_err());
        assert!(parse_select("SELECT * FROM t WHERE a = $65537").is_err());
        // The cap itself parses (the binder's gap check handles the rest).
        assert!(parse_select("SELECT * FROM t WHERE a = $65536").is_ok());
    }

    #[test]
    fn parses_parameters_in_dml() {
        let Statement::Insert(ins) =
            parse_statement("INSERT INTO t (a, b) VALUES (?, ?)").unwrap()
        else {
            panic!("expected insert");
        };
        assert_eq!(ins.rows[0], vec![Expr::Param(0), Expr::Param(1)]);
        let Statement::Update(up) =
            parse_statement("UPDATE t SET a = ? WHERE b = ?").unwrap()
        else {
            panic!("expected update");
        };
        assert_eq!(up.assignments[0].1, Expr::Param(0));
        assert!(matches!(
            up.selection.unwrap(),
            Expr::Binary { right, .. } if matches!(*right, Expr::Param(1))
        ));
        let Statement::Delete(del) = parse_statement("DELETE FROM t WHERE a = $1").unwrap()
        else {
            panic!("expected delete");
        };
        assert!(del.selection.is_some());
    }

    #[test]
    fn param_display_is_one_based() {
        assert_eq!(Expr::Param(0).to_string(), "$1");
        assert_eq!(Expr::Param(6).to_string(), "$7");
    }

    #[test]
    fn parses_update_with_expression_and_where() {
        let sql = "UPDATE customer SET c_acctbal = c_acctbal + 10, c_mktsegment = 'machinery' \
                   WHERE c_custkey BETWEEN 5 AND 9";
        let Statement::Update(up) = parse_statement(sql).unwrap() else {
            panic!("expected update");
        };
        assert_eq!(up.table, "customer");
        assert_eq!(up.assignments.len(), 2);
        assert_eq!(up.assignments[0].0, "c_acctbal");
        assert!(matches!(up.selection, Some(Expr::Between { .. })));
    }

    #[test]
    fn parses_delete_with_and_without_where() {
        let Statement::Delete(del) =
            parse_statement("DELETE FROM orders WHERE o_orderkey = 3").unwrap()
        else {
            panic!("expected delete");
        };
        assert_eq!(del.table, "orders");
        assert!(del.selection.is_some());
        let Statement::Delete(del2) = parse_statement("DELETE FROM orders").unwrap() else {
            panic!("expected delete");
        };
        assert!(del2.selection.is_none());
    }

    #[test]
    fn parse_statement_dispatches_select() {
        assert!(matches!(
            parse_statement("SELECT * FROM t").unwrap(),
            Statement::Select(_)
        ));
    }

    #[test]
    fn rejects_malformed_dml() {
        assert!(parse_statement("INSERT INTO t VALUES").is_err());
        assert!(parse_statement("INSERT t VALUES (1)").is_err());
        assert!(parse_statement("UPDATE t c = 1").is_err());
        assert!(parse_statement("DELETE t WHERE a = 1").is_err());
        assert!(parse_statement("INSERT INTO t VALUES (1) trailing").is_err());
    }

    #[test]
    fn unary_minus_literal() {
        let stmt = parse_select("SELECT * FROM t WHERE a > -5").unwrap();
        match stmt.selection.unwrap() {
            Expr::Binary { right, .. } => {
                assert!(matches!(*right, Expr::Literal(Value::Int(-5))));
            }
            _ => panic!(),
        }
    }
}
