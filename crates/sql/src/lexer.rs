//! Hand-written tokenizer for the supported SQL subset.

use crate::error::SqlError;

/// A lexical token with its byte position in the source text.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// Token kind and payload.
    pub kind: TokenKind,
    /// Byte offset of the first character of the token.
    pub pos: usize,
}

/// The kinds of tokens the SQL subset uses.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// A keyword, uppercased (`SELECT`, `FROM`, ...). Identifiers that match
    /// the keyword list are lexed as keywords; the parser treats them
    /// contextually.
    Keyword(String),
    /// An identifier, lowercased (SQL identifiers are case-insensitive and
    /// TPC-H columns are conventionally lowercase).
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// Float literal.
    Float(f64),
    /// Single-quoted string literal (quotes stripped, `''` unescaped).
    Str(String),
    /// `,`
    Comma,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `*`
    Star,
    /// `.`
    Dot,
    /// `=`
    Eq,
    /// `<>` or `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `/`
    Slash,
    /// `?` — an anonymous prepared-statement parameter placeholder.
    Question,
    /// `$n` — a numbered prepared-statement parameter placeholder (1-based,
    /// as written; the payload keeps the written number).
    Dollar(u32),
    /// End of input sentinel.
    Eof,
}

const KEYWORDS: &[&str] = &[
    "SELECT", "FROM", "WHERE", "AND", "OR", "NOT", "IN", "BETWEEN", "LIKE", "IS", "NULL",
    "GROUP", "BY", "ORDER", "ASC", "DESC", "LIMIT", "OFFSET", "AS", "COUNT", "SUM", "AVG",
    "MIN", "MAX", "SUBSTRING", "DISTINCT", "HAVING", "JOIN", "INNER", "ON", "DATE",
    "INSERT", "INTO", "VALUES", "UPDATE", "SET", "DELETE",
];

/// Tokenizes `input`, returning the token stream terminated by [`TokenKind::Eof`].
pub fn tokenize(input: &str) -> Result<Vec<Token>, SqlError> {
    let bytes = input.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i] as char;
        if c.is_ascii_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        match c {
            ',' => {
                tokens.push(Token { kind: TokenKind::Comma, pos: start });
                i += 1;
            }
            '(' => {
                tokens.push(Token { kind: TokenKind::LParen, pos: start });
                i += 1;
            }
            ')' => {
                tokens.push(Token { kind: TokenKind::RParen, pos: start });
                i += 1;
            }
            '*' => {
                tokens.push(Token { kind: TokenKind::Star, pos: start });
                i += 1;
            }
            '.' => {
                tokens.push(Token { kind: TokenKind::Dot, pos: start });
                i += 1;
            }
            '+' => {
                tokens.push(Token { kind: TokenKind::Plus, pos: start });
                i += 1;
            }
            '-' => {
                tokens.push(Token { kind: TokenKind::Minus, pos: start });
                i += 1;
            }
            '/' => {
                tokens.push(Token { kind: TokenKind::Slash, pos: start });
                i += 1;
            }
            '=' => {
                tokens.push(Token { kind: TokenKind::Eq, pos: start });
                i += 1;
            }
            '!' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::NotEq, pos: start });
                    i += 2;
                } else {
                    return Err(SqlError::Lex {
                        pos: start,
                        message: "expected '=' after '!'".into(),
                    });
                }
            }
            '<' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::LtEq, pos: start });
                    i += 2;
                } else if bytes.get(i + 1) == Some(&b'>') {
                    tokens.push(Token { kind: TokenKind::NotEq, pos: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Lt, pos: start });
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&b'=') {
                    tokens.push(Token { kind: TokenKind::GtEq, pos: start });
                    i += 2;
                } else {
                    tokens.push(Token { kind: TokenKind::Gt, pos: start });
                    i += 1;
                }
            }
            '?' => {
                tokens.push(Token { kind: TokenKind::Question, pos: start });
                i += 1;
            }
            '$' => {
                let mut j = i + 1;
                while j < bytes.len() && bytes[j].is_ascii_digit() {
                    j += 1;
                }
                if j == i + 1 {
                    return Err(SqlError::Lex {
                        pos: start,
                        message: "expected digits after '$' in parameter placeholder".into(),
                    });
                }
                let n: u32 = input[i + 1..j].parse().map_err(|e| SqlError::Lex {
                    pos: start,
                    message: format!("bad parameter number {:?}: {e}", &input[i + 1..j]),
                })?;
                if n == 0 {
                    return Err(SqlError::Lex {
                        pos: start,
                        message: "parameter numbers start at $1".into(),
                    });
                }
                tokens.push(Token { kind: TokenKind::Dollar(n), pos: start });
                i = j;
            }
            '\'' => {
                let (s, next) = lex_string(input, start)?;
                tokens.push(Token { kind: TokenKind::Str(s), pos: start });
                i = next;
            }
            _ if c.is_ascii_digit() => {
                let (kind, next) = lex_number(input, start)?;
                tokens.push(Token { kind, pos: start });
                i = next;
            }
            _ if c.is_ascii_alphabetic() || c == '_' => {
                let mut j = i;
                while j < bytes.len()
                    && ((bytes[j] as char).is_ascii_alphanumeric() || bytes[j] == b'_')
                {
                    j += 1;
                }
                let word = &input[i..j];
                let upper = word.to_ascii_uppercase();
                let kind = if KEYWORDS.contains(&upper.as_str()) {
                    TokenKind::Keyword(upper)
                } else {
                    TokenKind::Ident(word.to_ascii_lowercase())
                };
                tokens.push(Token { kind, pos: start });
                i = j;
            }
            _ => {
                return Err(SqlError::Lex {
                    pos: start,
                    message: format!("unexpected character {c:?}"),
                })
            }
        }
    }
    tokens.push(Token { kind: TokenKind::Eof, pos: input.len() });
    Ok(tokens)
}

fn lex_string(input: &str, start: usize) -> Result<(String, usize), SqlError> {
    let bytes = input.as_bytes();
    let mut out = String::new();
    let mut i = start + 1; // skip opening quote
    while i < bytes.len() {
        if bytes[i] == b'\'' {
            // `''` escapes a single quote
            if bytes.get(i + 1) == Some(&b'\'') {
                out.push('\'');
                i += 2;
            } else {
                return Ok((out, i + 1));
            }
        } else {
            // push the full UTF-8 character
            let ch_len = utf8_len(bytes[i]);
            out.push_str(&input[i..i + ch_len]);
            i += ch_len;
        }
    }
    Err(SqlError::Lex {
        pos: start,
        message: "unterminated string literal".into(),
    })
}

fn utf8_len(first_byte: u8) -> usize {
    match first_byte {
        b if b < 0x80 => 1,
        b if b >= 0xF0 => 4,
        b if b >= 0xE0 => 3,
        _ => 2,
    }
}

fn lex_number(input: &str, start: usize) -> Result<(TokenKind, usize), SqlError> {
    let bytes = input.as_bytes();
    let mut i = start;
    while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
        i += 1;
    }
    let mut is_float = false;
    if i < bytes.len() && bytes[i] == b'.' && (bytes.get(i + 1).map(|b| (*b as char).is_ascii_digit())
        == Some(true))
    {
        is_float = true;
        i += 1;
        while i < bytes.len() && (bytes[i] as char).is_ascii_digit() {
            i += 1;
        }
    }
    let text = &input[start..i];
    if is_float {
        let v = text.parse::<f64>().map_err(|e| SqlError::Lex {
            pos: start,
            message: format!("bad float literal {text:?}: {e}"),
        })?;
        Ok((TokenKind::Float(v), i))
    } else {
        let v = text.parse::<i64>().map_err(|e| SqlError::Lex {
            pos: start,
            message: format!("bad int literal {text:?}: {e}"),
        })?;
        Ok((TokenKind::Int(v), i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(input: &str) -> Vec<TokenKind> {
        tokenize(input).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_simple_select() {
        let ks = kinds("SELECT * FROM customer");
        assert_eq!(
            ks,
            vec![
                TokenKind::Keyword("SELECT".into()),
                TokenKind::Star,
                TokenKind::Keyword("FROM".into()),
                TokenKind::Ident("customer".into()),
                TokenKind::Eof,
            ]
        );
    }

    #[test]
    fn keywords_are_case_insensitive() {
        assert_eq!(kinds("select")[0], TokenKind::Keyword("SELECT".into()));
        assert_eq!(kinds("SeLeCt")[0], TokenKind::Keyword("SELECT".into()));
    }

    #[test]
    fn identifiers_are_lowercased() {
        assert_eq!(kinds("C_PHONE")[0], TokenKind::Ident("c_phone".into()));
    }

    #[test]
    fn lexes_string_with_escape() {
        assert_eq!(kinds("'it''s'")[0], TokenKind::Str("it's".into()));
    }

    #[test]
    fn unterminated_string_errors() {
        assert!(matches!(tokenize("'oops"), Err(SqlError::Lex { .. })));
    }

    #[test]
    fn lexes_numbers() {
        assert_eq!(kinds("42")[0], TokenKind::Int(42));
        assert_eq!(kinds("3.25")[0], TokenKind::Float(3.25));
    }

    #[test]
    fn dot_after_int_without_digit_is_separate() {
        // `1.` is lexed as Int(1) Dot — the parser will reject it, but the
        // lexer must not loop or panic.
        let ks = kinds("1.");
        assert_eq!(ks[0], TokenKind::Int(1));
        assert_eq!(ks[1], TokenKind::Dot);
    }

    #[test]
    fn lexes_comparison_operators() {
        let ks = kinds("a <= b >= c <> d != e < f > g = h");
        let ops: Vec<&TokenKind> = ks
            .iter()
            .filter(|k| {
                !matches!(k, TokenKind::Ident(_) | TokenKind::Eof)
            })
            .collect();
        assert_eq!(
            ops,
            vec![
                &TokenKind::LtEq,
                &TokenKind::GtEq,
                &TokenKind::NotEq,
                &TokenKind::NotEq,
                &TokenKind::Lt,
                &TokenKind::Gt,
                &TokenKind::Eq,
            ]
        );
    }

    #[test]
    fn positions_point_at_token_start() {
        let toks = tokenize("SELECT c").unwrap();
        assert_eq!(toks[0].pos, 0);
        assert_eq!(toks[1].pos, 7);
    }

    #[test]
    fn bang_without_eq_is_error() {
        assert!(tokenize("a ! b").is_err());
    }

    #[test]
    fn unexpected_character_is_error() {
        assert!(tokenize("SELECT #").is_err());
    }

    #[test]
    fn lexes_multibyte_string_contents() {
        assert_eq!(kinds("'naïve'")[0], TokenKind::Str("naïve".into()));
    }

    #[test]
    fn lexes_parameter_placeholders() {
        assert_eq!(kinds("?")[0], TokenKind::Question);
        assert_eq!(kinds("$1")[0], TokenKind::Dollar(1));
        assert_eq!(kinds("$42")[0], TokenKind::Dollar(42));
        let ks = kinds("a = ? AND b = $2");
        assert!(ks.contains(&TokenKind::Question));
        assert!(ks.contains(&TokenKind::Dollar(2)));
    }

    #[test]
    fn bad_parameter_placeholders_error() {
        assert!(tokenize("$").is_err());
        assert!(tokenize("$x").is_err());
        assert!(tokenize("$0").is_err());
    }
}
