//! Runtime value model shared by the SQL front-end and both HTAP engines.

use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;

/// A dynamically-typed SQL value.
///
/// The engines store typed columns, but predicates, literals and query
/// results flow through this enum. `Null` compares less than everything so
/// that sort operators have a total order without special-casing.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL NULL.
    Null,
    /// 64-bit signed integer (TPC-H keys, quantities).
    Int(i64),
    /// 64-bit float (prices, discounts).
    Float(f64),
    /// UTF-8 string (names, phones, comments).
    Str(String),
    /// Date stored as days since 1970-01-01.
    Date(i32),
}

impl Value {
    /// Returns true if this value is SQL NULL.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Interprets the value as an integer when possible.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Date(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Interprets the value as a float when possible (ints widen).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            Value::Date(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Borrows the value as a string when it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Total-order comparison used by sort and top-N operators.
    ///
    /// NULL sorts first; numeric types compare after widening to f64; values
    /// of incomparable types order by a fixed type rank so the order is still
    /// total (mirrors how permissive engines avoid runtime sort failures).
    pub fn total_cmp(&self, other: &Value) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int(a), Int(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (a, b) => match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => type_rank(a).cmp(&type_rank(b)),
            },
        }
    }

    /// SQL equality (NULL = anything is false, i.e. `None`-like semantics
    /// collapsed to `false` since our subset has no three-valued logic needs).
    pub fn sql_eq(&self, other: &Value) -> bool {
        use Value::*;
        match (self, other) {
            (Null, _) | (_, Null) => false,
            (Int(a), Int(b)) => a == b,
            (Date(a), Date(b)) => a == b,
            (Str(a), Str(b)) => a == b,
            (a, b) => match (a.as_float(), b.as_float()) {
                (Some(x), Some(y)) => x == y,
                _ => false,
            },
        }
    }
}

fn type_rank(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Int(_) => 1,
        Value::Float(_) => 2,
        Value::Date(_) => 3,
        Value::Str(_) => 4,
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        // Structural equality for use in hash joins / group-by keys: NULL
        // equals NULL here (grouping semantics), unlike `sql_eq`.
        match (self, other) {
            (Value::Null, Value::Null) => true,
            _ => self.sql_eq(other),
        }
    }
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Int(v) => {
                1u8.hash(state);
                v.hash(state);
            }
            // Floats hash via bit pattern; equality after widening means
            // Int(1) and Float(1.0) may compare equal but hash differently.
            // Join keys in our workloads are always same-typed columns, so
            // this is acceptable; grouping keys likewise.
            Value::Float(v) => {
                2u8.hash(state);
                v.to_bits().hash(state);
            }
            Value::Str(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(v) => {
                4u8.hash(state);
                v.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "NULL"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Date(d) => write!(f, "DATE({d})"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_sorts_first() {
        assert_eq!(Value::Null.total_cmp(&Value::Int(-100)), Ordering::Less);
        assert_eq!(Value::Int(-100).total_cmp(&Value::Null), Ordering::Greater);
        assert_eq!(Value::Null.total_cmp(&Value::Null), Ordering::Equal);
    }

    #[test]
    fn numeric_widening_comparison() {
        assert_eq!(Value::Int(2).total_cmp(&Value::Float(2.5)), Ordering::Less);
        assert_eq!(Value::Float(3.0).total_cmp(&Value::Int(3)), Ordering::Equal);
    }

    #[test]
    fn sql_eq_null_is_false() {
        assert!(!Value::Null.sql_eq(&Value::Null));
        assert!(!Value::Int(1).sql_eq(&Value::Null));
    }

    #[test]
    fn structural_eq_null_is_true() {
        assert_eq!(Value::Null, Value::Null);
    }

    #[test]
    fn string_comparison_is_lexicographic() {
        assert_eq!(
            Value::Str("abc".into()).total_cmp(&Value::Str("abd".into())),
            Ordering::Less
        );
    }

    #[test]
    fn hash_consistent_with_eq_for_ints() {
        use std::collections::HashMap;
        let mut m = HashMap::new();
        m.insert(Value::Int(42), "x");
        assert_eq!(m.get(&Value::Int(42)), Some(&"x"));
    }

    #[test]
    fn display_round_trips_readably() {
        assert_eq!(Value::Str("egypt".into()).to_string(), "'egypt'");
        assert_eq!(Value::Int(7).to_string(), "7");
        assert_eq!(Value::Null.to_string(), "NULL");
    }

    #[test]
    fn as_float_widens_dates() {
        assert_eq!(Value::Date(10).as_float(), Some(10.0));
    }
}
