//! Name resolution and predicate classification.
//!
//! The binder turns a parsed [`SelectStatement`] into a [`BoundQuery`]: every
//! column reference is resolved to a `(table slot, column index)` pair, the
//! `WHERE` conjunction is split into single-table filters and equi-join
//! predicates, and the projection is classified as plain / scalar-aggregate /
//! grouped-aggregate. Both HTAP optimizers start from this structure.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::ast::{
    AggFunc, BinaryOp, DeleteStatement, Expr, InListItem, InsertStatement, SelectItem,
    SelectStatement, Statement, UpdateStatement,
};
use crate::catalog::{Catalog, DataType, TableDef};
use crate::error::SqlError;
use crate::value::Value;

/// A resolved column reference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnRef {
    /// Index into [`BoundQuery::tables`].
    pub table_slot: usize,
    /// Index into the table's column list.
    pub column_idx: usize,
    /// Resolved type.
    pub data_type: DataType,
}

/// A table occurrence in the query.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundTable {
    /// Catalog table name.
    pub name: String,
    /// Alias used in the query, if any.
    pub alias: Option<String>,
    /// Row count snapshot at bind time (optimizers read this).
    pub row_count: u64,
}

/// Bound scalar expression; mirrors [`Expr`] with resolved columns.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoundExpr {
    /// Resolved column.
    Column(ColumnRef),
    /// Literal.
    Literal(Value),
    /// Prepared-statement parameter placeholder. `ty` is the type inferred
    /// from the comparison/assignment context at bind time (`None` when no
    /// context constrains it); the concrete value is injected at execution
    /// time via [`substitute_params`], after coercion through the same rules
    /// INSERT literals use.
    Param {
        /// 0-based parameter index.
        idx: usize,
        /// Context-inferred type, if any.
        ty: Option<DataType>,
    },
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<BoundExpr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<BoundExpr>,
    },
    /// Logical negation.
    Not(Box<BoundExpr>),
    /// `IN` list over literals.
    InList {
        /// Probed expression.
        expr: Box<BoundExpr>,
        /// Literal list.
        list: Vec<Value>,
        /// `NOT IN` flag.
        negated: bool,
    },
    /// `IN` list with one or more parameter placeholders among the
    /// elements. `items` holds only [`BoundExpr::Literal`] and
    /// [`BoundExpr::Param`] nodes; [`substitute_params`] lowers the whole
    /// node to a plain [`BoundExpr::InList`] once every placeholder has a
    /// value, so executors and pruners only ever see the literal form.
    InListParam {
        /// Probed expression.
        expr: Box<BoundExpr>,
        /// Literal / placeholder elements.
        items: Vec<BoundExpr>,
        /// `NOT IN` flag.
        negated: bool,
    },
    /// Range test.
    Between {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Lower bound.
        low: Box<BoundExpr>,
        /// Upper bound.
        high: Box<BoundExpr>,
    },
    /// Pattern match.
    Like {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// Pattern with `%`/`_`.
        pattern: String,
        /// `NOT LIKE` flag.
        negated: bool,
    },
    /// NULL test.
    IsNull {
        /// Tested expression.
        expr: Box<BoundExpr>,
        /// `IS NOT NULL` flag.
        negated: bool,
    },
    /// `SUBSTRING(expr, start, len)`.
    Substring {
        /// Source expression.
        expr: Box<BoundExpr>,
        /// 1-based start.
        start: i64,
        /// Length.
        len: i64,
    },
    /// Aggregate call (only valid in projections / HAVING / ORDER BY).
    Aggregate {
        /// Function.
        func: AggFunc,
        /// Argument; `None` for `COUNT(*)`.
        arg: Option<Box<BoundExpr>>,
        /// DISTINCT flag.
        distinct: bool,
    },
}

impl BoundExpr {
    /// Set of table slots this expression touches.
    pub fn table_slots(&self) -> Vec<usize> {
        let mut slots = Vec::new();
        self.walk_columns(&mut |c| {
            if !slots.contains(&c.table_slot) {
                slots.push(c.table_slot);
            }
        });
        slots
    }

    /// Visits every column reference.
    pub fn walk_columns(&self, f: &mut impl FnMut(&ColumnRef)) {
        match self {
            BoundExpr::Column(c) => f(c),
            BoundExpr::Literal(_) | BoundExpr::Param { .. } => {}
            BoundExpr::Binary { left, right, .. } => {
                left.walk_columns(f);
                right.walk_columns(f);
            }
            BoundExpr::Not(e) => e.walk_columns(f),
            BoundExpr::InList { expr, .. } | BoundExpr::InListParam { expr, .. } => {
                expr.walk_columns(f)
            }
            BoundExpr::Between { expr, low, high } => {
                expr.walk_columns(f);
                low.walk_columns(f);
                high.walk_columns(f);
            }
            BoundExpr::Like { expr, .. } => expr.walk_columns(f),
            BoundExpr::IsNull { expr, .. } => expr.walk_columns(f),
            BoundExpr::Substring { expr, .. } => expr.walk_columns(f),
            BoundExpr::Aggregate { arg, .. } => {
                if let Some(a) = arg {
                    a.walk_columns(f);
                }
            }
        }
    }

    /// True if the expression contains an aggregate call.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            BoundExpr::Aggregate { .. } => true,
            BoundExpr::Column(_) | BoundExpr::Literal(_) | BoundExpr::Param { .. } => false,
            BoundExpr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            BoundExpr::Not(e)
            | BoundExpr::InList { expr: e, .. }
            | BoundExpr::InListParam { expr: e, .. }
            | BoundExpr::Like { expr: e, .. }
            | BoundExpr::IsNull { expr: e, .. }
            | BoundExpr::Substring { expr: e, .. } => e.contains_aggregate(),
            BoundExpr::Between { expr, low, high } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
        }
    }

    /// If the expression is a bare column (possibly wrapped in nothing),
    /// returns the reference. Used for index-eligibility analysis: an index
    /// only serves predicates on the *raw* column — `SUBSTRING(c_phone,..)`
    /// disqualifies the `c_phone` index, which is the exact trap the paper's
    /// DBG-PT baseline falls into.
    pub fn as_bare_column(&self) -> Option<&ColumnRef> {
        match self {
            BoundExpr::Column(c) => Some(c),
            _ => None,
        }
    }
}

/// A single-table filter conjunct.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableFilter {
    /// Which table slot the filter restricts.
    pub table_slot: usize,
    /// The predicate.
    pub expr: BoundExpr,
}

/// An equi-join conjunct `left = right` between two different tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct EquiJoin {
    /// Left column.
    pub left: ColumnRef,
    /// Right column.
    pub right: ColumnRef,
}

impl EquiJoin {
    /// The pair of table slots this join connects, smaller first.
    pub fn slots(&self) -> (usize, usize) {
        let (a, b) = (self.left.table_slot, self.right.table_slot);
        if a <= b {
            (a, b)
        } else {
            (b, a)
        }
    }

    /// The column on the side of `slot`, if the join touches it.
    pub fn column_for(&self, slot: usize) -> Option<ColumnRef> {
        if self.left.table_slot == slot {
            Some(self.left)
        } else if self.right.table_slot == slot {
            Some(self.right)
        } else {
            None
        }
    }
}

/// How the projection aggregates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggregateKind {
    /// No aggregates at all.
    None,
    /// Aggregates with no GROUP BY → one output row.
    Scalar,
    /// GROUP BY aggregation.
    Grouped,
}

/// A projected output column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundProjection {
    /// The output expression.
    pub expr: BoundExpr,
    /// Output column label.
    pub label: String,
}

/// A fully-bound query, ready for either optimizer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundQuery {
    /// Tables in FROM order; slot index is the canonical table id inside the
    /// query.
    pub tables: Vec<BoundTable>,
    /// Single-table filter conjuncts.
    pub filters: Vec<TableFilter>,
    /// Equi-join conjuncts.
    pub joins: Vec<EquiJoin>,
    /// Remaining multi-table or non-equi conjuncts, applied after joins.
    pub residual_predicates: Vec<BoundExpr>,
    /// Output projections.
    pub projections: Vec<BoundProjection>,
    /// Aggregation classification.
    pub aggregate_kind: AggregateKind,
    /// GROUP BY keys.
    pub group_by: Vec<BoundExpr>,
    /// HAVING predicate.
    pub having: Option<BoundExpr>,
    /// ORDER BY keys with descending flags.
    pub order_by: Vec<(BoundExpr, bool)>,
    /// LIMIT.
    pub limit: Option<u64>,
    /// OFFSET.
    pub offset: Option<u64>,
    /// The original SQL text (used in prompts and the knowledge base).
    pub sql: String,
    /// Per-parameter context-inferred types, indexed by parameter index
    /// (empty for statements without placeholders). `None` marks a parameter
    /// no comparison/assignment context constrained — any value is accepted.
    pub params: Vec<Option<DataType>>,
}

impl BoundQuery {
    /// Join conjuncts that connect `a` and `b` (in either order).
    pub fn joins_between(&self, a: usize, b: usize) -> Vec<&EquiJoin> {
        self.joins
            .iter()
            .filter(|j| j.slots() == if a <= b { (a, b) } else { (b, a) })
            .collect()
    }

    /// Filters on table slot `slot`.
    pub fn filters_on(&self, slot: usize) -> Vec<&TableFilter> {
        self.filters.iter().filter(|f| f.table_slot == slot).collect()
    }

    /// True when the query is a top-N pattern (ORDER BY + LIMIT), one of the
    /// two workload families in the paper's knowledge base.
    pub fn is_top_n(&self) -> bool {
        !self.order_by.is_empty() && self.limit.is_some()
    }
}

/// A fully-bound statement: one read shape or one write shape.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoundStatement {
    /// A read query (dual-engine execution).
    Query(BoundQuery),
    /// A write statement (TP-engine execution only).
    Dml(BoundDml),
}

/// A bound write statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum BoundDml {
    /// Bound `INSERT`.
    Insert(BoundInsert),
    /// Bound `UPDATE`.
    Update(BoundUpdate),
    /// Bound `DELETE`.
    Delete(BoundDelete),
}

impl BoundDml {
    /// The written table's name.
    pub fn table_name(&self) -> &str {
        match self {
            BoundDml::Insert(i) => &i.table,
            BoundDml::Update(u) => &u.table,
            BoundDml::Delete(d) => &d.table,
        }
    }

    /// The synthetic single-table read used to locate target rows
    /// (`None` for `INSERT`, which touches no existing rows).
    pub fn scan(&self) -> Option<&BoundQuery> {
        match self {
            BoundDml::Insert(_) => None,
            BoundDml::Update(u) => Some(&u.scan),
            BoundDml::Delete(d) => Some(&d.scan),
        }
    }

    /// Context-inferred parameter types, indexed by parameter index.
    pub fn param_types(&self) -> &[Option<DataType>] {
        match self {
            BoundDml::Insert(i) => &i.params,
            BoundDml::Update(u) => &u.params,
            BoundDml::Delete(d) => &d.params,
        }
    }
}

impl BoundStatement {
    /// Context-inferred parameter types, indexed by parameter index (empty
    /// for statements without placeholders).
    pub fn param_types(&self) -> &[Option<DataType>] {
        match self {
            BoundStatement::Query(q) => &q.params,
            BoundStatement::Dml(d) => d.param_types(),
        }
    }

    /// Number of parameters the statement expects.
    pub fn param_count(&self) -> usize {
        self.param_types().len()
    }
}

/// A bound `INSERT`: rows normalized to full table width (explicit column
/// lists reordered, missing columns NULL-filled) with literals coerced to the
/// catalog column types. Parameter placeholders leave a NULL in `rows` and a
/// patch entry in `param_slots`; execution coerces the bound value to the
/// column type (the same rules literals went through) and patches it in.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundInsert {
    /// Target table.
    pub table: String,
    /// Full-width rows in table column order.
    pub rows: Vec<Vec<Value>>,
    /// Placeholder positions: which `rows` cell each parameter fills.
    pub param_slots: Vec<InsertParamSlot>,
    /// Per-parameter types (always the target column's catalog type).
    pub params: Vec<Option<DataType>>,
}

/// One parameter placeholder inside a bound `INSERT`'s `VALUES` rows.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InsertParamSlot {
    /// Row index into [`BoundInsert::rows`].
    pub row: usize,
    /// Column index within the full-width row.
    pub col: usize,
    /// 0-based parameter index.
    pub idx: usize,
}

/// A bound `UPDATE`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundUpdate {
    /// Target table.
    pub table: String,
    /// `(column index, value expression)` assignments; expressions may read
    /// the old row (e.g. `SET c_acctbal = c_acctbal + 10`).
    pub assignments: Vec<(usize, BoundExpr)>,
    /// Synthetic single-table read (`SELECT * FROM t WHERE pred`) the TP
    /// planner turns into the row-locating access path; the bound `WHERE`
    /// conjuncts live in its `filters` (empty = every row targeted).
    pub scan: BoundQuery,
    /// Statement-level parameter types (assignments and WHERE share one
    /// numbering).
    pub params: Vec<Option<DataType>>,
}

/// A bound `DELETE`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BoundDelete {
    /// Target table.
    pub table: String,
    /// Synthetic single-table read used to locate target rows; the bound
    /// `WHERE` conjuncts live in its `filters`.
    pub scan: BoundQuery,
    /// Statement-level parameter types.
    pub params: Vec<Option<DataType>>,
}

/// Accumulates parameter indices and context-inferred types across every
/// expression of one statement (the statement-global numbering the parser
/// assigned).
#[derive(Default)]
struct ParamTable {
    types: Vec<Option<DataType>>,
    seen: Vec<bool>,
}

impl ParamTable {
    fn grow(&mut self, idx: usize) {
        if idx >= self.types.len() {
            self.types.resize(idx + 1, None);
            self.seen.resize(idx + 1, false);
        }
    }

    /// Marks a parameter as referenced (no type context).
    fn note(&mut self, idx: usize) {
        self.grow(idx);
        self.seen[idx] = true;
    }

    /// Constrains a parameter's type from context. A parameter reused under
    /// conflicting concrete types is a bind error, not a silent coin flip.
    fn constrain(&mut self, idx: usize, ty: DataType) -> Result<DataType, SqlError> {
        self.grow(idx);
        self.seen[idx] = true;
        match self.types[idx] {
            None => {
                self.types[idx] = Some(ty);
                Ok(ty)
            }
            Some(prev) if prev == ty => Ok(prev),
            Some(prev) => Err(SqlError::bind(format!(
                "parameter ${} used with conflicting types {prev:?} and {ty:?}",
                idx + 1
            ))),
        }
    }

    /// Final per-parameter type table; errors on numbering gaps ($3 written
    /// but $2 never referenced).
    fn finish(self) -> Result<Vec<Option<DataType>>, SqlError> {
        if let Some(gap) = self.seen.iter().position(|s| !s) {
            return Err(SqlError::bind(format!(
                "parameter ${} is never referenced (parameter numbers must be contiguous)",
                gap + 1
            )));
        }
        Ok(self.types)
    }
}

/// The data type a literal value would need a column to have, if any.
fn literal_type(v: &Value) -> Option<DataType> {
    match v {
        Value::Int(_) => Some(DataType::Int),
        Value::Float(_) => Some(DataType::Float),
        Value::Str(_) => Some(DataType::Str),
        Value::Date(_) => Some(DataType::Date),
        Value::Null => None,
    }
}

/// If `e` is a parameter, constrain it to `ty` and record the result on the
/// node itself.
fn constrain_param(e: &mut BoundExpr, ty: DataType, t: &mut ParamTable) -> Result<(), SqlError> {
    if let BoundExpr::Param { idx, ty: slot } = e {
        *slot = Some(t.constrain(*idx, ty)?);
    }
    Ok(())
}

/// The context type the other side of a comparison/arithmetic pins a
/// parameter to: a bare column's catalog type, or a literal's own type.
fn context_type(e: &BoundExpr) -> Option<DataType> {
    match e {
        BoundExpr::Column(c) => Some(c.data_type),
        BoundExpr::Literal(v) => literal_type(v),
        _ => None,
    }
}

/// Walks one bound expression, recording every parameter and inferring types
/// from comparison/assignment context (`col = ?` pins the parameter to the
/// column's type; `? LIKE`/`SUBSTRING(?)` pin strings; IN lists pin the item
/// type).
fn infer_expr_params(e: &mut BoundExpr, t: &mut ParamTable) -> Result<(), SqlError> {
    match e {
        BoundExpr::Param { idx, .. } => t.note(*idx),
        BoundExpr::Column(_) | BoundExpr::Literal(_) => {}
        BoundExpr::Binary { left, op, right } => {
            infer_expr_params(left, t)?;
            infer_expr_params(right, t)?;
            let contextual = op.is_comparison()
                || matches!(
                    op,
                    BinaryOp::Add | BinaryOp::Sub | BinaryOp::Mul | BinaryOp::Div
                );
            if contextual {
                if let Some(ty) = context_type(left) {
                    constrain_param(right, ty, t)?;
                }
                if let Some(ty) = context_type(right) {
                    constrain_param(left, ty, t)?;
                }
            }
        }
        BoundExpr::Not(inner) => infer_expr_params(inner, t)?,
        BoundExpr::InList { expr, list, .. } => {
            infer_expr_params(expr, t)?;
            if let Some(ty) = list.iter().find_map(literal_type) {
                constrain_param(expr, ty, t)?;
            }
        }
        BoundExpr::InListParam { expr, items, .. } => {
            infer_expr_params(expr, t)?;
            for item in items.iter_mut() {
                infer_expr_params(item, t)?;
            }
            // The probed column's type pins every placeholder element; a
            // literal element's type pins a placeholder probed expression.
            if let Some(ty) = context_type(expr) {
                for item in items.iter_mut() {
                    constrain_param(item, ty, t)?;
                }
            }
            if let Some(ty) = items.iter().find_map(context_type) {
                constrain_param(expr, ty, t)?;
            }
        }
        BoundExpr::Between { expr, low, high } => {
            infer_expr_params(expr, t)?;
            infer_expr_params(low, t)?;
            infer_expr_params(high, t)?;
            if let Some(ty) = context_type(expr) {
                constrain_param(low, ty, t)?;
                constrain_param(high, ty, t)?;
            }
            if let Some(ty) = context_type(low).or_else(|| context_type(high)) {
                constrain_param(expr, ty, t)?;
            }
        }
        BoundExpr::Like { expr, .. } => {
            infer_expr_params(expr, t)?;
            constrain_param(expr, DataType::Str, t)?;
        }
        BoundExpr::IsNull { expr, .. } => infer_expr_params(expr, t)?,
        BoundExpr::Substring { expr, .. } => {
            infer_expr_params(expr, t)?;
            constrain_param(expr, DataType::Str, t)?;
        }
        BoundExpr::Aggregate { arg, .. } => {
            if let Some(a) = arg {
                infer_expr_params(a, t)?;
            }
        }
    }
    Ok(())
}

/// Runs parameter inference over every expression tree of a bound query,
/// returning the statement's parameter type table.
fn infer_query_params(q: &mut BoundQuery) -> Result<ParamTable, SqlError> {
    let mut t = ParamTable::default();
    infer_query_params_into(q, &mut t)?;
    Ok(t)
}

fn infer_query_params_into(q: &mut BoundQuery, t: &mut ParamTable) -> Result<(), SqlError> {
    for f in &mut q.filters {
        infer_expr_params(&mut f.expr, t)?;
    }
    for r in &mut q.residual_predicates {
        infer_expr_params(r, t)?;
    }
    for p in &mut q.projections {
        infer_expr_params(&mut p.expr, t)?;
    }
    for g in &mut q.group_by {
        infer_expr_params(g, t)?;
    }
    if let Some(h) = &mut q.having {
        infer_expr_params(h, t)?;
    }
    for (o, _) in &mut q.order_by {
        infer_expr_params(o, t)?;
    }
    Ok(())
}

/// True when the expression contains a parameter placeholder anywhere.
pub fn expr_has_params(e: &BoundExpr) -> bool {
    match e {
        BoundExpr::Param { .. } => true,
        BoundExpr::Column(_) | BoundExpr::Literal(_) => false,
        BoundExpr::Binary { left, right, .. } => expr_has_params(left) || expr_has_params(right),
        BoundExpr::Not(x)
        | BoundExpr::InList { expr: x, .. }
        | BoundExpr::Like { expr: x, .. }
        | BoundExpr::IsNull { expr: x, .. }
        | BoundExpr::Substring { expr: x, .. } => expr_has_params(x),
        BoundExpr::Between { expr, low, high } => {
            expr_has_params(expr) || expr_has_params(low) || expr_has_params(high)
        }
        BoundExpr::InListParam { expr, items, .. } => {
            expr_has_params(expr) || items.iter().any(expr_has_params)
        }
        BoundExpr::Aggregate { arg, .. } => arg.as_deref().is_some_and(expr_has_params),
    }
}

/// Clones `e` with every parameter replaced by its bound value — the
/// execution-time injection step. Callers validate the parameter vector
/// (count and types) first; an out-of-range index is left as a `Param` node
/// and surfaces as an execution error downstream.
pub fn substitute_params(e: &BoundExpr, params: &[Value]) -> BoundExpr {
    // One containment walk up front; the recursive substitution below never
    // re-checks (a per-level check would walk subtrees quadratically).
    if !expr_has_params(e) {
        return e.clone();
    }
    subst_rec(e, params)
}

fn subst_rec(e: &BoundExpr, params: &[Value]) -> BoundExpr {
    match e {
        BoundExpr::Param { idx, ty } => match params.get(*idx) {
            Some(v) => BoundExpr::Literal(v.clone()),
            None => BoundExpr::Param { idx: *idx, ty: *ty },
        },
        BoundExpr::Binary { left, op, right } => BoundExpr::Binary {
            left: Box::new(subst_rec(left, params)),
            op: *op,
            right: Box::new(subst_rec(right, params)),
        },
        BoundExpr::Not(x) => BoundExpr::Not(Box::new(subst_rec(x, params))),
        BoundExpr::InList { expr, list, negated } => BoundExpr::InList {
            expr: Box::new(subst_rec(expr, params)),
            list: list.clone(),
            negated: *negated,
        },
        BoundExpr::InListParam { expr, items, negated } => {
            let items: Vec<BoundExpr> = items.iter().map(|it| subst_rec(it, params)).collect();
            // Fully injected: lower to the literal form every downstream
            // consumer (pruners, executors, dictionary fast paths) knows.
            // An out-of-range index leaves a `Param` element behind and
            // keeps this form, surfacing as an execution error like any
            // other unbound parameter.
            if items.iter().all(|it| matches!(it, BoundExpr::Literal(_))) {
                let list = items
                    .into_iter()
                    .map(|it| match it {
                        BoundExpr::Literal(v) => v,
                        _ => unreachable!(),
                    })
                    .collect();
                BoundExpr::InList {
                    expr: Box::new(subst_rec(expr, params)),
                    list,
                    negated: *negated,
                }
            } else {
                BoundExpr::InListParam {
                    expr: Box::new(subst_rec(expr, params)),
                    items,
                    negated: *negated,
                }
            }
        }
        BoundExpr::Between { expr, low, high } => BoundExpr::Between {
            expr: Box::new(subst_rec(expr, params)),
            low: Box::new(subst_rec(low, params)),
            high: Box::new(subst_rec(high, params)),
        },
        BoundExpr::Like { expr, pattern, negated } => BoundExpr::Like {
            expr: Box::new(subst_rec(expr, params)),
            pattern: pattern.clone(),
            negated: *negated,
        },
        BoundExpr::IsNull { expr, negated } => BoundExpr::IsNull {
            expr: Box::new(subst_rec(expr, params)),
            negated: *negated,
        },
        BoundExpr::Substring { expr, start, len } => BoundExpr::Substring {
            expr: Box::new(subst_rec(expr, params)),
            start: *start,
            len: *len,
        },
        BoundExpr::Aggregate { func, arg, distinct } => BoundExpr::Aggregate {
            func: *func,
            arg: arg.as_ref().map(|a| Box::new(subst_rec(a, params))),
            distinct: *distinct,
        },
        BoundExpr::Column(_) | BoundExpr::Literal(_) => e.clone(),
    }
}

/// Coerces one bound parameter value to its context-inferred type with the
/// same rules INSERT literals use (NULL passes, `Int` widens to `Float`,
/// everything else must match exactly). `Err` carries the expected type and
/// the offending value for structured error reporting.
pub fn coerce_param(v: Value, ty: Option<DataType>) -> Result<Value, (DataType, Value)> {
    let Some(ty) = ty else {
        return Ok(v);
    };
    match (&v, ty) {
        (Value::Null, _) => Ok(v),
        (Value::Int(_), DataType::Int) => Ok(v),
        (Value::Int(x), DataType::Float) => Ok(Value::Float(*x as f64)),
        (Value::Float(_), DataType::Float) => Ok(v),
        (Value::Str(_), DataType::Str) => Ok(v),
        (Value::Date(_), DataType::Date) => Ok(v),
        _ => Err((ty, v)),
    }
}

/// Binds statements against a catalog.
pub struct Binder<'a> {
    catalog: &'a dyn Catalog,
}

impl<'a> Binder<'a> {
    /// Creates a binder over `catalog`.
    pub fn new(catalog: &'a dyn Catalog) -> Self {
        Binder { catalog }
    }

    /// Parses and binds `sql` in one step.
    pub fn bind_sql(&self, sql: &str) -> Result<BoundQuery, SqlError> {
        let trimmed = sql.trim().trim_end_matches(';');
        let stmt = crate::parser::parse_select(trimmed)?;
        self.bind(&stmt, trimmed)
    }

    /// Parses and binds any statement (read or write) in one step.
    pub fn bind_statement(&self, sql: &str) -> Result<BoundStatement, SqlError> {
        let trimmed = sql.trim().trim_end_matches(';');
        Ok(match crate::parser::parse_statement(trimmed)? {
            Statement::Select(stmt) => BoundStatement::Query(self.bind(&stmt, trimmed)?),
            Statement::Insert(stmt) => {
                BoundStatement::Dml(BoundDml::Insert(self.bind_insert(&stmt)?))
            }
            Statement::Update(stmt) => {
                BoundStatement::Dml(BoundDml::Update(self.bind_update(&stmt, trimmed)?))
            }
            Statement::Delete(stmt) => {
                BoundStatement::Dml(BoundDml::Delete(self.bind_delete(&stmt, trimmed)?))
            }
        })
    }

    fn target_table(&self, name: &str) -> Result<&TableDef, SqlError> {
        self.catalog
            .table(name)
            .ok_or_else(|| SqlError::bind(format!("unknown table '{name}'")))
    }

    fn bind_insert(&self, stmt: &InsertStatement) -> Result<BoundInsert, SqlError> {
        let def = self.target_table(&stmt.table)?;
        let width = def.columns.len();
        // Map each written position to a table column index.
        let positions: Vec<usize> = match &stmt.columns {
            None => (0..width).collect(),
            Some(cols) => cols
                .iter()
                .map(|c| {
                    def.column_index(c).ok_or_else(|| {
                        SqlError::bind(format!("unknown column '{c}' in table '{}'", stmt.table))
                    })
                })
                .collect::<Result<_, _>>()?,
        };
        {
            let mut seen = positions.clone();
            seen.sort_unstable();
            seen.dedup();
            if seen.len() != positions.len() {
                return Err(SqlError::bind("duplicate column in INSERT column list"));
            }
        }
        let mut table = ParamTable::default();
        let mut param_slots = Vec::new();
        let mut rows = Vec::with_capacity(stmt.rows.len());
        for (ri, row) in stmt.rows.iter().enumerate() {
            if row.len() != positions.len() {
                return Err(SqlError::bind(format!(
                    "INSERT row has {} values but {} columns are targeted",
                    row.len(),
                    positions.len()
                )));
            }
            let mut full = vec![Value::Null; width];
            for (cell, &ci) in row.iter().zip(&positions) {
                match cell {
                    Expr::Literal(v) => {
                        full[ci] = coerce_literal(
                            v.clone(),
                            def.columns[ci].data_type,
                            &def.columns[ci].name,
                        )?;
                    }
                    Expr::Param(idx) => {
                        // The target column's catalog type IS the parameter's
                        // type; the value patches in (and coerces) at
                        // execution. The placeholder NULL never reaches
                        // storage un-patched.
                        table.constrain(*idx as usize, def.columns[ci].data_type)?;
                        param_slots.push(InsertParamSlot { row: ri, col: ci, idx: *idx as usize });
                    }
                    other => {
                        return Err(SqlError::bind(format!(
                            "only literals and parameters are allowed in VALUES, found {other}"
                        )))
                    }
                }
            }
            rows.push(full);
        }
        Ok(BoundInsert {
            table: def.name.clone(),
            rows,
            param_slots,
            params: table.finish()?,
        })
    }

    /// Binds a predicate + target table into the synthetic single-table scan
    /// query shared by `UPDATE` and `DELETE`: the filters are classified just
    /// like a `SELECT * FROM t WHERE pred`, so the TP access-path planner
    /// (index choice included) applies unchanged.
    fn bind_dml_scan(
        &self,
        def: &TableDef,
        selection: &Option<Expr>,
        sql: &str,
    ) -> Result<BoundQuery, SqlError> {
        let tables = vec![BoundTable {
            name: def.name.clone(),
            alias: None,
            row_count: def.row_count,
        }];
        let resolver = Resolver { catalog: self.catalog, tables: &tables };
        let mut filters = Vec::new();
        if let Some(sel) = selection {
            if sel.contains_aggregate() {
                return Err(SqlError::bind("aggregate in DML WHERE clause"));
            }
            for c in sel.split_conjuncts() {
                filters.push(TableFilter {
                    table_slot: 0,
                    expr: resolver.bind_expr(c)?,
                });
            }
        }
        let projections = def
            .columns
            .iter()
            .enumerate()
            .map(|(ci, col)| BoundProjection {
                expr: BoundExpr::Column(ColumnRef {
                    table_slot: 0,
                    column_idx: ci,
                    data_type: col.data_type,
                }),
                label: col.name.clone(),
            })
            .collect();
        Ok(BoundQuery {
            tables,
            filters,
            joins: Vec::new(),
            residual_predicates: Vec::new(),
            projections,
            aggregate_kind: AggregateKind::None,
            group_by: Vec::new(),
            having: None,
            order_by: Vec::new(),
            limit: None,
            offset: None,
            sql: sql.to_string(),
            params: Vec::new(),
        })
    }

    fn bind_update(&self, stmt: &UpdateStatement, sql: &str) -> Result<BoundUpdate, SqlError> {
        let def = self.target_table(&stmt.table)?;
        let mut scan = self.bind_dml_scan(def, &stmt.selection, sql)?;
        let resolver = Resolver { catalog: self.catalog, tables: &scan.tables };
        // Assignments and the WHERE clause share one statement-level
        // parameter numbering.
        let mut table = ParamTable::default();
        let mut assignments = Vec::with_capacity(stmt.assignments.len());
        for (col, expr) in &stmt.assignments {
            let ci = def.column_index(col).ok_or_else(|| {
                SqlError::bind(format!("unknown column '{col}' in table '{}'", stmt.table))
            })?;
            if expr.contains_aggregate() {
                return Err(SqlError::bind("aggregate in UPDATE assignment"));
            }
            let mut bound = resolver.bind_expr(expr)?;
            // Literal assignments are coerced to the column type at bind time
            // so storage only ever sees catalog-typed values.
            if let BoundExpr::Literal(v) = &bound {
                bound = BoundExpr::Literal(coerce_literal(
                    v.clone(),
                    def.columns[ci].data_type,
                    &def.columns[ci].name,
                )?);
            }
            infer_expr_params(&mut bound, &mut table)?;
            // `SET col = ?` — the assignment context types the parameter.
            constrain_param(&mut bound, def.columns[ci].data_type, &mut table)?;
            assignments.push((ci, bound));
        }
        if assignments.is_empty() {
            return Err(SqlError::bind("UPDATE without assignments"));
        }
        infer_query_params_into(&mut scan, &mut table)?;
        let params = table.finish()?;
        scan.params = params.clone();
        Ok(BoundUpdate { table: def.name.clone(), assignments, scan, params })
    }

    fn bind_delete(&self, stmt: &DeleteStatement, sql: &str) -> Result<BoundDelete, SqlError> {
        let def = self.target_table(&stmt.table)?;
        let mut scan = self.bind_dml_scan(def, &stmt.selection, sql)?;
        let params = infer_query_params(&mut scan)?.finish()?;
        scan.params = params.clone();
        Ok(BoundDelete { table: def.name.clone(), scan, params })
    }

    /// Binds a parsed statement. `sql` is kept verbatim for prompts/KB.
    pub fn bind(&self, stmt: &SelectStatement, sql: &str) -> Result<BoundQuery, SqlError> {
        // 1. Resolve tables.
        let mut tables = Vec::new();
        for tref in &stmt.from {
            let def = self.catalog.table(&tref.name).ok_or_else(|| {
                SqlError::bind(format!("unknown table '{}'", tref.name))
            })?;
            tables.push(BoundTable {
                name: def.name.clone(),
                alias: tref.alias.clone(),
                row_count: def.row_count,
            });
        }
        if tables.is_empty() {
            return Err(SqlError::bind("FROM clause is empty"));
        }

        let resolver = Resolver {
            catalog: self.catalog,
            tables: &tables,
        };

        // 2. Gather the full WHERE conjunction (explicit JOIN ... ON merges in).
        let mut conjuncts: Vec<Expr> = Vec::new();
        for tref in &stmt.from {
            if let Some(on) = &tref.join_on {
                conjuncts.extend(on.split_conjuncts().into_iter().cloned());
            }
        }
        if let Some(sel) = &stmt.selection {
            conjuncts.extend(sel.split_conjuncts().into_iter().cloned());
        }

        // 3. Bind and classify each conjunct.
        let mut filters = Vec::new();
        let mut joins = Vec::new();
        let mut residual = Vec::new();
        for c in &conjuncts {
            if c.contains_aggregate() {
                return Err(SqlError::bind("aggregate in WHERE clause"));
            }
            let bound = resolver.bind_expr(c)?;
            match classify(&bound) {
                Classified::Filter(slot) => filters.push(TableFilter {
                    table_slot: slot,
                    expr: bound,
                }),
                Classified::Join(j) => joins.push(j),
                Classified::Residual => residual.push(bound),
            }
        }

        // 4. Bind projections.
        let mut projections = Vec::new();
        for item in &stmt.projections {
            match item {
                SelectItem::Wildcard => {
                    for (slot, t) in tables.iter().enumerate() {
                        // Resolved during FROM binding, but a structured
                        // error beats trusting that invariant with a panic.
                        let Some(def) = self.catalog.table(&t.name) else {
                            return Err(SqlError::bind(format!("unknown table {:?}", t.name)));
                        };
                        for (ci, col) in def.columns.iter().enumerate() {
                            projections.push(BoundProjection {
                                expr: BoundExpr::Column(ColumnRef {
                                    table_slot: slot,
                                    column_idx: ci,
                                    data_type: col.data_type,
                                }),
                                label: col.name.clone(),
                            });
                        }
                    }
                }
                SelectItem::Expr { expr, alias } => {
                    let bound = resolver.bind_expr(expr)?;
                    let label = alias.clone().unwrap_or_else(|| expr.to_string());
                    projections.push(BoundProjection { expr: bound, label });
                }
            }
        }

        // 5. Aggregation classification and validation.
        let has_agg = projections.iter().any(|p| p.expr.contains_aggregate());
        let aggregate_kind = if !stmt.group_by.is_empty() {
            if !has_agg {
                return Err(SqlError::bind("GROUP BY without aggregate projection"));
            }
            AggregateKind::Grouped
        } else if has_agg {
            // every projection must be an aggregate in scalar mode
            if projections.iter().any(|p| !p.expr.contains_aggregate()) {
                return Err(SqlError::bind(
                    "mixing aggregate and non-aggregate projections without GROUP BY",
                ));
            }
            AggregateKind::Scalar
        } else {
            AggregateKind::None
        };

        let group_by = stmt
            .group_by
            .iter()
            .map(|e| resolver.bind_expr(e))
            .collect::<Result<Vec<_>, _>>()?;
        let having = stmt
            .having
            .as_ref()
            .map(|e| resolver.bind_expr(e))
            .transpose()?;
        if having.is_some() && aggregate_kind == AggregateKind::None {
            return Err(SqlError::bind("HAVING without aggregation"));
        }
        let order_by = stmt
            .order_by
            .iter()
            .map(|o| resolver.bind_expr(&o.expr).map(|e| (e, o.desc)))
            .collect::<Result<Vec<_>, _>>()?;

        let mut q = BoundQuery {
            tables,
            filters,
            joins,
            residual_predicates: residual,
            projections,
            aggregate_kind,
            group_by,
            having,
            order_by,
            limit: stmt.limit,
            offset: stmt.offset,
            sql: sql.to_string(),
            params: Vec::new(),
        };
        q.params = infer_query_params(&mut q)?.finish()?;
        Ok(q)
    }
}

/// Coerces a literal to a column's catalog type. Integers widen to floats;
/// NULL passes through; everything else must match exactly — lossy coercions
/// (float→int, int→date) are bind errors, not silent truncations.
pub fn coerce_literal(v: Value, ty: DataType, column: &str) -> Result<Value, SqlError> {
    let coerced = match (&v, ty) {
        (Value::Null, _) => v,
        (Value::Int(_), DataType::Int) => v,
        (Value::Int(x), DataType::Float) => Value::Float(*x as f64),
        (Value::Float(_), DataType::Float) => v,
        (Value::Str(_), DataType::Str) => v,
        (Value::Date(_), DataType::Date) => v,
        _ => {
            return Err(SqlError::bind(format!(
                "value {v} is not assignable to {ty:?} column '{column}'"
            )))
        }
    };
    Ok(coerced)
}

enum Classified {
    Filter(usize),
    Join(EquiJoin),
    Residual,
}

fn classify(e: &BoundExpr) -> Classified {
    // equi-join: bare_column = bare_column across different slots
    if let BoundExpr::Binary {
        left,
        op: BinaryOp::Eq,
        right,
    } = e
    {
        if let (Some(l), Some(r)) = (left.as_bare_column(), right.as_bare_column()) {
            if l.table_slot != r.table_slot {
                return Classified::Join(EquiJoin {
                    left: *l,
                    right: *r,
                });
            }
        }
    }
    let slots = e.table_slots();
    match slots.len() {
        0 | 1 => Classified::Filter(slots.first().copied().unwrap_or(0)),
        _ => Classified::Residual,
    }
}

struct Resolver<'a> {
    catalog: &'a dyn Catalog,
    tables: &'a [BoundTable],
}

impl Resolver<'_> {
    fn resolve_column(&self, table: &Option<String>, name: &str) -> Result<ColumnRef, SqlError> {
        let mut matches = Vec::new();
        for (slot, t) in self.tables.iter().enumerate() {
            if let Some(q) = table {
                // SQL scoping: an alias shadows the base table name.
                let matches_qualifier = match t.alias.as_deref() {
                    Some(alias) => alias == q.as_str(),
                    None => t.name == *q,
                };
                if !matches_qualifier {
                    continue;
                }
            }
            let def = self
                .catalog
                .table(&t.name)
                .ok_or_else(|| SqlError::bind(format!("table '{}' vanished", t.name)))?;
            if let Some(ci) = def.column_index(name) {
                matches.push(ColumnRef {
                    table_slot: slot,
                    column_idx: ci,
                    data_type: def.columns[ci].data_type,
                });
            }
        }
        match matches.len() {
            0 => Err(SqlError::bind(format!(
                "unknown column '{}{}{name}'",
                table.as_deref().unwrap_or(""),
                if table.is_some() { "." } else { "" },
            ))),
            1 => Ok(matches[0]),
            _ => Err(SqlError::bind(format!("ambiguous column '{name}'"))),
        }
    }

    fn bind_expr(&self, e: &Expr) -> Result<BoundExpr, SqlError> {
        Ok(match e {
            Expr::Column { table, name } => {
                BoundExpr::Column(self.resolve_column(table, name)?)
            }
            Expr::Literal(v) => BoundExpr::Literal(v.clone()),
            Expr::Param(idx) => BoundExpr::Param { idx: *idx as usize, ty: None },
            Expr::Binary { left, op, right } => BoundExpr::Binary {
                left: Box::new(self.bind_expr(left)?),
                op: *op,
                right: Box::new(self.bind_expr(right)?),
            },
            Expr::Not(inner) => BoundExpr::Not(Box::new(self.bind_expr(inner)?)),
            Expr::InList { expr, list, negated } => BoundExpr::InList {
                expr: Box::new(self.bind_expr(expr)?),
                list: list.clone(),
                negated: *negated,
            },
            Expr::InListParam { expr, items, negated } => BoundExpr::InListParam {
                expr: Box::new(self.bind_expr(expr)?),
                items: items
                    .iter()
                    .map(|it| match it {
                        InListItem::Lit(v) => BoundExpr::Literal(v.clone()),
                        InListItem::Param(idx) => {
                            BoundExpr::Param { idx: *idx as usize, ty: None }
                        }
                    })
                    .collect(),
                negated: *negated,
            },
            Expr::Between { expr, low, high } => BoundExpr::Between {
                expr: Box::new(self.bind_expr(expr)?),
                low: Box::new(self.bind_expr(low)?),
                high: Box::new(self.bind_expr(high)?),
            },
            Expr::Like { expr, pattern, negated } => BoundExpr::Like {
                expr: Box::new(self.bind_expr(expr)?),
                pattern: pattern.clone(),
                negated: *negated,
            },
            Expr::IsNull { expr, negated } => BoundExpr::IsNull {
                expr: Box::new(self.bind_expr(expr)?),
                negated: *negated,
            },
            Expr::Substring { expr, start, len } => {
                if *start < 1 || *len < 0 {
                    return Err(SqlError::bind(format!(
                        "SUBSTRING start must be >= 1 and len >= 0, got ({start}, {len})"
                    )));
                }
                BoundExpr::Substring {
                    expr: Box::new(self.bind_expr(expr)?),
                    start: *start,
                    len: *len,
                }
            }
            Expr::Aggregate { func, arg, distinct } => BoundExpr::Aggregate {
                func: *func,
                arg: arg
                    .as_ref()
                    .map(|a| self.bind_expr(a).map(Box::new))
                    .transpose()?,
                distinct: *distinct,
            },
        })
    }
}

impl fmt::Display for BoundQuery {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "BoundQuery[{} tables, {} filters, {} joins, agg={:?}]",
            self.tables.len(),
            self.filters.len(),
            self.joins.len(),
            self.aggregate_kind
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ColumnDef, MemoryCatalog, TableDef};

    fn tpch_mini() -> MemoryCatalog {
        let mut cat = MemoryCatalog::new();
        cat.add_table(TableDef {
            name: "customer".into(),
            columns: vec![
                ColumnDef { name: "c_custkey".into(), data_type: DataType::Int, ndv: 1000 },
                ColumnDef { name: "c_nationkey".into(), data_type: DataType::Int, ndv: 25 },
                ColumnDef { name: "c_phone".into(), data_type: DataType::Str, ndv: 1000 },
                ColumnDef { name: "c_mktsegment".into(), data_type: DataType::Str, ndv: 5 },
            ],
            row_count: 1000,
            indexed_columns: vec![],
            primary_key: "c_custkey".into(),
        });
        cat.add_table(TableDef {
            name: "nation".into(),
            columns: vec![
                ColumnDef { name: "n_nationkey".into(), data_type: DataType::Int, ndv: 25 },
                ColumnDef { name: "n_name".into(), data_type: DataType::Str, ndv: 25 },
            ],
            row_count: 25,
            indexed_columns: vec![],
            primary_key: "n_nationkey".into(),
        });
        cat.add_table(TableDef {
            name: "orders".into(),
            columns: vec![
                ColumnDef { name: "o_orderkey".into(), data_type: DataType::Int, ndv: 10000 },
                ColumnDef { name: "o_custkey".into(), data_type: DataType::Int, ndv: 1000 },
                ColumnDef { name: "o_orderstatus".into(), data_type: DataType::Str, ndv: 3 },
                ColumnDef { name: "o_totalprice".into(), data_type: DataType::Float, ndv: 9000 },
            ],
            row_count: 10000,
            indexed_columns: vec![],
            primary_key: "o_orderkey".into(),
        });
        cat
    }

    #[test]
    fn binds_paper_example_1_classification() {
        let cat = tpch_mini();
        let binder = Binder::new(&cat);
        let q = binder
            .bind_sql(
                "SELECT COUNT(*) FROM customer, nation, orders \
                 WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40') \
                 AND c_mktsegment = 'machinery' \
                 AND n_name = 'egypt' AND o_orderstatus = 'p' \
                 AND o_custkey = c_custkey \
                 AND n_nationkey = c_nationkey;",
            )
            .unwrap();
        assert_eq!(q.tables.len(), 3);
        assert_eq!(q.filters.len(), 4);
        assert_eq!(q.joins.len(), 2);
        assert_eq!(q.aggregate_kind, AggregateKind::Scalar);
        assert!(q.residual_predicates.is_empty());
    }

    #[test]
    fn join_slots_are_normalized() {
        let cat = tpch_mini();
        let q = Binder::new(&cat)
            .bind_sql("SELECT * FROM customer, orders WHERE o_custkey = c_custkey")
            .unwrap();
        assert_eq!(q.joins.len(), 1);
        assert_eq!(q.joins[0].slots(), (0, 1));
        assert_eq!(q.joins_between(1, 0).len(), 1);
    }

    #[test]
    fn same_table_equality_is_filter_not_join() {
        let cat = tpch_mini();
        let q = Binder::new(&cat)
            .bind_sql("SELECT * FROM customer WHERE c_custkey = c_nationkey")
            .unwrap();
        assert!(q.joins.is_empty());
        assert_eq!(q.filters.len(), 1);
    }

    #[test]
    fn unknown_table_and_column_errors() {
        let cat = tpch_mini();
        let b = Binder::new(&cat);
        assert!(matches!(
            b.bind_sql("SELECT * FROM lineitem"),
            Err(SqlError::Bind(_))
        ));
        assert!(matches!(
            b.bind_sql("SELECT c_missing FROM customer"),
            Err(SqlError::Bind(_))
        ));
    }

    #[test]
    fn ambiguous_column_errors() {
        let mut cat = tpch_mini();
        // Add a second table that also has c_custkey.
        cat.add_table(TableDef {
            name: "customer2".into(),
            columns: vec![ColumnDef {
                name: "c_custkey".into(),
                data_type: DataType::Int,
                ndv: 10,
            }],
            row_count: 10,
            indexed_columns: vec![],
            primary_key: "c_custkey".into(),
        });
        let b = Binder::new(&cat);
        let err = b
            .bind_sql("SELECT c_custkey FROM customer, customer2")
            .unwrap_err();
        assert!(err.to_string().contains("ambiguous"));
    }

    #[test]
    fn alias_resolution() {
        let cat = tpch_mini();
        let q = Binder::new(&cat)
            .bind_sql("SELECT c.c_phone FROM customer c WHERE c.c_mktsegment = 'x'")
            .unwrap();
        assert_eq!(q.filters.len(), 1);
        assert_eq!(q.filters[0].table_slot, 0);
    }

    #[test]
    fn explicit_join_on_merges_into_joins() {
        let cat = tpch_mini();
        let q = Binder::new(&cat)
            .bind_sql("SELECT * FROM customer INNER JOIN orders ON o_custkey = c_custkey")
            .unwrap();
        assert_eq!(q.joins.len(), 1);
    }

    #[test]
    fn wildcard_expands_all_tables() {
        let cat = tpch_mini();
        let q = Binder::new(&cat)
            .bind_sql("SELECT * FROM customer, nation")
            .unwrap();
        assert_eq!(q.projections.len(), 4 + 2);
    }

    #[test]
    fn mixed_agg_without_group_by_errors() {
        let cat = tpch_mini();
        assert!(Binder::new(&cat)
            .bind_sql("SELECT c_phone, COUNT(*) FROM customer")
            .is_err());
    }

    #[test]
    fn group_by_without_agg_errors() {
        let cat = tpch_mini();
        assert!(Binder::new(&cat)
            .bind_sql("SELECT c_phone FROM customer GROUP BY c_phone")
            .is_err());
    }

    #[test]
    fn having_without_agg_errors() {
        let cat = tpch_mini();
        assert!(Binder::new(&cat)
            .bind_sql("SELECT c_phone FROM customer HAVING c_custkey > 1")
            .is_err());
    }

    #[test]
    fn aggregate_in_where_errors() {
        let cat = tpch_mini();
        assert!(Binder::new(&cat)
            .bind_sql("SELECT COUNT(*) FROM customer WHERE COUNT(*) > 1")
            .is_err());
    }

    #[test]
    fn top_n_detection() {
        let cat = tpch_mini();
        let q = Binder::new(&cat)
            .bind_sql("SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC LIMIT 10")
            .unwrap();
        assert!(q.is_top_n());
        let q2 = Binder::new(&cat)
            .bind_sql("SELECT o_orderkey FROM orders ORDER BY o_totalprice DESC")
            .unwrap();
        assert!(!q2.is_top_n());
    }

    #[test]
    fn substring_validation() {
        let cat = tpch_mini();
        assert!(Binder::new(&cat)
            .bind_sql("SELECT * FROM customer WHERE SUBSTRING(c_phone, 0, 2) = 'xx'")
            .is_err());
    }

    #[test]
    fn bind_insert_normalizes_and_coerces() {
        let cat = tpch_mini();
        let b = Binder::new(&cat);
        // o_totalprice is Float; the Int literal 100 must widen.
        let BoundStatement::Dml(BoundDml::Insert(ins)) = b
            .bind_statement(
                "INSERT INTO orders (o_orderkey, o_custkey, o_totalprice) VALUES (1, 2, 100)",
            )
            .unwrap()
        else {
            panic!("expected insert");
        };
        assert_eq!(ins.rows.len(), 1);
        assert_eq!(
            ins.rows[0],
            vec![Value::Int(1), Value::Int(2), Value::Null, Value::Float(100.0)]
        );
    }

    #[test]
    fn bind_insert_rejects_bad_shapes() {
        let cat = tpch_mini();
        let b = Binder::new(&cat);
        assert!(b.bind_statement("INSERT INTO missing VALUES (1)").is_err());
        assert!(b
            .bind_statement("INSERT INTO orders (o_orderkey, nope) VALUES (1, 2)")
            .is_err());
        assert!(b
            .bind_statement("INSERT INTO orders (o_orderkey, o_custkey) VALUES (1)")
            .is_err());
        assert!(b
            .bind_statement("INSERT INTO orders (o_orderkey, o_orderkey) VALUES (1, 1)")
            .is_err());
        // Float literal into Int column is a lossy coercion -> bind error.
        assert!(b
            .bind_statement("INSERT INTO orders (o_orderkey) VALUES (1.5)")
            .is_err());
    }

    #[test]
    fn bind_update_builds_scan_with_classified_filters() {
        let cat = tpch_mini();
        let b = Binder::new(&cat);
        let BoundStatement::Dml(BoundDml::Update(up)) = b
            .bind_statement(
                "UPDATE customer SET c_mktsegment = 'machinery', c_custkey = c_custkey + 1 \
                 WHERE c_custkey = 7 AND c_mktsegment = 'building'",
            )
            .unwrap()
        else {
            panic!("expected update");
        };
        assert_eq!(up.table, "customer");
        assert_eq!(up.assignments.len(), 2);
        assert_eq!(up.assignments[0].0, 3); // c_mktsegment
        assert_eq!(up.scan.filters.len(), 2);
        assert_eq!(up.scan.projections.len(), 4);
        assert!(BoundDml::Update(up.clone()).scan().is_some());
    }

    #[test]
    fn bind_delete_without_where_targets_all_rows() {
        let cat = tpch_mini();
        let BoundStatement::Dml(BoundDml::Delete(del)) = Binder::new(&cat)
            .bind_statement("DELETE FROM nation")
            .unwrap()
        else {
            panic!("expected delete");
        };
        assert!(del.scan.filters.is_empty());
        assert_eq!(del.scan.tables[0].name, "nation");
    }

    #[test]
    fn bind_dml_rejects_cross_table_and_aggregate_predicates() {
        let cat = tpch_mini();
        let b = Binder::new(&cat);
        // Column of another table is simply unknown in DML scope.
        assert!(b
            .bind_statement("DELETE FROM customer WHERE o_orderkey = 1")
            .is_err());
        assert!(b
            .bind_statement("DELETE FROM customer WHERE COUNT(*) > 1")
            .is_err());
        assert!(b
            .bind_statement("UPDATE customer SET c_custkey = COUNT(*)")
            .is_err());
        assert!(b.bind_statement("UPDATE customer SET nope = 1").is_err());
    }

    #[test]
    fn bind_statement_routes_select() {
        let cat = tpch_mini();
        assert!(matches!(
            Binder::new(&cat)
                .bind_statement("SELECT COUNT(*) FROM customer")
                .unwrap(),
            BoundStatement::Query(_)
        ));
    }

    #[test]
    fn param_types_infer_from_comparison_context() {
        let cat = tpch_mini();
        let q = Binder::new(&cat)
            .bind_sql(
                "SELECT c_phone FROM customer \
                 WHERE c_custkey = ? AND c_mktsegment = ? AND c_nationkey BETWEEN ? AND ?",
            )
            .unwrap();
        assert_eq!(
            q.params,
            vec![
                Some(DataType::Int),
                Some(DataType::Str),
                Some(DataType::Int),
                Some(DataType::Int)
            ]
        );
        // The Param nodes themselves carry the inferred type.
        let BoundExpr::Binary { right, .. } = &q.filters[0].expr else {
            panic!("expected comparison");
        };
        assert_eq!(**right, BoundExpr::Param { idx: 0, ty: Some(DataType::Int) });
    }

    #[test]
    fn param_conflicting_types_is_bind_error() {
        let cat = tpch_mini();
        let err = Binder::new(&cat)
            .bind_sql("SELECT * FROM customer WHERE c_custkey = $1 AND c_phone = $1")
            .unwrap_err();
        assert!(err.to_string().contains("conflicting types"), "{err}");
    }

    #[test]
    fn param_numbering_gaps_are_bind_errors() {
        let cat = tpch_mini();
        let err = Binder::new(&cat)
            .bind_sql("SELECT * FROM customer WHERE c_custkey = $2")
            .unwrap_err();
        assert!(err.to_string().contains("never referenced"), "{err}");
    }

    #[test]
    fn insert_params_take_column_types() {
        let cat = tpch_mini();
        let BoundStatement::Dml(BoundDml::Insert(ins)) = Binder::new(&cat)
            .bind_statement("INSERT INTO orders (o_orderkey, o_totalprice) VALUES (?, ?)")
            .unwrap()
        else {
            panic!("expected insert");
        };
        assert_eq!(ins.params, vec![Some(DataType::Int), Some(DataType::Float)]);
        assert_eq!(ins.param_slots.len(), 2);
        assert_eq!((ins.param_slots[0].row, ins.param_slots[0].col), (0, 0));
        assert_eq!(ins.param_slots[1].col, 3); // o_totalprice
        // Placeholder cells hold NULL until execution patches them.
        assert_eq!(ins.rows[0][0], Value::Null);
    }

    #[test]
    fn update_assignment_and_where_share_numbering() {
        let cat = tpch_mini();
        let BoundStatement::Dml(BoundDml::Update(up)) = Binder::new(&cat)
            .bind_statement("UPDATE customer SET c_mktsegment = ? WHERE c_custkey = ?")
            .unwrap()
        else {
            panic!("expected update");
        };
        assert_eq!(up.params, vec![Some(DataType::Str), Some(DataType::Int)]);
        assert_eq!(up.scan.params, up.params);
    }

    #[test]
    fn substitute_params_replaces_placeholders() {
        let cat = tpch_mini();
        let q = Binder::new(&cat)
            .bind_sql("SELECT * FROM customer WHERE c_custkey = ? AND c_nationkey < 5")
            .unwrap();
        let inlined = Binder::new(&cat)
            .bind_sql("SELECT * FROM customer WHERE c_custkey = 42 AND c_nationkey < 5")
            .unwrap();
        let substituted = substitute_params(&q.filters[0].expr, &[Value::Int(42)]);
        assert_eq!(substituted, inlined.filters[0].expr);
        // Non-parameterized conjuncts survive unchanged.
        assert_eq!(
            substitute_params(&q.filters[1].expr, &[Value::Int(42)]),
            inlined.filters[1].expr
        );
    }

    #[test]
    fn coerce_param_follows_insert_literal_rules() {
        assert_eq!(
            coerce_param(Value::Int(3), Some(DataType::Float)),
            Ok(Value::Float(3.0))
        );
        assert_eq!(coerce_param(Value::Null, Some(DataType::Int)), Ok(Value::Null));
        assert_eq!(coerce_param(Value::Int(3), None), Ok(Value::Int(3)));
        assert_eq!(
            coerce_param(Value::Float(1.5), Some(DataType::Int)),
            Err((DataType::Int, Value::Float(1.5)))
        );
        assert_eq!(
            coerce_param(Value::Str("x".into()), Some(DataType::Date)),
            Err((DataType::Date, Value::Str("x".into())))
        );
    }

    #[test]
    fn residual_predicate_classification() {
        let cat = tpch_mini();
        // non-equi cross-table predicate
        let q = Binder::new(&cat)
            .bind_sql("SELECT * FROM customer, orders WHERE c_custkey < o_custkey")
            .unwrap();
        assert_eq!(q.residual_predicates.len(), 1);
        assert!(q.joins.is_empty());
    }
}
