//! Abstract syntax tree produced by the parser.

use serde::{Deserialize, Serialize};
use std::fmt;

use crate::value::Value;

/// Any parsed SQL statement in the supported subset: one read shape
/// (`SELECT`) and the three write shapes (`INSERT`/`UPDATE`/`DELETE`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Statement {
    /// A read query.
    Select(SelectStatement),
    /// `INSERT INTO t [(cols)] VALUES (...), (...)`.
    Insert(InsertStatement),
    /// `UPDATE t SET col = expr [, ...] [WHERE pred]`.
    Update(UpdateStatement),
    /// `DELETE FROM t [WHERE pred]`.
    Delete(DeleteStatement),
}

/// A parsed `INSERT` statement. Values are literal rows only in this subset
/// (no `INSERT ... SELECT`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InsertStatement {
    /// Target table name (lowercased).
    pub table: String,
    /// Explicit column list, if written; `None` means full-width rows in
    /// table order.
    pub columns: Option<Vec<String>>,
    /// Rows to insert. Each cell is a literal ([`Expr::Literal`]) or a
    /// parameter placeholder ([`Expr::Param`]) — the parser rejects anything
    /// else in a `VALUES` position.
    pub rows: Vec<Vec<Expr>>,
}

/// A parsed `UPDATE` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UpdateStatement {
    /// Target table name (lowercased).
    pub table: String,
    /// `SET column = expr` assignments, in statement order.
    pub assignments: Vec<(String, Expr)>,
    /// The `WHERE` predicate; `None` updates every row.
    pub selection: Option<Expr>,
}

/// A parsed `DELETE` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DeleteStatement {
    /// Target table name (lowercased).
    pub table: String,
    /// The `WHERE` predicate; `None` deletes every row.
    pub selection: Option<Expr>,
}

/// A parsed `SELECT` statement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SelectStatement {
    /// Projection list; `SELECT *` becomes a single [`SelectItem::Wildcard`].
    pub projections: Vec<SelectItem>,
    /// Tables in the `FROM` clause (comma-separated implicit-join style, as
    /// in the paper's Example 1, or explicit `INNER JOIN ... ON`).
    pub from: Vec<TableRef>,
    /// The `WHERE` clause, if present, as a single expression tree.
    pub selection: Option<Expr>,
    /// `GROUP BY` expressions.
    pub group_by: Vec<Expr>,
    /// `HAVING` predicate.
    pub having: Option<Expr>,
    /// `ORDER BY` items.
    pub order_by: Vec<OrderByItem>,
    /// `LIMIT n`.
    pub limit: Option<u64>,
    /// `OFFSET n`.
    pub offset: Option<u64>,
}

/// One item in the projection list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum SelectItem {
    /// `SELECT *`
    Wildcard,
    /// An expression with an optional alias.
    Expr {
        /// The projected expression.
        expr: Expr,
        /// `AS alias`, if given.
        alias: Option<String>,
    },
}

/// A table reference in `FROM`, optionally joined with an `ON` condition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableRef {
    /// Table name (lowercased).
    pub name: String,
    /// Optional alias.
    pub alias: Option<String>,
    /// For `INNER JOIN t ON cond` syntax, the join condition; the binder
    /// merges it into the global conjunction.
    pub join_on: Option<Expr>,
}

/// One `ORDER BY` item.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OrderByItem {
    /// Sort key expression.
    pub expr: Expr,
    /// True for `DESC`.
    pub desc: bool,
}

/// Binary operators in the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinaryOp {
    /// `=`
    Eq,
    /// `<>` / `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `AND`
    And,
    /// `OR`
    Or,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
}

impl BinaryOp {
    /// True for comparison operators (the ones predicates are built from).
    pub fn is_comparison(self) -> bool {
        matches!(
            self,
            BinaryOp::Eq
                | BinaryOp::NotEq
                | BinaryOp::Lt
                | BinaryOp::LtEq
                | BinaryOp::Gt
                | BinaryOp::GtEq
        )
    }
}

impl fmt::Display for BinaryOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinaryOp::Eq => "=",
            BinaryOp::NotEq => "<>",
            BinaryOp::Lt => "<",
            BinaryOp::LtEq => "<=",
            BinaryOp::Gt => ">",
            BinaryOp::GtEq => ">=",
            BinaryOp::And => "AND",
            BinaryOp::Or => "OR",
            BinaryOp::Add => "+",
            BinaryOp::Sub => "-",
            BinaryOp::Mul => "*",
            BinaryOp::Div => "/",
        };
        f.write_str(s)
    }
}

/// Aggregate functions in the subset.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AggFunc {
    /// `COUNT(*)` or `COUNT(expr)`
    Count,
    /// `SUM(expr)`
    Sum,
    /// `AVG(expr)`
    Avg,
    /// `MIN(expr)`
    Min,
    /// `MAX(expr)`
    Max,
}

impl fmt::Display for AggFunc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AggFunc::Count => "COUNT",
            AggFunc::Sum => "SUM",
            AggFunc::Avg => "AVG",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
        };
        f.write_str(s)
    }
}

/// Scalar expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A column reference, optionally qualified: `customer.c_phone` or
    /// `c_phone`.
    Column {
        /// Table name or alias qualifier, if written.
        table: Option<String>,
        /// Column name (lowercased).
        name: String,
    },
    /// A literal value.
    Literal(Value),
    /// A prepared-statement parameter placeholder (`?` or `$n`), carrying its
    /// 0-based parameter index. The binder threads it through as
    /// [`crate::binder::BoundExpr::Param`]; a concrete value is injected at
    /// execution time.
    Param(u32),
    /// Binary operation.
    Binary {
        /// Left operand.
        left: Box<Expr>,
        /// Operator.
        op: BinaryOp,
        /// Right operand.
        right: Box<Expr>,
    },
    /// `NOT expr`
    Not(Box<Expr>),
    /// `expr IN (v1, v2, ...)` — list of literals only in this subset.
    InList {
        /// The probed expression.
        expr: Box<Expr>,
        /// Literal list.
        list: Vec<Value>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr IN (...)` with at least one `?`/`$n` element. Kept distinct
    /// from [`Expr::InList`] so the all-literal form stays a plain value
    /// list; the binder lowers this to a literal list once parameters are
    /// injected.
    InListParam {
        /// The probed expression.
        expr: Box<Expr>,
        /// Mixed literal / placeholder elements.
        items: Vec<InListItem>,
        /// True for `NOT IN`.
        negated: bool,
    },
    /// `expr BETWEEN low AND high`
    Between {
        /// The tested expression.
        expr: Box<Expr>,
        /// Lower bound (inclusive).
        low: Box<Expr>,
        /// Upper bound (inclusive).
        high: Box<Expr>,
    },
    /// `expr LIKE 'pattern'` with `%` and `_` wildcards.
    Like {
        /// The tested expression.
        expr: Box<Expr>,
        /// The pattern literal.
        pattern: String,
        /// True for `NOT LIKE`.
        negated: bool,
    },
    /// `expr IS NULL` / `expr IS NOT NULL`
    IsNull {
        /// The tested expression.
        expr: Box<Expr>,
        /// True for `IS NOT NULL`.
        negated: bool,
    },
    /// `SUBSTRING(expr, start, len)` — 1-based start, as in SQL.
    Substring {
        /// Source string expression.
        expr: Box<Expr>,
        /// 1-based start position.
        start: i64,
        /// Length in characters.
        len: i64,
    },
    /// Aggregate call. `COUNT(*)` has `arg == None`.
    Aggregate {
        /// Which aggregate.
        func: AggFunc,
        /// Argument (None only for `COUNT(*)`).
        arg: Option<Box<Expr>>,
        /// `COUNT(DISTINCT x)` flag.
        distinct: bool,
    },
}

/// One element of a parameterized IN list.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InListItem {
    /// A literal element.
    Lit(Value),
    /// A placeholder element (0-based parameter index).
    Param(u32),
}

impl Expr {
    /// Convenience constructor for an unqualified column reference.
    pub fn col(name: &str) -> Expr {
        Expr::Column {
            table: None,
            name: name.to_string(),
        }
    }

    /// Convenience constructor for a qualified column reference.
    pub fn qcol(table: &str, name: &str) -> Expr {
        Expr::Column {
            table: Some(table.to_string()),
            name: name.to_string(),
        }
    }

    /// Builds `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Binary {
            left: Box::new(self),
            op: BinaryOp::And,
            right: Box::new(other),
        }
    }

    /// Splits a conjunction tree into its leaf conjuncts.
    pub fn split_conjuncts(&self) -> Vec<&Expr> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<&'a Expr>) {
            match e {
                Expr::Binary {
                    left,
                    op: BinaryOp::And,
                    right,
                } => {
                    walk(left, out);
                    walk(right, out);
                }
                other => out.push(other),
            }
        }
        walk(self, &mut out);
        out
    }

    /// True if the expression contains an aggregate call anywhere.
    pub fn contains_aggregate(&self) -> bool {
        match self {
            Expr::Aggregate { .. } => true,
            Expr::Column { .. } | Expr::Literal(_) | Expr::Param(_) => false,
            Expr::Binary { left, right, .. } => {
                left.contains_aggregate() || right.contains_aggregate()
            }
            Expr::Not(e) => e.contains_aggregate(),
            Expr::InList { expr, .. } | Expr::InListParam { expr, .. } => {
                expr.contains_aggregate()
            }
            Expr::Between { expr, low, high } => {
                expr.contains_aggregate() || low.contains_aggregate() || high.contains_aggregate()
            }
            Expr::Like { expr, .. } => expr.contains_aggregate(),
            Expr::IsNull { expr, .. } => expr.contains_aggregate(),
            Expr::Substring { expr, .. } => expr.contains_aggregate(),
        }
    }

    /// Collects every column reference in the expression.
    pub fn columns(&self) -> Vec<(&Option<String>, &str)> {
        let mut out = Vec::new();
        fn walk<'a>(e: &'a Expr, out: &mut Vec<(&'a Option<String>, &'a str)>) {
            match e {
                Expr::Column { table, name } => out.push((table, name.as_str())),
                Expr::Literal(_) | Expr::Param(_) => {}
                Expr::Binary { left, right, .. } => {
                    walk(left, out);
                    walk(right, out);
                }
                Expr::Not(e) => walk(e, out),
                Expr::InList { expr, .. } | Expr::InListParam { expr, .. } => walk(expr, out),
                Expr::Between { expr, low, high } => {
                    walk(expr, out);
                    walk(low, out);
                    walk(high, out);
                }
                Expr::Like { expr, .. } => walk(expr, out),
                Expr::IsNull { expr, .. } => walk(expr, out),
                Expr::Substring { expr, .. } => walk(expr, out),
                Expr::Aggregate { arg, .. } => {
                    if let Some(a) = arg {
                        walk(a, out);
                    }
                }
            }
        }
        walk(self, &mut out);
        out
    }
}

impl fmt::Display for Expr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Column { table: Some(t), name } => write!(f, "{t}.{name}"),
            Expr::Column { table: None, name } => write!(f, "{name}"),
            Expr::Literal(v) => write!(f, "{v}"),
            Expr::Param(idx) => write!(f, "${}", idx + 1),
            Expr::Binary { left, op, right } => write!(f, "({left} {op} {right})"),
            Expr::Not(e) => write!(f, "NOT ({e})"),
            Expr::InList { expr, list, negated } => {
                let items: Vec<String> = list.iter().map(|v| v.to_string()).collect();
                let not = if *negated { " NOT" } else { "" };
                write!(f, "{expr}{not} IN ({})", items.join(", "))
            }
            Expr::InListParam { expr, items, negated } => {
                let items: Vec<String> = items
                    .iter()
                    .map(|it| match it {
                        InListItem::Lit(v) => v.to_string(),
                        InListItem::Param(idx) => format!("${}", idx + 1),
                    })
                    .collect();
                let not = if *negated { " NOT" } else { "" };
                write!(f, "{expr}{not} IN ({})", items.join(", "))
            }
            Expr::Between { expr, low, high } => write!(f, "{expr} BETWEEN {low} AND {high}"),
            Expr::Like { expr, pattern, negated } => {
                let not = if *negated { " NOT" } else { "" };
                write!(f, "{expr}{not} LIKE '{pattern}'")
            }
            Expr::IsNull { expr, negated } => {
                let not = if *negated { " NOT" } else { "" };
                write!(f, "{expr} IS{not} NULL")
            }
            Expr::Substring { expr, start, len } => {
                write!(f, "SUBSTRING({expr}, {start}, {len})")
            }
            Expr::Aggregate { func, arg, distinct } => {
                let d = if *distinct { "DISTINCT " } else { "" };
                match arg {
                    Some(a) => write!(f, "{func}({d}{a})"),
                    None => write!(f, "{func}(*)"),
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_conjuncts_flattens_and_tree() {
        let e = Expr::col("a").and(Expr::col("b")).and(Expr::col("c"));
        let parts = e.split_conjuncts();
        assert_eq!(parts.len(), 3);
    }

    #[test]
    fn split_conjuncts_stops_at_or() {
        let or = Expr::Binary {
            left: Box::new(Expr::col("a")),
            op: BinaryOp::Or,
            right: Box::new(Expr::col("b")),
        };
        let e = or.clone().and(Expr::col("c"));
        let parts = e.split_conjuncts();
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0], &or);
    }

    #[test]
    fn contains_aggregate_sees_nested() {
        let e = Expr::Binary {
            left: Box::new(Expr::Aggregate {
                func: AggFunc::Count,
                arg: None,
                distinct: false,
            }),
            op: BinaryOp::Gt,
            right: Box::new(Expr::Literal(Value::Int(5))),
        };
        assert!(e.contains_aggregate());
        assert!(!Expr::col("x").contains_aggregate());
    }

    #[test]
    fn columns_collects_all_references() {
        let e = Expr::Substring {
            expr: Box::new(Expr::qcol("customer", "c_phone")),
            start: 1,
            len: 2,
        };
        let cols = e.columns();
        assert_eq!(cols.len(), 1);
        assert_eq!(cols[0].1, "c_phone");
    }

    #[test]
    fn display_renders_readable_sql() {
        let e = Expr::InList {
            expr: Box::new(Expr::Substring {
                expr: Box::new(Expr::col("c_phone")),
                start: 1,
                len: 2,
            }),
            list: vec![Value::Str("20".into()), Value::Str("40".into())],
            negated: false,
        };
        assert_eq!(e.to_string(), "SUBSTRING(c_phone, 1, 2) IN ('20', '40')");
    }

    #[test]
    fn comparison_classifier() {
        assert!(BinaryOp::Eq.is_comparison());
        assert!(!BinaryOp::And.is_comparison());
        assert!(!BinaryOp::Add.is_comparison());
    }
}
