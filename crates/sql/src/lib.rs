//! SQL front-end for the QPE HTAP reproduction.
//!
//! This crate provides the shared query representation consumed by both HTAP
//! engines (the row-oriented TP engine and the column-oriented AP engine):
//!
//! * [`lexer`] — a hand-written tokenizer for the SQL subset,
//! * [`ast`] — the abstract syntax tree produced by the parser,
//! * [`parser`] — a recursive-descent parser covering the workloads the paper
//!   evaluates (multi-way joins, conjunctive predicates, `SUBSTRING`, `IN`,
//!   aggregates, `ORDER BY` / `LIMIT` / `OFFSET`),
//! * [`catalog`] — the schema-metadata interface the binder resolves against,
//! * [`binder`] — name resolution and predicate classification, producing a
//!   [`binder::BoundQuery`] that optimizers consume,
//! * [`value`] — the runtime value model shared with the execution engines.
//!
//! The subset is deliberately scoped to what the paper's evaluation needs
//! (Section IV: join queries and top-N queries over the TPC-H schema) rather
//! than full SQL; the parser rejects anything outside that subset with a
//! descriptive [`SqlError`].

pub mod ast;
pub mod binder;
pub mod catalog;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod value;

pub use ast::{Expr, OrderByItem, SelectStatement};
pub use binder::{BoundExpr, BoundQuery, Binder, ColumnRef, EquiJoin, TableFilter};
pub use catalog::{Catalog, ColumnDef, DataType, TableDef};
pub use error::SqlError;
pub use parser::parse_select;
pub use value::Value;
