//! Schema-metadata interface the binder resolves names against.
//!
//! The HTAP crate implements [`Catalog`] for its TPC-H database; keeping the
//! trait here lets the SQL front-end stay storage-agnostic.

use serde::{Deserialize, Serialize};

/// Column data types known to the engines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// 64-bit float.
    Float,
    /// Variable-length UTF-8 string.
    Str,
    /// Date (days since epoch).
    Date,
}

/// Definition of a single column.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ColumnDef {
    /// Column name (lowercase, e.g. `c_phone`).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Number of distinct values, used for selectivity estimation. Kept in
    /// the catalog (rather than engine statistics) because both optimizers
    /// share it.
    pub ndv: u64,
}

/// Definition of a single table.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TableDef {
    /// Table name (lowercase, e.g. `customer`).
    pub name: String,
    /// Ordered column definitions.
    pub columns: Vec<ColumnDef>,
    /// Total row count.
    pub row_count: u64,
    /// Column names that have a TP-side secondary index (the primary key
    /// always does). The AP engine has no indexes — a key asymmetry the paper
    /// leans on.
    pub indexed_columns: Vec<String>,
    /// Name of the primary-key column.
    pub primary_key: String,
}

impl TableDef {
    /// Index of `column` in this table, if present.
    pub fn column_index(&self, column: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name == column)
    }

    /// Definition of `column`, if present.
    pub fn column(&self, column: &str) -> Option<&ColumnDef> {
        self.columns.iter().find(|c| c.name == column)
    }

    /// Whether the TP engine has an index (primary or secondary) usable for
    /// equality lookups on `column`.
    pub fn has_index(&self, column: &str) -> bool {
        self.primary_key == column || self.indexed_columns.iter().any(|c| c == column)
    }
}

/// The metadata interface the binder needs.
pub trait Catalog {
    /// Look up a table by (lowercase) name.
    fn table(&self, name: &str) -> Option<&TableDef>;

    /// All table names, for error messages and wildcard expansion order.
    fn table_names(&self) -> Vec<String>;
}

/// A trivial in-memory catalog, useful in tests and as the schema container
/// inside the HTAP crate.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct MemoryCatalog {
    tables: Vec<TableDef>,
}

impl MemoryCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds (or replaces) a table definition.
    pub fn add_table(&mut self, def: TableDef) {
        if let Some(existing) = self.tables.iter_mut().find(|t| t.name == def.name) {
            *existing = def;
        } else {
            self.tables.push(def);
        }
    }

    /// Mutable access to a table definition (used when the user creates an
    /// index at runtime, as in the paper's "additional user context").
    pub fn table_mut(&mut self, name: &str) -> Option<&mut TableDef> {
        self.tables.iter_mut().find(|t| t.name == name)
    }
}

impl Catalog for MemoryCatalog {
    fn table(&self, name: &str) -> Option<&TableDef> {
        self.tables.iter().find(|t| t.name == name)
    }

    fn table_names(&self) -> Vec<String> {
        self.tables.iter().map(|t| t.name.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> TableDef {
        TableDef {
            name: "customer".into(),
            columns: vec![
                ColumnDef { name: "c_custkey".into(), data_type: DataType::Int, ndv: 1000 },
                ColumnDef { name: "c_phone".into(), data_type: DataType::Str, ndv: 1000 },
            ],
            row_count: 1000,
            indexed_columns: vec!["c_phone".into()],
            primary_key: "c_custkey".into(),
        }
    }

    #[test]
    fn column_lookup() {
        let t = sample_table();
        assert_eq!(t.column_index("c_phone"), Some(1));
        assert_eq!(t.column_index("nope"), None);
        assert_eq!(t.column("c_custkey").unwrap().data_type, DataType::Int);
    }

    #[test]
    fn primary_key_counts_as_index() {
        let t = sample_table();
        assert!(t.has_index("c_custkey"));
        assert!(t.has_index("c_phone"));
        assert!(!t.has_index("c_mktsegment"));
    }

    #[test]
    fn memory_catalog_add_and_replace() {
        let mut cat = MemoryCatalog::new();
        cat.add_table(sample_table());
        assert!(cat.table("customer").is_some());
        let mut replacement = sample_table();
        replacement.row_count = 5;
        cat.add_table(replacement);
        assert_eq!(cat.table("customer").unwrap().row_count, 5);
        assert_eq!(cat.table_names(), vec!["customer".to_string()]);
    }

    #[test]
    fn table_mut_allows_index_creation() {
        let mut cat = MemoryCatalog::new();
        cat.add_table(sample_table());
        cat.table_mut("customer")
            .unwrap()
            .indexed_columns
            .push("c_mktsegment".into());
        assert!(cat.table("customer").unwrap().has_index("c_mktsegment"));
    }
}
