//! Error type shared by the lexer, parser and binder.

use std::fmt;

/// An error produced while lexing, parsing or binding a SQL statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SqlError {
    /// The lexer met a character it cannot start a token with.
    Lex {
        /// Byte offset into the input.
        pos: usize,
        /// Human-readable description.
        message: String,
    },
    /// The parser met an unexpected token.
    Parse {
        /// Byte offset of the offending token.
        pos: usize,
        /// Human-readable description.
        message: String,
    },
    /// Name resolution failed (unknown table/column, ambiguous reference,
    /// type mismatch).
    Bind(String),
    /// The statement is valid SQL but outside the supported subset.
    Unsupported(String),
    /// A parameter placeholder appeared in a position whose plan shape
    /// depends on the concrete value (`LIMIT` / `OFFSET`), so the statement
    /// cannot be prepared parametrically. Structured so clients can
    /// distinguish "inline this value" from a malformed statement.
    ParamNotSupported {
        /// The clause that cannot take a placeholder.
        clause: &'static str,
    },
}

impl SqlError {
    /// Convenience constructor for parse errors.
    pub fn parse(pos: usize, message: impl Into<String>) -> Self {
        SqlError::Parse {
            pos,
            message: message.into(),
        }
    }

    /// Convenience constructor for bind errors.
    pub fn bind(message: impl Into<String>) -> Self {
        SqlError::Bind(message.into())
    }
}

impl fmt::Display for SqlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SqlError::Lex { pos, message } => write!(f, "lex error at byte {pos}: {message}"),
            SqlError::Parse { pos, message } => write!(f, "parse error at byte {pos}: {message}"),
            SqlError::Bind(message) => write!(f, "bind error: {message}"),
            SqlError::Unsupported(message) => write!(f, "unsupported SQL: {message}"),
            SqlError::ParamNotSupported { clause } => write!(
                f,
                "parameter placeholders are not supported in {clause}: the plan \
                 shape depends on the concrete value, so it cannot be cached \
                 parametrically — inline the value instead"
            ),
        }
    }
}

impl std::error::Error for SqlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let err = SqlError::parse(17, "expected FROM");
        assert_eq!(err.to_string(), "parse error at byte 17: expected FROM");
    }

    #[test]
    fn display_bind() {
        let err = SqlError::bind("unknown column c_foo");
        assert_eq!(err.to_string(), "bind error: unknown column c_foo");
    }

    #[test]
    fn display_unsupported() {
        let err = SqlError::Unsupported("window functions".into());
        assert_eq!(err.to_string(), "unsupported SQL: window functions");
    }
}
