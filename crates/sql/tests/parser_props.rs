//! Property-based tests for the SQL front-end: generated expressions must
//! survive a display → reparse round trip, and the lexer/parser must never
//! panic on arbitrary input.

use proptest::prelude::*;
use qpe_sql::ast::{BinaryOp, Expr};
use qpe_sql::lexer::tokenize;
use qpe_sql::parser::parse_select;
use qpe_sql::value::Value;

/// Strategy for literal values that print-parse cleanly.
fn literal() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-10_000i64..10_000).prop_map(Value::Int),
        "[a-z][a-z0-9 ]{0,12}".prop_map(Value::Str),
    ]
}

/// Strategy for column names resembling TPC-H.
fn column() -> impl Strategy<Value = Expr> {
    "[a-z]_[a-z]{3,10}".prop_map(|name| Expr::Column { table: None, name })
}

/// Strategy for comparison operators.
fn cmp_op() -> impl Strategy<Value = BinaryOp> {
    prop_oneof![
        Just(BinaryOp::Eq),
        Just(BinaryOp::NotEq),
        Just(BinaryOp::Lt),
        Just(BinaryOp::LtEq),
        Just(BinaryOp::Gt),
        Just(BinaryOp::GtEq),
    ]
}

/// Leaf predicates.
fn predicate_leaf() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (column(), cmp_op(), literal()).prop_map(|(c, op, v)| Expr::Binary {
            left: Box::new(c),
            op,
            right: Box::new(Expr::Literal(v)),
        }),
        (column(), prop::collection::vec(literal(), 1..5), any::<bool>()).prop_map(
            |(c, list, negated)| Expr::InList {
                expr: Box::new(c),
                list,
                negated,
            }
        ),
        (column(), any::<bool>()).prop_map(|(c, negated)| Expr::IsNull {
            expr: Box::new(c),
            negated,
        }),
        (column(), 1i64..5, 0i64..8).prop_map(|(c, start, len)| Expr::Binary {
            left: Box::new(Expr::Substring {
                expr: Box::new(c),
                start,
                len,
            }),
            op: BinaryOp::Eq,
            right: Box::new(Expr::Literal(Value::Str("xy".into()))),
        }),
    ]
}

/// Boolean combinations up to depth 3.
fn predicate() -> impl Strategy<Value = Expr> {
    predicate_leaf().prop_recursive(3, 16, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Binary {
                left: Box::new(a),
                op: BinaryOp::And,
                right: Box::new(b),
            }),
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Expr::Binary {
                left: Box::new(a),
                op: BinaryOp::Or,
                right: Box::new(b),
            }),
            inner.prop_map(|e| Expr::Not(Box::new(e))),
        ]
    })
}

proptest! {
    /// Rendering a generated predicate into a WHERE clause and reparsing it
    /// must produce a semantically identical statement (modulo the
    /// parenthesization Display inserts, which reparsing absorbs).
    #[test]
    fn display_reparse_roundtrip(pred in predicate()) {
        let sql = format!("SELECT * FROM t WHERE {pred}");
        let stmt = parse_select(&sql).unwrap_or_else(|e| panic!("reparse failed: {e}\n{sql}"));
        let reparsed = stmt.selection.expect("where clause survives");
        // Displays must agree after one round trip (Display is canonical).
        prop_assert_eq!(pred.to_string(), reparsed.to_string());
    }

    /// The lexer never panics and either tokenizes or errors cleanly.
    #[test]
    fn lexer_total(input in ".{0,80}") {
        let _ = tokenize(&input);
    }

    /// The parser never panics on arbitrary ASCII-ish garbage.
    #[test]
    fn parser_total(input in "[ -~]{0,80}") {
        let _ = parse_select(&input);
    }

    /// split_conjuncts returns at least one conjunct and all conjuncts are
    /// sub-expressions (re-ANDing them preserves the display).
    #[test]
    fn split_conjuncts_nonempty(pred in predicate()) {
        let parts = pred.split_conjuncts();
        prop_assert!(!parts.is_empty());
    }

    /// Integer literals of any magnitude survive lexing.
    #[test]
    fn int_literal_roundtrip(v in any::<i32>()) {
        let sql = format!("SELECT * FROM t WHERE a = {v}");
        let stmt = parse_select(&sql).expect("parses");
        let shown = stmt.selection.unwrap().to_string();
        prop_assert!(shown.contains(&v.to_string()));
    }
}
