//! Panic audit of the SQL front end: `parse_statement` and
//! `bind_statement` must be *total* — any input, however malformed,
//! truncated or adversarially nested, either parses/binds or returns a
//! structured [`SqlError`]. The process must never abort (panic, stack
//! overflow) on data that arrives as a string.

use proptest::prelude::*;
use qpe_sql::binder::Binder;
use qpe_sql::catalog::{ColumnDef, DataType, MemoryCatalog, TableDef};
use qpe_sql::parser::parse_statement;

fn catalog() -> MemoryCatalog {
    let mut cat = MemoryCatalog::new();
    cat.add_table(TableDef {
        name: "customer".into(),
        columns: vec![
            ColumnDef { name: "c_custkey".into(), data_type: DataType::Int, ndv: 100 },
            ColumnDef { name: "c_name".into(), data_type: DataType::Str, ndv: 100 },
            ColumnDef { name: "c_acctbal".into(), data_type: DataType::Float, ndv: 90 },
            ColumnDef { name: "c_date".into(), data_type: DataType::Date, ndv: 50 },
        ],
        row_count: 100,
        indexed_columns: vec![],
        primary_key: "c_custkey".into(),
    });
    cat
}

/// Statements that are valid against the catalog above — the seeds the
/// truncation/mutation fuzzers chop up.
const SEEDS: [&str; 7] = [
    "SELECT c_name, SUM(c_acctbal) FROM customer WHERE c_custkey BETWEEN 3 AND 9 \
     GROUP BY c_name ORDER BY c_name LIMIT 5",
    "SELECT * FROM customer WHERE c_name LIKE 'a%b' OR NOT c_acctbal < 10.5",
    "SELECT COUNT(*) FROM customer WHERE c_custkey IN (1, 2, 3) AND c_date >= DATE '1995-03-15'",
    "INSERT INTO customer (c_custkey, c_name, c_acctbal, c_date) \
     VALUES (1, 'x', 2.5, DATE '1996-01-02')",
    "UPDATE customer SET c_acctbal = c_acctbal + 1.5 WHERE c_custkey = 7",
    "DELETE FROM customer WHERE c_name = 'gone' AND c_acctbal <= 0",
    "SELECT c_name FROM customer WHERE c_custkey = ? AND c_acctbal < $2 AND c_name = $1",
];

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary printable garbage through the whole front end.
    #[test]
    fn front_end_total_on_garbage(input in "[ -~]{0,120}") {
        let _ = parse_statement(&input);
        let cat = catalog();
        let _ = Binder::new(&cat).bind_statement(&input);
    }

    /// Every prefix-truncation of a valid statement parses or errors
    /// cleanly — the "connection died mid-statement" shape.
    #[test]
    fn front_end_total_on_truncations(seed_idx in 0usize..7, cut in 0usize..120) {
        let seed = SEEDS[seed_idx];
        let mut cut = cut.min(seed.len());
        // Respect char boundaries (seeds are ASCII, but stay robust).
        while !seed.is_char_boundary(cut) {
            cut -= 1;
        }
        let input = &seed[..cut];
        let _ = parse_statement(input);
        let cat = catalog();
        let _ = Binder::new(&cat).bind_statement(input);
    }

    /// Single-byte mutations of valid statements: flip one byte to any
    /// printable character and push the result through parse + bind.
    #[test]
    fn front_end_total_on_mutations(
        seed_idx in 0usize..7,
        at in 0usize..120,
        with in 0x20u8..0x7f,
    ) {
        let seed = SEEDS[seed_idx];
        let mut bytes = seed.as_bytes().to_vec();
        let at = at.min(bytes.len().saturating_sub(1));
        bytes[at] = with;
        if let Ok(input) = std::str::from_utf8(&bytes) {
            let _ = parse_statement(input);
            let cat = catalog();
            let _ = Binder::new(&cat).bind_statement(input);
        }
    }
}

/// Pathological nesting must come back as a structured error, not a stack
/// overflow: parenthesized expressions re-enter the grammar recursively,
/// so the parser bounds the depth.
#[test]
fn deep_paren_nesting_is_a_structured_error() {
    let nested = format!(
        "SELECT * FROM customer WHERE {}c_custkey = 1{}",
        "(".repeat(10_000),
        ")".repeat(10_000)
    );
    let err = parse_statement(&nested).expect_err("bounded depth");
    assert!(err.to_string().contains("depth"), "unexpected error: {err}");

    // Moderate nesting (well under the bound) still parses.
    let ok = format!(
        "SELECT * FROM customer WHERE {}c_custkey = 1{}",
        "(".repeat(40),
        ")".repeat(40)
    );
    assert!(parse_statement(&ok).is_ok());
}

/// Chained NOT is parsed iteratively and depth-bounded: a pathological
/// chain is rejected with a structured error before it can build an AST
/// deep enough to overflow any downstream recursion (binder, drop glue).
#[test]
fn deep_not_chain_never_overflows() {
    let sql = format!(
        "SELECT * FROM customer WHERE {} c_custkey = 1",
        "NOT ".repeat(50_000)
    );
    let err = parse_statement(&sql).expect_err("bounded NOT depth");
    assert!(err.to_string().contains("depth"), "unexpected error: {err}");

    // A chain a human might actually write parses and binds cleanly.
    let ok = format!(
        "SELECT * FROM customer WHERE {} c_custkey = 1",
        "NOT ".repeat(9)
    );
    let cat = catalog();
    assert!(parse_statement(&ok).is_ok());
    assert!(Binder::new(&cat).bind_statement(&ok).is_ok());
}

/// An unresolvable wildcard target surfaces as a bind error end to end.
#[test]
fn wildcard_on_unknown_table_is_a_bind_error() {
    let cat = catalog();
    let err = Binder::new(&cat)
        .bind_statement("SELECT * FROM no_such_table")
        .expect_err("unknown table");
    assert!(err.to_string().contains("no_such_table"), "unexpected error: {err}");
}
