//! Property-based tests for the HTAP substrate: cost-model and plan-shape
//! invariants over randomized single- and two-table queries.

use proptest::prelude::*;
use qpe_htap::engine::{EngineKind, HtapSystem};
use qpe_htap::plan::NodeType;
use qpe_htap::tpch::TpchConfig;
use std::sync::OnceLock;

fn system() -> &'static HtapSystem {
    static SYS: OnceLock<HtapSystem> = OnceLock::new();
    SYS.get_or_init(|| HtapSystem::new(&TpchConfig::with_scale(0.002)))
}

/// Strategy over simple filtered single-table queries.
fn single_table_sql() -> impl Strategy<Value = String> {
    (
        prop_oneof![
            Just(("customer", "c_custkey", "c_acctbal")),
            Just(("orders", "o_orderkey", "o_totalprice")),
            Just(("supplier", "s_suppkey", "s_acctbal")),
        ],
        1i64..500,
        any::<bool>(),
    )
        .prop_map(|((table, key, num), k, use_range)| {
            if use_range {
                format!("SELECT COUNT(*) FROM {table} WHERE {key} < {k}")
            } else {
                format!("SELECT COUNT(*), AVG({num}) FROM {table} WHERE {key} = {k}")
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 32, ..ProptestConfig::default() })]

    /// AP plans never contain index operators; TP plans never contain hash
    /// joins — the engine asymmetry is structural, not incidental.
    #[test]
    fn engine_operator_vocabularies_are_disjoint(sql in single_table_sql()) {
        let sys = system();
        let bound = sys.bind(&sql).expect("binds");
        let tp = sys.explain(&bound, EngineKind::Tp).expect("tp plan");
        let ap = sys.explain(&bound, EngineKind::Ap).expect("ap plan");
        prop_assert_eq!(ap.count_type(NodeType::IndexScan), 0);
        prop_assert_eq!(ap.count_type(NodeType::IndexNLJoin), 0);
        prop_assert_eq!(tp.count_type(NodeType::HashJoin), 0);
        prop_assert_eq!(tp.count_type(NodeType::Hash), 0);
        prop_assert_eq!(tp.count_type(NodeType::TopNSort), 0);
    }

    /// Costs are monotone up the plan tree for both engines.
    #[test]
    fn costs_monotone(sql in single_table_sql()) {
        let sys = system();
        let bound = sys.bind(&sql).expect("binds");
        for engine in [EngineKind::Tp, EngineKind::Ap] {
            let plan = sys.explain(&bound, engine).expect("plans");
            fn check(n: &qpe_htap::plan::PlanNode) -> bool {
                n.children.iter().all(|c| n.total_cost >= c.total_cost && check(c))
            }
            prop_assert!(check(&plan), "{engine} cost not monotone for {sql}");
        }
    }

    /// Executing a plan twice yields identical rows and counters (the
    /// engines are pure functions of the database).
    #[test]
    fn execution_is_pure(sql in single_table_sql()) {
        let sys = system();
        let a = sys.run_sql(&sql).expect("first run");
        let b = sys.run_sql(&sql).expect("second run");
        prop_assert_eq!(a.tp.rows, b.tp.rows);
        prop_assert_eq!(a.tp.counters, b.tp.counters);
        prop_assert_eq!(a.ap.counters, b.ap.counters);
        prop_assert_eq!(a.tp.latency_ns, b.tp.latency_ns);
    }

    /// EXPLAIN JSON always carries the paper's mandatory fields on every
    /// node.
    #[test]
    fn explain_json_shape(sql in single_table_sql()) {
        let sys = system();
        let bound = sys.bind(&sql).expect("binds");
        for engine in [EngineKind::Tp, EngineKind::Ap] {
            let plan = sys.explain(&bound, engine).expect("plans");
            fn check(v: &serde_json::Value) -> bool {
                v.get("Node Type").map(|t| t.is_string()).unwrap_or(false)
                    && v.get("Total Cost").map(|c| c.is_number()).unwrap_or(false)
                    && v.get("Plan Rows").map(|r| r.is_number()).unwrap_or(false)
                    && v.get("Plans")
                        .map(|p| p.as_array().map(|a| a.iter().all(check)).unwrap_or(false))
                        .unwrap_or(true)
            }
            prop_assert!(check(&plan.explain_json()));
        }
    }

    /// COUNT(*) equals the number of rows a bare projection of the same
    /// predicate returns (aggregate consistency).
    #[test]
    fn count_matches_materialized_rows(k in 1i64..300) {
        let sys = system();
        let count = sys
            .run_sql(&format!("SELECT COUNT(*) FROM customer WHERE c_custkey < {k}"))
            .expect("count runs");
        let rows = sys
            .run_sql(&format!("SELECT c_custkey FROM customer WHERE c_custkey < {k}"))
            .expect("select runs");
        let n = count.tp.rows[0][0].as_int().unwrap();
        prop_assert_eq!(n as usize, rows.tp.rows.len());
    }
}
