//! TPC-H schema and deterministic synthetic data generation.
//!
//! The paper's knowledge base and test workloads are synthesized over the
//! TPC-H schema (Section IV), executed on a 100 GB instance. We generate the
//! same eight tables at a configurable scale factor; experiments default to a
//! laptop-scale factor while the latency model reports paper-scale shapes.
//!
//! Generation is fully deterministic: each table derives its own seed from
//! [`TpchConfig::seed`], so regenerating any one table is reproducible
//! independently of the others.

use qpe_sql::catalog::{ColumnDef, DataType, MemoryCatalog, TableDef};
use qpe_sql::value::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// The 25 TPC-H nation names (lowercased, as the paper's Example 1 queries
/// them: `n_name = 'egypt'`).
pub const NATIONS: [&str; 25] = [
    "algeria", "argentina", "brazil", "canada", "egypt", "ethiopia", "france", "germany",
    "india", "indonesia", "iran", "iraq", "japan", "jordan", "kenya", "morocco", "mozambique",
    "peru", "china", "romania", "saudi arabia", "vietnam", "russia", "united kingdom",
    "united states",
];

/// The five TPC-H regions.
pub const REGIONS: [&str; 5] = ["africa", "america", "asia", "europe", "middle east"];

/// The five market segments (lowercased; Example 1 uses `'machinery'`).
pub const MKT_SEGMENTS: [&str; 5] =
    ["automobile", "building", "furniture", "machinery", "household"];

/// Order status domain. TPC-H uses `F`, `O`, `P`; the paper's Example 1
/// filters `o_orderstatus = 'p'`, the rarest status.
pub const ORDER_STATUS: [&str; 3] = ["f", "o", "p"];

/// Order priorities.
pub const ORDER_PRIORITIES: [&str; 5] =
    ["1-urgent", "2-high", "3-medium", "4-not specified", "5-low"];

/// Part type adjectives used to build `p_type`.
pub const PART_TYPES: [&str; 6] = ["standard", "small", "medium", "large", "economy", "promo"];

/// Configuration for the generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TpchConfig {
    /// Scale factor. SF 1.0 is the canonical 1 GB TPC-H (customer 150k rows,
    /// orders 1.5M, lineitem ~6M). Experiments default to 0.01.
    pub scale_factor: f64,
    /// Master RNG seed.
    pub seed: u64,
    /// Extra secondary indexes to create on the TP side, as
    /// `(table, column)` pairs. The paper's running example adds an index on
    /// `customer.c_phone`.
    pub extra_indexes: Vec<(String, String)>,
}

impl Default for TpchConfig {
    fn default() -> Self {
        TpchConfig {
            scale_factor: 0.01,
            seed: 42,
            extra_indexes: vec![("customer".into(), "c_phone".into())],
        }
    }
}

impl TpchConfig {
    /// Configuration with a given scale factor and default seed/indexes.
    pub fn with_scale(scale_factor: f64) -> Self {
        TpchConfig {
            scale_factor,
            ..Default::default()
        }
    }

    fn rows(&self, base: u64) -> u64 {
        ((base as f64 * self.scale_factor).round() as u64).max(1)
    }

    /// Row counts per table at this scale factor.
    pub fn cardinalities(&self) -> TableCardinalities {
        TableCardinalities {
            region: 5,
            nation: 25,
            supplier: self.rows(10_000),
            part: self.rows(200_000),
            partsupp: self.rows(800_000),
            customer: self.rows(150_000),
            orders: self.rows(1_500_000),
            lineitem: self.rows(6_000_000),
        }
    }
}

/// Row counts for the eight tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TableCardinalities {
    /// `region` rows (always 5).
    pub region: u64,
    /// `nation` rows (always 25).
    pub nation: u64,
    /// `supplier` rows.
    pub supplier: u64,
    /// `part` rows.
    pub part: u64,
    /// `partsupp` rows.
    pub partsupp: u64,
    /// `customer` rows.
    pub customer: u64,
    /// `orders` rows.
    pub orders: u64,
    /// `lineitem` rows.
    pub lineitem: u64,
}

/// A generated table: name plus column-major data.
#[derive(Debug, Clone)]
pub struct GeneratedTable {
    /// Table name.
    pub name: String,
    /// Column-major values; `columns[i][r]` is row `r` of column `i`.
    pub columns: Vec<Vec<Value>>,
}

impl GeneratedTable {
    /// Number of rows.
    pub fn row_count(&self) -> usize {
        self.columns.first().map(|c| c.len()).unwrap_or(0)
    }
}

/// Generates the full eight-table TPC-H dataset plus its catalog.
pub fn generate(config: &TpchConfig) -> (MemoryCatalog, Vec<GeneratedTable>) {
    let card = config.cardinalities();
    let tables = vec![
        gen_region(),
        gen_nation(),
        gen_supplier(config, card.supplier),
        gen_part(config, card.part),
        gen_partsupp(config, card.partsupp, card.part, card.supplier),
        gen_customer(config, card.customer),
        gen_orders(config, card.orders, card.customer),
        gen_lineitem(config, card.lineitem, card.orders, card.part, card.supplier),
    ];
    let mut catalog = MemoryCatalog::new();
    for t in &tables {
        catalog.add_table(table_def(&t.name, t, config));
    }
    (catalog, tables)
}

/// Derives a per-table RNG from the master seed so tables are independent.
fn table_rng(config: &TpchConfig, table: &str) -> StdRng {
    let mut seed = config.seed;
    for b in table.bytes() {
        seed = seed.wrapping_mul(0x100000001b3).wrapping_add(b as u64);
    }
    StdRng::seed_from_u64(seed)
}

fn gen_region() -> GeneratedTable {
    let keys: Vec<Value> = (0..5).map(Value::Int).collect();
    let names: Vec<Value> = REGIONS.iter().map(|s| Value::Str(s.to_string())).collect();
    GeneratedTable {
        name: "region".into(),
        columns: vec![keys, names],
    }
}

fn gen_nation() -> GeneratedTable {
    let keys: Vec<Value> = (0..25).map(Value::Int).collect();
    let names: Vec<Value> = NATIONS.iter().map(|s| Value::Str(s.to_string())).collect();
    let regions: Vec<Value> = (0..25).map(|i| Value::Int(i % 5)).collect();
    GeneratedTable {
        name: "nation".into(),
        columns: vec![keys, names, regions],
    }
}

fn gen_supplier(config: &TpchConfig, n: u64) -> GeneratedTable {
    let mut rng = table_rng(config, "supplier");
    let mut keys = Vec::with_capacity(n as usize);
    let mut names = Vec::with_capacity(n as usize);
    let mut nations = Vec::with_capacity(n as usize);
    let mut acctbals = Vec::with_capacity(n as usize);
    for i in 0..n {
        keys.push(Value::Int(i as i64 + 1));
        names.push(Value::Str(format!("supplier#{:09}", i + 1)));
        nations.push(Value::Int(rng.gen_range(0..25)));
        acctbals.push(Value::Float(round2(rng.gen_range(-999.99..9999.99))));
    }
    GeneratedTable {
        name: "supplier".into(),
        columns: vec![keys, names, nations, acctbals],
    }
}

fn gen_part(config: &TpchConfig, n: u64) -> GeneratedTable {
    let mut rng = table_rng(config, "part");
    let mut keys = Vec::with_capacity(n as usize);
    let mut names = Vec::with_capacity(n as usize);
    let mut types = Vec::with_capacity(n as usize);
    let mut sizes = Vec::with_capacity(n as usize);
    let mut prices = Vec::with_capacity(n as usize);
    for i in 0..n {
        keys.push(Value::Int(i as i64 + 1));
        names.push(Value::Str(format!("part#{:09}", i + 1)));
        let ty = PART_TYPES[rng.gen_range(0..PART_TYPES.len())];
        types.push(Value::Str(ty.to_string()));
        sizes.push(Value::Int(rng.gen_range(1..=50)));
        // TPC-H retail price formula gives prices ~ [901, 2098]
        prices.push(Value::Float(round2(
            900.0 + ((i % 1000) as f64) / 10.0 + rng.gen_range(0.0..200.0),
        )));
    }
    GeneratedTable {
        name: "part".into(),
        columns: vec![keys, names, types, sizes, prices],
    }
}

fn gen_partsupp(config: &TpchConfig, n: u64, parts: u64, suppliers: u64) -> GeneratedTable {
    let mut rng = table_rng(config, "partsupp");
    let mut pkeys = Vec::with_capacity(n as usize);
    let mut skeys = Vec::with_capacity(n as usize);
    let mut qtys = Vec::with_capacity(n as usize);
    let mut costs = Vec::with_capacity(n as usize);
    for i in 0..n {
        pkeys.push(Value::Int((i % parts) as i64 + 1));
        skeys.push(Value::Int(rng.gen_range(0..suppliers) as i64 + 1));
        qtys.push(Value::Int(rng.gen_range(1..10_000)));
        costs.push(Value::Float(round2(rng.gen_range(1.0..1000.0))));
    }
    GeneratedTable {
        name: "partsupp".into(),
        columns: vec![pkeys, skeys, qtys, costs],
    }
}

fn gen_customer(config: &TpchConfig, n: u64) -> GeneratedTable {
    let mut rng = table_rng(config, "customer");
    let mut keys = Vec::with_capacity(n as usize);
    let mut names = Vec::with_capacity(n as usize);
    let mut nations = Vec::with_capacity(n as usize);
    let mut phones = Vec::with_capacity(n as usize);
    let mut acctbals = Vec::with_capacity(n as usize);
    let mut segments = Vec::with_capacity(n as usize);
    for i in 0..n {
        keys.push(Value::Int(i as i64 + 1));
        names.push(Value::Str(format!("customer#{:09}", i + 1)));
        let nation = rng.gen_range(0..25i64);
        nations.push(Value::Int(nation));
        // Phone country codes span 10..45 so that the paper's Example 1
        // prefixes ('20','40','22','30','39','42','21') are selective but
        // non-empty regardless of nation distribution.
        let cc = 10 + rng.gen_range(0..35i64);
        phones.push(Value::Str(format!(
            "{}-{:03}-{:03}-{:04}",
            cc,
            rng.gen_range(100..1000),
            rng.gen_range(100..1000),
            rng.gen_range(1000..10000)
        )));
        acctbals.push(Value::Float(round2(rng.gen_range(-999.99..9999.99))));
        segments.push(Value::Str(
            MKT_SEGMENTS[rng.gen_range(0..MKT_SEGMENTS.len())].to_string(),
        ));
    }
    GeneratedTable {
        name: "customer".into(),
        columns: vec![keys, names, nations, phones, acctbals, segments],
    }
}

fn gen_orders(config: &TpchConfig, n: u64, customers: u64) -> GeneratedTable {
    let mut rng = table_rng(config, "orders");
    let mut keys = Vec::with_capacity(n as usize);
    let mut custs = Vec::with_capacity(n as usize);
    let mut statuses = Vec::with_capacity(n as usize);
    let mut prices = Vec::with_capacity(n as usize);
    let mut dates = Vec::with_capacity(n as usize);
    let mut priorities = Vec::with_capacity(n as usize);
    // Dates span 1992-01-01 .. 1998-08-02 as in TPC-H.
    let date_lo = qpe_sql::parser::parse_date("1992-01-01").unwrap();
    let date_hi = qpe_sql::parser::parse_date("1998-08-02").unwrap();
    for i in 0..n {
        keys.push(Value::Int(i as i64 + 1));
        custs.push(Value::Int(rng.gen_range(0..customers) as i64 + 1));
        // TPC-H status distribution: ~49% F, ~49% O, ~2% P ("pending" is the
        // rare status Example 1 selects).
        let r: f64 = rng.gen();
        let status = if r < 0.49 {
            "f"
        } else if r < 0.98 {
            "o"
        } else {
            "p"
        };
        statuses.push(Value::Str(status.to_string()));
        prices.push(Value::Float(round2(rng.gen_range(850.0..500_000.0))));
        dates.push(Value::Date(rng.gen_range(date_lo..=date_hi)));
        priorities.push(Value::Str(
            ORDER_PRIORITIES[rng.gen_range(0..ORDER_PRIORITIES.len())].to_string(),
        ));
    }
    GeneratedTable {
        name: "orders".into(),
        columns: vec![keys, custs, statuses, prices, dates, priorities],
    }
}

fn gen_lineitem(
    config: &TpchConfig,
    n: u64,
    orders: u64,
    parts: u64,
    suppliers: u64,
) -> GeneratedTable {
    let mut rng = table_rng(config, "lineitem");
    let mut okeys = Vec::with_capacity(n as usize);
    let mut pkeys = Vec::with_capacity(n as usize);
    let mut skeys = Vec::with_capacity(n as usize);
    let mut qtys = Vec::with_capacity(n as usize);
    let mut prices = Vec::with_capacity(n as usize);
    let mut discounts = Vec::with_capacity(n as usize);
    let mut shipdates = Vec::with_capacity(n as usize);
    let mut statuses = Vec::with_capacity(n as usize);
    let date_lo = qpe_sql::parser::parse_date("1992-01-02").unwrap();
    let date_hi = qpe_sql::parser::parse_date("1998-12-01").unwrap();
    for _ in 0..n {
        okeys.push(Value::Int(rng.gen_range(0..orders) as i64 + 1));
        pkeys.push(Value::Int(rng.gen_range(0..parts) as i64 + 1));
        skeys.push(Value::Int(rng.gen_range(0..suppliers) as i64 + 1));
        qtys.push(Value::Int(rng.gen_range(1..=50)));
        prices.push(Value::Float(round2(rng.gen_range(900.0..105_000.0))));
        discounts.push(Value::Float(round2(rng.gen_range(0.0..0.10))));
        shipdates.push(Value::Date(rng.gen_range(date_lo..=date_hi)));
        statuses.push(Value::Str(
            if rng.gen_bool(0.5) { "o" } else { "f" }.to_string(),
        ));
    }
    GeneratedTable {
        name: "lineitem".into(),
        columns: vec![
            okeys, pkeys, skeys, qtys, prices, discounts, shipdates, statuses,
        ],
    }
}

fn round2(x: f64) -> f64 {
    (x * 100.0).round() / 100.0
}

/// Schema metadata (column names, types, primary keys) per table.
pub fn schema_columns(table: &str) -> Vec<(&'static str, DataType)> {
    match table {
        "region" => vec![("r_regionkey", DataType::Int), ("r_name", DataType::Str)],
        "nation" => vec![
            ("n_nationkey", DataType::Int),
            ("n_name", DataType::Str),
            ("n_regionkey", DataType::Int),
        ],
        "supplier" => vec![
            ("s_suppkey", DataType::Int),
            ("s_name", DataType::Str),
            ("s_nationkey", DataType::Int),
            ("s_acctbal", DataType::Float),
        ],
        "part" => vec![
            ("p_partkey", DataType::Int),
            ("p_name", DataType::Str),
            ("p_type", DataType::Str),
            ("p_size", DataType::Int),
            ("p_retailprice", DataType::Float),
        ],
        "partsupp" => vec![
            ("ps_partkey", DataType::Int),
            ("ps_suppkey", DataType::Int),
            ("ps_availqty", DataType::Int),
            ("ps_supplycost", DataType::Float),
        ],
        "customer" => vec![
            ("c_custkey", DataType::Int),
            ("c_name", DataType::Str),
            ("c_nationkey", DataType::Int),
            ("c_phone", DataType::Str),
            ("c_acctbal", DataType::Float),
            ("c_mktsegment", DataType::Str),
        ],
        "orders" => vec![
            ("o_orderkey", DataType::Int),
            ("o_custkey", DataType::Int),
            ("o_orderstatus", DataType::Str),
            ("o_totalprice", DataType::Float),
            ("o_orderdate", DataType::Date),
            ("o_orderpriority", DataType::Str),
        ],
        "lineitem" => vec![
            ("l_orderkey", DataType::Int),
            ("l_partkey", DataType::Int),
            ("l_suppkey", DataType::Int),
            ("l_quantity", DataType::Int),
            ("l_extendedprice", DataType::Float),
            ("l_discount", DataType::Float),
            ("l_shipdate", DataType::Date),
            ("l_linestatus", DataType::Str),
        ],
        other => panic!("unknown TPC-H table {other}"),
    }
}

/// Primary key column per table. `partsupp` and `lineitem` have composite
/// physical keys in real TPC-H; we index their leading column.
pub fn primary_key(table: &str) -> &'static str {
    match table {
        "region" => "r_regionkey",
        "nation" => "n_nationkey",
        "supplier" => "s_suppkey",
        "part" => "p_partkey",
        "partsupp" => "ps_partkey",
        "customer" => "c_custkey",
        "orders" => "o_orderkey",
        "lineitem" => "l_orderkey",
        other => panic!("unknown TPC-H table {other}"),
    }
}

fn table_def(table: &str, data: &GeneratedTable, config: &TpchConfig) -> TableDef {
    let cols = schema_columns(table);
    let columns = cols
        .iter()
        .enumerate()
        .map(|(i, (name, dt))| {
            // NDV from data (cheap at our scales) keeps catalog honest.
            let stats = crate::stats::ColumnStats::collect(data.columns[i].iter());
            ColumnDef {
                name: name.to_string(),
                data_type: *dt,
                ndv: stats.ndv,
            }
        })
        .collect();
    let indexed_columns = config
        .extra_indexes
        .iter()
        .filter(|(t, _)| t == table)
        .map(|(_, c)| c.clone())
        .collect();
    TableDef {
        name: table.to_string(),
        columns,
        row_count: data.row_count() as u64,
        indexed_columns,
        primary_key: primary_key(table).to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_sql::catalog::Catalog;

    #[test]
    fn generates_all_eight_tables() {
        let (catalog, tables) = generate(&TpchConfig::with_scale(0.001));
        assert_eq!(tables.len(), 8);
        for t in &tables {
            assert!(catalog.table(&t.name).is_some(), "missing {}", t.name);
            assert_eq!(
                catalog.table(&t.name).unwrap().columns.len(),
                t.columns.len()
            );
        }
    }

    #[test]
    fn cardinalities_scale() {
        let c = TpchConfig::with_scale(0.01).cardinalities();
        assert_eq!(c.customer, 1500);
        assert_eq!(c.orders, 15000);
        assert_eq!(c.nation, 25);
        assert_eq!(c.region, 5);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&TpchConfig::with_scale(0.001));
        let b = generate(&TpchConfig::with_scale(0.001));
        for (ta, tb) in a.1.iter().zip(b.1.iter()) {
            assert_eq!(ta.columns, tb.columns, "table {} differs", ta.name);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = TpchConfig::with_scale(0.001);
        let a = generate(&cfg);
        cfg.seed = 7;
        let b = generate(&cfg);
        let ca = &a.1.iter().find(|t| t.name == "customer").unwrap().columns[3];
        let cb = &b.1.iter().find(|t| t.name == "customer").unwrap().columns[3];
        assert_ne!(ca, cb);
    }

    #[test]
    fn foreign_keys_are_in_range() {
        let (_, tables) = generate(&TpchConfig::with_scale(0.002));
        let customers = tables.iter().find(|t| t.name == "customer").unwrap();
        let orders = tables.iter().find(|t| t.name == "orders").unwrap();
        let n_cust = customers.row_count() as i64;
        for v in &orders.columns[1] {
            let k = v.as_int().unwrap();
            assert!(k >= 1 && k <= n_cust, "o_custkey {k} out of range");
        }
        for v in &customers.columns[2] {
            let k = v.as_int().unwrap();
            assert!((0..25).contains(&k));
        }
    }

    #[test]
    fn order_status_distribution_has_rare_p() {
        let (_, tables) = generate(&TpchConfig::with_scale(0.01));
        let orders = tables.iter().find(|t| t.name == "orders").unwrap();
        let n = orders.row_count() as f64;
        let p_count = orders.columns[2]
            .iter()
            .filter(|v| v.as_str() == Some("p"))
            .count() as f64;
        let frac = p_count / n;
        assert!(frac > 0.005 && frac < 0.05, "P fraction {frac}");
    }

    #[test]
    fn example1_predicates_are_satisfiable() {
        let (_, tables) = generate(&TpchConfig::with_scale(0.01));
        let customers = tables.iter().find(|t| t.name == "customer").unwrap();
        let machinery = customers.columns[5]
            .iter()
            .filter(|v| v.as_str() == Some("machinery"))
            .count();
        assert!(machinery > 0);
        let prefix20 = customers.columns[3]
            .iter()
            .filter(|v| v.as_str().map(|s| s.starts_with("20")) == Some(true))
            .count();
        assert!(prefix20 > 0, "no customer with phone prefix 20");
    }

    #[test]
    fn extra_index_lands_in_catalog() {
        let (catalog, _) = generate(&TpchConfig::default());
        assert!(catalog.table("customer").unwrap().has_index("c_phone"));
        assert!(!catalog.table("customer").unwrap().has_index("c_mktsegment"));
    }

    #[test]
    fn dates_are_in_tpch_range() {
        let (_, tables) = generate(&TpchConfig::with_scale(0.001));
        let orders = tables.iter().find(|t| t.name == "orders").unwrap();
        let lo = qpe_sql::parser::parse_date("1992-01-01").unwrap();
        let hi = qpe_sql::parser::parse_date("1998-08-02").unwrap();
        for v in &orders.columns[4] {
            match v {
                Value::Date(d) => assert!(*d >= lo && *d <= hi),
                other => panic!("expected date, got {other:?}"),
            }
        }
    }
}
