//! The HTAP system facade: one database, two engines, measured outcomes.
//!
//! [`HtapSystem::run_sql`] is the entry point the explanation framework sits
//! on: it binds a query once, optimizes and executes it on *both* engines,
//! verifies the engines agree on the result, and reports per-engine plans,
//! work counters and simulated latencies — the raw material for router
//! training, knowledge-base construction, and explanations.

use crate::exec::{self, Row, WorkCounters};
use crate::latency::LatencyModel;
use crate::opt::{ap, tp, OptError, PlannerCtx};
use crate::plan::PlanNode;
use crate::stats::{DbStats, TableStats};
use crate::storage::StoredTable;
use crate::tpch::{self, TpchConfig};
use qpe_sql::binder::{Binder, BoundQuery};
use qpe_sql::catalog::{Catalog, MemoryCatalog};
use qpe_sql::value::Value;
use qpe_sql::SqlError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Which engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// Row-oriented OLTP engine.
    Tp,
    /// Column-oriented OLAP engine.
    Ap,
}

impl EngineKind {
    /// Paper-style short name: `TP` / `AP`.
    pub fn as_str(&self) -> &'static str {
        match self {
            EngineKind::Tp => "TP",
            EngineKind::Ap => "AP",
        }
    }

    /// The other engine.
    pub fn other(&self) -> EngineKind {
        match self {
            EngineKind::Tp => EngineKind::Ap,
            EngineKind::Ap => EngineKind::Tp,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything that happened when one engine ran the query.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Which engine ran.
    pub engine: EngineKind,
    /// The physical plan.
    pub plan: PlanNode,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Work performed.
    pub counters: WorkCounters,
    /// Simulated latency in nanoseconds (deterministic).
    pub latency_ns: u64,
}

/// Outcome of running one query on both engines.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Original SQL.
    pub sql: String,
    /// The bound query.
    pub bound: BoundQuery,
    /// TP run.
    pub tp: EngineRun,
    /// AP run.
    pub ap: EngineRun,
}

impl QueryOutcome {
    /// The faster engine.
    pub fn winner(&self) -> EngineKind {
        if self.tp.latency_ns <= self.ap.latency_ns {
            EngineKind::Tp
        } else {
            EngineKind::Ap
        }
    }

    /// Loser latency / winner latency (≥ 1).
    pub fn speedup(&self) -> f64 {
        let (w, l) = if self.winner() == EngineKind::Tp {
            (self.tp.latency_ns, self.ap.latency_ns)
        } else {
            (self.ap.latency_ns, self.tp.latency_ns)
        };
        l as f64 / w.max(1) as f64
    }

    /// Run for a specific engine.
    pub fn run(&self, engine: EngineKind) -> &EngineRun {
        match engine {
            EngineKind::Tp => &self.tp,
            EngineKind::Ap => &self.ap,
        }
    }
}

/// Errors from the full bind→plan→execute pipeline.
#[derive(Debug)]
pub enum HtapError {
    /// SQL front-end failure.
    Sql(SqlError),
    /// Planning failure.
    Opt(OptError),
    /// Execution failure.
    Exec(exec::ExecError),
    /// The two engines disagreed on the result — an internal invariant
    /// violation that must surface loudly.
    EngineMismatch {
        /// The query.
        sql: String,
        /// TP row count.
        tp_rows: usize,
        /// AP row count.
        ap_rows: usize,
    },
}

impl From<SqlError> for HtapError {
    fn from(e: SqlError) -> Self {
        HtapError::Sql(e)
    }
}
impl From<OptError> for HtapError {
    fn from(e: OptError) -> Self {
        HtapError::Opt(e)
    }
}
impl From<exec::ExecError> for HtapError {
    fn from(e: exec::ExecError) -> Self {
        HtapError::Exec(e)
    }
}

impl std::fmt::Display for HtapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HtapError::Sql(e) => write!(f, "sql: {e}"),
            HtapError::Opt(e) => write!(f, "optimizer: {e}"),
            HtapError::Exec(e) => write!(f, "executor: {e}"),
            HtapError::EngineMismatch { sql, tp_rows, ap_rows } => write!(
                f,
                "engines disagree on {sql:?}: TP returned {tp_rows} rows, AP {ap_rows}"
            ),
        }
    }
}

impl std::error::Error for HtapError {}

/// The database: catalog, statistics, and dual-format storage.
pub struct Database {
    catalog: MemoryCatalog,
    stats: DbStats,
    tables: HashMap<String, StoredTable>,
    config: TpchConfig,
}

impl Database {
    /// Generates TPC-H data and loads both storage formats.
    pub fn generate(config: &TpchConfig) -> Self {
        let (catalog, generated) = tpch::generate(config);
        let mut stats = DbStats::new();
        let mut tables = HashMap::new();
        for g in &generated {
            stats.insert(TableStats::collect(&g.name, &g.columns));
            let def = catalog.table(&g.name).expect("generated table in catalog");
            tables.insert(g.name.clone(), StoredTable::load(def, g));
        }
        Database {
            catalog,
            stats,
            tables,
            config: config.clone(),
        }
    }

    /// The catalog.
    pub fn catalog(&self) -> &MemoryCatalog {
        &self.catalog
    }

    /// Collected statistics.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    /// The generation config.
    pub fn config(&self) -> &TpchConfig {
        &self.config
    }

    /// Both storage formats for a table.
    pub fn stored_table(&self, name: &str) -> Option<&StoredTable> {
        self.tables.get(name)
    }

    /// Row-store side of a table.
    pub fn row_table(&self, name: &str) -> Option<&crate::storage::RowTable> {
        self.tables.get(name).map(|t| &t.rows)
    }

    /// Creates a TP-side secondary index at runtime (the paper's
    /// "additional index on c_phone" user context). Returns false if the
    /// table/column doesn't exist.
    pub fn create_index(&mut self, table: &str, column: &str) -> bool {
        let Some(def) = self.catalog.table_mut(table) else {
            return false;
        };
        let Some(ci) = def.column_index(column) else {
            return false;
        };
        if !def.indexed_columns.iter().any(|c| c == column) && def.primary_key != column {
            def.indexed_columns.push(column.to_string());
        }
        if let Some(st) = self.tables.get_mut(table) {
            st.rows.create_index(ci);
        }
        true
    }
}

/// The HTAP system: database + latency model + per-engine pipelines.
pub struct HtapSystem {
    db: Database,
    latency: LatencyModel,
}

impl HtapSystem {
    /// Generates data and builds the system.
    pub fn new(config: &TpchConfig) -> Self {
        HtapSystem {
            db: Database::generate(config),
            latency: LatencyModel::default(),
        }
    }

    /// Builds from an existing database.
    pub fn with_database(db: Database) -> Self {
        HtapSystem {
            db,
            latency: LatencyModel::default(),
        }
    }

    /// The underlying database.
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// Mutable database access (index creation).
    pub fn database_mut(&mut self) -> &mut Database {
        &mut self.db
    }

    /// The latency model.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// Binds a SQL string against the system catalog.
    pub fn bind(&self, sql: &str) -> Result<BoundQuery, HtapError> {
        Ok(Binder::new(self.db.catalog()).bind_sql(sql)?)
    }

    /// Optimizes a bound query for one engine (EXPLAIN without execution).
    pub fn explain(&self, bound: &BoundQuery, engine: EngineKind) -> Result<PlanNode, HtapError> {
        let ctx = PlannerCtx::new(bound, self.db.stats(), self.db.catalog());
        Ok(match engine {
            EngineKind::Tp => tp::plan(&ctx)?,
            EngineKind::Ap => ap::plan(&ctx)?,
        })
    }

    /// Runs a bound query on one engine.
    pub fn run_engine(
        &self,
        bound: &BoundQuery,
        engine: EngineKind,
    ) -> Result<EngineRun, HtapError> {
        let plan = self.explain(bound, engine)?;
        let (rows, counters) = exec::execute(&plan, bound, &self.db, engine)?;
        let latency_ns = match engine {
            EngineKind::Tp => self.latency.tp_latency_ns(&counters),
            EngineKind::Ap => self.latency.ap_latency_ns(&counters),
        };
        Ok(EngineRun {
            engine,
            plan,
            rows,
            counters,
            latency_ns,
        })
    }

    /// Full pipeline: bind, run on both engines, check result agreement.
    pub fn run_sql(&self, sql: &str) -> Result<QueryOutcome, HtapError> {
        let bound = self.bind(sql)?;
        let tp = self.run_engine(&bound, EngineKind::Tp)?;
        let ap = self.run_engine(&bound, EngineKind::Ap)?;
        if !results_match(&bound, &tp.rows, &ap.rows) {
            return Err(HtapError::EngineMismatch {
                sql: sql.to_string(),
                tp_rows: tp.rows.len(),
                ap_rows: ap.rows.len(),
            });
        }
        Ok(QueryOutcome {
            sql: sql.to_string(),
            bound,
            tp,
            ap,
        })
    }
}

/// Result-agreement check: rows compare as multisets (ordered queries may
/// permute ties), and floats compare with a relative tolerance because the
/// two engines aggregate in different orders (float addition is not
/// associative).
fn results_match(bound: &BoundQuery, tp: &[Row], ap: &[Row]) -> bool {
    let _ = bound;
    if tp.len() != ap.len() {
        return false;
    }
    let cmp = |x: &Row, y: &Row| {
        for (u, v) in x.iter().zip(y.iter()) {
            let o = u.total_cmp(v);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    };
    let mut a = tp.to_vec();
    let mut b = ap.to_vec();
    a.sort_by(cmp);
    b.sort_by(cmp);
    a.iter().zip(b.iter()).all(|(ra, rb)| {
        ra.len() == rb.len() && ra.iter().zip(rb.iter()).all(|(u, v)| value_approx_eq(u, v))
    })
}

/// Structural equality with relative tolerance on floats.
fn value_approx_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_sql::value::Value;

    fn system() -> HtapSystem {
        HtapSystem::new(&TpchConfig::with_scale(0.002))
    }

    #[test]
    fn run_sql_produces_consistent_outcome() {
        let sys = system();
        let out = sys
            .run_sql("SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'")
            .unwrap();
        assert_eq!(out.tp.rows, out.ap.rows);
        assert!(out.tp.latency_ns > 0 && out.ap.latency_ns > 0);
        assert!(out.speedup() >= 1.0);
    }

    #[test]
    fn point_lookup_favors_tp() {
        let sys = system();
        let out = sys
            .run_sql("SELECT c_name FROM customer WHERE c_custkey = 42")
            .unwrap();
        assert_eq!(out.winner(), EngineKind::Tp);
    }

    #[test]
    fn big_join_favors_ap() {
        let sys = HtapSystem::new(&TpchConfig::with_scale(0.01));
        let out = sys
            .run_sql(
                "SELECT COUNT(*) FROM customer, orders, lineitem \
                 WHERE o_custkey = c_custkey AND l_orderkey = o_orderkey",
            )
            .unwrap();
        assert_eq!(out.winner(), EngineKind::Ap, "speedup={}", out.speedup());
    }

    #[test]
    fn index_served_topn_favors_tp() {
        let sys = system();
        let out = sys
            .run_sql("SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10")
            .unwrap();
        assert_eq!(out.winner(), EngineKind::Tp);
    }

    #[test]
    fn unindexed_topn_on_big_table_favors_ap() {
        let sys = HtapSystem::new(&TpchConfig::with_scale(0.01));
        let out = sys
            .run_sql(
                "SELECT l_orderkey, l_extendedprice FROM lineitem \
                 ORDER BY l_extendedprice DESC LIMIT 10",
            )
            .unwrap();
        assert_eq!(out.winner(), EngineKind::Ap);
    }

    #[test]
    fn create_index_changes_plans() {
        let mut sys = system();
        let before = sys
            .run_sql("SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'")
            .unwrap();
        assert_eq!(before.tp.plan.count_type(crate::plan::NodeType::IndexScan), 0);
        assert!(sys.database_mut().create_index("customer", "c_mktsegment"));
        let after = sys
            .run_sql("SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'")
            .unwrap();
        assert_eq!(after.tp.plan.count_type(crate::plan::NodeType::IndexScan), 1);
        // Results identical either way.
        assert_eq!(before.tp.rows, after.tp.rows);
    }

    #[test]
    fn create_index_rejects_unknown() {
        let mut sys = system();
        assert!(!sys.database_mut().create_index("nope", "c_phone"));
        assert!(!sys.database_mut().create_index("customer", "nope"));
    }

    #[test]
    fn engine_kind_helpers() {
        assert_eq!(EngineKind::Tp.other(), EngineKind::Ap);
        assert_eq!(EngineKind::Ap.as_str(), "AP");
        assert_eq!(EngineKind::Tp.to_string(), "TP");
    }

    #[test]
    fn outcome_run_accessor() {
        let sys = system();
        let out = sys.run_sql("SELECT COUNT(*) FROM nation").unwrap();
        assert_eq!(out.run(EngineKind::Tp).engine, EngineKind::Tp);
        assert_eq!(out.run(EngineKind::Ap).engine, EngineKind::Ap);
        assert_eq!(out.tp.rows[0][0], Value::Int(25));
    }

    #[test]
    fn explain_does_not_execute() {
        let sys = system();
        let bound = sys.bind("SELECT COUNT(*) FROM customer").unwrap();
        let plan = sys.explain(&bound, EngineKind::Ap).unwrap();
        assert!(plan.total_cost > 0.0);
    }

    #[test]
    fn bind_error_propagates() {
        let sys = system();
        assert!(matches!(
            sys.run_sql("SELECT * FROM missing_table"),
            Err(HtapError::Sql(_))
        ));
    }
}
