//! The HTAP system facade: one database, two engines, measured outcomes.
//!
//! [`HtapSystem::run_sql`] is the entry point the explanation framework sits
//! on: it binds a query once, optimizes and executes it on *both* engines,
//! verifies the engines agree on the result, and reports per-engine plans,
//! work counters and simulated latencies — the raw material for router
//! training, knowledge-base construction, and explanations.

use crate::exec::{self, DmlResult, ExecConfig, ExecGuard, GovernError, Row, StatementLimits,
                  WorkCounters};
use crate::latency::LatencyModel;
use crate::opt::{ap, tp, OptError, PlannerCtx};
use crate::plan::PlanNode;
use crate::session::{PlanCache, PlanCacheStats};
use crate::stats::{DbStats, TableStats};
use crate::storage::col_store::ColumnTableSnapshot;
use crate::storage::durable_io::{
    lock_unpoisoned, DurabilityError, DurableFile, FailPoints, RetryPolicy,
};
use crate::storage::persist::{self, Manifest, SegmentRef, MANIFEST_FORMAT};
use crate::storage::wal::{self, SyncPolicy, Wal, WalRecord, WalStats};
use crate::storage::{CompactSnapshot, CompactedTable, StoredTable, TableFreshness, TableOp};
use crate::tpch::{self, TpchConfig};
use qpe_sql::binder::{Binder, BoundDml, BoundQuery, BoundStatement};
use qpe_sql::catalog::{Catalog, DataType, MemoryCatalog};
use qpe_sql::value::Value;
use qpe_sql::SqlError;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, RwLock, RwLockReadGuard, RwLockWriteGuard};
use std::time::{Duration, Instant};

/// Which engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum EngineKind {
    /// Row-oriented OLTP engine.
    Tp,
    /// Column-oriented OLAP engine.
    Ap,
}

impl EngineKind {
    /// Paper-style short name: `TP` / `AP`.
    pub fn as_str(&self) -> &'static str {
        match self {
            EngineKind::Tp => "TP",
            EngineKind::Ap => "AP",
        }
    }

    /// The other engine.
    pub fn other(&self) -> EngineKind {
        match self {
            EngineKind::Tp => EngineKind::Ap,
            EngineKind::Ap => EngineKind::Tp,
        }
    }
}

impl std::fmt::Display for EngineKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Everything that happened when one engine ran the query.
#[derive(Debug, Clone)]
pub struct EngineRun {
    /// Which engine ran.
    pub engine: EngineKind,
    /// The physical plan.
    pub plan: PlanNode,
    /// Result rows.
    pub rows: Vec<Row>,
    /// Work performed.
    pub counters: WorkCounters,
    /// Simulated latency in nanoseconds (deterministic).
    pub latency_ns: u64,
}

/// Outcome of one write statement: DML runs on the TP engine only (the row
/// store and its indexes are the write-optimized side; the column store
/// absorbs the same write through its delta region).
#[derive(Debug, Clone)]
pub struct DmlOutcome {
    /// Original SQL.
    pub sql: String,
    /// What happened (kind, table, rows affected, new version stamp).
    pub result: DmlResult,
    /// The TP write plan.
    pub plan: PlanNode,
    /// Work performed (scan + write counters).
    pub counters: WorkCounters,
    /// Simulated TP latency in nanoseconds.
    pub latency_ns: u64,
    /// Freshness of the written table after the statement.
    pub freshness: TableFreshness,
}

/// Outcome of a single-engine (pinned) read: exactly one [`EngineRun`], no
/// dual-run and no cross-engine agreement check. This is what a server
/// client that knows its workload gets from [`HtapSystem::execute_on`] /
/// [`crate::session::Session::pin_engine`] — the other engine's cost is
/// simply never paid. The run is produced by the same plan → substitute →
/// execute pipeline as the corresponding side of a dual run, so its rows,
/// [`WorkCounters`] and simulated latency are byte-identical to what
/// [`QueryOutcome::run`] would report for that engine
/// (`tests/engine_pinning.rs` proves it).
#[derive(Debug, Clone)]
pub struct PinnedQueryOutcome {
    /// Original SQL.
    pub sql: String,
    /// The bound query.
    pub bound: Arc<BoundQuery>,
    /// The single engine run.
    pub run: EngineRun,
}

/// Outcome of [`HtapSystem::execute_statement`]: a read ran on both engines, or a
/// write ran on the TP engine. The read variant boxes its payload — a
/// [`QueryOutcome`] carries two full engine runs and dwarfs the DML variant.
#[derive(Debug, Clone)]
pub enum StatementOutcome {
    /// A `SELECT` executed on both engines.
    Query(Box<QueryOutcome>),
    /// A `SELECT` executed on one pinned engine only (no dual-run; see
    /// [`HtapSystem::execute_on`]).
    PinnedQuery(Box<PinnedQueryOutcome>),
    /// An `INSERT`/`UPDATE`/`DELETE` executed on the TP engine.
    Dml(Box<DmlOutcome>),
}

impl StatementOutcome {
    /// The dual-run read outcome, if this was an unpinned query.
    pub fn as_query(&self) -> Option<&QueryOutcome> {
        match self {
            StatementOutcome::Query(q) => Some(q),
            _ => None,
        }
    }

    /// The single-engine read outcome, if this was a pinned query.
    pub fn as_pinned(&self) -> Option<&PinnedQueryOutcome> {
        match self {
            StatementOutcome::PinnedQuery(p) => Some(p),
            _ => None,
        }
    }

    /// The write outcome, if this was DML.
    pub fn as_dml(&self) -> Option<&DmlOutcome> {
        match self {
            StatementOutcome::Dml(d) => Some(d),
            _ => None,
        }
    }

    /// Result rows of a read (dual-run rows are engine-agreed, so the TP
    /// side is reported); `None` for DML.
    pub fn rows(&self) -> Option<&[exec::Row]> {
        match self {
            StatementOutcome::Query(q) => Some(&q.tp.rows),
            StatementOutcome::PinnedQuery(p) => Some(&p.run.rows),
            StatementOutcome::Dml(_) => None,
        }
    }
}

/// Outcome of running one query on both engines.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Original SQL.
    pub sql: String,
    /// The bound query (shared — prepared statements reuse one bound form
    /// across executions, and outcome clones stay cheap).
    pub bound: Arc<BoundQuery>,
    /// TP run.
    pub tp: EngineRun,
    /// AP run.
    pub ap: EngineRun,
}

impl QueryOutcome {
    /// The faster engine.
    pub fn winner(&self) -> EngineKind {
        if self.tp.latency_ns <= self.ap.latency_ns {
            EngineKind::Tp
        } else {
            EngineKind::Ap
        }
    }

    /// Loser latency / winner latency (≥ 1).
    pub fn speedup(&self) -> f64 {
        let (w, l) = if self.winner() == EngineKind::Tp {
            (self.tp.latency_ns, self.ap.latency_ns)
        } else {
            (self.ap.latency_ns, self.tp.latency_ns)
        };
        l as f64 / w.max(1) as f64
    }

    /// Run for a specific engine.
    pub fn run(&self, engine: EngineKind) -> &EngineRun {
        match engine {
            EngineKind::Tp => &self.tp,
            EngineKind::Ap => &self.ap,
        }
    }
}

/// Errors from the full bind→plan→execute pipeline.
#[derive(Debug)]
pub enum HtapError {
    /// SQL front-end failure.
    Sql(SqlError),
    /// Planning failure.
    Opt(OptError),
    /// Execution failure.
    Exec(exec::ExecError),
    /// The two engines disagreed on the result — an internal invariant
    /// violation that must surface loudly.
    EngineMismatch {
        /// The query.
        sql: String,
        /// TP row count.
        tp_rows: usize,
        /// AP row count.
        ap_rows: usize,
    },
    /// A prepared statement was executed with the wrong number of parameter
    /// values.
    ParamCountMismatch {
        /// Parameters the statement declares.
        expected: usize,
        /// Values the caller supplied.
        got: usize,
    },
    /// A supplied parameter value does not fit the type its
    /// comparison/assignment context inferred at prepare time.
    ParamTypeMismatch {
        /// 0-based parameter index.
        idx: usize,
        /// The context-inferred type.
        expected: DataType,
        /// The offending value.
        got: Value,
    },
    /// Durable storage failed: I/O error, simulated crash, or corrupt
    /// on-disk state discovered during recovery.
    Durability(DurabilityError),
    /// The statement's cancellation flag was raised (see
    /// [`crate::session::Session::cancel_handle`]); execution stopped at the
    /// next block/morsel boundary.
    Cancelled,
    /// The statement exceeded its wall-clock budget
    /// ([`StatementLimits::timeout`]).
    Timeout {
        /// The configured budget that was exceeded.
        limit: Duration,
    },
    /// The statement tried to materialize past its memory budget
    /// ([`StatementLimits::memory_budget`]).
    MemoryBudget {
        /// The configured budget in (approximate) bytes.
        budget_bytes: u64,
        /// The approximate total the statement had charged when it tripped.
        attempted_bytes: u64,
    },
    /// The system is in read-only degraded mode: durable writes kept failing
    /// past their retry budget (or a writer panicked mid-statement), so
    /// write statements are rejected until [`HtapSystem::resume_writes`]
    /// succeeds. Reads and snapshots keep serving throughout.
    ReadOnly {
        /// Root cause that tripped degradation.
        cause: String,
    },
    /// An executor panicked; the panic was contained at the session boundary
    /// and the payload captured here. The system stays usable.
    Internal(String),
}

impl From<SqlError> for HtapError {
    fn from(e: SqlError) -> Self {
        HtapError::Sql(e)
    }
}
impl From<OptError> for HtapError {
    fn from(e: OptError) -> Self {
        HtapError::Opt(e)
    }
}
impl From<exec::ExecError> for HtapError {
    fn from(e: exec::ExecError) -> Self {
        match e {
            // Governance violations get first-class variants — callers match
            // on Cancelled/Timeout/MemoryBudget, not on executor internals.
            exec::ExecError::Governed(g) => g.into(),
            other => HtapError::Exec(other),
        }
    }
}
impl From<GovernError> for HtapError {
    fn from(e: GovernError) -> Self {
        match e {
            GovernError::Cancelled => HtapError::Cancelled,
            GovernError::Timeout { limit } => HtapError::Timeout { limit },
            GovernError::MemoryBudget { budget_bytes, attempted_bytes } => {
                HtapError::MemoryBudget { budget_bytes, attempted_bytes }
            }
        }
    }
}
impl From<DurabilityError> for HtapError {
    fn from(e: DurabilityError) -> Self {
        HtapError::Durability(e)
    }
}

impl std::fmt::Display for HtapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HtapError::Sql(e) => write!(f, "sql: {e}"),
            HtapError::Opt(e) => write!(f, "optimizer: {e}"),
            HtapError::Exec(e) => write!(f, "executor: {e}"),
            HtapError::EngineMismatch { sql, tp_rows, ap_rows } => write!(
                f,
                "engines disagree on {sql:?}: TP returned {tp_rows} rows, AP {ap_rows}"
            ),
            HtapError::ParamCountMismatch { expected, got } => write!(
                f,
                "statement expects {expected} parameter(s), {got} supplied"
            ),
            HtapError::ParamTypeMismatch { idx, expected, got } => write!(
                f,
                "parameter ${} expects a {expected:?} value, got {got}",
                idx + 1
            ),
            HtapError::Durability(e) => write!(f, "durability: {e}"),
            HtapError::Cancelled => write!(f, "statement cancelled"),
            HtapError::Timeout { limit } => {
                write!(f, "statement timed out (limit {limit:?})")
            }
            HtapError::MemoryBudget { budget_bytes, attempted_bytes } => write!(
                f,
                "statement exceeded its memory budget ({attempted_bytes} of {budget_bytes} \
                 approx bytes)"
            ),
            HtapError::ReadOnly { cause } => write!(
                f,
                "system is read-only (degraded mode): {cause}; reads keep serving, call \
                 resume_writes() after the fault clears"
            ),
            HtapError::Internal(msg) => write!(f, "internal executor panic (contained): {msg}"),
        }
    }
}

impl std::error::Error for HtapError {}

/// The database: catalog, statistics, and dual-format storage.
///
/// Catalog and statistics sit behind `Arc` with copy-on-write
/// ([`Arc::make_mut`]) so [`Database::pin_snapshot`] shares them in O(1);
/// a writer only pays for a copy while a pinned snapshot is outstanding.
pub struct Database {
    catalog: Arc<MemoryCatalog>,
    stats: Arc<DbStats>,
    tables: HashMap<String, StoredTable>,
    config: TpchConfig,
    /// When armed (one DML statement's scope), every `apply_*` records the
    /// logical [`TableOp`]s it performed, for the WAL. `None` outside
    /// durable DML — and during WAL replay, which is what makes replay
    /// re-run the same entry points without re-logging.
    op_tap: Option<Vec<(String, TableOp)>>,
}

impl Database {
    /// Generates TPC-H data and loads both storage formats.
    pub fn generate(config: &TpchConfig) -> Self {
        let (catalog, generated) = tpch::generate(config);
        let mut stats = DbStats::new();
        let mut tables = HashMap::new();
        for g in &generated {
            stats.insert(TableStats::collect(&g.name, &g.columns));
            let def = catalog.table(&g.name).expect("generated table in catalog");
            tables.insert(g.name.clone(), StoredTable::load(def, g));
        }
        Database {
            catalog: Arc::new(catalog),
            stats: Arc::new(stats),
            tables,
            config: config.clone(),
            op_tap: None,
        }
    }

    /// Rebuilds a database from recovered durable state: the manifest's
    /// catalog/stats/config plus one recovered column table per entry. The
    /// row-store side (tuples + indexes) derives from the column state.
    pub(crate) fn from_recovered(
        catalog: MemoryCatalog,
        stats: DbStats,
        config: TpchConfig,
        col_tables: Vec<crate::storage::ColumnTable>,
    ) -> Result<Self, DurabilityError> {
        let mut tables = HashMap::new();
        for cols in col_tables {
            let name = cols.name().to_string();
            let def = catalog.table(&name).ok_or_else(|| {
                DurabilityError::Corrupt(format!("segment table {name:?} not in manifest catalog"))
            })?;
            if def.columns.len() != cols.width() {
                return Err(DurabilityError::Corrupt(format!(
                    "table {name:?}: segment width {} != catalog width {}",
                    cols.width(),
                    def.columns.len()
                )));
            }
            tables.insert(name.clone(), StoredTable::from_recovered(def, cols));
        }
        Ok(Database {
            catalog: Arc::new(catalog),
            stats: Arc::new(stats),
            tables,
            config,
            op_tap: None,
        })
    }

    /// The catalog.
    pub fn catalog(&self) -> &MemoryCatalog {
        &self.catalog
    }

    /// Collected statistics.
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }

    /// The generation config.
    pub fn config(&self) -> &TpchConfig {
        &self.config
    }

    /// Both storage formats for a table.
    pub fn stored_table(&self, name: &str) -> Option<&StoredTable> {
        self.tables.get(name)
    }

    /// Row-store side of a table.
    pub fn row_table(&self, name: &str) -> Option<&crate::storage::RowTable> {
        self.tables.get(name).map(|t| &t.rows)
    }

    /// Applies validated full-width rows to both storage formats, keeping
    /// statistics and the catalog row count current. Returns the insert
    /// count.
    pub fn apply_insert(&mut self, table: &str, rows: &[Vec<Value>]) -> u64 {
        let Some(st) = self.tables.get_mut(table) else {
            return 0;
        };
        for row in rows {
            st.insert(row.clone());
        }
        if !rows.is_empty() && (st.captures_window() || self.op_tap.is_some()) {
            let op = TableOp::Insert { rows: rows.to_vec() };
            st.record_op(&op);
            if let Some(tap) = &mut self.op_tap {
                tap.push((table.to_string(), op));
            }
        }
        Arc::make_mut(&mut self.stats).note_insert(table, rows);
        self.sync_row_count(table);
        self.maybe_refresh_stats(table);
        rows.len() as u64
    }

    /// Tombstones the given rids in both storage formats. Returns how many
    /// were live.
    pub fn apply_delete(&mut self, table: &str, rids: &[u32]) -> u64 {
        let Some(st) = self.tables.get_mut(table) else {
            return 0;
        };
        let capture = st.captures_window() || self.op_tap.is_some();
        let mut n = 0u64;
        let mut effective = Vec::new();
        for &rid in rids {
            if st.delete(rid) {
                n += 1;
                if capture {
                    effective.push(rid);
                }
            }
        }
        // Only *effective* deletes are recorded: replay flips exactly the
        // same tombstone bits, and a background-compaction remap never sees
        // a rid that was already dead.
        if capture && !effective.is_empty() {
            let op = TableOp::Delete { rids: effective };
            st.record_op(&op);
            if let Some(tap) = &mut self.op_tap {
                tap.push((table.to_string(), op));
            }
        }
        Arc::make_mut(&mut self.stats).note_delete(table, n);
        self.sync_row_count(table);
        self.maybe_refresh_stats(table);
        n
    }

    /// Rewrites rows (relocating them in both formats). Returns the update
    /// count.
    pub fn apply_update(&mut self, table: &str, changes: Vec<(u32, Vec<Value>)>) -> u64 {
        let Some(st) = self.tables.get_mut(table) else {
            return 0;
        };
        let new_rows: Vec<Vec<Value>> = changes.iter().map(|(_, r)| r.clone()).collect();
        let n = changes.len() as u64;
        if !changes.is_empty() && (st.captures_window() || self.op_tap.is_some()) {
            let op = TableOp::Update { changes: changes.clone() };
            st.record_op(&op);
            if let Some(tap) = &mut self.op_tap {
                tap.push((table.to_string(), op));
            }
        }
        for (rid, row) in changes {
            st.update(rid, row);
        }
        Arc::make_mut(&mut self.stats).note_update(table, &new_rows);
        self.maybe_refresh_stats(table);
        n
    }

    /// Arms the per-statement op tap ([`Database::apply_insert`] et al.
    /// record into it). Called by durable DML before execution.
    pub(crate) fn begin_op_capture(&mut self) {
        self.op_tap = Some(Vec::new());
    }

    /// Takes whatever the statement recorded and disarms the tap.
    pub(crate) fn take_op_capture(&mut self) -> Vec<(String, TableOp)> {
        self.op_tap.take().unwrap_or_default()
    }

    /// Converts captured ops into WAL records, translating rids through the
    /// table's background-compaction remap when a durable build is in
    /// flight (the log must stay consistent with the `Compact` record
    /// already written at the build's snapshot point).
    pub(crate) fn wal_records_for(&self, ops: &[(String, TableOp)]) -> Vec<WalRecord> {
        ops.iter()
            .map(|(table, op)| WalRecord::Op {
                table: table.clone(),
                op: match self.tables.get(table).and_then(|st| st.wal_remap()) {
                    Some(remap) => op.translate(remap),
                    None => op.clone(),
                },
            })
            .collect()
    }

    /// Re-applies one logged op through the same entry points the live
    /// statement used, so statistics maintenance (incremental widening,
    /// lazy ndv refresh) fires at identical points of the timeline.
    pub(crate) fn replay_op(&mut self, table: &str, op: TableOp) {
        match op {
            TableOp::Insert { rows } => {
                self.apply_insert(table, &rows);
            }
            TableOp::Delete { rids } => {
                self.apply_delete(table, &rids);
            }
            TableOp::Update { changes } => {
                self.apply_update(table, changes);
            }
        }
    }

    /// Replays one WAL record during recovery.
    pub(crate) fn replay_wal_record(&mut self, record: WalRecord) {
        match record {
            WalRecord::Op { table, op } => self.replay_op(&table, op),
            WalRecord::Compact { table } => {
                self.compact_table(&table);
            }
            // Pure rotation marker; the generation chain carries the
            // continuity, nothing to apply.
            WalRecord::Checkpoint { .. } => {}
        }
    }

    /// Pins a consistent MVCC snapshot of the whole database for AP reads:
    /// every table's column store is pinned at its current epoch
    /// ([`ColumnTable::view_at`]), catalog/stats/config are shared, and the
    /// row-store halves are empty shells (AP plans never touch rows or
    /// indexes). O(tables × width) `Arc` bumps — cheap enough to take per
    /// statement under the read lock, after which execution proceeds with
    /// **no lock at all**: writers mutate through copy-on-write and never
    /// wait for, or block, a pinned reader.
    pub(crate) fn pin_snapshot(&self) -> Database {
        let tables = self
            .tables
            .iter()
            .filter_map(|(name, st)| {
                let def = self.catalog.table(name)?;
                Some((name.clone(), st.ap_view(def)))
            })
            .collect();
        Database {
            catalog: Arc::clone(&self.catalog),
            stats: Arc::clone(&self.stats),
            tables,
            config: self.config.clone(),
            op_tap: None,
        }
    }

    /// Physical-design epoch of one table (see
    /// [`StoredTable::design_epoch`]). `None` for unknown tables.
    pub fn design_epoch(&self, table: &str) -> Option<u64> {
        self.tables.get(table).map(|st| st.design_epoch())
    }

    /// Consistent snapshots of every table's physical column-store state,
    /// sorted by name (O(width) each — base columns are `Arc`-shared).
    pub(crate) fn snapshot_tables(&self) -> Vec<ColumnTableSnapshot> {
        let mut snaps: Vec<_> = self.tables.values().map(|st| st.cols.snapshot()).collect();
        snaps.sort_by(|a, b| a.name.cmp(&b.name));
        snaps
    }

    /// Opens a background compaction on one table (see
    /// [`StoredTable::begin_background_compact`]).
    pub(crate) fn begin_background_compact(
        &mut self,
        table: &str,
        durable: bool,
    ) -> Option<CompactSnapshot> {
        let def = self.catalog.table(table)?.clone();
        self.tables
            .get_mut(table)?
            .begin_background_compact(&def, durable)
    }

    /// Rolls back a just-opened background compaction (WAL append failed
    /// before anything escaped the write lock).
    pub(crate) fn abort_background_compact(&mut self, table: &str) {
        if let Some(st) = self.tables.get_mut(table) {
            st.abort_background_compact();
        }
    }

    /// Swaps an offline-built compaction in and re-applies the captured
    /// write window. Mirrors the synchronous path exactly: install ≡
    /// compact-at-snapshot + stats refresh, then the window ops re-run
    /// through the normal `apply_*` entry points (translated into the new
    /// rid space). Returns false when a sync compact made the build stale.
    pub(crate) fn finish_background_compact(&mut self, table: &str, built: CompactedTable) -> bool {
        let Some(st) = self.tables.get_mut(table) else {
            return false;
        };
        let Some((window, stats, remap)) = st.finish_background_compact(built) else {
            return false;
        };
        let live = st.row_count() as u64;
        Arc::make_mut(&mut self.stats).insert(stats);
        if let Some(def) = Arc::make_mut(&mut self.catalog).table_mut(table) {
            def.row_count = live;
            if let Some(ts) = self.stats.table(table) {
                for (cd, cs) in def.columns.iter_mut().zip(&ts.columns) {
                    cd.ndv = cs.ndv;
                }
            }
        }
        for op in window {
            self.replay_op(table, op.translate(&remap));
        }
        true
    }

    /// Compacts one table: the column store merges its delta into the base,
    /// the row store drops tombstones, and — compaction being the moment the
    /// data gets rewritten anyway — the table's ndv/min/max stats refresh
    /// too. Compacting an already-clean table is a no-op (no rescan).
    /// Returns false for an unknown table.
    pub fn compact_table(&mut self, table: &str) -> bool {
        let Some(st) = self.tables.get_mut(table) else {
            return false;
        };
        if st.cols.is_clean() && !st.rows.has_deletions() {
            return true;
        }
        st.compact();
        self.refresh_table_stats(table);
        true
    }

    /// Re-chunks one table's zone maps at a different block size (metadata
    /// rebuild only — the base stays contiguous). Tests and small-scale
    /// benchmarks use it so tiny tables still yield multiple prunable
    /// blocks. Returns false for an unknown table.
    pub fn set_zone_block_rows(&mut self, table: &str, rows: usize) -> bool {
        match self.tables.get_mut(table) {
            Some(st) => {
                st.cols.set_block_rows(rows);
                st.bump_design_epoch();
                true
            }
            None => false,
        }
    }

    /// Enables/disables one table's per-block bloom filters (the `_nobloom`
    /// benchmark baselines and the forced-encoding test matrix use this;
    /// pruning stays correct either way). Returns false for an unknown
    /// table.
    pub fn set_bloom_filters(&mut self, table: &str, enabled: bool) -> bool {
        match self.tables.get_mut(table) {
            Some(st) => {
                st.cols.set_bloom_filters(enabled);
                st.bump_design_epoch();
                true
            }
            None => false,
        }
    }

    /// Pins one table's base-segment encoding policy, re-encoding the
    /// current base under it (see
    /// [`crate::storage::col_store::EncodingPolicy`]); compactions keep the
    /// policy. Returns false for an unknown table.
    pub fn set_encoding_policy(
        &mut self,
        table: &str,
        policy: crate::storage::col_store::EncodingPolicy,
    ) -> bool {
        match self.tables.get_mut(table) {
            Some(st) => {
                st.cols.set_encoding_policy(policy);
                st.bump_design_epoch();
                true
            }
            None => false,
        }
    }

    /// Current freshness snapshot of a table's column-store side.
    pub fn freshness(&self, table: &str) -> Option<crate::storage::TableFreshness> {
        self.tables.get(table).map(|st| st.freshness())
    }

    /// Freshness snapshots for every table, sorted by name.
    pub fn freshness_all(&self) -> Vec<crate::storage::TableFreshness> {
        let mut out: Vec<_> = self.tables.values().map(|st| st.freshness()).collect();
        out.sort_by(|a, b| a.table.cmp(&b.table));
        out
    }

    /// Mirrors the live row count into the catalog so queries bound after a
    /// write see current table sizes.
    fn sync_row_count(&mut self, table: &str) {
        let Some(st) = self.tables.get(table) else {
            return;
        };
        let n = st.row_count() as u64;
        if let Some(def) = Arc::make_mut(&mut self.catalog).table_mut(table) {
            def.row_count = n;
        }
    }

    /// Lazy ndv refresh: only once the write backlog crosses the staleness
    /// threshold does the table pay for a full stats recompute.
    fn maybe_refresh_stats(&mut self, table: &str) {
        if self
            .stats
            .table(table)
            .map(|ts| ts.ndv_is_stale())
            .unwrap_or(false)
        {
            self.refresh_table_stats(table);
        }
    }

    /// Full recompute of one table's column statistics (ndv, min/max,
    /// null fraction) from the live rows, clearing the write backlog and
    /// refreshing catalog ndv.
    pub fn refresh_table_stats(&mut self, table: &str) {
        let Some(st) = self.tables.get(table) else {
            return;
        };
        let width = st.rows.width();
        let mut columns: Vec<Vec<Value>> = vec![Vec::with_capacity(st.row_count()); width];
        for (_, row) in st.rows.iter_live() {
            for (c, v) in columns.iter_mut().zip(row) {
                c.push(v.clone());
            }
        }
        Arc::make_mut(&mut self.stats).insert(TableStats::collect(table, &columns));
        if let Some(def) = Arc::make_mut(&mut self.catalog).table_mut(table) {
            def.row_count = columns.first().map(|c| c.len()).unwrap_or(0) as u64;
            if let Some(ts) = self.stats.table(table) {
                for (cd, cs) in def.columns.iter_mut().zip(&ts.columns) {
                    cd.ndv = cs.ndv;
                }
            }
        }
    }

    /// Creates a TP-side secondary index at runtime (the paper's
    /// "additional index on c_phone" user context). Returns false if the
    /// table/column doesn't exist.
    pub fn create_index(&mut self, table: &str, column: &str) -> bool {
        let Some(def) = Arc::make_mut(&mut self.catalog).table_mut(table) else {
            return false;
        };
        let Some(ci) = def.column_index(column) else {
            return false;
        };
        if !def.indexed_columns.iter().any(|c| c == column) && def.primary_key != column {
            def.indexed_columns.push(column.to_string());
        }
        if let Some(st) = self.tables.get_mut(table) {
            st.rows.create_index(ci);
            st.bump_design_epoch();
        }
        true
    }
}

/// How and when the WAL makes committed statements durable.
///
/// See [`SyncPolicy`]: `PerStatement` fsyncs on every commit,
/// `GroupCommit { interval }` batches concurrent committers into one fsync
/// (the leader dwells up to `interval` collecting followers).
#[derive(Debug, Clone, Default)]
pub struct DurabilityOptions {
    /// WAL fsync batching policy.
    pub sync: SyncPolicy,
    /// Crash-injection hooks (tests only; `FailPoints::default()` is inert
    /// and adds one relaxed atomic load per durable write).
    pub failpoints: FailPoints,
    /// When set, a dedicated thread compacts tables off the write lock.
    pub background: Option<BackgroundCompaction>,
    /// Bounded retry (exponential backoff + jitter) wrapped around every
    /// transiently-failing durable I/O step: WAL fsyncs, segment seals, the
    /// manifest swap. Exhausted retries — or a non-retryable error like
    /// ENOSPC — trip read-only degraded mode instead of looping forever.
    pub retry: RetryPolicy,
}

/// Background-compaction tuning for [`HtapSystem::open_with`].
#[derive(Debug, Clone)]
pub struct BackgroundCompaction {
    /// Compact a table once `delta rows + tombstones` reaches this.
    pub min_delta_rows: usize,
    /// How often the compactor thread re-checks the tables.
    pub poll: Duration,
}

impl Default for BackgroundCompaction {
    fn default() -> Self {
        BackgroundCompaction {
            min_delta_rows: 4096,
            poll: Duration::from_millis(20),
        }
    }
}

/// What [`HtapSystem::open_with`] found and did on startup.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// True when the directory was empty and the database was generated
    /// fresh (no recovery happened).
    pub created: bool,
    /// Manifest version the segments were loaded from.
    pub manifest_version: u64,
    /// Tables materialized from persistent segments.
    pub tables_loaded: usize,
    /// WAL records replayed on top of the segment snapshot.
    pub wal_records_replayed: u64,
    /// WAL generation files the replay walked.
    pub wal_files_replayed: usize,
    /// Bytes discarded from torn (partially flushed) WAL tails.
    pub torn_bytes_discarded: u64,
    /// Wall-clock time of the whole open (load + replay + index rebuild).
    pub elapsed: Duration,
}

/// Durable-mode state shared by the write path, the checkpointer and the
/// background compactor.
struct DurabilityCtx {
    /// Data directory holding `manifest.json`, `*.seg` and `wal.N`.
    dir: PathBuf,
    /// Group-commit write-ahead log (active generation).
    wal: Wal,
    /// Crash-injection hooks threaded through every durable I/O site.
    fp: FailPoints,
    /// Version counter: the last published manifest/checkpoint version.
    version: AtomicU64,
    /// Serializes checkpoints, durable sync compacts and background
    /// compaction runs against each other. Critically this means a durable
    /// `Compact` WAL record is only ever appended while no *other*
    /// compaction's rid remap is armed, so log order ≡ replay order.
    /// Lock order: `ckpt_lock` before the db lock, never the reverse.
    ckpt_lock: Mutex<()>,
    /// Retry policy for segment seals and manifest swaps (the WAL holds its
    /// own copy and retries its fsyncs internally).
    retry: RetryPolicy,
}

/// Shared mutable health status: degraded-mode latch plus fault counters.
/// One `Arc` is held by the system, another by the compactor thread.
struct HealthState {
    /// Read-only degraded mode: writes are rejected until
    /// [`HtapSystem::resume_writes`] clears it.
    degraded: AtomicBool,
    /// Root cause recorded when `degraded` was first tripped.
    cause: Mutex<Option<String>>,
    /// One-shot latch for database-lock poison recovery: the first recovery
    /// after a writer panic trips degraded mode exactly once.
    poison_handled: AtomicBool,
    /// Writer panics observed through lock-poison recovery.
    writer_panics: AtomicU64,
    /// Background compaction cycles that returned an error.
    compactor_failures: AtomicU64,
    /// Compaction candidates skipped because their table was backing off.
    compactor_backoffs: AtomicU64,
}

impl HealthState {
    fn new() -> HealthState {
        HealthState {
            degraded: AtomicBool::new(false),
            cause: Mutex::new(None),
            poison_handled: AtomicBool::new(false),
            writer_panics: AtomicU64::new(0),
            compactor_failures: AtomicU64::new(0),
            compactor_backoffs: AtomicU64::new(0),
        }
    }

    /// Enter degraded mode, recording `cause` if this is the first trip.
    fn trip_degraded(&self, cause: &str) {
        if !self.degraded.swap(true, Ordering::SeqCst) {
            *lock_unpoisoned(&self.cause) = Some(cause.to_string());
        }
    }

    /// Leave degraded mode (after a successful write probe).
    fn clear_degraded(&self) {
        self.degraded.store(false, Ordering::SeqCst);
        *lock_unpoisoned(&self.cause) = None;
    }

    fn is_degraded(&self) -> bool {
        self.degraded.load(Ordering::SeqCst)
    }

    fn cause_string(&self) -> String {
        lock_unpoisoned(&self.cause)
            .clone()
            .unwrap_or_else(|| "unknown".to_string())
    }

    /// Called when a database-lock acquisition found the lock poisoned. The
    /// std `RwLock` only poisons when a *writer* panicked, so the committed
    /// copy-on-write state readers observe is still consistent — recovery is
    /// safe — but an interrupted write statement may have applied without
    /// reaching the WAL, so the first recovery trips degraded mode until an
    /// operator (or test) resumes writes deliberately.
    fn note_poisoned_db_lock(&self) {
        if !self.poison_handled.swap(true, Ordering::SeqCst) {
            self.writer_panics.fetch_add(1, Ordering::Relaxed);
            self.trip_degraded("database write lock poisoned by a panicking writer");
        }
    }
}

/// Point-in-time health snapshot from [`HtapSystem::health`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Health {
    /// True while the system is in read-only degraded mode.
    pub degraded: bool,
    /// Root cause of the current degradation, when degraded.
    pub degraded_cause: Option<String>,
    /// Writer panics absorbed through lock-poison recovery.
    pub writer_panics: u64,
    /// Background-compaction cycles that failed.
    pub compactor_failures: u64,
    /// Compaction candidates skipped while their table was backing off.
    pub compactor_backoffs: u64,
    /// Transient WAL fsync failures absorbed by the retry policy.
    pub wal_flush_retries: u64,
}

/// Cap on the compactor's per-table backoff exponent: a repeatedly-failing
/// table is skipped for at most `2^6 = 64` polls between attempts.
const COMPACTOR_MAX_BACKOFF_EXP: u32 = 6;

/// Stop flag + wakeup for the background compactor thread.
struct CompactorShared {
    stop: Mutex<bool>,
    cv: Condvar,
}

struct CompactorHandle {
    shared: Arc<CompactorShared>,
    join: Option<std::thread::JoinHandle<()>>,
}

impl CompactorHandle {
    fn stop(&mut self) {
        *lock_unpoisoned(&self.shared.stop) = true;
        self.shared.cv.notify_all();
        if let Some(j) = self.join.take() {
            let _ = j.join();
        }
    }
}

/// The HTAP system: database + latency model + per-engine pipelines.
///
/// The **query path is `&self`**: binding, planning and execution of reads
/// only ever take a shared (read) lock on the database, so any number of
/// sessions/threads can execute SELECTs concurrently over one
/// `Arc<HtapSystem>`. Writes (`INSERT`/`UPDATE`/`DELETE`, `compact`) take
/// the write lock internally — interior mutability confined to the one
/// place the data actually changes. The shared [`PlanCache`] serves
/// prepared statements ([`crate::session::Session::prepare`]) across all
/// sessions.
///
/// # Durability
///
/// [`HtapSystem::new`] builds an in-memory system (nothing survives drop).
/// [`HtapSystem::open`] / [`HtapSystem::open_with`] attach a data
/// directory: every committed DML statement is WAL-logged before its
/// outcome is returned, [`HtapSystem::checkpoint`] publishes sealed column
/// segments plus a manifest and truncates the log, and reopening the
/// directory recovers byte-identical state (segments + WAL replay). See
/// the [`crate::storage`] module docs for the full lifecycle.
pub struct HtapSystem {
    db: Arc<RwLock<Database>>,
    /// Present iff the system was opened against a data directory.
    durability: Option<Arc<DurabilityCtx>>,
    /// Background compactor thread, when enabled in [`DurabilityOptions`].
    compactor: Option<CompactorHandle>,
    /// Startup report from [`HtapSystem::open_with`].
    recovery: Option<RecoveryReport>,
    latency: LatencyModel,
    /// Parallelism knob for the AP batch executor (threads + morsel size).
    /// Defaults to the machine's available cores (`QPE_AP_THREADS` /
    /// `QPE_MORSEL_ROWS` override); `threads == 1` is the exact serial
    /// executor. Execution results are bit-identical at any setting — only
    /// wall-clock depends on it.
    exec_cfg: ExecConfig,
    /// Thread count the *latency simulation* prices AP work at. Stays 1 —
    /// the host-independent serial model — unless parallelism is explicitly
    /// requested (env var or setter): simulated latencies, winner labels,
    /// router training data and explanations must not silently vary with
    /// how many cores the current machine happens to have.
    priced_threads: u64,
    /// Whether AP plans push filter conjunctions into their scan nodes for
    /// zone-map block pruning. On by default; turning it off restores the
    /// read-every-block plans (results are identical either way — only the
    /// work counters and latencies move), which is how benchmarks measure
    /// the pruning win and differential tests pin the equivalence.
    pruning: bool,
    /// Shared prepared-statement cache: parameterized bound statements and
    /// their physical plans, keyed by SQL fingerprint, LRU-evicted, with
    /// hit/miss stats.
    plan_cache: PlanCache,
    /// MVCC snapshot reads (default on; `QPE_MVCC_READS=0` restores the
    /// legacy hold-the-read-lock-for-the-whole-statement path). When on,
    /// the AP side of every read pins a snapshot epoch under the read lock
    /// and executes after releasing it, so a long scan never blocks a
    /// writer. Results are identical either way.
    mvcc_reads: bool,
    /// Degraded-mode latch + fault counters, shared with the compactor.
    health: Arc<HealthState>,
    /// Default [`StatementLimits`] applied to every statement that does not
    /// carry explicit per-call limits. Unlimited by default.
    limits: StatementLimits,
}

impl HtapSystem {
    /// Generates data and builds the system.
    pub fn new(config: &TpchConfig) -> Self {
        Self::with_database(Database::generate(config))
    }

    /// Builds from an existing database.
    pub fn with_database(db: Database) -> Self {
        HtapSystem {
            db: Arc::new(RwLock::new(db)),
            durability: None,
            compactor: None,
            recovery: None,
            latency: LatencyModel::default(),
            exec_cfg: ExecConfig::global().clone(),
            // Explicit env request ⇒ priced; available-cores default ⇒ the
            // executor still uses the cores (results identical), but the
            // simulation keeps the deterministic serial pricing.
            priced_threads: ExecConfig::env_requested_threads().unwrap_or(1) as u64,
            pruning: true,
            plan_cache: PlanCache::default(),
            mvcc_reads: std::env::var("QPE_MVCC_READS").map(|v| v != "0").unwrap_or(true),
            health: Arc::new(HealthState::new()),
            limits: StatementLimits::default(),
        }
    }

    /// Opens (or creates) a durable system in `dir` with default options:
    /// group-commit WAL, no failpoints, no background compactor.
    ///
    /// First open of an empty directory generates the database from
    /// `config` and seals it as checkpoint 1; any later open ignores
    /// `config` (the manifest's own config wins — the recovered data was
    /// generated under it) and recovers: load the manifest's segments,
    /// replay the WAL chain past the last checkpoint, rebuild indexes and
    /// statistics. After recovery, TP scans, AP scans and index lookups see
    /// exactly the committed pre-crash state.
    pub fn open(dir: impl AsRef<Path>, config: &TpchConfig) -> Result<Self, HtapError> {
        Self::open_with(dir, config, DurabilityOptions::default())
    }

    /// [`HtapSystem::open`] with explicit [`DurabilityOptions`].
    pub fn open_with(
        dir: impl AsRef<Path>,
        config: &TpchConfig,
        opts: DurabilityOptions,
    ) -> Result<Self, HtapError> {
        let started = Instant::now();
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)
            .map_err(|e| DurabilityError::Io(format!("create {}: {e}", dir.display())))?;
        let fp = opts.failpoints.clone();

        let manifest = persist::read_manifest(&dir)?;
        let (db, wal, version, report) = match manifest {
            None => {
                // Fresh directory: generate, then seal everything as
                // checkpoint 1 so a crash right after open recovers to the
                // same generated state.
                let db = Database::generate(config);
                let wal_path = dir.join(persist::wal_file_name(1));
                let wal_file = DurableFile::create_log(&wal_path, fp.clone(), "wal")?;
                let wal = Wal::with_retry(wal_file, opts.sync, opts.retry.clone());
                let snaps = db.snapshot_tables();
                let mut tables = Vec::with_capacity(snaps.len());
                for snap in &snaps {
                    let file = persist::segment_file_name(&snap.name, 1);
                    persist::write_segment(&dir.join(&file), snap, fp.clone())?;
                    tables.push(SegmentRef {
                        table: snap.name.clone(),
                        file,
                    });
                }
                fp.hit("ckpt:after_segments")?;
                let m = Manifest {
                    format: MANIFEST_FORMAT,
                    version: 1,
                    wal_gen: 1,
                    catalog: (*db.catalog).clone(),
                    stats: (*db.stats).clone(),
                    config: db.config.clone(),
                    tables,
                };
                persist::write_manifest(&dir, &m, &fp)?;
                let report = RecoveryReport {
                    created: true,
                    manifest_version: 1,
                    tables_loaded: snaps.len(),
                    wal_records_replayed: 0,
                    wal_files_replayed: 0,
                    torn_bytes_discarded: 0,
                    elapsed: started.elapsed(),
                };
                (db, wal, 1, report)
            }
            Some(m) => {
                // Recover: segments give the checkpointed snapshot, the WAL
                // chain replays everything committed since.
                let mut col_tables = Vec::with_capacity(m.tables.len());
                for seg in &m.tables {
                    let cols = persist::read_segment(&dir.join(&seg.file))?;
                    if cols.name() != seg.table {
                        return Err(DurabilityError::Corrupt(format!(
                            "segment {} holds table {:?}, manifest says {:?}",
                            seg.file,
                            cols.name(),
                            seg.table
                        ))
                        .into());
                    }
                    col_tables.push(cols);
                }
                let tables_loaded = col_tables.len();
                let mut db = Database::from_recovered(
                    m.catalog.clone(),
                    m.stats.clone(),
                    m.config.clone(),
                    col_tables,
                )?;
                let chain = persist::wal_chain(&dir, m.wal_gen);
                let mut records_replayed = 0u64;
                let mut torn_bytes = 0u64;
                for (_, path) in &chain {
                    let outcome = wal::read_wal_file(path)?;
                    torn_bytes += outcome.truncated_bytes;
                    for rec in outcome.records {
                        db.replay_wal_record(rec);
                        records_replayed += 1;
                    }
                }
                // The newest generation (which replay just truncated to its
                // last whole record) becomes the active log again.
                let (active_gen, active_path) = chain
                    .last()
                    .cloned()
                    .unwrap_or_else(|| (m.wal_gen, dir.join(persist::wal_file_name(m.wal_gen))));
                let wal_file = if active_path.exists() {
                    DurableFile::open_append(&active_path, fp.clone(), "wal")?
                } else {
                    DurableFile::create_log(&active_path, fp.clone(), "wal")?
                };
                let wal = Wal::with_retry(wal_file, opts.sync, opts.retry.clone());
                persist::clean_stale(&dir, &m);
                let report = RecoveryReport {
                    created: false,
                    manifest_version: m.version,
                    tables_loaded,
                    wal_records_replayed: records_replayed,
                    wal_files_replayed: chain.len(),
                    torn_bytes_discarded: torn_bytes,
                    elapsed: started.elapsed(),
                };
                (db, wal, m.version.max(active_gen), report)
            }
        };

        let mut sys = HtapSystem::with_database(db);
        sys.durability = Some(Arc::new(DurabilityCtx {
            dir,
            wal,
            fp,
            version: AtomicU64::new(version),
            ckpt_lock: Mutex::new(()),
            retry: opts.retry,
        }));
        sys.recovery = Some(report);
        if let Some(bg) = opts.background {
            sys.start_compactor(bg);
        }
        Ok(sys)
    }

    /// The startup report, when this system was opened from a directory.
    pub fn recovery_report(&self) -> Option<&RecoveryReport> {
        self.recovery.as_ref()
    }

    /// WAL throughput counters (records appended, fsyncs issued), when
    /// durable. `fsyncs < records` is the group-commit win.
    pub fn wal_stats(&self) -> Option<WalStats> {
        self.durability.as_ref().map(|d| d.wal.stats())
    }

    /// Publishes a checkpoint: rotates the WAL to a fresh generation, seals
    /// every table's current column-store state into versioned segment
    /// files, swaps the manifest atomically, and removes the WAL
    /// generations the new manifest no longer needs. Readers proceed
    /// throughout; writers are excluded only while the snapshot is taken
    /// (O(tables × width) `Arc` clones). Returns the new version.
    pub fn checkpoint(&self) -> Result<u64, HtapError> {
        self.check_writable()?;
        let d = self
            .durability
            .as_ref()
            .ok_or_else(|| DurabilityError::Io("checkpoint on a non-durable system".into()))?;
        let _ckpt = lock_unpoisoned(&d.ckpt_lock);
        let version = d.version.load(Ordering::SeqCst) + 1;
        let new_wal_path = d.dir.join(persist::wal_file_name(version));
        let new_wal = DurableFile::create_log(&new_wal_path, d.fp.clone(), "wal")?;
        // Read lock: DML takes the write lock, so nothing can commit between
        // the rotation point and the snapshot — the segments hold exactly
        // the state the old log's tail described.
        let db = self.db_read();
        d.wal
            .rotate(new_wal, WalRecord::Checkpoint { version })
            .map_err(|e| self.degrade_on("wal rotate", e))?;
        let snaps = db.snapshot_tables();
        let catalog = (*db.catalog).clone();
        let stats = (*db.stats).clone();
        let config = db.config.clone();
        drop(db);
        let mut tables = Vec::with_capacity(snaps.len());
        for snap in &snaps {
            let file = persist::segment_file_name(&snap.name, version);
            // Re-creating a segment file is idempotent, so a transient
            // failure anywhere inside the write retries the whole file.
            let (sealed, _) = d
                .retry
                .run(|| persist::write_segment(&d.dir.join(&file), snap, d.fp.clone()));
            sealed.map_err(|e| self.degrade_on("segment seal", e))?;
            tables.push(SegmentRef {
                table: snap.name.clone(),
                file,
            });
        }
        let (hit, _) = d.retry.run(|| d.fp.hit("ckpt:after_segments"));
        hit.map_err(|e| self.degrade_on("checkpoint", e))?;
        let m = Manifest {
            format: MANIFEST_FORMAT,
            version,
            wal_gen: version,
            catalog,
            stats,
            config,
            tables,
        };
        let (swapped, _) = d.retry.run(|| persist::write_manifest(&d.dir, &m, &d.fp));
        swapped.map_err(|e| self.degrade_on("manifest swap", e))?;
        d.version.store(version, Ordering::SeqCst);
        persist::clean_stale(&d.dir, &m);
        Ok(version)
    }

    /// Graceful shutdown: stop the compactor, publish a final checkpoint
    /// (so the next open recovers from segments alone, replaying nothing).
    pub fn close(mut self) -> Result<(), HtapError> {
        if let Some(mut c) = self.compactor.take() {
            c.stop();
        }
        if self.durability.is_some() {
            self.checkpoint()?;
        }
        Ok(())
    }

    fn start_compactor(&mut self, cfg: BackgroundCompaction) {
        let db = Arc::clone(&self.db);
        let durability = self.durability.clone();
        let health = Arc::clone(&self.health);
        let shared = Arc::new(CompactorShared {
            stop: Mutex::new(false),
            cv: Condvar::new(),
        });
        let thread_shared = Arc::clone(&shared);
        let join = std::thread::Builder::new()
            .name("qpe-compactor".into())
            .spawn(move || {
                // Per-table consecutive-failure counts drive an exponential
                // backoff: a table whose compaction failed f times in a row
                // is skipped for the next 2^f polls (capped), so a
                // persistent fault on one table can't spin this thread while
                // healthy tables keep compacting. Every failure and every
                // backoff skip is counted into [`HealthState`].
                let mut failures: HashMap<String, u32> = HashMap::new();
                let mut skip_until: HashMap<String, u64> = HashMap::new();
                let mut tick: u64 = 0;
                loop {
                    {
                        let stop = lock_unpoisoned(&thread_shared.stop);
                        if *stop {
                            return;
                        }
                        let (stop, _) = thread_shared
                            .cv
                            .wait_timeout(stop, cfg.poll)
                            .unwrap_or_else(|e| e.into_inner());
                        if *stop {
                            return;
                        }
                    }
                    tick += 1;
                    // Degraded mode: the WAL is down, so a durable compact's
                    // Compact record can't be logged — don't grind on it.
                    if durability.is_some() && health.is_degraded() {
                        continue;
                    }
                    let candidates: Vec<String> = {
                        let db = read_recovered(&db, &health);
                        db.tables
                            .iter()
                            .filter(|(_, st)| st.compaction_debt() >= cfg.min_delta_rows)
                            .map(|(name, _)| name.clone())
                            .collect()
                    };
                    for table in candidates {
                        if skip_until.get(&table).is_some_and(|&until| tick < until) {
                            health.compactor_backoffs.fetch_add(1, Ordering::Relaxed);
                            continue;
                        }
                        match background_compact_once(&db, durability.as_deref(), &health, &table)
                        {
                            Ok(_) => {
                                failures.remove(&table);
                                skip_until.remove(&table);
                            }
                            Err(_) => {
                                let f = failures.entry(table.clone()).or_insert(0);
                                *f = (*f + 1).min(COMPACTOR_MAX_BACKOFF_EXP);
                                health.compactor_failures.fetch_add(1, Ordering::Relaxed);
                                skip_until.insert(table, tick + (1u64 << *f));
                            }
                        }
                    }
                }
            })
            .expect("spawn compactor thread");
        self.compactor = Some(CompactorHandle {
            shared,
            join: Some(join),
        });
    }

    /// Runs one background-compaction pass over every table that has any
    /// delta rows or tombstones, regardless of thresholds. Exposed for
    /// tests and benchmarks; the compactor thread does the same thing on a
    /// timer.
    pub fn background_compact_all(&self) -> Result<usize, HtapError> {
        self.check_writable()?;
        let tables: Vec<String> = {
            let db = self.db_read();
            db.tables
                .iter()
                .filter(|(_, st)| st.compaction_debt() > 0)
                .map(|(name, _)| name.clone())
                .collect()
        };
        let mut n = 0;
        for table in tables {
            if background_compact_once(&self.db, self.durability.as_deref(), &self.health, &table)?
            {
                n += 1;
            }
        }
        Ok(n)
    }

    /// Enables/disables scan-predicate pushdown (zone-map pruning) for AP
    /// plans built by this system. Clears the plan cache — cached plans were
    /// built under the previous setting.
    pub fn set_pruning(&mut self, enabled: bool) {
        self.pruning = enabled;
        self.plan_cache.clear();
    }

    /// Whether AP plans currently push scan predicates for zone-map pruning.
    pub fn pruning(&self) -> bool {
        self.pruning
    }

    /// Shared read access to the database. The guard holds the read lock —
    /// writes block while it lives, so keep it short-lived; any number of
    /// concurrent readers proceed in parallel.
    pub fn database(&self) -> RwLockReadGuard<'_, Database> {
        self.db_read()
    }

    /// Mutable database access (index creation, compaction knobs).
    /// Physical-design changes bump the affected table's design epoch, and
    /// cached plans revalidate their recorded epochs on hit — so unlike the
    /// old blanket cache clear, plans for untouched tables stay cached.
    /// The guard holds the write lock — keep it short-lived. Changes made
    /// through this handle bypass the WAL; on a durable system, follow up
    /// with [`HtapSystem::checkpoint`] if they must survive a crash.
    pub fn database_mut(&mut self) -> RwLockWriteGuard<'_, Database> {
        self.db_write()
    }

    fn db_read(&self) -> RwLockReadGuard<'_, Database> {
        read_recovered(&self.db, &self.health)
    }

    fn db_write(&self) -> RwLockWriteGuard<'_, Database> {
        write_recovered(&self.db, &self.health)
    }

    /// Point-in-time health snapshot: degraded-mode state plus the fault
    /// counters (writer panics absorbed, compactor failures/backoffs, WAL
    /// fsync retries).
    pub fn health(&self) -> Health {
        Health {
            degraded: self.health.is_degraded(),
            degraded_cause: if self.health.is_degraded() {
                Some(self.health.cause_string())
            } else {
                None
            },
            writer_panics: self.health.writer_panics.load(Ordering::Relaxed),
            compactor_failures: self.health.compactor_failures.load(Ordering::Relaxed),
            compactor_backoffs: self.health.compactor_backoffs.load(Ordering::Relaxed),
            wal_flush_retries: self
                .durability
                .as_ref()
                .map(|d| d.wal.flush_retries())
                .unwrap_or(0),
        }
    }

    /// Whether the system is currently read-only (degraded mode).
    pub fn is_degraded(&self) -> bool {
        self.health.is_degraded()
    }

    /// Rejects write statements while degraded.
    fn check_writable(&self) -> Result<(), HtapError> {
        if self.health.is_degraded() {
            return Err(HtapError::ReadOnly { cause: self.health.cause_string() });
        }
        Ok(())
    }

    /// Trips degraded mode with the failing step as root cause and converts
    /// the durability error for propagation.
    fn degrade_on(&self, what: &str, e: DurabilityError) -> HtapError {
        self.health.trip_degraded(&format!("{what} failed: {e}"));
        e.into()
    }

    /// Attempts to leave read-only degraded mode: revives the WAL, then
    /// probes it end to end (append + committed fsync of a no-op
    /// `Checkpoint` marker — ignored at replay). Only a successful probe
    /// lifts the degradation; a still-broken WAL leaves the system degraded
    /// and returns the probe's error. A *crashed* failpoint state is
    /// permanent by design (the process is simulating a kill) and is never
    /// lifted.
    pub fn resume_writes(&self) -> Result<(), HtapError> {
        if let Some(d) = &self.durability {
            if d.fp.crashed() {
                return Err(DurabilityError::Crashed.into());
            }
            d.wal.revive();
            let version = d.version.load(Ordering::SeqCst);
            let lsn = d
                .wal
                .append(&[WalRecord::Checkpoint { version }])
                .map_err(HtapError::from)?;
            d.wal.commit(lsn).map_err(HtapError::from)?;
        }
        self.health.clear_degraded();
        // Poison recovery may arm again after a genuine new writer panic.
        self.health.poison_handled.store(false, Ordering::SeqCst);
        Ok(())
    }

    /// Default limits applied to statements without per-call limits.
    pub fn statement_limits(&self) -> &StatementLimits {
        &self.limits
    }

    /// Sets the system-wide default [`StatementLimits`] (timeout and memory
    /// budget). Sessions and prepared statements can still override them
    /// per call.
    pub fn set_statement_limits(&mut self, limits: StatementLimits) {
        self.limits = limits;
    }

    /// A fresh guard enforcing the system-default limits.
    fn statement_guard(&self) -> ExecGuard {
        ExecGuard::new(&self.limits)
    }

    /// Shared plan-cache counters (hits, misses, residency).
    pub fn plan_cache_stats(&self) -> PlanCacheStats {
        self.plan_cache.stats()
    }

    /// Drops every cached prepared statement (prepared handles stay valid —
    /// they own their statement via `Arc`).
    pub fn clear_plan_cache(&self) {
        self.plan_cache.clear();
    }

    pub(crate) fn plan_cache(&self) -> &PlanCache {
        &self.plan_cache
    }

    /// The latency model.
    pub fn latency_model(&self) -> &LatencyModel {
        &self.latency
    }

    /// The AP executor's parallelism config.
    pub fn exec_config(&self) -> &ExecConfig {
        &self.exec_cfg
    }

    /// Replaces the AP executor's parallelism config. An explicit config
    /// also opts the latency simulation into parallel pricing.
    pub fn set_exec_config(&mut self, cfg: ExecConfig) {
        self.priced_threads = cfg.threads as u64;
        self.exec_cfg = cfg;
    }

    /// Sets the AP worker-thread count (execution *and* latency pricing),
    /// keeping the morsel size.
    pub fn set_ap_threads(&mut self, threads: usize) {
        self.exec_cfg.threads = threads.max(1);
        self.priced_threads = self.exec_cfg.threads as u64;
    }

    /// The thread count the latency simulation prices AP work at.
    pub fn priced_threads(&self) -> u64 {
        self.priced_threads
    }

    /// Binds a SQL string against the system catalog.
    pub fn bind(&self, sql: &str) -> Result<BoundQuery, HtapError> {
        Ok(Binder::new(self.db_read().catalog()).bind_sql(sql)?)
    }

    /// Binds any statement (read or write) against the system catalog.
    pub fn bind_statement(&self, sql: &str) -> Result<BoundStatement, HtapError> {
        Ok(Binder::new(self.db_read().catalog()).bind_statement(sql)?)
    }

    /// Optimizes a bound query for one engine (EXPLAIN without execution).
    pub fn explain(&self, bound: &BoundQuery, engine: EngineKind) -> Result<PlanNode, HtapError> {
        self.plan_on(&self.db_read(), bound, engine)
    }

    fn plan_on(
        &self,
        db: &Database,
        bound: &BoundQuery,
        engine: EngineKind,
    ) -> Result<PlanNode, HtapError> {
        let mut ctx = PlannerCtx::new(bound, db.stats(), db.catalog());
        ctx.pushdown = self.pruning;
        Ok(match engine {
            EngineKind::Tp => tp::plan(&ctx)?,
            EngineKind::Ap => ap::plan(&ctx)?,
        })
    }

    /// Runs a bound query on one engine. AP runs execute on a pinned MVCC
    /// snapshot with the read lock released (unless MVCC reads are off).
    pub fn run_engine(
        &self,
        bound: &BoundQuery,
        engine: EngineKind,
    ) -> Result<EngineRun, HtapError> {
        let db = self.db_read();
        let plan = self.plan_on(&db, bound, engine)?;
        let guard = self.statement_guard();
        if engine == EngineKind::Ap && self.mvcc_reads {
            let snap = db.pin_snapshot();
            drop(db);
            return self.run_plan_on(&snap, plan, bound, engine, &guard);
        }
        self.run_plan_on(&db, plan, bound, engine, &guard)
    }

    /// Executes an already-built physical plan on one engine (the prepared
    /// path: no re-bind, no re-plan) and prices its counters.
    pub fn run_engine_with_plan(
        &self,
        plan: PlanNode,
        bound: &BoundQuery,
        engine: EngineKind,
    ) -> Result<EngineRun, HtapError> {
        let db = self.db_read();
        let guard = self.statement_guard();
        if engine == EngineKind::Ap && self.mvcc_reads {
            let snap = db.pin_snapshot();
            drop(db);
            return self.run_plan_on(&snap, plan, bound, engine, &guard);
        }
        self.run_plan_on(&db, plan, bound, engine, &guard)
    }

    fn run_plan_on(
        &self,
        db: &Database,
        plan: PlanNode,
        bound: &BoundQuery,
        engine: EngineKind,
        guard: &ExecGuard,
    ) -> Result<EngineRun, HtapError> {
        let cfg = self.exec_cfg.with_guard(guard.clone());
        let (rows, counters) = exec::execute_with(&plan, bound, db, engine, &cfg)?;
        // Counters are executor-invariant, so the serial and parallel AP
        // latencies price the *same* work — the parallel model just walks
        // the critical path instead of the full sum.
        let latency_ns = match engine {
            EngineKind::Tp => self.latency.tp_latency_ns(&counters),
            EngineKind::Ap => self
                .latency
                .ap_latency_ns_threads(&counters, self.priced_threads),
        };
        Ok(EngineRun {
            engine,
            plan,
            rows,
            counters,
            latency_ns,
        })
    }

    /// Executes any statement through a **shared** reference. Reads take the
    /// dual-engine pipeline ([`HtapSystem::run_sql`]) under the read lock;
    /// writes route to the TP engine *only* — planned by the TP optimizer,
    /// executed against the row store under the write lock, with the column
    /// store absorbing the same change through its delta region, so the next
    /// AP read is fresh without blocking readers of other tables.
    pub fn execute_statement(&self, sql: &str) -> Result<StatementOutcome, HtapError> {
        self.execute_statement_guarded(sql, &self.statement_guard())
    }

    /// [`HtapSystem::execute_statement`] under a caller-supplied guard (the
    /// session layer builds guards carrying its cancel flag and per-call
    /// limit overrides).
    pub(crate) fn execute_statement_guarded(
        &self,
        sql: &str,
        guard: &ExecGuard,
    ) -> Result<StatementOutcome, HtapError> {
        match self.bind_statement(sql)? {
            BoundStatement::Query(bound) => Ok(StatementOutcome::Query(Box::new(
                self.run_bound(sql, bound, guard)?,
            ))),
            BoundStatement::Dml(dml) => Ok(StatementOutcome::Dml(Box::new(
                self.execute_dml_with_plan(sql, &dml, None, guard)?,
            ))),
        }
    }

    /// Deprecated shim for the pre-session API: read-only statements never
    /// needed `&mut`, and writes lock internally now.
    #[deprecated(since = "0.2.0", note = "use execute_statement(&self) or a Session")]
    pub fn execute_sql(&mut self, sql: &str) -> Result<StatementOutcome, HtapError> {
        self.execute_statement(sql)
    }

    /// Plans and executes one bound write statement on the TP engine. Takes
    /// the write lock internally — `&self`, like every other entry point.
    pub fn execute_dml(&self, sql: &str, dml: &BoundDml) -> Result<DmlOutcome, HtapError> {
        self.execute_dml_with_plan(sql, dml, None, &self.statement_guard())
    }

    /// [`HtapSystem::execute_dml`] with an optional pre-built (prepared,
    /// parameter-substituted) write plan, under the caller's guard.
    pub(crate) fn execute_dml_with_plan(
        &self,
        sql: &str,
        dml: &BoundDml,
        plan: Option<PlanNode>,
        guard: &ExecGuard,
    ) -> Result<DmlOutcome, HtapError> {
        self.check_writable()?;
        let mut db = self.db_write();
        let plan = match plan {
            Some(p) => p,
            None => tp::plan_dml(dml, db.stats(), db.catalog())?,
        };
        if self.durability.is_some() {
            db.begin_op_capture();
        }
        let exec_result = exec::execute_dml_guarded(&plan, dml, &mut db, guard);
        let (result, counters) = match exec_result {
            Ok(rc) => rc,
            Err(e) => {
                // Validation failures reject the whole statement before any
                // row is touched, so discarding the (empty) capture is safe.
                db.take_op_capture();
                return Err(e.into());
            }
        };
        let latency_ns = self.latency.tp_latency_ns(&counters);
        let freshness = db
            .freshness(&result.table)
            .expect("written table exists");
        // Durable path: append under the write lock (log order = apply
        // order), then release it and group-commit — concurrent writers
        // proceed while this statement waits for its fsync batch.
        let commit_lsn = match &self.durability {
            Some(d) => {
                // Fault-injection hook: a panic here models an executor
                // dying after the rows applied but before the WAL append —
                // the worst spot, proving poison recovery + degraded mode
                // keep the system serving.
                d.fp.panic_if_armed("dml:after_apply");
                let ops = db.take_op_capture();
                let records = db.wal_records_for(&ops);
                if records.is_empty() {
                    None
                } else {
                    let lsn = d
                        .wal
                        .append(&records)
                        .map_err(|e| self.degrade_on("wal append", e))?;
                    Some((Arc::clone(d), lsn))
                }
            }
            None => None,
        };
        drop(db);
        if let Some((d, lsn)) = commit_lsn {
            d.wal
                .commit(lsn)
                .map_err(|e| self.degrade_on("wal commit", e))?;
        }
        Ok(DmlOutcome {
            sql: sql.to_string(),
            result,
            plan,
            counters,
            latency_ns,
            freshness,
        })
    }

    /// Compacts one table (merging the AP delta into the base and dropping
    /// row-store tombstones). Takes the write lock internally. Returns false
    /// for an unknown table. On a durable system the compaction is
    /// WAL-logged (replay re-runs it at the same point in the op stream).
    pub fn compact(&self, table: &str) -> bool {
        // Degraded mode: a durable compact cannot log its Compact record.
        if self.durability.is_some() && self.health.is_degraded() {
            return false;
        }
        match &self.durability {
            None => self.db_write().compact_table(table),
            Some(d) => {
                // ckpt_lock: a durable sync compact must not interleave with
                // a background build's armed remap (see DurabilityCtx).
                let _ckpt = lock_unpoisoned(&d.ckpt_lock);
                let mut db = self.db_write();
                let Some(st) = db.tables.get(table) else {
                    return false;
                };
                let lsn = if st.is_dirty() {
                    match d.wal.append(&[WalRecord::Compact {
                        table: table.to_string(),
                    }]) {
                        Ok(lsn) => Some(lsn),
                        Err(_) => return false,
                    }
                } else {
                    None
                };
                let ok = db.compact_table(table);
                drop(db);
                if let Some(lsn) = lsn {
                    if d.wal.commit(lsn).is_err() {
                        return false;
                    }
                }
                ok
            }
        }
    }

    /// Freshness snapshot of one table.
    pub fn freshness(&self, table: &str) -> Option<TableFreshness> {
        self.db_read().freshness(table)
    }

    /// Full pipeline: bind, run on both engines, check result agreement.
    /// Governed by the system-default [`StatementLimits`].
    pub fn run_sql(&self, sql: &str) -> Result<QueryOutcome, HtapError> {
        let bound = self.bind(sql)?;
        self.run_bound(sql, bound, &self.statement_guard())
    }

    /// [`HtapSystem::run_sql`] over an already-bound query (no re-parse),
    /// under the caller's statement guard. One guard governs both engine
    /// runs: a trip during either surfaces as the statement's error.
    pub(crate) fn run_bound(
        &self,
        sql: &str,
        bound: BoundQuery,
        guard: &ExecGuard,
    ) -> Result<QueryOutcome, HtapError> {
        let db = self.db_read();
        let tp_plan = self.plan_on(&db, &bound, EngineKind::Tp)?;
        let ap_plan = self.plan_on(&db, &bound, EngineKind::Ap)?;
        let tp = self.run_plan_on(&db, tp_plan, &bound, EngineKind::Tp, guard)?;
        // The TP run (fast: index probes / row scans) happens under the
        // read lock; the AP run — the long tail — pins a snapshot at the
        // same epoch and executes with the lock released, so a streaming
        // writer is blocked only for the TP run plus an O(tables × width)
        // pin, not for the whole analytical scan.
        let ap = if self.mvcc_reads {
            let snap = db.pin_snapshot();
            drop(db);
            self.run_plan_on(&snap, ap_plan, &bound, EngineKind::Ap, guard)?
        } else {
            let ap = self.run_plan_on(&db, ap_plan, &bound, EngineKind::Ap, guard)?;
            drop(db);
            ap
        };
        check_results_match(sql, &bound, &tp, &ap)?;
        Ok(QueryOutcome {
            sql: sql.to_string(),
            bound: Arc::new(bound),
            tp,
            ap,
        })
    }

    /// Runs a prepared query's two substituted plans (no re-bind, no
    /// re-plan) under one read-lock acquisition, checking engine agreement
    /// like [`HtapSystem::run_sql`].
    pub(crate) fn run_prepared(
        &self,
        bound: &Arc<BoundQuery>,
        tp_plan: PlanNode,
        ap_plan: PlanNode,
        guard: &ExecGuard,
    ) -> Result<QueryOutcome, HtapError> {
        let db = self.db_read();
        let tp = self.run_plan_on(&db, tp_plan, bound, EngineKind::Tp, guard)?;
        let ap = if self.mvcc_reads {
            let snap = db.pin_snapshot();
            drop(db);
            self.run_plan_on(&snap, ap_plan, bound, EngineKind::Ap, guard)?
        } else {
            let ap = self.run_plan_on(&db, ap_plan, bound, EngineKind::Ap, guard)?;
            drop(db);
            ap
        };
        check_results_match(&bound.sql, bound, &tp, &ap)?;
        Ok(QueryOutcome {
            sql: bound.sql.clone(),
            bound: Arc::clone(bound),
            tp,
            ap,
        })
    }

    /// Executes any statement with reads pinned to **one** engine: the
    /// statement is planned and run on `engine` only — no dual-run, no
    /// cross-engine agreement check — so a client that knows its workload
    /// (a pure-OLTP server connection, say) stops paying for the engine it
    /// never wants. Writes are unaffected (DML is TP-only on every path).
    /// The single run is byte-identical — rows, [`WorkCounters`], simulated
    /// latency — to the same engine's side of a dual
    /// [`HtapSystem::execute_statement`] run.
    pub fn execute_on(&self, sql: &str, engine: EngineKind) -> Result<StatementOutcome, HtapError> {
        self.execute_on_guarded(sql, engine, &self.statement_guard())
    }

    /// [`HtapSystem::execute_on`] under a caller-supplied guard.
    pub(crate) fn execute_on_guarded(
        &self,
        sql: &str,
        engine: EngineKind,
        guard: &ExecGuard,
    ) -> Result<StatementOutcome, HtapError> {
        match self.bind_statement(sql)? {
            BoundStatement::Query(bound) => Ok(StatementOutcome::PinnedQuery(Box::new(
                self.run_bound_pinned(sql, bound, engine, guard)?,
            ))),
            BoundStatement::Dml(dml) => Ok(StatementOutcome::Dml(Box::new(
                self.execute_dml_with_plan(sql, &dml, None, guard)?,
            ))),
        }
    }

    /// Plans and runs a bound read on one engine only, honoring the MVCC
    /// read path exactly like the dual pipeline (an AP run pins a snapshot
    /// and executes off-lock).
    pub(crate) fn run_bound_pinned(
        &self,
        sql: &str,
        bound: BoundQuery,
        engine: EngineKind,
        guard: &ExecGuard,
    ) -> Result<PinnedQueryOutcome, HtapError> {
        let db = self.db_read();
        let plan = self.plan_on(&db, &bound, engine)?;
        let run = if engine == EngineKind::Ap && self.mvcc_reads {
            let snap = db.pin_snapshot();
            drop(db);
            self.run_plan_on(&snap, plan, &bound, engine, guard)?
        } else {
            self.run_plan_on(&db, plan, &bound, engine, guard)?
        };
        Ok(PinnedQueryOutcome {
            sql: sql.to_string(),
            bound: Arc::new(bound),
            run,
        })
    }

    /// Runs one of a prepared query's substituted plans on its engine only
    /// (the session layer picks the plan matching the pin).
    pub(crate) fn run_prepared_pinned(
        &self,
        bound: &Arc<BoundQuery>,
        plan: PlanNode,
        engine: EngineKind,
        guard: &ExecGuard,
    ) -> Result<PinnedQueryOutcome, HtapError> {
        let db = self.db_read();
        let run = if engine == EngineKind::Ap && self.mvcc_reads {
            let snap = db.pin_snapshot();
            drop(db);
            self.run_plan_on(&snap, plan, bound, engine, guard)?
        } else {
            self.run_plan_on(&db, plan, bound, engine, guard)?
        };
        Ok(PinnedQueryOutcome {
            sql: bound.sql.clone(),
            bound: Arc::clone(bound),
            run,
        })
    }

    /// Whether AP reads execute on pinned MVCC snapshots off the lock.
    pub fn mvcc_reads(&self) -> bool {
        self.mvcc_reads
    }

    /// Toggles MVCC snapshot reads (tests and the equivalence sweeps run
    /// both ways; results are identical, only lock-hold times differ).
    pub fn set_mvcc_reads(&mut self, enabled: bool) {
        self.mvcc_reads = enabled;
    }

    /// Pins an MVCC [`Snapshot`] of the current committed state. The pin
    /// itself briefly holds the read lock (O(tables × width) `Arc` bumps);
    /// the returned snapshot holds **no lock** — concurrent writers append
    /// new versions through copy-on-write and never disturb it, and the
    /// versions it pinned stay reachable (hence unreclaimable) until the
    /// snapshot drops.
    pub fn pin_snapshot(&self) -> Snapshot {
        Snapshot {
            db: self.db_read().pin_snapshot(),
            exec_cfg: self.exec_cfg.clone(),
            pruning: self.pruning,
        }
    }
}

/// A pinned MVCC snapshot of the database: every table's column store
/// frozen at the epoch current when [`HtapSystem::pin_snapshot`] ran,
/// readable lock-free on any AP executor while writers proceed. Reads see
/// exactly the committed prefix at the pin — never a torn statement, never
/// a later write.
pub struct Snapshot {
    db: Database,
    exec_cfg: ExecConfig,
    pruning: bool,
}

impl Snapshot {
    /// The pinned database state (AP side only — row stores are empty
    /// shells; run AP plans against this, not TP plans).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// The epoch one table was pinned at.
    pub fn epoch(&self, table: &str) -> Option<u64> {
        self.db.stored_table(table).map(|st| st.cols.version())
    }

    /// Binds and AP-plans `sql` against the pinned catalog and statistics
    /// (deterministic: two snapshots of identical logical state plan
    /// identically).
    pub fn plan(&self, sql: &str) -> Result<(PlanNode, BoundQuery), HtapError> {
        let bound = Binder::new(self.db.catalog()).bind_sql(sql)?;
        let mut ctx = PlannerCtx::new(&bound, self.db.stats(), self.db.catalog());
        ctx.pushdown = self.pruning;
        let plan = ap::plan(&ctx)?;
        Ok((plan, bound))
    }

    /// Runs `sql` against the pinned state (AP batch executor, this
    /// snapshot's parallelism config), returning rows and work counters.
    pub fn run_sql(&self, sql: &str) -> Result<(Vec<Row>, exec::WorkCounters), HtapError> {
        let (plan, bound) = self.plan(sql)?;
        Ok(exec::execute_with(&plan, &bound, &self.db, EngineKind::Ap, &self.exec_cfg)?)
    }
}

impl Drop for HtapSystem {
    fn drop(&mut self) {
        if let Some(mut c) = self.compactor.take() {
            c.stop();
        }
        // Crash-consistency means an unclean drop loses nothing committed;
        // flushing here is just courtesy for buffered-but-unacked appends.
        if let Some(d) = &self.durability {
            let _ = d.wal.flush_all();
        }
    }
}

/// One background-compaction cycle for one table: snapshot under a brief
/// write lock, build the compacted state (encode, zones, stats, indexes)
/// entirely off-lock, swap it in under a second brief lock and re-apply
/// the writes that landed in between. On a durable system the `Compact`
/// record is appended at the snapshot point and every concurrent write's
/// WAL record is rid-translated into the post-compaction space, so replay
/// reproduces the exact same state.
///
/// Returns `Ok(false)` when there was nothing to compact or a synchronous
/// compact made the build stale.
fn background_compact_once(
    db: &RwLock<Database>,
    durability: Option<&DurabilityCtx>,
    health: &HealthState,
    table: &str,
) -> Result<bool, HtapError> {
    // Held for the whole cycle when durable: checkpoints and durable sync
    // compacts never observe a half-done background build's remap.
    let _ckpt = durability.map(|d| lock_unpoisoned(&d.ckpt_lock));
    let durable = durability.is_some();
    let mut lsn = None;
    let snapshot = {
        let mut db = write_recovered(db, health);
        let Some(snapshot) = db.begin_background_compact(table, durable) else {
            return Ok(false);
        };
        if let Some(d) = durability {
            match d.wal.append(&[WalRecord::Compact {
                table: table.to_string(),
            }]) {
                Ok(l) => lsn = Some(l),
                Err(e) => {
                    db.abort_background_compact(table);
                    return Err(e.into());
                }
            }
        }
        snapshot
    };
    // Append under the lock fixed the record's position; the swap below
    // publishes the matching in-memory state.
    let built = snapshot.build();
    let swapped = {
        let mut db = write_recovered(db, health);
        db.finish_background_compact(table, built)
    };
    if let (Some(d), Some(lsn)) = (durability, lsn) {
        // Commit (fsync) the Compact record so a compaction is only
        // reported successful once its record is durable. On failure the
        // swap stands — memory and the WAL buffer still agree, and the
        // record flushes with the next successful sync — but the error
        // feeds the compactor's failure accounting and the WAL's dead
        // latch turns the next write into a degraded-mode trip.
        d.wal.commit(lsn)?;
    }
    Ok(swapped)
}

/// Read-lock the database, recovering (and recording) a poisoned lock.
/// Safe per the MVCC design: readers only ever observe committed
/// copy-on-write state, so a writer's panic cannot leave a torn row/column
/// visible — see [`HealthState::note_poisoned_db_lock`].
fn read_recovered<'a>(
    db: &'a RwLock<Database>,
    health: &HealthState,
) -> RwLockReadGuard<'a, Database> {
    match db.read() {
        Ok(g) => g,
        Err(poisoned) => {
            health.note_poisoned_db_lock();
            // Clear the flag so one panic is one incident: without this,
            // every access after `resume_writes()` would re-trip degraded
            // mode on the same long-dead poison.
            db.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Write-lock twin of [`read_recovered`].
fn write_recovered<'a>(
    db: &'a RwLock<Database>,
    health: &HealthState,
) -> RwLockWriteGuard<'a, Database> {
    match db.write() {
        Ok(g) => g,
        Err(poisoned) => {
            health.note_poisoned_db_lock();
            db.clear_poison();
            poisoned.into_inner()
        }
    }
}

/// Engine-agreement gate shared by the ad-hoc and prepared paths.
fn check_results_match(
    sql: &str,
    bound: &BoundQuery,
    tp: &EngineRun,
    ap: &EngineRun,
) -> Result<(), HtapError> {
    if !results_match(bound, &tp.rows, &ap.rows) {
        return Err(HtapError::EngineMismatch {
            sql: sql.to_string(),
            tp_rows: tp.rows.len(),
            ap_rows: ap.rows.len(),
        });
    }
    Ok(())
}

/// Result-agreement check: rows compare as multisets (ordered queries may
/// permute ties), and floats compare with a relative tolerance because the
/// two engines aggregate in different orders (float addition is not
/// associative).
fn results_match(bound: &BoundQuery, tp: &[Row], ap: &[Row]) -> bool {
    let _ = bound;
    if tp.len() != ap.len() {
        return false;
    }
    let cmp = |x: &Row, y: &Row| {
        for (u, v) in x.iter().zip(y.iter()) {
            let o = u.total_cmp(v);
            if o != std::cmp::Ordering::Equal {
                return o;
            }
        }
        std::cmp::Ordering::Equal
    };
    // Single-row results (point lookups, scalar aggregates — the serving
    // hot path) need no sort or copy.
    if tp.len() <= 1 {
        return tp.iter().zip(ap.iter()).all(|(ra, rb)| {
            ra.len() == rb.len() && ra.iter().zip(rb.iter()).all(|(u, v)| value_approx_eq(u, v))
        });
    }
    let mut a: Vec<&Row> = tp.iter().collect();
    let mut b: Vec<&Row> = ap.iter().collect();
    a.sort_by(|x, y| cmp(x, y));
    b.sort_by(|x, y| cmp(x, y));
    a.iter().zip(b.iter()).all(|(ra, rb)| {
        ra.len() == rb.len() && ra.iter().zip(rb.iter()).all(|(u, v)| value_approx_eq(u, v))
    })
}

/// Structural equality with relative tolerance on floats.
fn value_approx_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Float(x), Value::Float(y)) => {
            let scale = x.abs().max(y.abs()).max(1.0);
            (x - y).abs() <= 1e-9 * scale
        }
        _ => a == b,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qpe_sql::value::Value;

    fn system() -> HtapSystem {
        HtapSystem::new(&TpchConfig::with_scale(0.002))
    }

    #[test]
    fn run_sql_produces_consistent_outcome() {
        let sys = system();
        let out = sys
            .run_sql("SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'")
            .unwrap();
        assert_eq!(out.tp.rows, out.ap.rows);
        assert!(out.tp.latency_ns > 0 && out.ap.latency_ns > 0);
        assert!(out.speedup() >= 1.0);
    }

    #[test]
    fn point_lookup_favors_tp() {
        let sys = system();
        let out = sys
            .run_sql("SELECT c_name FROM customer WHERE c_custkey = 42")
            .unwrap();
        assert_eq!(out.winner(), EngineKind::Tp);
    }

    #[test]
    fn big_join_favors_ap() {
        let sys = HtapSystem::new(&TpchConfig::with_scale(0.01));
        let out = sys
            .run_sql(
                "SELECT COUNT(*) FROM customer, orders, lineitem \
                 WHERE o_custkey = c_custkey AND l_orderkey = o_orderkey",
            )
            .unwrap();
        assert_eq!(out.winner(), EngineKind::Ap, "speedup={}", out.speedup());
    }

    #[test]
    fn index_served_topn_favors_tp() {
        let sys = system();
        let out = sys
            .run_sql("SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 10")
            .unwrap();
        assert_eq!(out.winner(), EngineKind::Tp);
    }

    #[test]
    fn unindexed_topn_on_big_table_favors_ap() {
        let sys = HtapSystem::new(&TpchConfig::with_scale(0.01));
        let out = sys
            .run_sql(
                "SELECT l_orderkey, l_extendedprice FROM lineitem \
                 ORDER BY l_extendedprice DESC LIMIT 10",
            )
            .unwrap();
        assert_eq!(out.winner(), EngineKind::Ap);
    }

    #[test]
    fn create_index_changes_plans() {
        let mut sys = system();
        let before = sys
            .run_sql("SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'")
            .unwrap();
        assert_eq!(before.tp.plan.count_type(crate::plan::NodeType::IndexScan), 0);
        assert!(sys.database_mut().create_index("customer", "c_mktsegment"));
        let after = sys
            .run_sql("SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'")
            .unwrap();
        assert_eq!(after.tp.plan.count_type(crate::plan::NodeType::IndexScan), 1);
        // Results identical either way.
        assert_eq!(before.tp.rows, after.tp.rows);
    }

    #[test]
    fn create_index_rejects_unknown() {
        let mut sys = system();
        assert!(!sys.database_mut().create_index("nope", "c_phone"));
        assert!(!sys.database_mut().create_index("customer", "nope"));
    }

    #[test]
    fn engine_kind_helpers() {
        assert_eq!(EngineKind::Tp.other(), EngineKind::Ap);
        assert_eq!(EngineKind::Ap.as_str(), "AP");
        assert_eq!(EngineKind::Tp.to_string(), "TP");
    }

    #[test]
    fn outcome_run_accessor() {
        let sys = system();
        let out = sys.run_sql("SELECT COUNT(*) FROM nation").unwrap();
        assert_eq!(out.run(EngineKind::Tp).engine, EngineKind::Tp);
        assert_eq!(out.run(EngineKind::Ap).engine, EngineKind::Ap);
        assert_eq!(out.tp.rows[0][0], Value::Int(25));
    }

    #[test]
    fn explain_does_not_execute() {
        let sys = system();
        let bound = sys.bind("SELECT COUNT(*) FROM customer").unwrap();
        let plan = sys.explain(&bound, EngineKind::Ap).unwrap();
        assert!(plan.total_cost > 0.0);
    }

    #[test]
    fn bind_error_propagates() {
        let sys = system();
        assert!(matches!(
            sys.run_sql("SELECT * FROM missing_table"),
            Err(HtapError::Sql(_))
        ));
    }

    fn count_machinery(sys: &HtapSystem) -> i64 {
        sys.run_sql("SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'")
            .unwrap()
            .tp
            .rows[0][0]
            .as_int()
            .unwrap()
    }

    #[test]
    fn insert_is_visible_to_both_engines_before_compaction() {
        let sys = system();
        let before = count_machinery(&sys);
        let out = sys
            .execute_statement(
                "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
                 c_mktsegment) VALUES (900001, 'customer#900001', 4, '20-555-000-1111', \
                 1234.5, 'machinery')",
            )
            .unwrap();
        let dml = out.as_dml().expect("insert is DML");
        assert_eq!(dml.result.kind, crate::exec::DmlKind::Insert);
        assert_eq!(dml.result.rows_affected, 1);
        assert_eq!(dml.plan.node_type, crate::plan::NodeType::Insert);
        assert!(dml.counters.rows_inserted == 1 && dml.counters.index_updates > 0);
        assert!(dml.latency_ns > 0);
        assert_eq!(dml.freshness.delta_rows, 1);
        // run_sql internally asserts TP/AP agreement — the delta row is
        // already visible to the AP engine.
        assert_eq!(count_machinery(&sys), before + 1);
        // ... and still after compaction.
        assert!(sys.compact("customer"));
        assert_eq!(count_machinery(&sys), before + 1);
        assert_eq!(sys.freshness("customer").unwrap().delta_rows, 0);
    }

    #[test]
    fn update_and_delete_round_trip() {
        let sys = system();
        let before = count_machinery(&sys);
        let up = sys
            .execute_statement("UPDATE customer SET c_mktsegment = 'machinery' WHERE c_custkey = 7")
            .unwrap();
        let up = up.as_dml().unwrap();
        assert_eq!(up.result.kind, crate::exec::DmlKind::Update);
        assert_eq!(up.result.rows_affected, 1);
        // PK equality predicate drives an index access path, not a scan
        assert_eq!(up.plan.children[0].node_type, crate::plan::NodeType::IndexScan);
        let after_update = count_machinery(&sys);
        assert!(after_update == before || after_update == before + 1);
        let del = sys
            .execute_statement("DELETE FROM customer WHERE c_custkey = 7")
            .unwrap();
        assert_eq!(del.as_dml().unwrap().result.rows_affected, 1);
        // engines still agree after a delete, pre- and post-compaction
        assert_eq!(count_machinery(&sys), after_update - 1);
        sys.compact("customer");
        assert_eq!(count_machinery(&sys), after_update - 1);
    }

    #[test]
    fn update_assignment_reads_old_row() {
        let sys = system();
        let before = sys
            .run_sql("SELECT c_acctbal FROM customer WHERE c_custkey = 3")
            .unwrap()
            .tp
            .rows[0][0]
            .as_float()
            .unwrap();
        sys.execute_statement("UPDATE customer SET c_acctbal = c_acctbal + 100 WHERE c_custkey = 3")
            .unwrap();
        let after = sys
            .run_sql("SELECT c_acctbal FROM customer WHERE c_custkey = 3")
            .unwrap()
            .tp
            .rows[0][0]
            .as_float()
            .unwrap();
        assert!((after - (before + 100.0)).abs() < 1e-9);
    }

    #[test]
    fn duplicate_or_null_primary_key_rejected() {
        let sys = system();
        // key 1 exists in generated data
        assert!(matches!(
            sys.execute_statement(
                "INSERT INTO customer (c_custkey, c_name) VALUES (1, 'dup')"
            ),
            Err(HtapError::Exec(exec::ExecError::Write(_)))
        ));
        assert!(matches!(
            sys.execute_statement("INSERT INTO customer (c_name) VALUES ('nokey')"),
            Err(HtapError::Exec(exec::ExecError::Write(_)))
        ));
        // duplicate within one VALUES batch
        assert!(matches!(
            sys.execute_statement(
                "INSERT INTO customer (c_custkey, c_name) VALUES (900009, 'a'), (900009, 'b')"
            ),
            Err(HtapError::Exec(exec::ExecError::Write(_)))
        ));
        // failed statements leave no trace
        assert_eq!(sys.freshness("customer").unwrap().delta_rows, 0);
    }

    #[test]
    fn update_enforces_primary_key_constraints() {
        let sys = system();
        // moving a PK onto a surviving row's key is rejected
        assert!(matches!(
            sys.execute_statement("UPDATE customer SET c_custkey = 1 WHERE c_custkey = 2"),
            Err(HtapError::Exec(exec::ExecError::Write(_)))
        ));
        // two updated rows collapsing onto one new key is rejected
        assert!(matches!(
            sys.execute_statement("UPDATE customer SET c_custkey = 900100 WHERE c_custkey < 3"),
            Err(HtapError::Exec(exec::ExecError::Write(_)))
        ));
        // rejections leave storage untouched
        assert_eq!(sys.freshness("customer").unwrap().delta_rows, 0);
        // an updated row may keep its own key (self-match is not a clash) …
        let out = sys
            .execute_statement("UPDATE customer SET c_custkey = 2, c_name = 'renamed' \
                          WHERE c_custkey = 2")
            .unwrap();
        assert_eq!(out.as_dml().unwrap().result.rows_affected, 1);
        // … and may move to a genuinely free key
        sys.execute_statement("UPDATE customer SET c_custkey = 900200 WHERE c_custkey = 3")
            .unwrap();
        let rows = sys
            .run_sql("SELECT c_custkey FROM customer WHERE c_custkey = 900200")
            .unwrap()
            .tp
            .rows;
        assert_eq!(rows.len(), 1);
        // non-PK assignments never pay PK probes
        let out = sys
            .execute_statement("UPDATE customer SET c_acctbal = 1.0 WHERE c_custkey = 4")
            .unwrap();
        assert_eq!(out.as_dml().unwrap().result.rows_affected, 1);
    }

    #[test]
    fn delta_fraction_ignores_tombstoned_delta_rows() {
        let sys = system();
        sys.execute_statement(
            "INSERT INTO region (r_regionkey, r_name) VALUES (90, 'x'), (91, 'y')",
        )
        .unwrap();
        let f = sys.freshness("region").unwrap();
        assert_eq!(f.live_delta_rows, 2);
        assert!(f.delta_fraction() > 0.0);
        sys.execute_statement("DELETE FROM region WHERE r_regionkey >= 90").unwrap();
        let f = sys.freshness("region").unwrap();
        assert_eq!(f.delta_rows, 2, "physical backlog remains");
        assert_eq!(f.live_delta_rows, 0);
        assert_eq!(f.delta_fraction(), 0.0, "no live row resides in the delta");
    }

    /// Satellite: planner cardinality estimates must track post-DML table
    /// sizes — both the catalog row count the binder snapshots and the
    /// statistics row count the optimizers estimate from.
    #[test]
    fn stats_and_plans_track_post_dml_sizes() {
        let sys = system();
        let n0 = sys.database().stats().table("nation").unwrap().row_count;
        assert_eq!(n0, 25);
        for i in 0..5 {
            sys.execute_statement(&format!(
                "INSERT INTO nation (n_nationkey, n_name, n_regionkey) VALUES ({}, 'x{}', 0)",
                100 + i,
                i
            ))
            .unwrap();
        }
        // incremental row_count maintenance, no refresh needed
        assert_eq!(sys.database().stats().table("nation").unwrap().row_count, 30);
        let bound = sys.bind("SELECT COUNT(*) FROM nation").unwrap();
        assert_eq!(bound.tables[0].row_count, 30);
        // a full-scan plan's cardinality estimate reflects the new size
        let plan = sys.explain(&bound, EngineKind::Ap).unwrap();
        let mut scan_rows = 0.0;
        plan.walk(&mut |n| {
            if n.node_type == crate::plan::NodeType::TableScan {
                scan_rows = n.plan_rows;
            }
        });
        assert_eq!(scan_rows, 30.0);
        sys.execute_statement("DELETE FROM nation WHERE n_nationkey >= 100")
            .unwrap();
        assert_eq!(sys.database().stats().table("nation").unwrap().row_count, 25);
        // min/max widened incrementally by the inserts (lazy ndv refresh
        // corrects them later; widening alone must be immediate)
        assert!(sys.database().stats().table("nation").unwrap().columns[0]
            .max
            .unwrap()
            >= 104.0);
        // compaction triggers the full stats refresh: bounds shrink back
        sys.compact("nation");
        let db = sys.database();
        let ts = db.stats().table("nation").unwrap();
        assert_eq!(ts.columns[0].max, Some(24.0));
        assert_eq!(ts.pending_ndv_writes, 0);
    }

    #[test]
    fn lazy_ndv_refresh_after_write_backlog() {
        let sys = system();
        let ndv0 = sys.database().stats().table("nation").unwrap().columns[1].ndv;
        assert_eq!(ndv0, 25);
        // 64+ inserts with distinct names crosses the staleness threshold
        for i in 0..70 {
            sys.execute_statement(&format!(
                "INSERT INTO nation (n_nationkey, n_name, n_regionkey) VALUES ({}, 'n{}', 0)",
                1000 + i,
                i
            ))
            .unwrap();
        }
        let db = sys.database();
        let ts = db.stats().table("nation").unwrap();
        assert_eq!(ts.row_count, 95);
        // The refresh fired when the backlog hit the threshold (64 writes →
        // 89 rows at that moment), not on every write: lazily, not eagerly.
        assert_eq!(ts.columns[1].ndv, 89, "ndv refreshed once at the threshold");
        assert_eq!(ts.pending_ndv_writes, 6, "post-refresh backlog keeps accumulating");
    }

    /// The pre-session `&mut self` entry point stays as a thin deprecated
    /// shim: old callers compile and behave identically.
    #[test]
    #[allow(deprecated)]
    fn deprecated_execute_sql_shim_still_works() {
        let mut sys = system();
        let q = sys.execute_sql("SELECT COUNT(*) FROM region").unwrap();
        assert_eq!(q.as_query().unwrap().tp.rows[0][0], Value::Int(5));
        let w = sys
            .execute_sql("INSERT INTO region (r_regionkey, r_name) VALUES (80, 'shim')")
            .unwrap();
        assert_eq!(w.as_dml().unwrap().result.rows_affected, 1);
    }

    /// Read-only statements go through `&self`: two threads can execute
    /// SELECTs concurrently against one shared system.
    #[test]
    fn concurrent_reads_share_the_system() {
        let sys = std::sync::Arc::new(system());
        let mut handles = Vec::new();
        for t in 0..2 {
            let sys = std::sync::Arc::clone(&sys);
            handles.push(std::thread::spawn(move || {
                for i in 0..5 {
                    let key = 1 + (t * 5 + i) % 20;
                    let out = sys
                        .execute_statement(&format!(
                            "SELECT c_custkey FROM customer WHERE c_custkey = {key}"
                        ))
                        .unwrap();
                    let q = out.as_query().unwrap();
                    assert_eq!(q.tp.rows, vec![vec![Value::Int(key)]]);
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn dml_routes_to_tp_only_and_select_still_dual_runs(){
        let sys = system();
        let q = sys.execute_statement("SELECT COUNT(*) FROM region").unwrap();
        assert!(q.as_query().is_some() && q.as_dml().is_none());
        let w = sys
            .execute_statement("DELETE FROM region WHERE r_regionkey = 4")
            .unwrap();
        let dml = w.as_dml().unwrap();
        assert!(w.as_query().is_none());
        // write counters priced by the TP latency model
        assert_eq!(dml.counters.rows_deleted, 1);
        assert_eq!(
            dml.latency_ns,
            sys.latency_model().tp_latency_ns(&dml.counters)
        );
    }
}
