//! Client-facing session layer: prepare once, execute many.
//!
//! A [`Session`] is one client's handle onto a shared [`HtapSystem`]
//! (`Arc`-shared — open as many sessions as you have clients/threads).
//! [`Session::prepare`] pays the SQL front end **once**: lex → parse → bind
//! (parameter placeholders `?`/`$n` become typed [`BoundExpr::Param`] nodes)
//! → physical planning for both engines. The resulting parameterized plans
//! land in the system-wide LRU [`PlanCache`], keyed by SQL fingerprint, so a
//! second session preparing the same statement gets a cache hit and shares
//! the same `Arc`'d plans.
//!
//! [`PreparedStatement::execute`] then does only the per-call work: validate
//! and coerce the parameter values (the same widening rules INSERT literals
//! go through — mismatches surface as structured
//! [`HtapError::ParamTypeMismatch`] / [`HtapError::ParamCountMismatch`]
//! errors), inject them into a clone of the cached plans
//! ([`crate::plan::PlanNode::substitute_params`]) and execute. Because
//! injection happens *below* the planner but *above* the executors, the
//! executed plan's predicates, pushed scan conjunctions and index keys are
//! exactly what planning the literal-inlined SQL would have produced — zone
//! map pruning re-specializes per execution against the concrete values
//! ([`crate::storage::ScanPruner`] extracts conjuncts from the substituted
//! pushed predicate), so pruning quality, result rows and
//! [`crate::exec::WorkCounters`] are identical to the unprepared run
//! (`tests/prepared_props.rs` sweeps this).
//!
//! Reads execute through `&self` (a shared read lock), so concurrent
//! sessions run prepared SELECTs fully in parallel; prepared DML takes the
//! write lock internally, exactly like [`HtapSystem::execute_statement`].
//!
//! # Statement lifecycle governance
//!
//! Every statement a session executes runs under an
//! [`crate::exec::ExecGuard`] built from the system-default
//! [`StatementLimits`] — or per-call overrides via
//! [`Session::execute_sql_with`] / [`PreparedStatement::execute_with`] —
//! plus the session's shared **cancel flag**. [`Session::cancel_handle`]
//! returns a handle any thread can use to stop the session's in-flight
//! statement at its next block/morsel boundary; the statement returns
//! [`HtapError::Cancelled`]. The flag is cleared when the next statement
//! starts, so a cancel aimed at one statement never leaks into the next.
//!
//! The session boundary is also the **containment** boundary: statement
//! execution runs under `catch_unwind`, so an executor panic surfaces as a
//! structured [`HtapError::Internal`] instead of unwinding into the caller,
//! and the next statement on the session proceeds normally (a panic that
//! poisoned the database write lock additionally trips read-only degraded
//! mode — see [`HtapSystem::health`]).

use crate::engine::{EngineKind, HtapError, HtapSystem, StatementOutcome};
use crate::exec::{CancelHandle, ExecGuard, StatementLimits};
use crate::opt::{ap, tp, PlannerCtx};
use crate::plan::PlanNode;
use crate::storage::durable_io::lock_unpoisoned;
use qpe_sql::binder::{coerce_param, substitute_params, BoundDml, BoundExpr, BoundQuery, BoundStatement};
use qpe_sql::catalog::DataType;
use qpe_sql::value::Value;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, Mutex};

// ---------------------------------------------------------------------------
// Plan cache
// ---------------------------------------------------------------------------

/// Snapshot of the shared plan cache's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanCacheStats {
    /// Prepared lookups answered from the cache.
    pub hits: u64,
    /// Prepared lookups that had to run the full front end.
    pub misses: u64,
    /// Statements currently resident.
    pub entries: usize,
    /// Maximum resident statements before LRU eviction.
    pub capacity: usize,
    /// First-seen statements the doorkeeper kept out of a full cache
    /// (admitted only if prepared again while on probation).
    pub doorkeeper_deferrals: u64,
}

impl PlanCacheStats {
    /// Hits / (hits + misses); 0 when nothing was looked up yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Default number of cached statements.
pub const PLAN_CACHE_CAPACITY: usize = 256;

struct CacheSlot {
    stmt: Arc<CachedStatement>,
    last_used: u64,
}

#[derive(Default)]
struct PlanCacheInner {
    map: HashMap<String, CacheSlot>,
    stamp: u64,
    /// Doorkeeper probation queue (FIFO, bounded to 2× capacity): the
    /// fingerprints of statements that missed while the cache was full.
    /// Only a *second* front-end run while on probation earns admission —
    /// a stream of ad-hoc one-shot statements therefore churns this queue
    /// instead of evicting the resident hot set.
    probation: VecDeque<String>,
}

/// System-wide LRU cache of prepared statements, shared by every session.
/// Lookups bump an access stamp; inserts beyond capacity evict the
/// least-recently-used entry — but only for statements that have earned
/// admission: once the cache is full, a first-seen statement goes on
/// doorkeeper probation rather than evicting a resident entry (see
/// [`PlanCacheInner::probation`]). Hit/miss counters are lock-free.
pub struct PlanCache {
    inner: Mutex<PlanCacheInner>,
    capacity: usize,
    hits: AtomicU64,
    misses: AtomicU64,
    doorkeeper_deferrals: AtomicU64,
}

impl Default for PlanCache {
    fn default() -> Self {
        PlanCache::with_capacity(PLAN_CACHE_CAPACITY)
    }
}

impl PlanCache {
    /// A cache bounded to `capacity` statements (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        PlanCache {
            inner: Mutex::new(PlanCacheInner::default()),
            capacity: capacity.max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            doorkeeper_deferrals: AtomicU64::new(0),
        }
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, PlanCacheInner> {
        // Poison recovery is safe here: every cache mutation is a single
        // HashMap/VecDeque operation that cannot leave the structure torn
        // if a holder panics between operations.
        lock_unpoisoned(&self.inner)
    }

    /// Plain lookup with no validation (tests exercise the LRU/doorkeeper
    /// mechanics without design-epoch checks).
    #[cfg(test)]
    fn get(&self, fingerprint: &str) -> Option<Arc<CachedStatement>> {
        self.get_validated(fingerprint, |_| true)
    }

    /// Lookup with validate-on-hit: the resident entry is served only if
    /// `valid` approves it (the caller checks its recorded per-table design
    /// epochs against the live catalog). A stale entry is evicted and the
    /// lookup counted as a miss, so the hit-rate reflects plans actually
    /// served — never a plan built against a since-changed physical design.
    fn get_validated(
        &self,
        fingerprint: &str,
        valid: impl FnOnce(&CachedStatement) -> bool,
    ) -> Option<Arc<CachedStatement>> {
        let mut inner = self.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        match inner.map.get_mut(fingerprint) {
            Some(slot) if valid(&slot.stmt) => {
                slot.last_used = stamp;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(Arc::clone(&slot.stmt))
            }
            Some(_) => {
                inner.map.remove(fingerprint);
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    fn insert(&self, fingerprint: String, stmt: Arc<CachedStatement>) {
        let mut inner = self.lock();
        inner.stamp += 1;
        let stamp = inner.stamp;
        if inner.map.len() >= self.capacity && !inner.map.contains_key(&fingerprint) {
            // Doorkeeper admission: evicting a resident (proven-reused)
            // entry for a first-seen statement is only worth it if that
            // statement shows up again. First sighting goes on probation;
            // the second sighting pays the eviction.
            match inner.probation.iter().position(|p| p == &fingerprint) {
                None => {
                    if inner.probation.len() >= 2 * self.capacity {
                        inner.probation.pop_front();
                    }
                    inner.probation.push_back(fingerprint);
                    self.doorkeeper_deferrals.fetch_add(1, Ordering::Relaxed);
                    return;
                }
                Some(i) => {
                    inner.probation.remove(i);
                }
            }
            // O(n) LRU eviction — n is the (small) cache capacity, and this
            // only runs on insert-at-capacity, never on the hit path.
            if let Some(victim) = inner
                .map
                .iter()
                .min_by_key(|(_, slot)| slot.last_used)
                .map(|(k, _)| k.clone())
            {
                inner.map.remove(&victim);
            }
        }
        inner.map.insert(fingerprint, CacheSlot { stmt, last_used: stamp });
    }

    /// Drops every entry (prepared handles keep their `Arc`'d statements).
    pub fn clear(&self) {
        let mut inner = self.lock();
        inner.map.clear();
        inner.probation.clear();
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PlanCacheStats {
        PlanCacheStats {
            hits: self.hits.load(Ordering::Relaxed),
            misses: self.misses.load(Ordering::Relaxed),
            entries: self.lock().map.len(),
            capacity: self.capacity,
            doorkeeper_deferrals: self.doorkeeper_deferrals.load(Ordering::Relaxed),
        }
    }
}

// ---------------------------------------------------------------------------
// Cached statements
// ---------------------------------------------------------------------------

/// One fully-front-ended statement: the parameterized bound form plus its
/// physical plan(s). Shared via `Arc` between the plan cache and every
/// prepared handle.
pub struct CachedStatement {
    /// The fingerprint SQL (trimmed, trailing `;` stripped).
    sql: String,
    /// Each referenced table's design epoch at plan time
    /// ([`crate::engine::Database::design_epoch`]). A cache hit is only
    /// served while every entry still matches, so a physical-design change
    /// (index build, zone/bloom/encoding reconfiguration) invalidates
    /// exactly the statements that touch the changed table.
    design_epochs: Vec<(String, u64)>,
    kind: CachedKind,
}

enum CachedKind {
    /// A read: both engines' parameterized plans. The bound query is
    /// `Arc`-shared into every execution's `QueryOutcome` — no per-call
    /// clone.
    Query {
        bound: Arc<BoundQuery>,
        tp: PlanNode,
        ap: PlanNode,
    },
    /// A write: the TP write plan.
    Dml { dml: BoundDml, plan: PlanNode },
}

impl CachedStatement {
    /// The prepared SQL text.
    pub fn sql(&self) -> &str {
        &self.sql
    }

    /// Per-parameter context-inferred types.
    pub fn param_types(&self) -> &[Option<DataType>] {
        match &self.kind {
            CachedKind::Query { bound, .. } => &bound.params,
            CachedKind::Dml { dml, .. } => dml.param_types(),
        }
    }

    /// True for `SELECT` statements.
    pub fn is_query(&self) -> bool {
        matches!(self.kind, CachedKind::Query { .. })
    }
}

impl HtapSystem {
    /// Runs the full front end for `sql` — or returns the cached result.
    /// This is the "parse once" half of the prepared-statement contract;
    /// [`PreparedStatement::execute`] is the "execute many" half.
    pub(crate) fn prepare_cached(&self, sql: &str) -> Result<Arc<CachedStatement>, HtapError> {
        let fingerprint = sql.trim().trim_end_matches(';');
        {
            // Validate-on-hit: a resident plan is only served while every
            // table it was planned against still has the design epoch it
            // was planned at. The brief read guard is taken before the
            // cache lock; nothing acquires them in the other order.
            let db = self.database();
            let hit = self.plan_cache().get_validated(fingerprint, |stmt| {
                stmt.design_epochs
                    .iter()
                    .all(|(table, epoch)| db.design_epoch(table) == Some(*epoch))
            });
            if let Some(hit) = hit {
                return Ok(hit);
            }
        }
        let (kind, design_epochs) = match self.bind_statement(fingerprint)? {
            BoundStatement::Query(bound) => {
                let db = self.database();
                let mut ctx = PlannerCtx::new(&bound, db.stats(), db.catalog());
                ctx.pushdown = self.pruning();
                let tp = tp::plan(&ctx)?;
                let ap = ap::plan(&ctx)?;
                let epochs = design_epochs_for(&db, bound.tables.iter().map(|t| t.name.as_str()));
                drop(db);
                (CachedKind::Query { bound: Arc::new(bound), tp, ap }, epochs)
            }
            BoundStatement::Dml(dml) => {
                let db = self.database();
                let plan = tp::plan_dml(&dml, db.stats(), db.catalog())?;
                let epochs = design_epochs_for(&db, std::iter::once(dml.table_name()));
                drop(db);
                (CachedKind::Dml { dml, plan }, epochs)
            }
        };
        let stmt = Arc::new(CachedStatement {
            sql: fingerprint.to_string(),
            design_epochs,
            kind,
        });
        self.plan_cache()
            .insert(fingerprint.to_string(), Arc::clone(&stmt));
        Ok(stmt)
    }
}

/// The deduplicated `(table, design_epoch)` pairs a statement was planned
/// against, captured under the same guard the planner used.
fn design_epochs_for<'a>(
    db: &crate::engine::Database,
    tables: impl Iterator<Item = &'a str>,
) -> Vec<(String, u64)> {
    let mut out: Vec<(String, u64)> = Vec::new();
    for name in tables {
        if out.iter().any(|(n, _)| n == name) {
            continue;
        }
        if let Some(epoch) = db.design_epoch(name) {
            out.push((name.to_string(), epoch));
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Sessions and prepared statements
// ---------------------------------------------------------------------------

/// One client's handle onto a shared [`HtapSystem`]. Sessions are cheap
/// (an `Arc` clone) and independent — every thread gets its own.
pub struct Session {
    system: Arc<HtapSystem>,
    /// Shared cancel flag: raised by [`CancelHandle`]s from any thread,
    /// cleared when the next statement starts. Prepared statements from
    /// this session share it.
    cancel: Arc<AtomicBool>,
    /// Session-level engine pin (see [`Session::pin_engine`]): `PIN_DUAL`
    /// runs reads on both engines, `PIN_TP`/`PIN_AP` on one. Shared with
    /// prepared statements like the cancel flag, so re-pinning a session
    /// re-routes statements it already prepared.
    pin: Arc<AtomicU8>,
}

const PIN_DUAL: u8 = 0;
const PIN_TP: u8 = 1;
const PIN_AP: u8 = 2;

fn pin_code(engine: Option<EngineKind>) -> u8 {
    match engine {
        None => PIN_DUAL,
        Some(EngineKind::Tp) => PIN_TP,
        Some(EngineKind::Ap) => PIN_AP,
    }
}

fn pin_engine_of(code: u8) -> Option<EngineKind> {
    match code {
        PIN_TP => Some(EngineKind::Tp),
        PIN_AP => Some(EngineKind::Ap),
        _ => None,
    }
}

impl Session {
    /// Opens a session over a shared system.
    pub fn new(system: Arc<HtapSystem>) -> Self {
        Session {
            system,
            cancel: Arc::new(AtomicBool::new(false)),
            pin: Arc::new(AtomicU8::new(PIN_DUAL)),
        }
    }

    /// Pins this session's reads to one engine (`None` restores dual-run).
    /// While pinned, every `SELECT` the session (or its prepared statements)
    /// executes runs on that engine **only** — the other engine's plan is
    /// never executed, so a pure-OLTP client stops paying the analytical
    /// run. Writes are unaffected (DML is TP-only on every path). Pinned
    /// results are byte-identical to the same engine's side of a dual run.
    pub fn pin_engine(&self, engine: Option<EngineKind>) {
        self.pin.store(pin_code(engine), Ordering::SeqCst);
    }

    /// The current engine pin (`None` = dual-run).
    pub fn engine_pin(&self) -> Option<EngineKind> {
        pin_engine_of(self.pin.load(Ordering::SeqCst))
    }

    /// The underlying system.
    pub fn system(&self) -> &Arc<HtapSystem> {
        &self.system
    }

    /// A handle that cancels this session's in-flight statement from any
    /// other thread. The statement observes the flag at its next
    /// block/morsel boundary and returns [`HtapError::Cancelled`]; starting
    /// the next statement clears the flag.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle::from_flag(Arc::clone(&self.cancel))
    }

    /// Prepares a statement: full front end on cache miss, `Arc` clone on
    /// hit. Placeholders (`?` positional, `$n` numbered) may appear anywhere
    /// a literal may in comparisons, `BETWEEN` bounds, `SET` assignments and
    /// `VALUES` rows.
    pub fn prepare(&self, sql: &str) -> Result<PreparedStatement, HtapError> {
        let stmt = self.system.prepare_cached(sql)?;
        Ok(PreparedStatement {
            system: Arc::clone(&self.system),
            cancel: Arc::clone(&self.cancel),
            pin: Arc::clone(&self.pin),
            stmt,
        })
    }

    /// One-shot convenience: prepare (through the shared cache) and execute
    /// with no parameters under the system-default limits. Repeated calls
    /// with identical SQL skip the front end after the first.
    pub fn execute_sql(&self, sql: &str) -> Result<StatementOutcome, HtapError> {
        let limits = self.system.statement_limits().clone();
        self.execute_sql_with(sql, &limits)
    }

    /// [`Session::execute_sql`] with explicit per-statement limits (timeout,
    /// memory budget) overriding the system defaults for this call only.
    pub fn execute_sql_with(
        &self,
        sql: &str,
        limits: &StatementLimits,
    ) -> Result<StatementOutcome, HtapError> {
        self.prepare(sql)?.execute_with(&[], limits)
    }
}

/// Runs `f`, containing any panic as a structured [`HtapError::Internal`].
/// This is the session-boundary firewall: an executor bug (or an injected
/// panic) stops the statement, not the process, and the session stays
/// usable. `AssertUnwindSafe` is sound here because the engine repairs its
/// own shared state on the next access — poisoned locks are recovered (and
/// a writer panic trips read-only degraded mode), and all read state is
/// committed copy-on-write.
fn contain<T>(f: impl FnOnce() -> Result<T, HtapError>) -> Result<T, HtapError> {
    match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
        Ok(r) => r,
        // `&*payload`, not `&payload`: the latter would unsize the `Box`
        // itself into the `dyn Any` and every downcast would miss.
        Err(payload) => Err(HtapError::Internal(panic_message(&*payload))),
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_string()
    }
}

/// A prepared statement bound to the session's system: execute it any number
/// of times with varying parameter values. Cloning is cheap (two `Arc`s) and
/// handles stay valid across cache eviction.
#[derive(Clone)]
pub struct PreparedStatement {
    system: Arc<HtapSystem>,
    /// The owning session's cancel flag (shared — cancelling the session
    /// cancels whichever of its statements is in flight).
    cancel: Arc<AtomicBool>,
    /// The owning session's engine pin (shared — re-pinning the session
    /// re-routes statements prepared earlier).
    pin: Arc<AtomicU8>,
    stmt: Arc<CachedStatement>,
}

impl PreparedStatement {
    /// The prepared SQL text.
    pub fn sql(&self) -> &str {
        self.stmt.sql()
    }

    /// True for `SELECT` statements.
    pub fn is_query(&self) -> bool {
        self.stmt.is_query()
    }

    /// A handle that cancels an in-flight execution of this statement (or
    /// any other statement of the owning session) from another thread.
    pub fn cancel_handle(&self) -> CancelHandle {
        CancelHandle::from_flag(Arc::clone(&self.cancel))
    }

    /// Number of parameters the statement expects.
    pub fn param_count(&self) -> usize {
        self.stmt.param_types().len()
    }

    /// Per-parameter context-inferred types (`None` = unconstrained).
    pub fn param_types(&self) -> &[Option<DataType>] {
        self.stmt.param_types()
    }

    /// Executes with the given parameter values: validate + coerce, inject
    /// into the cached plans, run. No re-lex, re-parse, re-bind or re-plan.
    /// Governed by the system-default [`StatementLimits`].
    pub fn execute(&self, params: &[Value]) -> Result<StatementOutcome, HtapError> {
        let limits = self.system.statement_limits().clone();
        self.execute_with(params, &limits)
    }

    /// [`PreparedStatement::execute`] with explicit per-call limits. The
    /// whole execution runs under one [`ExecGuard`] (cancel flag, deadline
    /// and memory budget) and inside the session's panic-containment
    /// boundary. Honors the owning session's engine pin
    /// ([`Session::pin_engine`]): pinned reads run on one engine only.
    pub fn execute_with(
        &self,
        params: &[Value],
        limits: &StatementLimits,
    ) -> Result<StatementOutcome, HtapError> {
        self.execute_routed(params, limits, pin_engine_of(self.pin.load(Ordering::SeqCst)))
    }

    /// Executes this statement's read on **one** engine only (no dual-run,
    /// no agreement check), regardless of the session pin. DML executes
    /// normally (writes are TP-only on every path). Governed by the
    /// system-default [`StatementLimits`].
    pub fn execute_on(
        &self,
        engine: EngineKind,
        params: &[Value],
    ) -> Result<StatementOutcome, HtapError> {
        let limits = self.system.statement_limits().clone();
        self.execute_on_with(engine, params, &limits)
    }

    /// [`PreparedStatement::execute_on`] with explicit per-call limits.
    pub fn execute_on_with(
        &self,
        engine: EngineKind,
        params: &[Value],
        limits: &StatementLimits,
    ) -> Result<StatementOutcome, HtapError> {
        self.execute_routed(params, limits, Some(engine))
    }

    /// Executes with an explicit dual-run (both engines + agreement check),
    /// overriding any session engine pin for this call only.
    pub fn execute_dual_with(
        &self,
        params: &[Value],
        limits: &StatementLimits,
    ) -> Result<StatementOutcome, HtapError> {
        self.execute_routed(params, limits, None)
    }

    /// The shared execute path: coerce, arm the guard, substitute the
    /// cached plan(s), run — dual or pinned.
    fn execute_routed(
        &self,
        params: &[Value],
        limits: &StatementLimits,
        pin: Option<EngineKind>,
    ) -> Result<StatementOutcome, HtapError> {
        let params = self.coerce(params)?;
        // Starting a statement lowers any stale cancel from a previous one.
        self.cancel.store(false, Ordering::SeqCst);
        let guard = ExecGuard::with_cancel(limits, Arc::clone(&self.cancel));
        contain(|| match &self.stmt.kind {
            CachedKind::Query { bound, tp, ap } => match pin {
                None => {
                    let (tp_plan, ap_plan) = if params.is_empty() {
                        (tp.clone(), ap.clone())
                    } else {
                        (tp.substitute_params(&params), ap.substitute_params(&params))
                    };
                    let outcome = self.system.run_prepared(bound, tp_plan, ap_plan, &guard)?;
                    Ok(StatementOutcome::Query(Box::new(outcome)))
                }
                Some(engine) => {
                    let cached = match engine {
                        EngineKind::Tp => tp,
                        EngineKind::Ap => ap,
                    };
                    let plan = if params.is_empty() {
                        cached.clone()
                    } else {
                        cached.substitute_params(&params)
                    };
                    let outcome = self.system.run_prepared_pinned(bound, plan, engine, &guard)?;
                    Ok(StatementOutcome::PinnedQuery(Box::new(outcome)))
                }
            },
            CachedKind::Dml { dml, plan } => {
                let (dml, plan) = if params.is_empty() {
                    (dml.clone(), plan.clone())
                } else {
                    (substitute_dml_params(dml, &params), plan.substitute_params(&params))
                };
                let outcome =
                    self.system
                        .execute_dml_with_plan(self.stmt.sql(), &dml, Some(plan), &guard)?;
                Ok(StatementOutcome::Dml(Box::new(outcome)))
            }
        })
    }

    /// Validates count and coerces every value to its context-inferred type
    /// (the INSERT literal rules: NULL passes, Int widens to Float,
    /// everything else must match exactly).
    fn coerce(&self, params: &[Value]) -> Result<Vec<Value>, HtapError> {
        let tys = self.stmt.param_types();
        if params.len() != tys.len() {
            return Err(HtapError::ParamCountMismatch {
                expected: tys.len(),
                got: params.len(),
            });
        }
        params
            .iter()
            .zip(tys)
            .enumerate()
            .map(|(idx, (v, ty))| {
                coerce_param(v.clone(), *ty)
                    .map_err(|(expected, got)| HtapError::ParamTypeMismatch { idx, expected, got })
            })
            .collect()
    }
}

/// Clones a bound write statement with parameters injected: `VALUES`
/// placeholders patch their (already column-typed) values into the row
/// buffer, assignment and predicate expressions substitute like any other.
fn substitute_dml_params(dml: &BoundDml, params: &[Value]) -> BoundDml {
    match dml {
        BoundDml::Insert(ins) => {
            let mut ins = ins.clone();
            for slot in &ins.param_slots {
                if let Some(v) = params.get(slot.idx) {
                    ins.rows[slot.row][slot.col] = v.clone();
                }
            }
            BoundDml::Insert(ins)
        }
        BoundDml::Update(up) => {
            let mut up = up.clone();
            for (_, expr) in &mut up.assignments {
                *expr = substitute_params(expr, params);
            }
            substitute_query_params(&mut up.scan, params);
            BoundDml::Update(up)
        }
        BoundDml::Delete(del) => {
            let mut del = del.clone();
            substitute_query_params(&mut del.scan, params);
            BoundDml::Delete(del)
        }
    }
}

/// In-place parameter substitution over a bound query's expression trees
/// (the DML scan query — the executors read its filters through the plan,
/// but `collect_target_rids` re-evaluates plan predicates, so both must
/// agree).
fn substitute_query_params(q: &mut BoundQuery, params: &[Value]) {
    let subst = |e: &mut BoundExpr| *e = substitute_params(e, params);
    for f in &mut q.filters {
        subst(&mut f.expr);
    }
    for r in &mut q.residual_predicates {
        subst(r);
    }
    for p in &mut q.projections {
        subst(&mut p.expr);
    }
    for g in &mut q.group_by {
        subst(g);
    }
    if let Some(h) = &mut q.having {
        subst(h);
    }
    for (o, _) in &mut q.order_by {
        subst(o);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineKind;
    use crate::tpch::TpchConfig;

    fn shared_system() -> Arc<HtapSystem> {
        Arc::new(HtapSystem::new(&TpchConfig::with_scale(0.002)))
    }

    #[test]
    fn prepare_once_execute_many_matches_inlined() {
        let sys = shared_system();
        let session = Session::new(Arc::clone(&sys));
        let stmt = session
            .prepare("SELECT c_name FROM customer WHERE c_custkey = ?")
            .unwrap();
        assert_eq!(stmt.param_count(), 1);
        for key in [1i64, 42, 137, 299] {
            let prepared = stmt.execute(&[Value::Int(key)]).unwrap();
            let prepared = prepared.as_query().unwrap();
            let inlined = sys
                .run_sql(&format!("SELECT c_name FROM customer WHERE c_custkey = {key}"))
                .unwrap();
            assert_eq!(prepared.tp.rows, inlined.tp.rows);
            assert_eq!(prepared.ap.rows, inlined.ap.rows);
            assert_eq!(prepared.tp.counters, inlined.tp.counters);
            assert_eq!(prepared.ap.counters, inlined.ap.counters);
            assert_eq!(prepared.tp.latency_ns, inlined.tp.latency_ns);
            assert_eq!(prepared.ap.latency_ns, inlined.ap.latency_ns);
        }
    }

    #[test]
    fn prepared_point_lookup_uses_the_index() {
        let sys = shared_system();
        let session = Session::new(Arc::clone(&sys));
        let stmt = session
            .prepare("SELECT c_name FROM customer WHERE c_custkey = ?")
            .unwrap();
        let out = stmt.execute(&[Value::Int(7)]).unwrap();
        let q = out.as_query().unwrap();
        assert_eq!(q.tp.plan.count_type(crate::plan::NodeType::IndexScan), 1);
        assert_eq!(q.run(EngineKind::Tp).rows.len(), 1);
    }

    #[test]
    fn plan_cache_hits_across_sessions() {
        let sys = shared_system();
        let s1 = Session::new(Arc::clone(&sys));
        let s2 = Session::new(Arc::clone(&sys));
        let sql = "SELECT COUNT(*) FROM customer WHERE c_mktsegment = ?";
        let before = sys.plan_cache_stats();
        s1.prepare(sql).unwrap();
        s2.prepare(sql).unwrap();
        let after = sys.plan_cache_stats();
        assert_eq!(after.misses, before.misses + 1, "one front-end run");
        assert_eq!(after.hits, before.hits + 1, "second session hits");
        assert!(after.entries >= 1);
        assert!(after.hit_rate() > 0.0);
    }

    fn mk_stmt(sql: &str) -> Arc<CachedStatement> {
        Arc::new(CachedStatement {
            sql: sql.to_string(),
            design_epochs: vec![],
            kind: CachedKind::Dml {
                dml: BoundDml::Insert(qpe_sql::binder::BoundInsert {
                    table: "t".into(),
                    rows: vec![],
                    param_slots: vec![],
                    params: vec![],
                }),
                plan: PlanNode::new(
                    crate::plan::NodeType::Insert,
                    crate::plan::PlanOp::Insert { table: "t".into(), rows: 0 },
                ),
            },
        })
    }

    #[test]
    fn plan_cache_evicts_lru_among_admitted_entries() {
        let cache = PlanCache::with_capacity(2);
        cache.insert("a".into(), mk_stmt("a"));
        cache.insert("b".into(), mk_stmt("b"));
        assert!(cache.get("a").is_some()); // a is now fresher than b
        // First sighting of c at capacity: doorkeeper defers it.
        cache.insert("c".into(), mk_stmt("c"));
        assert!(cache.get("c").is_none());
        assert!(cache.get("b").is_some(), "resident entry survives a one-shot");
        assert_eq!(cache.stats().doorkeeper_deferrals, 1);
        // Second sighting: admitted, evicting the LRU entry (a).
        cache.insert("c".into(), mk_stmt("c"));
        assert!(cache.get("a").is_none());
        assert!(cache.get("b").is_some());
        assert!(cache.get("c").is_some());
        assert_eq!(cache.stats().entries, 2);
        assert_eq!(cache.stats().capacity, 2);
    }

    #[test]
    fn doorkeeper_preserves_hot_set_hit_rate_under_one_shot_flood() {
        // Hot set exactly fills the cache; a long stream of distinct
        // ad-hoc statements then floods it, interleaved with hot
        // lookups. Without the doorkeeper every flood statement would
        // evict a hot entry (each interleaved hot lookup would miss);
        // with it the hot set stays resident and keeps hitting.
        let cache = PlanCache::with_capacity(4);
        let hot: Vec<String> = (0..4).map(|i| format!("hot{i}")).collect();
        for h in &hot {
            cache.insert(h.clone(), mk_stmt(h));
        }
        for round in 0..50 {
            let ad_hoc = format!("adhoc{round}");
            assert!(cache.get(&ad_hoc).is_none());
            cache.insert(ad_hoc.clone(), mk_stmt(&ad_hoc));
            for h in &hot {
                assert!(cache.get(h).is_some(), "hot statement evicted by one-shot flood");
            }
        }
        let stats = cache.stats();
        assert_eq!(stats.doorkeeper_deferrals, 50);
        // 4 hot lookups per round all hit; only the ad-hoc probes miss.
        assert_eq!(stats.hits, 200);
        assert_eq!(stats.misses, 50);
        assert!(stats.hit_rate() > 0.79, "hit rate {}", stats.hit_rate());
        // Probation is bounded: a flood can't grow it past 2x capacity.
        assert!(cache.lock().probation.len() <= 8);
    }

    #[test]
    fn design_change_invalidates_only_affected_cached_plans() {
        let mut sys = HtapSystem::new(&TpchConfig::with_scale(0.002));
        let cust = "SELECT COUNT(*) FROM customer WHERE c_acctbal < 0.0";
        let nation = "SELECT COUNT(*) FROM nation";
        sys.prepare_cached(cust).unwrap(); // miss: front end runs
        sys.prepare_cached(nation).unwrap(); // miss
        // Physical-design change on customer only. This no longer clears
        // the cache — invalidation is per-table via design epochs.
        assert!(sys.database_mut().set_bloom_filters("customer", true));
        let before = sys.plan_cache_stats();

        // The untouched table's plan is still served from cache.
        sys.prepare_cached(nation).unwrap();
        let mid = sys.plan_cache_stats();
        assert_eq!(mid.hits, before.hits + 1, "nation plan must survive");
        assert_eq!(mid.misses, before.misses);

        // The changed table's plan is stale: evicted, re-front-ended.
        sys.prepare_cached(cust).unwrap();
        let after = sys.plan_cache_stats();
        assert_eq!(after.hits, mid.hits, "stale plan must not be served");
        assert_eq!(after.misses, mid.misses + 1);

        // The re-planned entry hits again at the new epoch.
        sys.prepare_cached(cust).unwrap();
        let last = sys.plan_cache_stats();
        assert_eq!(last.hits, after.hits + 1);
        assert_eq!(last.misses, after.misses);
        // 2 hits / 5 lookups: only the initial misses and the one
        // genuinely-stale entry paid the front end.
        assert!(last.hit_rate() >= 0.4, "hit rate {}", last.hit_rate());
    }

    #[test]
    fn param_count_mismatch_is_structured() {
        let session = Session::new(shared_system());
        let stmt = session
            .prepare("SELECT * FROM customer WHERE c_custkey = ?")
            .unwrap();
        match stmt.execute(&[]) {
            Err(HtapError::ParamCountMismatch { expected: 1, got: 0 }) => {}
            other => panic!("expected ParamCountMismatch, got {other:?}"),
        }
        match stmt.execute(&[Value::Int(1), Value::Int(2)]) {
            Err(HtapError::ParamCountMismatch { expected: 1, got: 2 }) => {}
            other => panic!("expected ParamCountMismatch, got {other:?}"),
        }
    }

    #[test]
    fn param_type_mismatch_is_structured() {
        let session = Session::new(shared_system());
        let stmt = session
            .prepare("SELECT * FROM customer WHERE c_custkey = ?")
            .unwrap();
        match stmt.execute(&[Value::Str("not a key".into())]) {
            Err(HtapError::ParamTypeMismatch { idx: 0, expected: DataType::Int, got }) => {
                assert_eq!(got, Value::Str("not a key".into()));
            }
            other => panic!("expected ParamTypeMismatch, got {other:?}"),
        }
        // Int widens into Float parameters, as for INSERT literals.
        let stmt = session
            .prepare("SELECT COUNT(*) FROM customer WHERE c_acctbal < ?")
            .unwrap();
        assert!(stmt.execute(&[Value::Int(500)]).is_ok());
    }

    #[test]
    fn prepared_dml_round_trip() {
        let sys = shared_system();
        let session = Session::new(Arc::clone(&sys));
        let insert = session
            .prepare(
                "INSERT INTO customer (c_custkey, c_name, c_nationkey, c_phone, c_acctbal, \
                 c_mktsegment) VALUES (?, ?, ?, ?, ?, ?)",
            )
            .unwrap();
        for i in 0..3i64 {
            let out = insert
                .execute(&[
                    Value::Int(910_000 + i),
                    Value::Str(format!("prepared#{i}")),
                    Value::Int(i % 25),
                    Value::Str("20-000-000-0000".into()),
                    Value::Int(100 + i), // Int → Float widening
                    Value::Str("machinery".into()),
                ])
                .unwrap();
            assert_eq!(out.as_dml().unwrap().result.rows_affected, 1);
        }
        let lookup = session
            .prepare("SELECT c_name, c_acctbal FROM customer WHERE c_custkey = ?")
            .unwrap();
        let q = lookup.execute(&[Value::Int(910_001)]).unwrap();
        let rows = &q.as_query().unwrap().tp.rows;
        assert_eq!(rows[0][0], Value::Str("prepared#1".into()));
        assert_eq!(rows[0][1], Value::Float(101.0));

        let update = session
            .prepare("UPDATE customer SET c_acctbal = ? WHERE c_custkey = ?")
            .unwrap();
        update
            .execute(&[Value::Float(7.5), Value::Int(910_002)])
            .unwrap();
        let q = lookup.execute(&[Value::Int(910_002)]).unwrap();
        assert_eq!(q.as_query().unwrap().tp.rows[0][1], Value::Float(7.5));

        let delete = session
            .prepare("DELETE FROM customer WHERE c_custkey = ?")
            .unwrap();
        for i in 0..3i64 {
            let out = delete.execute(&[Value::Int(910_000 + i)]).unwrap();
            assert_eq!(out.as_dml().unwrap().result.rows_affected, 1);
        }
        let q = lookup.execute(&[Value::Int(910_000)]).unwrap();
        assert!(q.as_query().unwrap().tp.rows.is_empty());
    }

    #[test]
    fn duplicate_pk_through_prepared_insert_errors() {
        let session = Session::new(shared_system());
        let insert = session
            .prepare("INSERT INTO customer (c_custkey, c_name) VALUES (?, ?)")
            .unwrap();
        assert!(matches!(
            insert.execute(&[Value::Int(1), Value::Str("dup".into())]),
            Err(HtapError::Exec(_))
        ));
        // NULL primary key through a parameter is also rejected.
        assert!(matches!(
            insert.execute(&[Value::Null, Value::Str("nokey".into())]),
            Err(HtapError::Exec(_))
        ));
    }

    #[test]
    fn session_execute_sql_is_cached_convenience() {
        let sys = shared_system();
        let session = Session::new(Arc::clone(&sys));
        let sql = "SELECT COUNT(*) FROM nation";
        let a = session.execute_sql(sql).unwrap();
        let b = session.execute_sql(sql).unwrap();
        assert_eq!(
            a.as_query().unwrap().tp.rows,
            b.as_query().unwrap().tp.rows
        );
        let stats = sys.plan_cache_stats();
        assert!(stats.hits >= 1, "second call must hit: {stats:?}");
    }
}
