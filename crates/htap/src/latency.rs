//! Deterministic work-counter → latency model.
//!
//! Executing at laptop scale cannot reproduce the paper's absolute wall-clock
//! numbers (their testbed ran 100 GB on a six-machine cluster), and raw
//! wall-clock at small scale is noise-dominated. Instead, each engine's
//! latency is computed *deterministically* from the work its operators
//! actually performed ([`crate::exec::WorkCounters`]) times calibrated
//! per-unit costs. The constants encode the mechanisms the paper's experts
//! cite:
//!
//! * TP pays per full row touched (row store), little per index probe, and a
//!   small fixed startup — point lookups and index-served top-N are cheap,
//!   full scans and nested-loop joins are expensive.
//! * AP pays per *cell* of referenced columns (columnar, vectorized), has
//!   cheap hash joins, but a large fixed startup (vectorized pipeline setup,
//!   columnar segment opening) — big scans/joins are cheap, tiny queries are
//!   not.
//!
//! The crossover structure (who wins where) is what the router learns and
//! the explainer explains.

use crate::exec::WorkCounters;
use serde::{Deserialize, Serialize};

/// Per-unit latency constants for one engine, in nanoseconds.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EngineCosts {
    /// Fixed per-query startup.
    pub fixed_ns: u64,
    /// Per full row fetched from the row store.
    pub row_scan_ns: u64,
    /// Per columnar cell touched.
    pub cell_scan_ns: u64,
    /// Per B-tree traversal.
    pub index_probe_ns: u64,
    /// Per row located through an index.
    pub index_fetch_ns: u64,
    /// Per predicate evaluation.
    pub filter_ns: u64,
    /// Per nested-loop pair.
    pub nlj_pair_ns: u64,
    /// Per hash-table insert.
    pub hash_build_ns: u64,
    /// Per hash-table probe.
    pub hash_probe_ns: u64,
    /// Per sort comparison.
    pub sort_cmp_ns: u64,
    /// Per top-N heap push.
    pub topn_push_ns: u64,
    /// Per aggregated row.
    pub agg_row_ns: u64,
    /// Per output row.
    pub output_ns: u64,
    /// Per row appended by `INSERT`.
    pub insert_row_ns: u64,
    /// Per row rewritten by `UPDATE` (tuple relocation).
    pub update_row_ns: u64,
    /// Per row tombstoned by `DELETE`.
    pub delete_row_ns: u64,
    /// Per B-tree index entry modification on the write path.
    pub index_update_ns: u64,
    /// Per zone-map block stats header consulted by a pruned scan. Tiny —
    /// a pruned block costs one header check instead of its cells, which is
    /// exactly how block skipping shows up in simulated latencies.
    pub block_check_ns: u64,
}

impl EngineCosts {
    /// Calibrated TP (row engine) constants.
    pub fn tp() -> Self {
        EngineCosts {
            fixed_ns: 500_000, // 0.5 ms
            row_scan_ns: 1_200,
            cell_scan_ns: 0, // TP never does columnar scans
            index_probe_ns: 1_500,
            index_fetch_ns: 400,
            filter_ns: 100,
            nlj_pair_ns: 80,
            hash_build_ns: 0,
            hash_probe_ns: 0,
            sort_cmp_ns: 120,
            topn_push_ns: 120,
            agg_row_ns: 100,
            output_ns: 100,
            // Writes are the row engine's home turf: append + in-place
            // index maintenance.
            insert_row_ns: 1_500,
            update_row_ns: 2_000,
            delete_row_ns: 800,
            index_update_ns: 600,
            block_check_ns: 0, // the row store has no zone maps
        }
    }

    /// Calibrated AP (column engine) constants.
    pub fn ap() -> Self {
        EngineCosts {
            fixed_ns: 15_000_000, // 15 ms pipeline/segment startup
            row_scan_ns: 1_200,   // AP index structures don't exist; row path unused
            cell_scan_ns: 20,
            index_probe_ns: 0,
            index_fetch_ns: 0,
            filter_ns: 50, // vectorized
            nlj_pair_ns: 80,
            hash_build_ns: 150,
            hash_probe_ns: 80,
            sort_cmp_ns: 60,
            topn_push_ns: 60,
            agg_row_ns: 50,
            output_ns: 100,
            // Column-store write amplification: the system routes DML to TP,
            // so these only matter if that routing ever changes — priced
            // high to keep the asymmetry honest.
            insert_row_ns: 6_000,
            update_row_ns: 8_000,
            delete_row_ns: 2_000,
            index_update_ns: 0,
            block_check_ns: 25,
        }
    }

    /// Simulated latency in nanoseconds for the given counters.
    pub fn latency_ns(&self, c: &WorkCounters) -> u64 {
        self.fixed_ns
            + c.rows_scanned * self.row_scan_ns
            + c.cells_scanned * self.cell_scan_ns
            + c.index_probes * self.index_probe_ns
            + c.index_fetches * self.index_fetch_ns
            + c.filter_evals * self.filter_ns
            + c.nlj_pairs * self.nlj_pair_ns
            + c.hash_build_rows * self.hash_build_ns
            + c.hash_probe_rows * self.hash_probe_ns
            + c.sort_comparisons * self.sort_cmp_ns
            + c.topn_pushes * self.topn_push_ns
            + c.agg_rows * self.agg_row_ns
            + c.output_rows * self.output_ns
            + c.rows_inserted * self.insert_row_ns
            + c.rows_updated * self.update_row_ns
            + c.rows_deleted * self.delete_row_ns
            + c.index_updates * self.index_update_ns
            + c.blocks_checked * self.block_check_ns
    }
}

/// Pricing constants for morsel-driven parallel AP execution.
///
/// The parallel latency is a **critical-path model** over the same counters
/// serial execution reports (counters are identical across executors by
/// contract): work that morsel-parallelizes divides by the worker count,
/// the serial sections (startup, top-N buffer, output materialization) do
/// not, and scheduling charges per-morsel dispatch plus a one-time pool
/// spawn. Small queries therefore get *slower* with threads — the same
/// realism the router and explainer need to not recommend parallelism for
/// point lookups.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParallelCosts {
    /// Cost of standing up the scoped worker pool, charged once per query —
    /// an abstraction: the implementation scopes a pool per kernel, so this
    /// constant represents that startup amortized across a query's
    /// operators.
    pub pool_spawn_ns: u64,
    /// Dispatch/merge overhead per morsel.
    pub per_morsel_ns: u64,
    /// Rows per morsel assumed by the pricing model.
    pub morsel_rows: u64,
}

impl Default for ParallelCosts {
    fn default() -> Self {
        ParallelCosts {
            pool_spawn_ns: 60_000, // thread spawn + join across the pool
            per_morsel_ns: 2_000,  // queue pop, slice setup, result splice
            morsel_rows: 4096,
        }
    }
}

/// The two-engine latency model.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyModel {
    /// TP constants.
    pub tp: EngineCosts,
    /// AP constants.
    pub ap: EngineCosts,
    /// Parallel-execution constants for the AP engine.
    pub parallel: ParallelCosts,
    /// Display-time multiplier used when printing "paper-scale" latencies
    /// (e.g. in the Example 1 demo). Never affects winner decisions.
    pub display_scale: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            tp: EngineCosts::tp(),
            ap: EngineCosts::ap(),
            parallel: ParallelCosts::default(),
            display_scale: 1.0,
        }
    }
}

impl LatencyModel {
    /// TP latency (ns) for the given counters.
    pub fn tp_latency_ns(&self, c: &WorkCounters) -> u64 {
        self.tp.latency_ns(c)
    }

    /// AP latency (ns) for the given counters.
    pub fn ap_latency_ns(&self, c: &WorkCounters) -> u64 {
        self.ap.latency_ns(c)
    }

    /// AP latency (ns) when the batch executor runs with `threads` workers:
    /// the critical-path model described on [`ParallelCosts`]. `threads <= 1`
    /// is exactly [`LatencyModel::ap_latency_ns`] — the serial path.
    pub fn ap_latency_ns_threads(&self, c: &WorkCounters, threads: u64) -> u64 {
        let serial = self.ap.latency_ns(c);
        if threads <= 1 {
            return serial;
        }
        // Work that fans out morsel-wise (scans, filters, join build/probe,
        // sort comparisons, grouped aggregation, gathers).
        let par_ns = c.cells_scanned * self.ap.cell_scan_ns
            + c.rows_scanned * self.ap.row_scan_ns
            + c.filter_evals * self.ap.filter_ns
            + c.nlj_pairs * self.ap.nlj_pair_ns
            + c.hash_build_rows * self.ap.hash_build_ns
            + c.hash_probe_rows * self.ap.hash_probe_ns
            + c.sort_comparisons * self.ap.sort_cmp_ns
            + c.agg_rows * self.ap.agg_row_ns;
        // Everything else (pipeline startup, top-N buffer, output
        // materialization, index/write work) stays on the critical path.
        let serial_ns = serial - self.ap.fixed_ns - par_ns;
        let par_units = c.cells_scanned
            + c.rows_scanned
            + c.filter_evals
            + c.nlj_pairs
            + c.hash_build_rows
            + c.hash_probe_rows
            + c.sort_comparisons
            + c.agg_rows;
        let morsels = par_units.div_ceil(self.parallel.morsel_rows.max(1));
        let sched_ns = if morsels == 0 {
            0 // nothing fanned out, no pool stood up
        } else {
            self.parallel.pool_spawn_ns + morsels * self.parallel.per_morsel_ns
        };
        self.ap.fixed_ns + serial_ns + par_ns / threads + sched_ns
    }

    /// Formats a nanosecond latency with the display scale applied.
    pub fn display(&self, ns: u64) -> String {
        format_latency((ns as f64 * self.display_scale) as u64)
    }
}

/// Human formatting: `310ms`, `5.80s`, `42µs`.
pub fn format_latency(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{}ms", (ns as f64 / 1e6).round() as u64)
    } else if ns >= 1_000 {
        format!("{}µs", (ns as f64 / 1e3).round() as u64)
    } else {
        format!("{ns}ns")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(rows: u64, cells: u64) -> WorkCounters {
        WorkCounters {
            rows_scanned: rows,
            cells_scanned: cells,
            ..Default::default()
        }
    }

    #[test]
    fn tp_cheap_for_point_lookups_ap_cheap_for_scans() {
        let m = LatencyModel::default();
        // Point lookup: TP fetches 1 row via index; AP scans a column.
        let tp_point = WorkCounters {
            index_probes: 1,
            index_fetches: 1,
            rows_scanned: 1,
            ..Default::default()
        };
        let ap_point = counters(0, 30_000);
        assert!(m.tp_latency_ns(&tp_point) < m.ap_latency_ns(&ap_point));

        // Big scan: TP reads 100k full rows; AP reads 200k cells.
        let tp_scan = counters(100_000, 0);
        let ap_scan = counters(0, 200_000);
        assert!(m.tp_latency_ns(&tp_scan) > m.ap_latency_ns(&ap_scan));
    }

    #[test]
    fn fixed_overheads_differ() {
        let m = LatencyModel::default();
        let empty = WorkCounters::default();
        assert_eq!(m.tp_latency_ns(&empty), 500_000);
        assert_eq!(m.ap_latency_ns(&empty), 15_000_000);
    }

    #[test]
    fn latency_is_monotone_in_work() {
        let m = LatencyModel::default();
        let small = counters(10, 10);
        let big = counters(1000, 1000);
        assert!(m.tp_latency_ns(&small) < m.tp_latency_ns(&big));
        assert!(m.ap_latency_ns(&small) < m.ap_latency_ns(&big));
    }

    #[test]
    fn formatting() {
        assert_eq!(format_latency(310_000_000), "310ms");
        assert_eq!(format_latency(5_800_000_000), "5.80s");
        assert_eq!(format_latency(42_000), "42µs");
        assert_eq!(format_latency(999), "999ns");
    }

    #[test]
    fn parallel_pricing_follows_the_critical_path() {
        let m = LatencyModel::default();
        // Big scan: parallel work dominates, 4 threads ≈ 4x on the work
        // portion (well over 2x end to end despite fixed startup).
        let big = counters(0, 10_000_000);
        let t1 = m.ap_latency_ns_threads(&big, 1);
        let t4 = m.ap_latency_ns_threads(&big, 4);
        assert_eq!(t1, m.ap_latency_ns(&big), "1 thread is the serial model");
        assert!(
            t4 * 2 < t1,
            "4 threads should at least halve a scan-dominated query: {t4} vs {t1}"
        );
        // More threads never slows the same workload down further.
        assert!(m.ap_latency_ns_threads(&big, 8) <= t4);
        // Tiny query: scheduling overhead dominates — parallelism must look
        // *worse*, or the router would recommend threads for point lookups.
        let tiny = counters(0, 100);
        assert!(m.ap_latency_ns_threads(&tiny, 4) > m.ap_latency_ns(&tiny));
        // No parallelizable work at all: no pool, no overhead.
        let empty = WorkCounters::default();
        assert_eq!(m.ap_latency_ns_threads(&empty, 4), m.ap_latency_ns(&empty));
    }

    #[test]
    fn display_scale_only_affects_display() {
        let m = LatencyModel { display_scale: 1000.0, ..LatencyModel::default() };
        let c = counters(100, 0);
        let ns = m.tp_latency_ns(&c);
        // raw latency unchanged; display shows scaled value
        assert_eq!(ns, 500_000 + 100 * 1_200);
        assert!(m.display(ns).ends_with('s') || m.display(ns).ends_with("ms"));
    }
}
