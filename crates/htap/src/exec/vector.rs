//! Vectorized batch executor for the AP engine.
//!
//! Where the row interpreter materializes every intermediate as
//! `Vec<Vec<Value>>`, this executor moves *batches*: typed column arrays
//! (borrowed zero-copy from the column store wherever possible) plus a
//! selection vector of surviving row indices. The pipeline
//! `TableScan → Filter → HashJoin → Aggregate/TopN` then works
//! column-at-a-time:
//!
//! * scans borrow column storage outright — no per-cell clone;
//! * filters evaluate predicates over typed slices into a new selection
//!   vector ([`crate::eval::eval_predicate_mask`]) — no row construction;
//! * joins match on typed key columns and gather only the columns that are
//!   *live* above the join (late materialization);
//! * sorts and top-N permute the selection instead of moving rows;
//! * rows are materialized once, at the aggregation/projection boundary.
//!
//! **Invariant:** results and [`WorkCounters`] are identical to the row
//! interpreter on every plan this executor accepts — the latency model, the
//! optimizer and the explainer cannot tell which executor ran. Plans with
//! operators outside the AP vocabulary fall back to the row interpreter.
//!
//! With an [`ExecConfig`] of more than one thread, the hot kernels (filter
//! masks, join pair-finding, gathers, expression evaluation, grouped folds,
//! sorts) fan out morsel-wise over a scoped worker pool ([`super::parallel`])
//! using strategies chosen to keep rows *and* counters bit-identical to the
//! serial path — `threads == 1` (the default on a single-core host) is the
//! exact serial executor.

use super::parallel::{self, ExecConfig};
use super::{agg, produces_final_rows, sort, ExecError, Row, WorkCounters};
use crate::engine::Database;
use crate::eval::{eval_predicate_mask, BatchView, Schema};
use crate::plan::{PlanNode, PlanOp};
use crate::storage::col_store::{ColRef, ColumnData, FOR_BLOCK_ROWS};
use qpe_sql::binder::{BoundExpr, BoundQuery, ColumnRef};
use qpe_sql::value::Value;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// One column of a batch.
enum BatchCol<'a> {
    /// Zero-copy view into the column store (or a prior batch's storage);
    /// a [`ColRef::Chunked`] view spans a dirty table's base + delta
    /// segments without copying either.
    Borrowed(ColRef<'a>),
    /// Gathered/computed column owned by this batch.
    Owned(ColumnData),
    /// Dropped by late materialization: no consumer above reads it.
    Dead,
}

impl BatchCol<'_> {
    fn as_ref(&self) -> Option<ColRef<'_>> {
        match self {
            BatchCol::Borrowed(c) => Some(*c),
            BatchCol::Owned(c) => Some(ColRef::Single(c)),
            BatchCol::Dead => None,
        }
    }
}

/// A batch: columns aligned with the operator's output schema plus an
/// optional selection vector of physical row indices (in output order).
struct Batch<'a> {
    cols: Vec<BatchCol<'a>>,
    sel: Option<Vec<u32>>,
    rows: usize,
    /// Dense positions where the selection jumps a storage discontinuity
    /// (zone-map-pruned gap, base→delta boundary) — set by scans, consumed
    /// as morsel cut points so no morsel straddles a block boundary.
    cuts: Vec<usize>,
}

impl<'a> Batch<'a> {
    /// A batch with no storage cut points (every post-scan operator).
    fn plain(cols: Vec<BatchCol<'a>>, sel: Option<Vec<u32>>, rows: usize) -> Batch<'a> {
        Batch { cols, sel, rows, cuts: Vec::new() }
    }

    fn selected_len(&self) -> usize {
        self.sel.as_ref().map(|s| s.len()).unwrap_or(self.rows)
    }

    /// Takes ownership of the selection (materializing the identity
    /// selection if none is set) — the caller is about to replace it, so no
    /// clone is needed.
    fn take_selection(&mut self) -> Vec<u32> {
        match self.sel.take() {
            Some(s) => s,
            None => (0..self.rows as u32).collect(),
        }
    }

    /// Dense positions where morsel splits should cut so no morsel straddles
    /// a storage-segment or pruned-block boundary: the scan-provided cut
    /// list for selection batches, or the base/delta split point of a dense
    /// chunked view.
    fn morsel_cuts(&self) -> Vec<usize> {
        if self.sel.is_some() {
            return self.cuts.clone();
        }
        self.cols
            .iter()
            .find_map(|c| c.as_ref().and_then(|r| r.split_point()))
            .into_iter()
            .collect()
    }

    /// Effective morsel size for kernels over this batch
    /// ([`parallel::zone_aware_step`]): the configured step shrunk so a
    /// zone-pruned selection's *survivors* still fan out across every
    /// worker, and — for a dense scan over a frame-of-reference column —
    /// aligned down to whole FOR blocks so no morsel straddles a packed
    /// block's reference frame.
    fn morsel_step(&self, cfg: &ExecConfig) -> usize {
        let align = (self.sel.is_none()
            && self.cols.iter().any(|c| {
                matches!(c.as_ref(), Some(ColRef::Single(ColumnData::ForInt(_))))
            }))
        .then_some(FOR_BLOCK_ROWS);
        parallel::zone_aware_step(cfg.morsel_rows, self.selected_len(), cfg.threads, align)
    }
}

/// Operator output: batches flow until aggregation/projection produces
/// final rows.
enum VOut<'a> {
    Batch(Batch<'a>),
    Rows(Vec<Row>),
}

/// Which output columns an operator must actually materialize.
#[derive(Clone)]
enum Needs {
    /// Everything (root default).
    All,
    /// Only these `(table_slot, column_idx)` pairs.
    Cols(Rc<HashSet<(usize, usize)>>),
}

impl Needs {
    fn contains(&self, slot: usize, cidx: usize) -> bool {
        match self {
            Needs::All => true,
            Needs::Cols(set) => set.contains(&(slot, cidx)),
        }
    }

    /// This need-set plus every column referenced by `exprs`.
    fn with_exprs<'e>(&self, exprs: impl IntoIterator<Item = &'e BoundExpr>) -> Needs {
        match self {
            Needs::All => Needs::All,
            Needs::Cols(set) => {
                let mut set = (**set).clone();
                for e in exprs {
                    add_refs(e, &mut set);
                }
                Needs::Cols(Rc::new(set))
            }
        }
    }

    fn with_keys(&self, keys: &[ColumnRef]) -> Needs {
        match self {
            Needs::All => Needs::All,
            Needs::Cols(set) => {
                let mut set = (**set).clone();
                for k in keys {
                    set.insert((k.table_slot, k.column_idx));
                }
                Needs::Cols(Rc::new(set))
            }
        }
    }

    fn of_exprs<'e>(exprs: impl IntoIterator<Item = &'e BoundExpr>) -> Needs {
        let mut set = HashSet::new();
        for e in exprs {
            add_refs(e, &mut set);
        }
        Needs::Cols(Rc::new(set))
    }
}

fn add_refs(expr: &BoundExpr, set: &mut HashSet<(usize, usize)>) {
    expr.walk_columns(&mut |c| {
        set.insert((c.table_slot, c.column_idx));
    });
}

/// True when every operator in `plan` is in the batch executor's vocabulary
/// (the AP optimizer only emits these; anything else falls back to the row
/// interpreter).
pub fn supported(plan: &PlanNode) -> bool {
    let mut ok = true;
    plan.walk(&mut |n| {
        ok &= matches!(
            n.op,
            PlanOp::TableScan { .. }
                | PlanOp::Filter { .. }
                | PlanOp::HashJoin { .. }
                | PlanOp::Hash
                | PlanOp::Aggregate { .. }
                | PlanOp::Sort { .. }
                | PlanOp::TopNSort { .. }
                | PlanOp::Limit { .. }
                | PlanOp::Projection { .. }
                | PlanOp::OutputSort { .. }
        );
    });
    ok
}

/// Executes `plan` with the serial vectorized batch executor. Callers must
/// ensure [`supported`] holds; unsupported operators surface as `BadPlan`.
pub fn execute(
    plan: &PlanNode,
    query: &BoundQuery,
    db: &Database,
) -> Result<(Vec<Row>, WorkCounters), ExecError> {
    execute_with(plan, query, db, &ExecConfig::serial())
}

/// [`execute`] with an explicit parallelism knob: `cfg.threads == 1` is the
/// exact serial path; more threads fan the batch kernels out morsel-wise
/// with bit-identical rows and counters.
pub fn execute_with(
    plan: &PlanNode,
    query: &BoundQuery,
    db: &Database,
    cfg: &ExecConfig,
) -> Result<(Vec<Row>, WorkCounters), ExecError> {
    let mut ex = VecExecutor {
        query,
        db,
        cfg,
        counters: WorkCounters::default(),
        mask: Vec::new(),
        sel_pool: Vec::new(),
    };
    let rows = match ex.run(plan, &Needs::All)? {
        VOut::Rows(rows) => rows,
        VOut::Batch(batch) => materialize(&batch),
    };
    ex.counters.output_rows = rows.len() as u64;
    Ok((rows, ex.counters))
}

/// Materializes every live column of a batch into rows (root fallback for
/// plans whose top operator is not a projection/aggregate).
fn materialize(batch: &Batch<'_>) -> Vec<Row> {
    let n = batch.selected_len();
    let mut out = Vec::with_capacity(n);
    for j in 0..n {
        let phys = match &batch.sel {
            Some(s) => s[j] as usize,
            None => j,
        };
        out.push(
            batch
                .cols
                .iter()
                .map(|c| c.as_ref().map(|d| d.get(phys)).unwrap_or(Value::Null))
                .collect(),
        );
    }
    out
}

struct VecExecutor<'a> {
    query: &'a BoundQuery,
    db: &'a Database,
    cfg: &'a ExecConfig,
    counters: WorkCounters,
    /// Scratch predicate mask, reused across every filter in the plan.
    mask: Vec<bool>,
    /// Scratch selection buffers, recycled as operators consume selections.
    sel_pool: Vec<Vec<u32>>,
}

impl<'a> VecExecutor<'a> {
    fn take_sel(&mut self) -> Vec<u32> {
        self.sel_pool.pop().unwrap_or_default()
    }

    fn recycle_sel(&mut self, mut sel: Vec<u32>) {
        sel.clear();
        self.sel_pool.push(sel);
    }

    fn run(&mut self, node: &PlanNode, needs: &Needs) -> Result<VOut<'a>, ExecError> {
        // Cooperative governance checkpoint at every operator boundary. This
        // also discards any truncated child output: parallel kernels that
        // observe a tripped guard return shape-valid placeholders, and the
        // latched violation surfaces here (or at the later per-kernel
        // checks) before anything length-sensitive consumes them.
        self.cfg.guard().check()?;
        match &node.op {
            PlanOp::TableScan { table_slot, columns, pushed } => {
                self.table_scan(*table_slot, columns, pushed.as_ref())
            }
            PlanOp::Filter { predicate } => self.filter(node, predicate, needs),
            PlanOp::HashJoin { probe_keys, build_keys } => {
                self.hash_join(node, probe_keys, build_keys, needs)
            }
            PlanOp::Hash => self.run(&node.children[0], needs),
            PlanOp::Aggregate { group_by, outputs, having, hash } => {
                self.aggregate(node, group_by, outputs, having.as_ref(), *hash)
            }
            PlanOp::Sort { keys } => self.sort(node, keys, needs),
            PlanOp::TopNSort { keys, limit, offset } => {
                self.top_n(node, keys, *limit, *offset, needs)
            }
            PlanOp::Limit { limit, offset } => {
                let out = self.run(&node.children[0], needs)?;
                Ok(match out {
                    VOut::Rows(rows) => VOut::Rows(
                        rows.into_iter()
                            .skip(*offset as usize)
                            .take(*limit as usize)
                            .collect(),
                    ),
                    VOut::Batch(mut batch) => {
                        let sel: Vec<u32> = batch
                            .take_selection()
                            .into_iter()
                            .skip(*offset as usize)
                            .take(*limit as usize)
                            .collect();
                        VOut::Batch(Batch::plain(batch.cols, Some(sel), batch.rows))
                    }
                })
            }
            PlanOp::Projection { exprs, .. } => self.projection(node, exprs),
            PlanOp::OutputSort { keys } => {
                let child = self.run(&node.children[0], needs)?;
                let VOut::Rows(rows) = child else {
                    return Err(ExecError::BadPlan("OutputSort over a batch".into()));
                };
                Ok(VOut::Rows(sort::output_sort(
                    &mut self.counters,
                    rows,
                    keys,
                    self.cfg.guard(),
                )?))
            }
            _ => Err(ExecError::BadPlan(format!(
                "operator {:?} not supported by the batch executor",
                node.node_type
            ))),
        }
    }

    /// Delta-aware, zone-map-pruned columnar scan. Clean tables with nothing
    /// pruned borrow base columns outright (zero-copy, no selection).
    /// Everything else borrows chunked base+delta views and starts from the
    /// pruner's selection vector: kept-block live rids plus every live delta
    /// rid — buffered writes stay visible, tombstones stay masked, and
    /// refuted blocks are never touched. Selection and counter charges come
    /// from [`super::ap_scan_access`], shared with the row interpreter, so
    /// every executor reads (and charges) exactly the same cells.
    fn table_scan(
        &mut self,
        slot: usize,
        columns: &[usize],
        pushed: Option<&BoundExpr>,
    ) -> Result<VOut<'a>, ExecError> {
        let name = &self.query.tables[slot].name;
        let stored = self
            .db
            .stored_table(name)
            .ok_or_else(|| ExecError::MissingTable(name.clone()))?;
        let (sel, cuts) =
            super::ap_scan_access(stored, slot, pushed, columns.len(), &mut self.counters);
        let cols = columns
            .iter()
            .map(|&c| BatchCol::Borrowed(stored.cols.column_ref(c)))
            .collect();
        Ok(VOut::Batch(match sel {
            None => Batch::plain(cols, None, stored.cols.row_count()),
            Some(sel) => Batch {
                cols,
                sel: Some(sel),
                rows: stored.cols.physical_len(),
                cuts,
            },
        }))
    }

    fn run_batch(&mut self, node: &PlanNode, needs: &Needs) -> Result<Batch<'a>, ExecError> {
        match self.run(node, needs)? {
            VOut::Batch(b) => Ok(b),
            VOut::Rows(_) => Err(ExecError::BadPlan(
                "batch operator over final-row child".into(),
            )),
        }
    }

    fn filter(
        &mut self,
        node: &PlanNode,
        predicate: &BoundExpr,
        needs: &Needs,
    ) -> Result<VOut<'a>, ExecError> {
        let child = &node.children[0];
        let child_needs = needs.with_exprs([predicate]);
        let batch = self.run_batch(child, &child_needs)?;
        let schema = child.output_schema();

        let n = batch.selected_len();
        self.counters.filter_evals += n as u64;

        let cols: Vec<Option<ColRef>> = batch.cols.iter().map(BatchCol::as_ref).collect();
        let out_sel = if self.cfg.parallel_for(n) {
            parallel::par_filter_sel(
                self.cfg,
                predicate,
                &schema,
                &cols,
                batch.sel.as_deref(),
                batch.rows,
                batch.morsel_step(self.cfg),
                &batch.morsel_cuts(),
            )?
        } else {
            let view = BatchView { cols: &cols, sel: batch.sel.as_deref(), rows: batch.rows };
            let mut mask = std::mem::take(&mut self.mask);
            eval_predicate_mask(predicate, &schema, &view, &mut mask)?;
            let mut out_sel = self.take_sel();
            out_sel.reserve(n);
            for (j, keep) in mask.iter().enumerate() {
                if *keep {
                    out_sel.push(view.phys(j) as u32);
                }
            }
            self.mask = mask;
            out_sel
        };
        drop(cols);
        if let Some(old) = batch.sel {
            self.recycle_sel(old);
        }
        Ok(VOut::Batch(Batch::plain(batch.cols, Some(out_sel), batch.rows)))
    }

    fn hash_join(
        &mut self,
        node: &PlanNode,
        probe_keys: &[ColumnRef],
        build_keys: &[ColumnRef],
        needs: &Needs,
    ) -> Result<VOut<'a>, ExecError> {
        let probe_node = &node.children[0];
        let hash_node = &node.children[1];
        let probe_schema = probe_node.output_schema();
        let build_schema = hash_node.output_schema();

        let child_needs = needs.with_keys(probe_keys).with_keys(build_keys);
        // Build side first — the same execution order as the row interpreter.
        let build = self.run_batch(&hash_node.children[0], &child_needs)?;
        let probe = self.run_batch(probe_node, &child_needs)?;

        let bpos: Vec<usize> = build_keys
            .iter()
            .map(|k| {
                build_schema
                    .position(k.table_slot, k.column_idx)
                    .ok_or_else(|| ExecError::BadPlan("hash build key missing".into()))
            })
            .collect::<Result<_, _>>()?;
        let ppos: Vec<usize> = probe_keys
            .iter()
            .map(|k| {
                probe_schema
                    .position(k.table_slot, k.column_idx)
                    .ok_or_else(|| ExecError::BadPlan("hash probe key missing".into()))
            })
            .collect::<Result<_, _>>()?;

        self.counters.hash_build_rows += build.selected_len() as u64;
        self.counters.hash_probe_rows += probe.selected_len() as u64;

        let (probe_idx, build_idx) =
            join_pairs(self.cfg, &probe, &ppos, &build, &bpos)?;

        // A tripped guard may have truncated the pair lists; surface it
        // before gathering from them.
        self.cfg.guard().check()?;

        // Late materialization: gather only the columns some ancestor reads.
        let out_schema = probe_schema.concat(&build_schema);
        self.cfg
            .guard()
            .charge_cells(probe_idx.len() as u64 * out_schema.len().max(1) as u64)?;
        let probe_w = probe_schema.len();
        let mut cols = Vec::with_capacity(out_schema.len());
        for (p, &(slot, cidx)) in out_schema.columns().iter().enumerate() {
            let (src, idxs) = if p < probe_w {
                (&probe.cols[p], &probe_idx)
            } else {
                (&build.cols[p - probe_w], &build_idx)
            };
            let col = match (needs.contains(slot, cidx), src.as_ref()) {
                (true, Some(data)) => BatchCol::Owned(parallel::par_gather(self.cfg, data, idxs)),
                _ => BatchCol::Dead,
            };
            cols.push(col);
        }
        let rows = probe_idx.len();
        if let Some(s) = probe.sel {
            self.recycle_sel(s);
        }
        if let Some(s) = build.sel {
            self.recycle_sel(s);
        }
        Ok(VOut::Batch(Batch::plain(cols, None, rows)))
    }

    fn aggregate(
        &mut self,
        node: &PlanNode,
        group_by: &[BoundExpr],
        outputs: &[crate::plan::AggSpec],
        having: Option<&BoundExpr>,
        hash: bool,
    ) -> Result<VOut<'a>, ExecError> {
        let child = &node.children[0];
        let leaves = agg::collect_all_leaves(outputs, having);
        let needed_exprs = group_by
            .iter()
            .chain(leaves.iter().filter_map(|l| l.arg.as_ref()));
        let child_needs = Needs::of_exprs(needed_exprs.clone());
        let batch = self.run_batch(child, &child_needs)?;
        let schema = child.output_schema();

        let cols: Vec<Option<ColRef>> = batch.cols.iter().map(BatchCol::as_ref).collect();
        let sel = batch.sel.as_deref();
        // Key/argument columns materialize one cell per selected row each.
        self.cfg.guard().charge_cells(
            batch.selected_len() as u64 * (group_by.len() + leaves.len()).max(1) as u64,
        )?;
        let key_cols: Vec<ColumnData> = group_by
            .iter()
            .map(|g| parallel::par_eval_batch(self.cfg, g, &schema, &cols, sel, batch.rows))
            .collect::<Result<_, _>>()?;
        let arg_cols: Vec<Option<ColumnData>> = leaves
            .iter()
            .map(|l| {
                l.arg
                    .as_ref()
                    .map(|a| parallel::par_eval_batch(self.cfg, a, &schema, &cols, sel, batch.rows))
                    .transpose()
            })
            .collect::<Result<_, _>>()?;
        let len = sel.map(|s| s.len()).unwrap_or(batch.rows);
        let rows = agg::aggregate_cols_partitioned(
            &mut self.counters,
            self.cfg,
            len,
            &key_cols,
            &arg_cols,
            group_by,
            &leaves,
            outputs,
            having,
            hash,
        )?;
        Ok(VOut::Rows(rows))
    }

    fn sort(
        &mut self,
        node: &PlanNode,
        keys: &[(BoundExpr, bool)],
        needs: &Needs,
    ) -> Result<VOut<'a>, ExecError> {
        let child = &node.children[0];
        let child_needs = needs.with_exprs(keys.iter().map(|(k, _)| k));
        let mut batch = self.run_batch(child, &child_needs)?;
        let schema = child.output_schema();
        let (key_cols, descs) = self.sort_keys(keys, &schema, &batch)?;
        let sel = batch.take_selection();
        let sorted =
            sort::full_sort_indices_par(&mut self.counters, self.cfg, &key_cols, &descs, sel);
        Ok(VOut::Batch(Batch::plain(batch.cols, Some(sorted), batch.rows)))
    }

    fn top_n(
        &mut self,
        node: &PlanNode,
        keys: &[(BoundExpr, bool)],
        limit: u64,
        offset: u64,
        needs: &Needs,
    ) -> Result<VOut<'a>, ExecError> {
        let child = &node.children[0];
        let child_needs = needs.with_exprs(keys.iter().map(|(k, _)| k));
        let mut batch = self.run_batch(child, &child_needs)?;
        let schema = child.output_schema();
        let (key_cols, descs) = self.sort_keys(keys, &schema, &batch)?;
        let sel = batch.take_selection();
        let top = sort::top_n_indices(
            &mut self.counters,
            &key_cols,
            &descs,
            sel,
            limit,
            offset,
            self.cfg.guard(),
        );
        Ok(VOut::Batch(Batch::plain(batch.cols, Some(top), batch.rows)))
    }

    fn sort_keys(
        &mut self,
        keys: &[(BoundExpr, bool)],
        schema: &Schema,
        batch: &Batch<'_>,
    ) -> Result<(Vec<ColumnData>, Vec<bool>), ExecError> {
        let cols: Vec<Option<ColRef>> = batch.cols.iter().map(BatchCol::as_ref).collect();
        let sel = batch.sel.as_deref();
        self.cfg
            .guard()
            .charge_cells(batch.selected_len() as u64 * keys.len().max(1) as u64)?;
        let key_cols: Vec<ColumnData> = keys
            .iter()
            .map(|(k, _)| parallel::par_eval_batch(self.cfg, k, schema, &cols, sel, batch.rows))
            .collect::<Result<_, _>>()?;
        // Discard truncated key columns before the sort kernels index them
        // against the full selection.
        self.cfg.guard().check()?;
        let descs: Vec<bool> = keys.iter().map(|(_, d)| *d).collect();
        Ok((key_cols, descs))
    }

    fn projection(&mut self, node: &PlanNode, exprs: &[BoundExpr]) -> Result<VOut<'a>, ExecError> {
        let child = &node.children[0];
        // Aggregates / output sorts already produce final rows.
        if produces_final_rows(child) {
            return self.run(child, &Needs::All);
        }
        let child_needs = Needs::of_exprs(exprs);
        let batch = self.run_batch(child, &child_needs)?;
        let schema = child.output_schema();
        let cols: Vec<Option<ColRef>> = batch.cols.iter().map(BatchCol::as_ref).collect();
        let sel = batch.sel.as_deref();
        // Projection materializes one cell per output row per expression,
        // twice (column form, then row form).
        self.cfg.guard().charge_cells(
            2 * batch.selected_len() as u64 * exprs.len().max(1) as u64,
        )?;
        let out_cols: Vec<ColumnData> = exprs
            .iter()
            .map(|e| parallel::par_eval_batch(self.cfg, e, &schema, &cols, sel, batch.rows))
            .collect::<Result<_, _>>()?;
        // Discard truncated output columns before row building indexes them.
        self.cfg.guard().check()?;
        let n = sel.map(|s| s.len()).unwrap_or(batch.rows);
        Ok(VOut::Rows(parallel::par_build_rows(self.cfg, &out_cols, n)))
    }
}

/// Computes matching (probe physical index, build physical index) pairs in
/// the row interpreter's output order: probe rows in order, matches in build
/// insertion order. Uses a typed `i64` table when both key columns are
/// integer-typed; otherwise falls back to generic `Value` keys (identical
/// hashing/equality semantics to the row path).
///
/// With a parallel [`ExecConfig`], the build side is partitioned by key
/// hash (each partition's per-key match lists still fill in build order)
/// and probe morsels emit pairs concatenated in probe order — the output is
/// bit-identical to the serial pass either way.
fn join_pairs(
    cfg: &ExecConfig,
    probe: &Batch<'_>,
    ppos: &[usize],
    build: &Batch<'_>,
    bpos: &[usize],
) -> Result<(Vec<u32>, Vec<u32>), ExecError> {
    let build_len = build.selected_len();
    let probe_len = probe.selected_len();
    let parallel_join = cfg.parallel_for(probe_len.max(build_len));
    let mut probe_idx = Vec::new();
    let mut build_idx = Vec::new();

    // Typed fast path: a single key of the same integer-backed variant on
    // both sides, each in one contiguous segment (chunked keys from a dirty
    // table's delta-aware scan take the generic path below). Restricted to
    // same-variant pairs because the row interpreter's `Value` keys hash
    // with a type tag — an `Int` never matches a `Date` there, so it must
    // not match here either. Dictionary keys on both sides join on `u32`
    // codes: the probe side's codes are remapped into the build dictionary's
    // code space once (string compares only across the two small value
    // tables), then every row hashes and compares integers.
    if ppos.len() == 1 && bpos.len() == 1 {
        let pcol = probe.cols[ppos[0]]
            .as_ref()
            .ok_or_else(|| ExecError::BadPlan("join key column not materialized".into()))?;
        let bcol = build.cols[bpos[0]]
            .as_ref()
            .ok_or_else(|| ExecError::BadPlan("join key column not materialized".into()))?;
        if let (Some(ColumnData::Dict(p)), Some(ColumnData::Dict(b))) =
            (pcol.as_single(), bcol.as_single())
        {
            // Code equality in the build space ≡ string equality: each probe
            // value maps to its build code, or to -1 (absent — below every
            // valid code, so the probe can never find it in the table).
            let to_build: Vec<i64> = p
                .values
                .iter()
                .map(|v| b.code_of(v).map_or(-1, |c| c as i64))
                .collect();
            let pk = IntKeyed::Remap { codes: &p.codes, to_build: &to_build };
            let bk = IntKeyed::Code(&b.codes);
            return int_keyed_join(cfg, parallel_join, probe, build, pk, bk);
        }
        let keyed = match (pcol.as_single(), bcol.as_single()) {
            (Some(ColumnData::Int(p)), Some(ColumnData::Int(b))) => {
                Some((IntKeyed::I64(p), IntKeyed::I64(b)))
            }
            (Some(ColumnData::Date(p)), Some(ColumnData::Date(b))) => {
                Some((IntKeyed::I32(p), IntKeyed::I32(b)))
            }
            _ => None,
        };
        if let Some((pk, bk)) = keyed {
            return int_keyed_join(cfg, parallel_join, probe, build, pk, bk);
        }
    }

    // Generic path: Value keys, same structural equality as the row
    // interpreter's `HashMap<Vec<Value>, _>`.
    let bcols: Vec<ColRef<'_>> = bpos
        .iter()
        .map(|&p| {
            build.cols[p]
                .as_ref()
                .ok_or_else(|| ExecError::BadPlan("join key column not materialized".into()))
        })
        .collect::<Result<_, _>>()?;
    let pcols: Vec<ColRef<'_>> = ppos
        .iter()
        .map(|&p| {
            probe.cols[p]
                .as_ref()
                .ok_or_else(|| ExecError::BadPlan("join key column not materialized".into()))
        })
        .collect::<Result<_, _>>()?;
    if parallel_join {
        let tables = parallel::par_hash_build(cfg, build_len, |j| {
            let phys = batch_phys(build, j);
            let key: Vec<Value> = bcols.iter().map(|c| c.get(phys)).collect();
            (key, phys as u32)
        });
        return Ok(parallel::par_hash_probe(cfg, probe_len, &tables, |j| {
            let phys = batch_phys(probe, j);
            let key: Vec<Value> = pcols.iter().map(|c| c.get(phys)).collect();
            // NULL join keys never match (sql_eq semantics).
            if key.iter().any(|v| v.is_null()) {
                None
            } else {
                Some((key, phys as u32))
            }
        }));
    }
    let mut table: HashMap<Vec<Value>, Vec<u32>> = HashMap::with_capacity(build_len);
    for j in 0..build_len {
        let phys = batch_phys(build, j);
        let key: Vec<Value> = bcols.iter().map(|c| c.get(phys)).collect();
        table.entry(key).or_default().push(phys as u32);
    }
    let mut scratch: Vec<Value> = Vec::with_capacity(pcols.len());
    for j in 0..probe_len {
        let phys = batch_phys(probe, j);
        scratch.clear();
        scratch.extend(pcols.iter().map(|c| c.get(phys)));
        // NULL join keys never match (sql_eq semantics).
        if scratch.iter().any(|v| v.is_null()) {
            continue;
        }
        if let Some(matches) = table.get(&scratch) {
            for &b in matches {
                probe_idx.push(phys as u32);
                build_idx.push(b);
            }
        }
    }
    Ok((probe_idx, build_idx))
}

#[inline]
fn batch_phys(batch: &Batch<'_>, j: usize) -> usize {
    match &batch.sel {
        Some(s) => s[j] as usize,
        None => j,
    }
}

/// Integer view over `Int`, `Date`, and dictionary-code key columns.
#[derive(Clone, Copy)]
enum IntKeyed<'a> {
    I64(&'a [i64]),
    I32(&'a [i32]),
    /// Build-side dictionary codes, keyed directly.
    Code(&'a [u32]),
    /// Probe-side dictionary codes translated into the build dictionary's
    /// code space (`-1` ⇒ value absent from the build side, never matches).
    Remap {
        codes: &'a [u32],
        to_build: &'a [i64],
    },
}

impl IntKeyed<'_> {
    #[inline]
    fn get(self, idx: usize) -> i64 {
        match self {
            IntKeyed::I64(v) => v[idx],
            IntKeyed::I32(v) => v[idx] as i64,
            IntKeyed::Code(v) => v[idx] as i64,
            IntKeyed::Remap { codes, to_build } => to_build[codes[idx] as usize],
        }
    }
}

/// Shared body of the single-key integer-domain join: serial build/probe in
/// insertion order, or the hash-partitioned parallel variant — bit-identical
/// output either way.
fn int_keyed_join(
    cfg: &ExecConfig,
    parallel_join: bool,
    probe: &Batch<'_>,
    build: &Batch<'_>,
    pk: IntKeyed<'_>,
    bk: IntKeyed<'_>,
) -> Result<(Vec<u32>, Vec<u32>), ExecError> {
    let build_len = build.selected_len();
    let probe_len = probe.selected_len();
    if parallel_join {
        let tables = parallel::par_hash_build(cfg, build_len, |j| {
            let phys = batch_phys(build, j);
            (bk.get(phys), phys as u32)
        });
        return Ok(parallel::par_hash_probe(cfg, probe_len, &tables, |j| {
            let phys = batch_phys(probe, j);
            Some((pk.get(phys), phys as u32))
        }));
    }
    let mut probe_idx = Vec::new();
    let mut build_idx = Vec::new();
    let mut table: HashMap<i64, Vec<u32>> = HashMap::with_capacity(build_len);
    for j in 0..build_len {
        let phys = batch_phys(build, j);
        table.entry(bk.get(phys)).or_default().push(phys as u32);
    }
    for j in 0..probe_len {
        let phys = batch_phys(probe, j);
        if let Some(matches) = table.get(&pk.get(phys)) {
            for &b in matches {
                probe_idx.push(phys as u32);
                build_idx.push(b);
            }
        }
    }
    Ok((probe_idx, build_idx))
}
