//! Plan execution.
//!
//! Three execution modes share one plan vocabulary and one set of counters:
//!
//! * the **row interpreter** ([`execute_scalar`]) runs both engines' plans
//!   row-at-a-time — TP plans always take this path;
//! * the **vectorized batch executor** ([`vector`]) runs AP plans
//!   column-at-a-time over typed batches with selection vectors and late
//!   materialization;
//! * the **morsel-driven parallel executor** ([`parallel`]) is the batch
//!   executor with its kernels fanned out over a scoped worker pool: scans
//!   and filters split into fixed-size morsels (cut at base/delta chunk
//!   boundaries), hash-join builds partition by key hash, grouped
//!   aggregation partitions *groups* across workers, and sorts merge
//!   stable-sorted chunks.
//!
//! [`execute`] dispatches: AP plans route to the batch executor (falling
//! back to the interpreter for out-of-vocabulary operators), TP plans to
//! the interpreter. The AP side's parallelism comes from an
//! [`parallel::ExecConfig`] (defaulting to the machine's cores;
//! `QPE_AP_THREADS` / `QPE_MORSEL_ROWS` override it) — [`execute_with`]
//! takes one explicitly, and `threads == 1` is the exact serial batch path.
//!
//! **Determinism contract:** every mode returns byte-identical rows *and*
//! identical [`WorkCounters`] for the same plan — parallel merges are
//! order-restoring (morsel order = serial order), grouped folds pin each
//! group to one worker so even float accumulation keeps the serial
//! association order, and counters are charged from input sizes by shared
//! formulas. The latency model, optimizer, router and explainer consume
//! counters, not wall-clock, so execution mode and thread count are
//! invisible to them (`tests/engine_equivalence.rs` and
//! `tests/parallel_determinism.rs` enforce this).

mod agg;
pub mod guard;
pub mod parallel;
mod sort;
pub mod vector;

pub use agg::AggLeaf;
pub use guard::{CancelHandle, ExecGuard, GovernError, StatementLimits};
pub use parallel::ExecConfig;

use crate::engine::{Database, EngineKind};
use crate::eval::{eval, eval_predicate, EvalError, Schema};
use crate::plan::{IndexLookup, PlanNode, PlanOp, PlanTerm};
use crate::storage::{ScanPruner, StoredTable};
use qpe_sql::binder::{BoundDml, BoundExpr, BoundQuery};
use qpe_sql::catalog::Catalog;
use qpe_sql::value::Value;
use std::collections::{HashMap, HashSet};

/// A materialized row.
pub type Row = Vec<Value>;

/// Work performed during one plan execution; the latency model's input.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct WorkCounters {
    /// Full rows fetched from the row store.
    pub rows_scanned: u64,
    /// Individual cells touched in the column store.
    pub cells_scanned: u64,
    /// B-tree traversals.
    pub index_probes: u64,
    /// Rows fetched through an index.
    pub index_fetches: u64,
    /// Predicate evaluations.
    pub filter_evals: u64,
    /// Nested-loop (outer, inner) pairs examined.
    pub nlj_pairs: u64,
    /// Rows inserted into join hash tables.
    pub hash_build_rows: u64,
    /// Rows probed against join hash tables.
    pub hash_probe_rows: u64,
    /// Comparisons performed by full sorts.
    pub sort_comparisons: u64,
    /// Rows pushed through top-N heaps.
    pub topn_pushes: u64,
    /// Rows aggregated.
    pub agg_rows: u64,
    /// Rows in the final result.
    pub output_rows: u64,
    /// Rows appended by `INSERT` (and the append half of an update).
    pub rows_inserted: u64,
    /// Rows rewritten by `UPDATE`.
    pub rows_updated: u64,
    /// Rows tombstoned by `DELETE`.
    pub rows_deleted: u64,
    /// B-tree index entry modifications performed by the write path.
    pub index_updates: u64,
    /// Zone-map block stats headers consulted by pruned AP scans.
    pub blocks_checked: u64,
    /// Base blocks skipped outright by zone-map pruning — the storage-side
    /// savings signal the latency model and router features consume.
    pub blocks_pruned: u64,
}

impl WorkCounters {
    /// Sum of all counters — a crude "total work" scalar used in tests.
    pub fn total(&self) -> u64 {
        self.rows_scanned
            + self.cells_scanned
            + self.index_probes
            + self.index_fetches
            + self.filter_evals
            + self.nlj_pairs
            + self.hash_build_rows
            + self.hash_probe_rows
            + self.sort_comparisons
            + self.topn_pushes
            + self.agg_rows
            + self.output_rows
            + self.rows_inserted
            + self.rows_updated
            + self.rows_deleted
            + self.index_updates
            + self.blocks_checked
            + self.blocks_pruned
    }
}

/// Execution error.
#[derive(Debug)]
pub enum ExecError {
    /// Expression evaluation failed.
    Eval(EvalError),
    /// Plan shape invalid (e.g. IndexProbe executed standalone).
    BadPlan(String),
    /// A table referenced by the plan is missing from the database.
    MissingTable(String),
    /// A write violated a constraint (duplicate primary key, type mismatch).
    Write(String),
    /// The statement's [`ExecGuard`] tripped (cancelled / timed out /
    /// exceeded its memory budget) — mapped to the corresponding structured
    /// `HtapError` at the engine boundary.
    Governed(GovernError),
}

impl From<EvalError> for ExecError {
    fn from(e: EvalError) -> Self {
        ExecError::Eval(e)
    }
}

impl From<GovernError> for ExecError {
    fn from(e: GovernError) -> Self {
        ExecError::Governed(e)
    }
}

impl std::fmt::Display for ExecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecError::Eval(e) => write!(f, "evaluation error: {e}"),
            ExecError::BadPlan(m) => write!(f, "bad plan: {m}"),
            ExecError::MissingTable(t) => write!(f, "missing table: {t}"),
            ExecError::Write(m) => write!(f, "write error: {m}"),
            ExecError::Governed(g) => write!(f, "statement stopped: {g}"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Executes `plan` for `query` against `db`, returning the final output rows
/// and the work counters accumulated along the way.
///
/// AP plans run on the vectorized batch executor when every operator is in
/// its vocabulary (the AP optimizer only emits such plans); everything else
/// runs on the row interpreter. Both executors produce identical rows and
/// identical counters, so dispatch is purely a performance decision.
pub fn execute(
    plan: &PlanNode,
    query: &BoundQuery,
    db: &Database,
    engine: EngineKind,
) -> Result<(Vec<Row>, WorkCounters), ExecError> {
    execute_with(plan, query, db, engine, ExecConfig::global())
}

/// [`execute`] with an explicit parallelism knob for the AP batch executor.
/// `cfg.threads == 1` is the exact serial batch path; TP plans ignore the
/// config entirely (index probes are inherently row-at-a-time).
pub fn execute_with(
    plan: &PlanNode,
    query: &BoundQuery,
    db: &Database,
    engine: EngineKind,
    cfg: &ExecConfig,
) -> Result<(Vec<Row>, WorkCounters), ExecError> {
    let out = if engine == EngineKind::Ap && vector::supported(plan) {
        vector::execute_with(plan, query, db, cfg)
    } else {
        execute_scalar_guarded(plan, query, db, engine, cfg.guard())
    };
    // A tripped guard outranks whatever the abort produced (truncated rows
    // from abandoned morsels, or a secondary error): the caller always sees
    // the structured governed cause, never the debris.
    cfg.guard().check()?;
    out
}

/// Executes `plan` on the row-at-a-time interpreter regardless of engine —
/// the reference semantics the batch executor is tested against.
pub fn execute_scalar(
    plan: &PlanNode,
    query: &BoundQuery,
    db: &Database,
    engine: EngineKind,
) -> Result<(Vec<Row>, WorkCounters), ExecError> {
    execute_scalar_guarded(plan, query, db, engine, ExecGuard::unlimited())
}

/// [`execute_scalar`] under a statement guard, checked at operator entry
/// and every ~1k rows of the interpreter's hot loops.
pub(crate) fn execute_scalar_guarded(
    plan: &PlanNode,
    query: &BoundQuery,
    db: &Database,
    engine: EngineKind,
    guard: &ExecGuard,
) -> Result<(Vec<Row>, WorkCounters), ExecError> {
    let mut ex = Executor { query, db, engine, counters: WorkCounters::default(), guard };
    let rows = ex.run(plan)?;
    ex.counters.output_rows = rows.len() as u64;
    Ok((rows, ex.counters))
}

/// Rows between cooperative guard checks in scalar per-row loops: frequent
/// enough that cancellation lands within one block, rare enough that the
/// check (one relaxed load) is amortized to noise.
pub(crate) const GUARD_CHECK_ROWS: usize = 1024;

/// Executes `plan` on the *serial* vectorized batch executor, erroring on
/// operators outside its vocabulary. Exposed for the cross-executor
/// equivalence tests (the reference the parallel executor is held to).
pub fn execute_vectorized(
    plan: &PlanNode,
    query: &BoundQuery,
    db: &Database,
) -> Result<(Vec<Row>, WorkCounters), ExecError> {
    vector::execute(plan, query, db)
}

/// Executes `plan` on the morsel-driven parallel batch executor with the
/// given config, erroring on operators outside the batch vocabulary.
/// Exposed for the differential tests and the benchmark harness.
pub fn execute_parallel(
    plan: &PlanNode,
    query: &BoundQuery,
    db: &Database,
    cfg: &ExecConfig,
) -> Result<(Vec<Row>, WorkCounters), ExecError> {
    vector::execute_with(plan, query, db, cfg)
}

/// Resolves one index-lookup term to its literal value. Prepared plans are
/// parameter-substituted before execution, so a surviving `Param` term is a
/// session-layer bug, not a user error.
fn term_value(t: &PlanTerm) -> Result<&Value, ExecError> {
    t.as_lit().ok_or_else(|| {
        ExecError::BadPlan("unresolved parameter in index lookup (plan not substituted)".into())
    })
}

/// Resolves a whole key list ([`IndexLookup::Keys`]) to borrowed values —
/// no per-execution key clones on the index-scan hot path.
fn term_values(terms: &[PlanTerm]) -> Result<Vec<&Value>, ExecError> {
    terms.iter().map(term_value).collect()
}

pub(crate) struct Executor<'a> {
    query: &'a BoundQuery,
    db: &'a Database,
    engine: EngineKind,
    counters: WorkCounters,
    guard: &'a ExecGuard,
}

impl Executor<'_> {
    fn run(&mut self, node: &PlanNode) -> Result<Vec<Row>, ExecError> {
        self.guard.check()?;
        match &node.op {
            PlanOp::TableScan { table_slot, columns, pushed } => {
                self.table_scan(*table_slot, columns, pushed.as_ref())
            }
            PlanOp::IndexScan { table_slot, column_idx, lookup, columns } => {
                self.index_scan(*table_slot, *column_idx, lookup, columns)
            }
            PlanOp::IndexProbe { .. } => Err(ExecError::BadPlan(
                "IndexProbe executed outside IndexNLJoin".into(),
            )),
            PlanOp::Filter { predicate } => {
                let child = &node.children[0];
                let schema = child.output_schema();
                let input = self.run(child)?;
                let mut out = Vec::new();
                for (i, row) in input.into_iter().enumerate() {
                    if i % GUARD_CHECK_ROWS == 0 {
                        self.guard.check()?;
                    }
                    self.counters.filter_evals += 1;
                    if eval_predicate(predicate, &schema, &row)? {
                        out.push(row);
                    }
                }
                Ok(out)
            }
            PlanOp::NestedLoopJoin { conds, residual } => {
                let outer_node = &node.children[0];
                let inner_node = &node.children[1];
                let outer_schema = outer_node.output_schema();
                let inner_schema = inner_node.output_schema();
                let out_schema = outer_schema.concat(&inner_schema);
                let outer = self.run(outer_node)?;
                let inner = self.run(inner_node)?;
                // Pre-resolve key positions.
                let keys: Vec<(usize, usize)> = conds
                    .iter()
                    .map(|c| {
                        let l = outer_schema
                            .position(c.left.table_slot, c.left.column_idx)
                            .ok_or_else(|| ExecError::BadPlan("NLJ left key not in outer".into()))?;
                        let r = inner_schema
                            .position(c.right.table_slot, c.right.column_idx)
                            .ok_or_else(|| ExecError::BadPlan("NLJ right key not in inner".into()))?;
                        Ok((l, r))
                    })
                    .collect::<Result<_, ExecError>>()?;
                let mut out = Vec::new();
                let mut pairs_since_check = 0usize;
                for o in &outer {
                    pairs_since_check += inner.len();
                    if pairs_since_check >= GUARD_CHECK_ROWS {
                        pairs_since_check = 0;
                        self.guard.check()?;
                    }
                    for i in &inner {
                        self.counters.nlj_pairs += 1;
                        if keys.iter().all(|&(l, r)| o[l].sql_eq(&i[r])) {
                            let mut row = o.clone();
                            row.extend_from_slice(i);
                            if let Some(resid) = residual {
                                self.counters.filter_evals += 1;
                                if !eval_predicate(resid, &out_schema, &row)? {
                                    continue;
                                }
                            }
                            out.push(row);
                        }
                    }
                }
                Ok(out)
            }
            PlanOp::IndexNLJoin { outer_key } => {
                let outer_node = &node.children[0];
                let probe_node = &node.children[1];
                let PlanOp::IndexProbe { table_slot, column_idx, residual, columns } =
                    &probe_node.op
                else {
                    return Err(ExecError::BadPlan(
                        "IndexNLJoin inner child must be IndexProbe".into(),
                    ));
                };
                let outer_schema = outer_node.output_schema();
                let probe_schema = probe_node.output_schema();
                let key_pos = outer_schema
                    .position(outer_key.table_slot, outer_key.column_idx)
                    .ok_or_else(|| ExecError::BadPlan("IndexNLJ outer key missing".into()))?;
                let outer = self.run(outer_node)?;
                // Borrow the name once — no per-execution String rebuild.
                let table_name: &str = &self.query.tables[*table_slot].name;
                let table = self
                    .db
                    .row_table(table_name)
                    .ok_or_else(|| ExecError::MissingTable(table_name.to_string()))?;
                let index = table.index_on(*column_idx).ok_or_else(|| {
                    ExecError::BadPlan(format!("no index on {table_name}.{column_idx}"))
                })?;
                let mut out = Vec::new();
                let out_width = outer_schema.len() + columns.len();
                for (oi, o) in outer.iter().enumerate() {
                    if oi % GUARD_CHECK_ROWS == 0 {
                        self.guard.check()?;
                    }
                    self.counters.index_probes += 1;
                    let rids = index.lookup(&o[key_pos]);
                    self.counters.index_fetches += rids.len() as u64;
                    for &rid in rids {
                        self.counters.rows_scanned += 1;
                        let full = table.row(rid as usize);
                        // Build the joined row in place: outer prefix plus
                        // fetched inner cells, one allocation, no
                        // intermediate inner-row vector.
                        let mut row: Row = Vec::with_capacity(out_width);
                        row.extend_from_slice(o);
                        row.extend(columns.iter().map(|&c| full[c].clone()));
                        if let Some(resid) = residual {
                            self.counters.filter_evals += 1;
                            if !eval_predicate(resid, &probe_schema, &row[o.len()..])? {
                                continue;
                            }
                        }
                        out.push(row);
                    }
                }
                Ok(out)
            }
            PlanOp::HashJoin { probe_keys, build_keys } => {
                let probe_node = &node.children[0];
                let hash_node = &node.children[1];
                let probe_schema = probe_node.output_schema();
                let build_schema = hash_node.output_schema();
                // Hash node is a pass-through marker; execute its child.
                let build_rows = self.run(&hash_node.children[0])?;
                let probe_rows = self.run(probe_node)?;
                let bpos: Vec<usize> = build_keys
                    .iter()
                    .map(|k| {
                        build_schema
                            .position(k.table_slot, k.column_idx)
                            .ok_or_else(|| ExecError::BadPlan("hash build key missing".into()))
                    })
                    .collect::<Result<_, _>>()?;
                let ppos: Vec<usize> = probe_keys
                    .iter()
                    .map(|k| {
                        probe_schema
                            .position(k.table_slot, k.column_idx)
                            .ok_or_else(|| ExecError::BadPlan("hash probe key missing".into()))
                    })
                    .collect::<Result<_, _>>()?;
                // Keys borrow from the build/probe rows — no per-row
                // `Vec<Value>` clone. Single-key joins (the common case)
                // skip the key vector entirely.
                self.guard
                    .charge_cells(build_rows.len() as u64 * build_schema.len().max(1) as u64)?;
                let mut out = Vec::new();
                if let (&[bp], &[pp]) = (&bpos[..], &ppos[..]) {
                    let mut table: HashMap<&Value, Vec<&Row>> =
                        HashMap::with_capacity(build_rows.len());
                    for (i, row) in build_rows.iter().enumerate() {
                        if i % GUARD_CHECK_ROWS == 0 {
                            self.guard.check()?;
                        }
                        self.counters.hash_build_rows += 1;
                        table.entry(&row[bp]).or_default().push(row);
                    }
                    for (i, row) in probe_rows.iter().enumerate() {
                        if i % GUARD_CHECK_ROWS == 0 {
                            self.guard.check()?;
                        }
                        self.counters.hash_probe_rows += 1;
                        // NULL join keys never match (sql_eq semantics).
                        if row[pp].is_null() {
                            continue;
                        }
                        if let Some(matches) = table.get(&row[pp]) {
                            for m in matches {
                                let mut r = row.clone();
                                r.extend_from_slice(m);
                                out.push(r);
                            }
                        }
                    }
                } else {
                    let mut table: HashMap<Vec<&Value>, Vec<&Row>> =
                        HashMap::with_capacity(build_rows.len());
                    for (i, row) in build_rows.iter().enumerate() {
                        if i % GUARD_CHECK_ROWS == 0 {
                            self.guard.check()?;
                        }
                        self.counters.hash_build_rows += 1;
                        let key: Vec<&Value> = bpos.iter().map(|&p| &row[p]).collect();
                        table.entry(key).or_default().push(row);
                    }
                    let mut scratch: Vec<&Value> = Vec::with_capacity(ppos.len());
                    for (i, row) in probe_rows.iter().enumerate() {
                        if i % GUARD_CHECK_ROWS == 0 {
                            self.guard.check()?;
                        }
                        self.counters.hash_probe_rows += 1;
                        scratch.clear();
                        scratch.extend(ppos.iter().map(|&p| &row[p]));
                        if scratch.iter().any(|v| v.is_null()) {
                            continue;
                        }
                        if let Some(matches) = table.get(&scratch) {
                            for m in matches {
                                let mut r = row.clone();
                                r.extend_from_slice(m);
                                out.push(r);
                            }
                        }
                    }
                }
                Ok(out)
            }
            PlanOp::Hash => self.run(&node.children[0]),
            PlanOp::Aggregate { group_by, outputs, having, hash } => {
                let child = &node.children[0];
                let schema = child.output_schema();
                let input = self.run(child)?;
                agg::aggregate(
                    &mut self.counters,
                    &input,
                    &schema,
                    group_by,
                    outputs,
                    having.as_ref(),
                    *hash,
                    self.guard,
                )
            }
            PlanOp::Sort { keys } => {
                let child = &node.children[0];
                let schema = child.output_schema();
                let input = self.run(child)?;
                sort::full_sort(&mut self.counters, input, &schema, keys, self.guard)
            }
            PlanOp::TopNSort { keys, limit, offset } => {
                let child = &node.children[0];
                let schema = child.output_schema();
                let input = self.run(child)?;
                sort::top_n(&mut self.counters, input, &schema, keys, *limit, *offset, self.guard)
            }
            PlanOp::Limit { limit, offset } => self.limit(node, *limit, *offset),
            PlanOp::Projection { exprs, .. } => {
                let child = &node.children[0];
                // Aggregates / output sorts already produce final rows.
                if produces_final_rows(child) {
                    return self.run(child);
                }
                let schema = child.output_schema();
                let input = self.run(child)?;
                self.guard.charge_cells(input.len() as u64 * exprs.len().max(1) as u64)?;
                let mut out = Vec::with_capacity(input.len());
                for (i, row) in input.into_iter().enumerate() {
                    if i % GUARD_CHECK_ROWS == 0 {
                        self.guard.check()?;
                    }
                    let mut projected = Vec::with_capacity(exprs.len());
                    for e in exprs {
                        projected.push(eval(e, &schema, &row)?);
                    }
                    out.push(projected);
                }
                Ok(out)
            }
            PlanOp::OutputSort { keys } => {
                let input = self.run(&node.children[0])?;
                sort::output_sort(&mut self.counters, input, keys, self.guard)
            }
            PlanOp::Insert { .. } | PlanOp::Update { .. } | PlanOp::Delete { .. } => {
                Err(ExecError::BadPlan(
                    "DML node reached the read executor; use execute_dml".into(),
                ))
            }
        }
    }

    fn table_scan(
        &mut self,
        slot: usize,
        columns: &[usize],
        pushed: Option<&BoundExpr>,
    ) -> Result<Vec<Row>, ExecError> {
        let name: &str = &self.query.tables[slot].name;
        let stored = self
            .db
            .stored_table(name)
            .ok_or_else(|| ExecError::MissingTable(name.to_string()))?;
        // Both scan shapes materialize the touched cells; charge the guard's
        // memory budget before allocating. Count rows on the side this
        // engine scans: AP-only snapshot views keep their row store empty,
        // so the combined `row_count()` invariant doesn't hold here.
        let scan_rows = match self.engine {
            EngineKind::Tp => stored.rows.row_count(),
            EngineKind::Ap => stored.cols.row_count(),
        } as u64;
        self.guard.charge_cells(scan_rows * columns.len().max(1) as u64)?;
        match self.engine {
            EngineKind::Tp => {
                // Row-store scan: full tuples are touched even if the plan
                // only materializes a subset. Tombstoned slots are skipped.
                self.counters.rows_scanned += stored.row_count() as u64;
                let full_width = stored.rows.width();
                if columns.len() == full_width && columns.iter().copied().eq(0..full_width) {
                    if !stored.rows.has_deletions() {
                        Ok(stored.rows.rows().to_vec())
                    } else {
                        Ok(stored.rows.iter_live().map(|(_, r)| r.clone()).collect())
                    }
                } else {
                    Ok(stored
                        .rows
                        .iter_live()
                        .map(|(_, r)| columns.iter().map(|&c| r[c].clone()).collect())
                        .collect())
                }
            }
            EngineKind::Ap => {
                // Column-store scan: touch only the referenced columns of
                // live rows, reading base and delta regions alike — a write
                // is visible here before any compaction runs. A pushed
                // predicate lets zone maps drop whole base blocks first
                // (same selection and charges as the batch executor).
                let (sel, _) =
                    ap_scan_access(stored, slot, pushed, columns.len(), &mut self.counters);
                let rids = sel
                    .unwrap_or_else(|| (0..stored.cols.physical_len() as u32).collect());
                Ok(stored.cols.gather(columns, &rids))
            }
        }
    }

    fn index_scan(
        &mut self,
        slot: usize,
        column_idx: usize,
        lookup: &IndexLookup,
        columns: &[usize],
    ) -> Result<Vec<Row>, ExecError> {
        let name: &str = &self.query.tables[slot].name;
        let table = self
            .db
            .row_table(name)
            .ok_or_else(|| ExecError::MissingTable(name.to_string()))?;
        let index = table
            .index_on(column_idx)
            .ok_or_else(|| ExecError::BadPlan(format!("no index on {name}.{column_idx}")))?;
        let rids: Vec<u32> = match lookup {
            IndexLookup::Keys(keys) => {
                self.counters.index_probes += keys.len() as u64;
                index.lookup_many_refs(term_values(keys)?.into_iter())
            }
            IndexLookup::Range { low, high } => {
                self.counters.index_probes += 1;
                let lo = low.as_ref().map(term_value).transpose()?;
                let hi = high.as_ref().map(term_value).transpose()?;
                index.range(lo, hi)
            }
            IndexLookup::Ordered { descending } => {
                self.counters.index_probes += 1;
                index.ordered_row_ids(*descending)
            }
        };
        self.counters.index_fetches += rids.len() as u64;
        self.counters.rows_scanned += rids.len() as u64;
        Ok(rids
            .iter()
            .map(|&rid| {
                let full = table.row(rid as usize);
                columns.iter().map(|&c| full[c].clone()).collect()
            })
            .collect())
    }

    /// Limit with a streaming fast path for index-ordered top-N: when the
    /// input is `Filter(IndexScan(Ordered))` or `IndexScan(Ordered)`, rows
    /// are fetched in index order and the scan stops as soon as
    /// `limit + offset` rows qualify.
    fn limit(&mut self, node: &PlanNode, limit: u64, offset: u64) -> Result<Vec<Row>, ExecError> {
        let child = &node.children[0];
        let need = (limit + offset) as usize;
        let streamed = self.try_streaming_topn(child, need)?;
        let rows = match streamed {
            Some(rows) => rows,
            None => self.run(child)?,
        };
        Ok(rows
            .into_iter()
            .skip(offset as usize)
            .take(limit as usize)
            .collect())
    }

    fn try_streaming_topn(
        &mut self,
        child: &PlanNode,
        need: usize,
    ) -> Result<Option<Vec<Row>>, ExecError> {
        // Unwrap an optional Filter above the ordered index scan.
        let (filter, scan) = match &child.op {
            PlanOp::Filter { predicate } => (Some(predicate), &child.children[0]),
            _ => (None, child),
        };
        let PlanOp::IndexScan {
            table_slot,
            column_idx,
            lookup: IndexLookup::Ordered { descending },
            columns,
        } = &scan.op
        else {
            return Ok(None);
        };
        let schema = scan.output_schema();
        let name: &str = &self.query.tables[*table_slot].name;
        let table = self
            .db
            .row_table(name)
            .ok_or_else(|| ExecError::MissingTable(name.to_string()))?;
        let index = table
            .index_on(*column_idx)
            .ok_or_else(|| ExecError::BadPlan(format!("no index on {name}.{column_idx}")))?;
        self.counters.index_probes += 1;
        let mut out = Vec::with_capacity(need);
        for (i, rid) in index.ordered_row_ids(*descending).into_iter().enumerate() {
            if out.len() >= need {
                break;
            }
            if i % GUARD_CHECK_ROWS == 0 {
                self.guard.check()?;
            }
            self.counters.index_fetches += 1;
            self.counters.rows_scanned += 1;
            let full = table.row(rid as usize);
            let row: Row = columns.iter().map(|&c| full[c].clone()).collect();
            if let Some(pred) = filter {
                self.counters.filter_evals += 1;
                if !eval_predicate(pred, &schema, &row)? {
                    continue;
                }
            }
            out.push(row);
        }
        Ok(Some(out))
    }
}

/// Plans one AP columnar scan's physical access: applies zone-map pruning
/// when the plan pushed a predicate down, and charges the scan counters.
///
/// This is the single entry every executor (row interpreter, serial batch,
/// morsel-parallel) uses, which is what keeps rows *and* counters
/// bit-identical across execution modes — the scan's selection and its
/// charges are a function of (plan, table state), never of the executor.
///
/// Returns the surviving physical rids (ascending: kept base blocks minus
/// tombstones, then all live delta rids — the delta is never pruned) or
/// `None` for the dense zero-copy scan of a clean table, plus the dense
/// positions where the selection jumps a storage discontinuity (pruned gap
/// or base→delta boundary) for morsel cutting.
pub(crate) fn ap_scan_access(
    stored: &StoredTable,
    slot: usize,
    pushed: Option<&BoundExpr>,
    n_columns: usize,
    counters: &mut WorkCounters,
) -> (Option<Vec<u32>>, Vec<usize>) {
    let cols = &stored.cols;
    if let Some(pruner) = pushed
        .map(|e| ScanPruner::for_scan(e, slot))
        .filter(|p| !p.is_empty())
    {
        let out = pruner.prune(cols);
        counters.blocks_checked += out.blocks_checked;
        counters.blocks_pruned += out.blocks_pruned;
        counters.cells_scanned += (out.survivors * n_columns) as u64;
        (out.sel, out.sel_cuts)
    } else {
        // No refutable conjunct: the pre-zone-map scan, charge and all.
        counters.cells_scanned += (cols.row_count() * n_columns) as u64;
        if cols.is_clean() {
            (None, Vec::new())
        } else {
            let sel = cols.live_rids();
            let base_live = sel.partition_point(|&rid| (rid as usize) < cols.base_len());
            let cuts = if base_live > 0 && base_live < sel.len() {
                vec![base_live]
            } else {
                Vec::new()
            };
            (Some(sel), cuts)
        }
    }
}

/// Operators whose output rows are already in final (projected) form.
fn produces_final_rows(node: &PlanNode) -> bool {
    match node.op {
        PlanOp::Aggregate { .. } | PlanOp::OutputSort { .. } => true,
        PlanOp::Limit { .. } => produces_final_rows(&node.children[0]),
        _ => false,
    }
}

// ---------------------------------------------------------------------------
// DML execution (TP engine only)
// ---------------------------------------------------------------------------

/// Which write shape ran.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DmlKind {
    /// `INSERT`.
    Insert,
    /// `UPDATE`.
    Update,
    /// `DELETE`.
    Delete,
}

impl std::fmt::Display for DmlKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            DmlKind::Insert => "INSERT",
            DmlKind::Update => "UPDATE",
            DmlKind::Delete => "DELETE",
        })
    }
}

/// Outcome of one write statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DmlResult {
    /// Which statement shape ran.
    pub kind: DmlKind,
    /// The written table.
    pub table: String,
    /// Rows inserted / updated / deleted.
    pub rows_affected: u64,
    /// The table's version stamp after the write (freshness signal).
    pub version: u64,
}

/// Executes a DML plan on the TP engine: locates target rows through the
/// plan's access path (index or scan, same counters as the read path), then
/// applies the write to *both* storage formats through the database, which
/// keeps statistics and catalog row counts current.
///
/// Target rids are fully collected before any mutation (snapshot semantics —
/// an `UPDATE` whose assignments re-satisfy its own predicate cannot chase
/// its relocated rows, the classic Halloween problem).
pub fn execute_dml(
    plan: &PlanNode,
    dml: &BoundDml,
    db: &mut Database,
) -> Result<(DmlResult, WorkCounters), ExecError> {
    execute_dml_guarded(plan, dml, db, ExecGuard::unlimited())
}

/// [`execute_dml`] under a statement guard: the target-collection and
/// row-rewrite loops check it cooperatively, so a runaway write is stopped
/// *before* any mutation is applied (targets are fully collected first).
pub(crate) fn execute_dml_guarded(
    plan: &PlanNode,
    dml: &BoundDml,
    db: &mut Database,
    guard: &ExecGuard,
) -> Result<(DmlResult, WorkCounters), ExecError> {
    guard.check()?;
    let mut counters = WorkCounters::default();
    let table = dml.table_name().to_string();
    let stored = db
        .stored_table(&table)
        .ok_or_else(|| ExecError::MissingTable(table.clone()))?;
    let n_indexes = stored.rows.index_count() as u64;
    let (kind, rows_affected) = match dml {
        BoundDml::Insert(ins) => {
            check_primary_key(&mut counters, db, &table, &ins.rows, guard)?;
            counters.rows_inserted += ins.rows.len() as u64;
            counters.index_updates += ins.rows.len() as u64 * n_indexes;
            (DmlKind::Insert, db.apply_insert(&table, &ins.rows))
        }
        BoundDml::Update(up) => {
            let child = plan
                .children
                .first()
                .ok_or_else(|| ExecError::BadPlan("Update node without access path".into()))?;
            let rids = collect_target_rids(&mut counters, child, &up.scan, db, guard)?;
            let def = db
                .catalog()
                .table(&table)
                .ok_or_else(|| ExecError::MissingTable(table.clone()))?;
            let types: Vec<_> = def.columns.iter().map(|c| (c.data_type, c.name.clone())).collect();
            let stored = db.stored_table(&table).expect("checked above");
            let schema = Schema::new((0..stored.rows.width()).map(|c| (0, c)).collect());
            guard.charge_cells(rids.len() as u64 * stored.rows.width().max(1) as u64)?;
            let mut changes = Vec::with_capacity(rids.len());
            for (i, &rid) in rids.iter().enumerate() {
                if i % GUARD_CHECK_ROWS == 0 {
                    guard.check()?;
                }
                let old = stored.rows.row(rid as usize);
                let mut new_row = old.to_vec();
                for (ci, expr) in &up.assignments {
                    let v = eval(expr, &schema, old)?;
                    let (ty, name) = &types[*ci];
                    new_row[*ci] = qpe_sql::binder::coerce_literal(v, *ty, name)
                        .map_err(|e| ExecError::Write(e.to_string()))?;
                }
                changes.push((rid, new_row));
            }
            // An assignment targeting the PK column must uphold the same
            // NULL/uniqueness invariant INSERT enforces — against surviving
            // rows (the updated rids' old keys are leaving) and within the
            // batch of new keys.
            let pk_ci = def.column_index(&def.primary_key);
            if let Some(pk_ci) = pk_ci.filter(|ci| up.assignments.iter().any(|(c, _)| c == ci)) {
                let updated: HashSet<u32> = rids.iter().copied().collect();
                let pk_index = stored.rows.index_on(pk_ci);
                let mut batch_keys: HashSet<&Value> = HashSet::with_capacity(changes.len());
                for (_, new_row) in &changes {
                    let pk = &new_row[pk_ci];
                    if pk.is_null() {
                        return Err(ExecError::Write(format!(
                            "primary key '{}' cannot be NULL",
                            def.primary_key
                        )));
                    }
                    counters.index_probes += 1;
                    let clashes_surviving_row = pk_index
                        .map(|idx| idx.lookup(pk).iter().any(|rid| !updated.contains(rid)))
                        .unwrap_or(false);
                    if clashes_surviving_row || !batch_keys.insert(pk) {
                        return Err(ExecError::Write(format!(
                            "duplicate primary key {pk} for '{}.{}'",
                            table, def.primary_key
                        )));
                    }
                }
            }
            counters.rows_updated += changes.len() as u64;
            // relocation touches every index twice: remove old rid, add new
            counters.index_updates += 2 * changes.len() as u64 * n_indexes;
            (DmlKind::Update, db.apply_update(&table, changes))
        }
        BoundDml::Delete(del) => {
            let child = plan
                .children
                .first()
                .ok_or_else(|| ExecError::BadPlan("Delete node without access path".into()))?;
            let rids = collect_target_rids(&mut counters, child, &del.scan, db, guard)?;
            counters.rows_deleted += rids.len() as u64;
            counters.index_updates += rids.len() as u64 * n_indexes;
            (DmlKind::Delete, db.apply_delete(&table, &rids))
        }
    };
    counters.output_rows = 0;
    let version = db.freshness(&table).map(|f| f.version).unwrap_or(0);
    Ok((
        DmlResult { kind, table, rows_affected, version },
        counters,
    ))
}

/// Rejects NULL and duplicate primary keys (against the table and within
/// the inserted batch) through the PK index — one probe per row, charged
/// like any other index probe.
fn check_primary_key(
    counters: &mut WorkCounters,
    db: &Database,
    table: &str,
    rows: &[Row],
    guard: &ExecGuard,
) -> Result<(), ExecError> {
    let def = db
        .catalog()
        .table(table)
        .ok_or_else(|| ExecError::MissingTable(table.to_string()))?;
    let Some(pk_ci) = def.column_index(&def.primary_key) else {
        return Ok(());
    };
    let stored = db.stored_table(table).expect("caller checked");
    let Some(pk_index) = stored.rows.index_on(pk_ci) else {
        return Ok(());
    };
    let mut batch_keys: std::collections::HashSet<&Value> = HashSet::with_capacity(rows.len());
    for (i, row) in rows.iter().enumerate() {
        if i % GUARD_CHECK_ROWS == 0 {
            guard.check()?;
        }
        let pk = &row[pk_ci];
        if pk.is_null() {
            return Err(ExecError::Write(format!(
                "primary key '{}' cannot be NULL",
                def.primary_key
            )));
        }
        counters.index_probes += 1;
        if !pk_index.lookup(pk).is_empty() || !batch_keys.insert(pk) {
            return Err(ExecError::Write(format!(
                "duplicate primary key {pk} for '{}.{}'",
                table, def.primary_key
            )));
        }
    }
    Ok(())
}

/// Runs a DML access path (`[Filter →] TableScan | IndexScan` over the
/// target table's row store) and returns the matching rids, charging the
/// same counters the read executor would for the equivalent scan.
fn collect_target_rids(
    counters: &mut WorkCounters,
    node: &PlanNode,
    scan_query: &BoundQuery,
    db: &Database,
    guard: &ExecGuard,
) -> Result<Vec<u32>, ExecError> {
    let (filter, scan) = match &node.op {
        PlanOp::Filter { predicate } => (Some(predicate), &node.children[0]),
        _ => (None, node),
    };
    let table: &str = &scan_query.tables[0].name;
    let row_table = db
        .row_table(table)
        .ok_or_else(|| ExecError::MissingTable(table.to_string()))?;
    let candidates: Vec<u32> = match &scan.op {
        PlanOp::TableScan { .. } => {
            counters.rows_scanned += row_table.row_count() as u64;
            row_table.iter_live().map(|(rid, _)| rid as u32).collect()
        }
        PlanOp::IndexScan { column_idx, lookup, .. } => {
            let index = row_table.index_on(*column_idx).ok_or_else(|| {
                ExecError::BadPlan(format!("no index on {table}.{column_idx}"))
            })?;
            let rids: Vec<u32> = match lookup {
                IndexLookup::Keys(keys) => {
                    counters.index_probes += keys.len() as u64;
                    index.lookup_many_refs(term_values(keys)?.into_iter())
                }
                IndexLookup::Range { low, high } => {
                    counters.index_probes += 1;
                    let lo = low.as_ref().map(term_value).transpose()?;
                    let hi = high.as_ref().map(term_value).transpose()?;
                    index.range(lo, hi)
                }
                IndexLookup::Ordered { descending } => {
                    counters.index_probes += 1;
                    index.ordered_row_ids(*descending)
                }
            };
            counters.index_fetches += rids.len() as u64;
            counters.rows_scanned += rids.len() as u64;
            rids
        }
        other => {
            return Err(ExecError::BadPlan(format!(
                "unsupported DML access path {other:?}"
            )))
        }
    };
    let Some(pred) = filter else {
        return Ok(candidates);
    };
    let schema = scan.output_schema();
    let mut out = Vec::new();
    for (i, rid) in candidates.into_iter().enumerate() {
        if i % GUARD_CHECK_ROWS == 0 {
            guard.check()?;
        }
        counters.filter_evals += 1;
        if eval_predicate(pred, &schema, row_table.row(rid as usize))? {
            out.push(rid);
        }
    }
    Ok(out)
}


#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Database;
    use crate::opt::{ap, tp, PlannerCtx};
    use crate::tpch::TpchConfig;
    use qpe_sql::binder::Binder;

    fn db() -> Database {
        Database::generate(&TpchConfig::with_scale(0.002))
    }

    fn run_both(db: &Database, sql: &str) -> (Vec<Row>, Vec<Row>, WorkCounters, WorkCounters) {
        let q = Binder::new(db.catalog()).bind_sql(sql).unwrap();
        let ctx = PlannerCtx::new(&q, db.stats(), db.catalog());
        let tp_plan = tp::plan(&ctx).unwrap();
        let ap_plan = ap::plan(&ctx).unwrap();
        let (tp_rows, tp_c) = execute(&tp_plan, &q, db, EngineKind::Tp).unwrap();
        let (ap_rows, ap_c) = execute(&ap_plan, &q, db, EngineKind::Ap).unwrap();
        (tp_rows, ap_rows, tp_c, ap_c)
    }

    fn normalized(mut rows: Vec<Row>) -> Vec<Row> {
        rows.sort_by(|a, b| {
            for (x, y) in a.iter().zip(b.iter()) {
                let o = x.total_cmp(y);
                if o != std::cmp::Ordering::Equal {
                    return o;
                }
            }
            std::cmp::Ordering::Equal
        });
        rows
    }

    #[test]
    fn engines_agree_on_scalar_count() {
        let db = db();
        let (tp, ap, _, _) = run_both(&db, "SELECT COUNT(*) FROM customer");
        assert_eq!(tp, ap);
        assert_eq!(tp[0][0], Value::Int(300)); // 150000 * 0.002
    }

    #[test]
    fn engines_agree_on_filtered_count() {
        let db = db();
        let (tp, ap, _, _) = run_both(
            &db,
            "SELECT COUNT(*) FROM customer WHERE c_mktsegment = 'machinery'",
        );
        assert_eq!(tp, ap);
        let n = tp[0][0].as_int().unwrap();
        assert!(n > 0 && n < 300);
    }

    #[test]
    fn engines_agree_on_two_way_join() {
        let db = db();
        let (tp, ap, tp_c, ap_c) = run_both(
            &db,
            "SELECT COUNT(*) FROM customer, orders \
             WHERE o_custkey = c_custkey AND o_orderkey < 50",
        );
        assert_eq!(tp, ap);
        assert!(tp_c.total() > 0 && ap_c.total() > 0);
        // TP probes customer's PK index from the filtered orders side; AP
        // hashes regardless.
        assert!(tp_c.index_probes > 0);
        assert!(ap_c.hash_build_rows > 0);
    }

    #[test]
    fn engines_agree_on_paper_example_1() {
        let db = db();
        let sql = "SELECT COUNT(*) FROM customer, nation, orders \
                   WHERE SUBSTRING(c_phone, 1, 2) IN ('20', '40', '22', '30', '39', '42', '21') \
                   AND c_mktsegment = 'machinery' \
                   AND n_name = 'egypt' AND o_orderstatus = 'p' \
                   AND o_custkey = c_custkey AND n_nationkey = c_nationkey";
        let (tp, ap, _, _) = run_both(&db, sql);
        assert_eq!(tp, ap);
    }

    #[test]
    fn engines_agree_on_projected_rows() {
        let db = db();
        let (tp, ap, _, _) = run_both(
            &db,
            "SELECT c_name, c_acctbal FROM customer WHERE c_custkey < 20",
        );
        assert_eq!(normalized(tp), normalized(ap));
    }

    #[test]
    fn engines_agree_on_top_n() {
        let db = db();
        let (tp, ap, _, _) = run_both(
            &db,
            "SELECT o_orderkey, o_totalprice FROM orders \
             ORDER BY o_totalprice DESC LIMIT 5",
        );
        assert_eq!(tp.len(), 5);
        // Same top prices; ties may permute keys, so compare price column.
        let tp_prices: Vec<&Value> = tp.iter().map(|r| &r[1]).collect();
        let ap_prices: Vec<&Value> = ap.iter().map(|r| &r[1]).collect();
        assert_eq!(tp_prices, ap_prices);
    }

    #[test]
    fn index_ordered_topn_scans_few_rows() {
        let db = db();
        let q = Binder::new(db.catalog())
            .bind_sql("SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 7")
            .unwrap();
        let ctx = PlannerCtx::new(&q, db.stats(), db.catalog());
        let plan = tp::plan(&ctx).unwrap();
        let (rows, c) = execute(&plan, &q, &db, EngineKind::Tp).unwrap();
        assert_eq!(rows.len(), 7);
        assert_eq!(rows[0][0], Value::Int(1));
        assert!(
            c.rows_scanned <= 7,
            "ordered index scan should stop early, scanned {}",
            c.rows_scanned
        );
    }

    #[test]
    fn engines_agree_on_group_by() {
        let db = db();
        let (tp, ap, _, _) = run_both(
            &db,
            "SELECT c_mktsegment, COUNT(*) FROM customer GROUP BY c_mktsegment \
             ORDER BY c_mktsegment",
        );
        assert_eq!(tp, ap);
        assert_eq!(tp.len(), 5);
    }

    #[test]
    fn engines_agree_on_offset() {
        let db = db();
        let (tp, ap, _, _) = run_both(
            &db,
            "SELECT o_orderkey FROM orders ORDER BY o_orderkey LIMIT 5 OFFSET 10",
        );
        assert_eq!(tp, ap);
        assert_eq!(tp[0][0], Value::Int(11));
    }

    #[test]
    fn ap_scan_touches_fewer_cells_than_tp_rows_imply() {
        let db = db();
        let (_, _, tp_c, ap_c) = run_both(
            &db,
            "SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p'",
        );
        // TP reads 3000 full rows (6 columns each → 18000 cell-equivalents);
        // AP touches only the o_orderstatus column, and zone maps drop the
        // blocks whose min/max excludes 'p' before any cell is read.
        assert_eq!(tp_c.rows_scanned, 3000);
        assert!(
            ap_c.cells_scanned <= 3000,
            "one column at most: {}",
            ap_c.cells_scanned
        );
        assert!(ap_c.blocks_checked > 0 && ap_c.blocks_pruned > 0);
        assert!(
            ap_c.cells_scanned < 3000,
            "pruned blocks must save their cells: {}",
            ap_c.cells_scanned
        );
        // With pushdown disabled the scan reads the full column again.
        let q = Binder::new(db.catalog())
            .bind_sql("SELECT COUNT(*) FROM orders WHERE o_orderstatus = 'p'")
            .unwrap();
        let ctx = PlannerCtx::new(&q, db.stats(), db.catalog()).without_pushdown();
        let plan = ap::plan(&ctx).unwrap();
        let (_, c) = execute(&plan, &q, &db, EngineKind::Ap).unwrap();
        assert_eq!(c.cells_scanned, 3000);
        assert_eq!(c.blocks_checked, 0);
    }

    #[test]
    fn nlj_pairs_counted_for_unindexed_join() {
        let db = db();
        // Join on non-indexed columns forces naive NLJ on TP.
        let (tp, ap, tp_c, _) = run_both(
            &db,
            "SELECT COUNT(*) FROM nation, customer WHERE c_nationkey = n_nationkey \
             AND n_name = 'egypt'",
        );
        assert_eq!(tp, ap);
        assert!(tp_c.nlj_pairs > 0, "expected nested-loop pairs");
    }

    #[test]
    fn residual_predicates_execute() {
        let db = db();
        let (tp, ap, _, _) = run_both(
            &db,
            "SELECT COUNT(*) FROM nation, region WHERE n_regionkey < r_regionkey",
        );
        assert_eq!(tp, ap);
    }

    #[test]
    fn having_filters_groups() {
        let db = db();
        let (tp, ap, _, _) = run_both(
            &db,
            "SELECT c_nationkey, COUNT(*) FROM customer GROUP BY c_nationkey \
             HAVING COUNT(*) > 10 ORDER BY c_nationkey",
        );
        assert_eq!(tp, ap);
        for row in &tp {
            assert!(row[1].as_int().unwrap() > 10);
        }
    }
}
