//! Aggregation execution (sort-based for TP, hash-based for AP).
//!
//! Output expressions may embed aggregate calls arbitrarily (e.g.
//! `SUM(x) / COUNT(*)`); we extract the distinct aggregate *leaves*, fold
//! them per group, then evaluate each output expression with the folded
//! values substituted in.

use super::guard::ExecGuard;
use super::{ExecError, Row, WorkCounters, GUARD_CHECK_ROWS};
use crate::eval::{eval, truthy, EvalError, Schema};
use crate::plan::AggSpec;
use crate::storage::col_store::{ColumnData, DictColumn};
use qpe_sql::ast::AggFunc;
use qpe_sql::binder::BoundExpr;
use qpe_sql::value::Value;
use std::collections::{BTreeMap, HashSet};

/// A distinct aggregate call appearing in the outputs / HAVING clause.
#[derive(Debug, Clone, PartialEq)]
pub struct AggLeaf {
    /// Aggregate function.
    pub func: AggFunc,
    /// Argument expression (`None` for `COUNT(*)`).
    pub arg: Option<BoundExpr>,
    /// DISTINCT flag.
    pub distinct: bool,
}

/// Collects the distinct aggregate leaves of an expression tree.
pub fn collect_leaves(expr: &BoundExpr, out: &mut Vec<AggLeaf>) {
    match expr {
        BoundExpr::Aggregate { func, arg, distinct } => {
            let leaf = AggLeaf {
                func: *func,
                arg: arg.as_deref().cloned(),
                distinct: *distinct,
            };
            if !out.contains(&leaf) {
                out.push(leaf);
            }
        }
        BoundExpr::Column(_) | BoundExpr::Literal(_) | BoundExpr::Param { .. } => {}
        BoundExpr::Binary { left, right, .. } => {
            collect_leaves(left, out);
            collect_leaves(right, out);
        }
        BoundExpr::Not(e)
        | BoundExpr::InList { expr: e, .. }
        | BoundExpr::InListParam { expr: e, .. }
        | BoundExpr::Like { expr: e, .. }
        | BoundExpr::IsNull { expr: e, .. }
        | BoundExpr::Substring { expr: e, .. } => collect_leaves(e, out),
        BoundExpr::Between { expr, low, high } => {
            collect_leaves(expr, out);
            collect_leaves(low, out);
            collect_leaves(high, out);
        }
    }
}

/// Running state for one aggregate leaf within one group.
#[derive(Debug, Clone)]
struct AggState {
    count: u64,
    sum: f64,
    sum_is_int: bool,
    int_sum: i64,
    min: Option<Value>,
    max: Option<Value>,
    distinct: HashSet<Value>,
}

impl AggState {
    fn new() -> Self {
        AggState {
            count: 0,
            sum: 0.0,
            sum_is_int: true,
            int_sum: 0,
            min: None,
            max: None,
            distinct: HashSet::new(),
        }
    }

    fn update(&mut self, leaf: &AggLeaf, v: Option<Value>) {
        match v {
            None => {
                // COUNT(*) counts every row.
                self.count += 1;
            }
            Some(Value::Null) => {
                // SQL aggregates skip NULL inputs.
            }
            Some(val) => {
                if leaf.distinct && !self.distinct.insert(val.clone()) {
                    return;
                }
                self.count += 1;
                if let Some(x) = val.as_float() {
                    self.sum += x;
                }
                if let Value::Int(i) = val {
                    self.int_sum = self.int_sum.wrapping_add(i);
                } else {
                    self.sum_is_int = false;
                }
                match &self.min {
                    None => self.min = Some(val.clone()),
                    Some(m) => {
                        if val.total_cmp(m) == std::cmp::Ordering::Less {
                            self.min = Some(val.clone());
                        }
                    }
                }
                match &self.max {
                    None => self.max = Some(val.clone()),
                    Some(m) => {
                        if val.total_cmp(m) == std::cmp::Ordering::Greater {
                            self.max = Some(val.clone());
                        }
                    }
                }
            }
        }
    }

    fn finish(&self, func: AggFunc) -> Value {
        match func {
            AggFunc::Count => Value::Int(self.count as i64),
            AggFunc::Sum => {
                if self.count == 0 {
                    Value::Null
                } else if self.sum_is_int {
                    Value::Int(self.int_sum)
                } else {
                    Value::Float(self.sum)
                }
            }
            AggFunc::Avg => {
                if self.count == 0 {
                    Value::Null
                } else {
                    Value::Float(self.sum / self.count as f64)
                }
            }
            AggFunc::Min => self.min.clone().unwrap_or(Value::Null),
            AggFunc::Max => self.max.clone().unwrap_or(Value::Null),
        }
    }
}

/// Evaluates an output expression with aggregate leaves substituted by their
/// folded values.
fn eval_with_aggs(
    expr: &BoundExpr,
    leaves: &[AggLeaf],
    values: &[Value],
    group_key_exprs: &[BoundExpr],
    group_key_vals: &[Value],
) -> Result<Value, EvalError> {
    // Group-by key expressions may appear verbatim in the projection.
    for (ge, gv) in group_key_exprs.iter().zip(group_key_vals.iter()) {
        if expr == ge {
            return Ok(gv.clone());
        }
    }
    match expr {
        BoundExpr::Aggregate { func, arg, distinct } => {
            let leaf = AggLeaf {
                func: *func,
                arg: arg.as_deref().cloned(),
                distinct: *distinct,
            };
            let idx = leaves
                .iter()
                .position(|l| *l == leaf)
                .ok_or(EvalError::AggregateInScalarContext)?;
            Ok(values[idx].clone())
        }
        BoundExpr::Literal(v) => Ok(v.clone()),
        BoundExpr::Binary { left, op, right } => {
            // Re-use the scalar evaluator by materializing both sides first.
            let l = eval_with_aggs(left, leaves, values, group_key_exprs, group_key_vals)?;
            let r = eval_with_aggs(right, leaves, values, group_key_exprs, group_key_vals)?;
            let schema = Schema::new(vec![]);
            let synthetic = BoundExpr::Binary {
                left: Box::new(BoundExpr::Literal(l)),
                op: *op,
                right: Box::new(BoundExpr::Literal(r)),
            };
            eval(&synthetic, &schema, &[])
        }
        BoundExpr::Column(_) => {
            // A bare column that is not a group key in an aggregate output —
            // binder rejects this, but guard anyway.
            Err(EvalError::AggregateInScalarContext)
        }
        other => {
            // Wrap remaining shapes (Not/IsNull/... over aggregates) by
            // evaluating sub-expressions first.
            let schema = Schema::new(vec![]);
            match other {
                BoundExpr::Not(e) => {
                    let v = eval_with_aggs(e, leaves, values, group_key_exprs, group_key_vals)?;
                    Ok(Value::Int(if truthy(&v) { 0 } else { 1 }))
                }
                BoundExpr::IsNull { expr, negated } => {
                    let v =
                        eval_with_aggs(expr, leaves, values, group_key_exprs, group_key_vals)?;
                    Ok(Value::Int(if v.is_null() != *negated { 1 } else { 0 }))
                }
                BoundExpr::InList { expr, list, negated } => {
                    let v =
                        eval_with_aggs(expr, leaves, values, group_key_exprs, group_key_vals)?;
                    let synthetic = BoundExpr::InList {
                        expr: Box::new(BoundExpr::Literal(v)),
                        list: list.clone(),
                        negated: *negated,
                    };
                    eval(&synthetic, &schema, &[])
                }
                BoundExpr::Substring { expr, start, len } => {
                    let v =
                        eval_with_aggs(expr, leaves, values, group_key_exprs, group_key_vals)?;
                    let synthetic = BoundExpr::Substring {
                        expr: Box::new(BoundExpr::Literal(v)),
                        start: *start,
                        len: *len,
                    };
                    eval(&synthetic, &schema, &[])
                }
                _ => Err(EvalError::AggregateInScalarContext),
            }
        }
    }
}

/// Executes grouping + aggregation, returning final projected rows.
///
/// `hash = true` uses hash grouping (AP), `false` sorts first (TP). Both
/// return rows ordered by group key so engine outputs are directly
/// comparable (hash-group output is canonicalized the same way real engines
/// do when asked for deterministic tests).
#[allow(clippy::too_many_arguments)]
pub fn aggregate(
    counters: &mut WorkCounters,
    input: &[Row],
    schema: &Schema,
    group_by: &[BoundExpr],
    outputs: &[AggSpec],
    having: Option<&BoundExpr>,
    hash: bool,
    guard: &ExecGuard,
) -> Result<Vec<Row>, ExecError> {
    let leaves = collect_all_leaves(outputs, having);

    // Group rows. BTreeMap keys give deterministic (key-sorted) output for
    // both strategies; the sort-vs-hash distinction is carried by the work
    // counters, which is what the latency model consumes.
    let mut groups: BTreeMap<Vec<KeyWrap>, Vec<AggState>> = BTreeMap::new();
    for (i, row) in input.iter().enumerate() {
        if i % GUARD_CHECK_ROWS == 0 {
            guard.check()?;
        }
        counters.agg_rows += 1;
        if !hash {
            // sort-based grouping pays comparison costs
            counters.sort_comparisons += 1;
        }
        let key: Vec<KeyWrap> = group_by
            .iter()
            .map(|g| eval(g, schema, row).map(KeyWrap))
            .collect::<Result<_, _>>()?;
        let states = groups
            .entry(key)
            .or_insert_with(|| leaves.iter().map(|_| AggState::new()).collect());
        for (leaf, state) in leaves.iter().zip(states.iter_mut()) {
            let v = match &leaf.arg {
                Some(a) => Some(eval(a, schema, row)?),
                None => None,
            };
            state.update(leaf, v);
        }
    }

    finish_groups(groups, &leaves, group_by, outputs, having)
}

/// Vectorized aggregation: same grouping/folding/finishing machinery as
/// [`aggregate`], but driven by pre-computed key and argument columns
/// (dense, aligned with the selection) instead of per-row expression
/// evaluation. `len` is the dense input length. Counters and output are
/// identical to the row path by construction.
#[allow(clippy::too_many_arguments)]
pub fn aggregate_cols(
    counters: &mut WorkCounters,
    len: usize,
    key_cols: &[ColumnData],
    arg_cols: &[Option<ColumnData>],
    group_by: &[BoundExpr],
    leaves: &[AggLeaf],
    outputs: &[AggSpec],
    having: Option<&BoundExpr>,
    hash: bool,
    guard: &ExecGuard,
) -> Result<Vec<Row>, ExecError> {
    debug_assert_eq!(leaves.len(), arg_cols.len());
    guard.check()?;
    // Dictionary-code grouping: a single dict-encoded key groups by `u32`
    // code into a dense per-code state table — no string materialization,
    // hashing, or tree comparisons per row. Rows fold in the same dense
    // order as the generic loop and group strings materialize once at the
    // end, so output, association order, and counters are identical.
    if let [ColumnData::Dict(d)] = key_cols {
        counters.agg_rows += len as u64;
        if !hash {
            counters.sort_comparisons += len as u64;
        }
        let per_code = fold_dict_groups(d, leaves, arg_cols, 0..len, guard);
        guard.check()?;
        return finish_groups(
            dict_groups_to_btree(d, per_code),
            leaves,
            group_by,
            outputs,
            having,
        );
    }
    let mut groups: BTreeMap<Vec<KeyWrap>, Vec<AggState>> = BTreeMap::new();
    for j in 0..len {
        if j % GUARD_CHECK_ROWS == 0 {
            guard.check()?;
        }
        counters.agg_rows += 1;
        if !hash {
            counters.sort_comparisons += 1;
        }
        let key: Vec<KeyWrap> = key_cols.iter().map(|c| KeyWrap(c.get(j))).collect();
        let states = groups
            .entry(key)
            .or_insert_with(|| leaves.iter().map(|_| AggState::new()).collect());
        for (leaf, (arg, state)) in leaves.iter().zip(arg_cols.iter().zip(states.iter_mut())) {
            state.update(leaf, arg.as_ref().map(|c| c.get(j)));
        }
    }
    finish_groups(groups, leaves, group_by, outputs, having)
}

/// Morsel-parallel variant of [`aggregate_cols`]: partitions *groups* (not
/// rows) by a key hash consistent with the grouping order, so each group's
/// state folds on exactly one worker over the global dense order — float
/// sums, DISTINCT sets and min/max ties all accumulate in the serial
/// association order, making the result bit-identical to the serial fold.
///
/// Scalar aggregation (no GROUP BY) has a single group and therefore no
/// group parallelism; it falls back to the serial fold (its inputs — the
/// key/argument columns — were already evaluated in parallel upstream).
#[allow(clippy::too_many_arguments)]
pub fn aggregate_cols_partitioned(
    counters: &mut WorkCounters,
    cfg: &super::parallel::ExecConfig,
    len: usize,
    key_cols: &[ColumnData],
    arg_cols: &[Option<ColumnData>],
    group_by: &[BoundExpr],
    leaves: &[AggLeaf],
    outputs: &[AggSpec],
    having: Option<&BoundExpr>,
    hash: bool,
) -> Result<Vec<Row>, ExecError> {
    use super::parallel::{morsel_ranges, run_tasks};
    let guard = cfg.guard();
    if group_by.is_empty() || !cfg.parallel_for(len) {
        return aggregate_cols(
            counters, len, key_cols, arg_cols, group_by, leaves, outputs, having, hash, guard,
        );
    }
    guard.check()?;
    // Same counter totals as the serial per-row loop.
    counters.agg_rows += len as u64;
    if !hash {
        counters.sort_comparisons += len as u64;
    }
    let n_parts = cfg.threads.clamp(2, 255);
    // Dictionary-code grouping, partitioned: the per-code partition
    // assignment is computed once over the (small) value table with the same
    // key hash as the generic path, so group→partition placement is
    // unchanged; each partition then folds its rows through the dense
    // per-code table in ascending dense order — bit-identical to the serial
    // dict fold, which is bit-identical to the generic fold.
    if let [ColumnData::Dict(d)] = key_cols {
        let part_of: Vec<usize> = d
            .values
            .iter()
            .map(|s| {
                let mut h = std::collections::hash_map::DefaultHasher::new();
                hash_group_value(&Value::Str(s.clone()), &mut h);
                (std::hash::Hasher::finish(&h) % n_parts as u64) as usize
            })
            .collect();
        let ranges = morsel_ranges(len, cfg.morsel_rows, &[]);
        let pieces = run_tasks(cfg.threads, ranges.len(), |i| {
            let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n_parts];
            if guard.poll() {
                return lists;
            }
            for j in ranges[i].clone() {
                lists[part_of[d.codes[j] as usize]].push(j as u32);
            }
            lists
        });
        let mut by_part: Vec<Vec<u32>> = vec![Vec::new(); n_parts];
        for lists in pieces {
            for (p, l) in lists.into_iter().enumerate() {
                by_part[p].extend(l);
            }
        }
        let folded = run_tasks(cfg.threads, n_parts, |p| {
            if guard.poll() {
                return BTreeMap::new();
            }
            let rows = by_part[p].iter().map(|&j| j as usize);
            dict_groups_to_btree(d, fold_dict_groups(d, leaves, arg_cols, rows, guard))
        });
        guard.check()?;
        let mut groups: BTreeMap<Vec<KeyWrap>, Vec<AggState>> = BTreeMap::new();
        for g in folded {
            groups.extend(g);
        }
        return finish_groups(groups, leaves, group_by, outputs, having);
    }
    // Pass 1, parallel over morsels: bucket row indices by the partition of
    // their key. Concatenating morsel buckets in morsel order keeps every
    // partition's index list in ascending dense order.
    let ranges = morsel_ranges(len, cfg.morsel_rows, &[]);
    let pieces = run_tasks(cfg.threads, ranges.len(), |i| {
        let mut lists: Vec<Vec<u32>> = vec![Vec::new(); n_parts];
        if guard.poll() {
            return lists;
        }
        for j in ranges[i].clone() {
            let mut h = std::collections::hash_map::DefaultHasher::new();
            for c in key_cols {
                hash_group_value(&c.get(j), &mut h);
            }
            let p = (std::hash::Hasher::finish(&h) % n_parts as u64) as usize;
            lists[p].push(j as u32);
        }
        lists
    });
    let mut by_part: Vec<Vec<u32>> = vec![Vec::new(); n_parts];
    for lists in pieces {
        for (p, l) in lists.into_iter().enumerate() {
            by_part[p].extend(l);
        }
    }
    // Pass 2, parallel over partitions: fold each partition's groups,
    // touching only its own rows, in global dense order.
    let folded = run_tasks(cfg.threads, n_parts, |p| {
        let mut groups: BTreeMap<Vec<KeyWrap>, Vec<AggState>> = BTreeMap::new();
        if guard.poll() {
            return groups;
        }
        for &j in &by_part[p] {
            let j = j as usize;
            let key: Vec<KeyWrap> = key_cols.iter().map(|c| KeyWrap(c.get(j))).collect();
            let states = groups
                .entry(key)
                .or_insert_with(|| leaves.iter().map(|_| AggState::new()).collect());
            for (leaf, (arg, state)) in leaves.iter().zip(arg_cols.iter().zip(states.iter_mut()))
            {
                state.update(leaf, arg.as_ref().map(|c| c.get(j)));
            }
        }
        groups
    });
    // Partitions hold disjoint key sets, so extending reproduces the exact
    // serial BTreeMap.
    guard.check()?;
    let mut groups: BTreeMap<Vec<KeyWrap>, Vec<AggState>> = BTreeMap::new();
    for g in folded {
        groups.extend(g);
    }
    finish_groups(groups, leaves, group_by, outputs, having)
}

/// Folds aggregate states into a dense per-dictionary-code table over the
/// given rows (ascending dense order). Codes never seen stay `None`, so only
/// groups that actually occur materialize — matching the generic fold.
/// Abandons the fold (returning a truncated table) once the guard trips; the
/// caller's next `check` discards the partial result.
fn fold_dict_groups<I: Iterator<Item = usize>>(
    d: &DictColumn,
    leaves: &[AggLeaf],
    arg_cols: &[Option<ColumnData>],
    rows: I,
    guard: &ExecGuard,
) -> Vec<Option<Vec<AggState>>> {
    let mut per_code: Vec<Option<Vec<AggState>>> = vec![None; d.values.len()];
    for (i, j) in rows.enumerate() {
        if i % GUARD_CHECK_ROWS == 0 && guard.poll() {
            return per_code;
        }
        let states = per_code[d.codes[j] as usize]
            .get_or_insert_with(|| leaves.iter().map(|_| AggState::new()).collect());
        for (leaf, (arg, state)) in leaves.iter().zip(arg_cols.iter().zip(states.iter_mut())) {
            state.update(leaf, arg.as_ref().map(|c| c.get(j)));
        }
    }
    per_code
}

/// Materializes dict-code groups into the key-sorted map `finish_groups`
/// consumes — one string clone per *group*, not per row.
fn dict_groups_to_btree(
    d: &DictColumn,
    per_code: Vec<Option<Vec<AggState>>>,
) -> BTreeMap<Vec<KeyWrap>, Vec<AggState>> {
    per_code
        .into_iter()
        .enumerate()
        .filter_map(|(code, states)| {
            states.map(|s| (vec![KeyWrap(Value::Str(d.values[code].clone()))], s))
        })
        .collect()
}

/// Hashes a grouping value consistently with [`KeyWrap`]'s ordering
/// ([`Value::total_cmp`]): values that compare equal *must* land in the same
/// partition even across representations — `Int(1)`, `Float(1.0)` and
/// `Date(1)` are total_cmp-equal, so all numeric values hash through their
/// `f64` bit pattern (which also keeps `-0.0` and NaN payloads distinct,
/// exactly as `f64::total_cmp` does).
fn hash_group_value<H: std::hash::Hasher>(v: &Value, h: &mut H) {
    use std::hash::Hash;
    match v {
        Value::Null => 0u8.hash(h),
        Value::Int(x) => (*x as f64).to_bits().hash(h),
        Value::Float(x) => x.to_bits().hash(h),
        Value::Date(d) => (*d as f64).to_bits().hash(h),
        Value::Str(s) => {
            1u8.hash(h);
            s.hash(h);
        }
    }
}

/// Collects the distinct aggregate leaves across outputs and HAVING.
pub fn collect_all_leaves(outputs: &[AggSpec], having: Option<&BoundExpr>) -> Vec<AggLeaf> {
    let mut leaves = Vec::new();
    for o in outputs {
        collect_leaves(&o.expr, &mut leaves);
    }
    if let Some(h) = having {
        collect_leaves(h, &mut leaves);
    }
    leaves
}

/// Folds grouped aggregate states into final projected rows (shared by the
/// row and columnar paths, so HAVING and output-expression semantics cannot
/// diverge between executors).
fn finish_groups(
    mut groups: BTreeMap<Vec<KeyWrap>, Vec<AggState>>,
    leaves: &[AggLeaf],
    group_by: &[BoundExpr],
    outputs: &[AggSpec],
    having: Option<&BoundExpr>,
) -> Result<Vec<Row>, ExecError> {
    // Scalar aggregation over empty input still yields one row.
    if groups.is_empty() && group_by.is_empty() {
        groups.insert(Vec::new(), leaves.iter().map(|_| AggState::new()).collect());
    }

    let mut out = Vec::with_capacity(groups.len());
    for (key, states) in &groups {
        let folded: Vec<Value> = leaves
            .iter()
            .zip(states.iter())
            .map(|(l, s)| s.finish(l.func))
            .collect();
        let key_vals: Vec<Value> = key.iter().map(|k| k.0.clone()).collect();
        if let Some(h) = having {
            let v = eval_with_aggs(h, leaves, &folded, group_by, &key_vals)?;
            if !truthy(&v) {
                continue;
            }
        }
        let mut row = Vec::with_capacity(outputs.len());
        for o in outputs {
            row.push(eval_with_aggs(&o.expr, leaves, &folded, group_by, &key_vals)?);
        }
        out.push(row);
    }
    Ok(out)
}

/// Ord wrapper over [`Value`] for BTreeMap grouping keys.
#[derive(Debug, Clone, PartialEq)]
struct KeyWrap(Value);

impl Eq for KeyWrap {}

impl PartialOrd for KeyWrap {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for KeyWrap {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agg_state_count_sum_avg() {
        let leaf = AggLeaf { func: AggFunc::Sum, arg: None, distinct: false };
        let mut s = AggState::new();
        s.update(&leaf, Some(Value::Int(3)));
        s.update(&leaf, Some(Value::Int(4)));
        s.update(&leaf, Some(Value::Null)); // skipped
        assert_eq!(s.finish(AggFunc::Count), Value::Int(2));
        assert_eq!(s.finish(AggFunc::Sum), Value::Int(7));
        assert_eq!(s.finish(AggFunc::Avg), Value::Float(3.5));
    }

    #[test]
    fn agg_state_min_max() {
        let leaf = AggLeaf { func: AggFunc::Min, arg: None, distinct: false };
        let mut s = AggState::new();
        for v in [5, 2, 9] {
            s.update(&leaf, Some(Value::Int(v)));
        }
        assert_eq!(s.finish(AggFunc::Min), Value::Int(2));
        assert_eq!(s.finish(AggFunc::Max), Value::Int(9));
    }

    #[test]
    fn distinct_dedups() {
        let leaf = AggLeaf { func: AggFunc::Count, arg: None, distinct: true };
        let mut s = AggState::new();
        for v in [1, 1, 2, 2, 3] {
            s.update(&leaf, Some(Value::Int(v)));
        }
        assert_eq!(s.finish(AggFunc::Count), Value::Int(3));
    }

    #[test]
    fn sum_over_empty_is_null() {
        let s = AggState::new();
        assert_eq!(s.finish(AggFunc::Sum), Value::Null);
        assert_eq!(s.finish(AggFunc::Avg), Value::Null);
        assert_eq!(s.finish(AggFunc::Min), Value::Null);
        assert_eq!(s.finish(AggFunc::Count), Value::Int(0));
    }

    #[test]
    fn float_sum_stays_float() {
        let leaf = AggLeaf { func: AggFunc::Sum, arg: None, distinct: false };
        let mut s = AggState::new();
        s.update(&leaf, Some(Value::Float(1.5)));
        s.update(&leaf, Some(Value::Float(2.0)));
        assert_eq!(s.finish(AggFunc::Sum), Value::Float(3.5));
    }

    #[test]
    fn collect_leaves_dedups() {
        // COUNT(*) appearing twice collects once.
        let count = BoundExpr::Aggregate { func: AggFunc::Count, arg: None, distinct: false };
        let expr = BoundExpr::Binary {
            left: Box::new(count.clone()),
            op: qpe_sql::ast::BinaryOp::Add,
            right: Box::new(count),
        };
        let mut leaves = Vec::new();
        collect_leaves(&expr, &mut leaves);
        assert_eq!(leaves.len(), 1);
    }
}
