//! Sort, top-N and output-sort execution.

use super::{ExecError, ExecutorInternal, Row};
use crate::eval::{eval, Schema};
use qpe_sql::binder::BoundExpr;
use qpe_sql::value::Value;
use std::cmp::Ordering;

/// Compares two rows on pre-computed key values.
fn cmp_keys(a: &[Value], b: &[Value], descs: &[bool]) -> Ordering {
    for ((x, y), desc) in a.iter().zip(b.iter()).zip(descs.iter()) {
        let o = x.total_cmp(y);
        let o = if *desc { o.reverse() } else { o };
        if o != Ordering::Equal {
            return o;
        }
    }
    Ordering::Equal
}

/// Full sort on expression keys (TP's only ORDER BY strategy without an
/// index; also AP's when no LIMIT bounds the sort).
pub fn full_sort(
    ex: &mut ExecutorInternal,
    input: Vec<Row>,
    schema: &Schema,
    keys: &[(BoundExpr, bool)],
) -> Result<Vec<Row>, ExecError> {
    let descs: Vec<bool> = keys.iter().map(|(_, d)| *d).collect();
    let mut keyed: Vec<(Vec<Value>, Row)> = input
        .into_iter()
        .map(|row| {
            let kv: Result<Vec<Value>, _> =
                keys.iter().map(|(k, _)| eval(k, schema, &row)).collect();
            kv.map(|kv| (kv, row))
        })
        .collect::<Result<_, _>>()?;
    // Count comparisons deterministically as n·log2(n) — the asymptotic
    // charge — rather than instrumenting the comparator (which would make
    // work depend on sort-implementation internals).
    let n = keyed.len() as u64;
    ex.counters_mut().sort_comparisons += n * (64 - n.max(1).leading_zeros() as u64).max(1);
    keyed.sort_by(|(ka, _), (kb, _)| cmp_keys(ka, kb, &descs));
    Ok(keyed.into_iter().map(|(_, r)| r).collect())
}

/// Bounded top-N selection (AP's dedicated operator): keeps the best
/// `limit + offset` rows, then drops the first `offset`.
pub fn top_n(
    ex: &mut ExecutorInternal,
    input: Vec<Row>,
    schema: &Schema,
    keys: &[(BoundExpr, bool)],
    limit: u64,
    offset: u64,
) -> Result<Vec<Row>, ExecError> {
    let need = (limit + offset) as usize;
    if need == 0 {
        return Ok(Vec::new());
    }
    let descs: Vec<bool> = keys.iter().map(|(_, d)| *d).collect();
    // Simple bounded selection: maintain a sorted buffer of at most `need`
    // rows. Each push charges one heap operation.
    let mut buf: Vec<(Vec<Value>, Row)> = Vec::with_capacity(need + 1);
    for row in input {
        ex.counters_mut().topn_pushes += 1;
        let kv: Vec<Value> = keys
            .iter()
            .map(|(k, _)| eval(k, schema, &row))
            .collect::<Result<_, _>>()?;
        if buf.len() < need {
            let pos = buf
                .binary_search_by(|(k, _)| cmp_keys(k, &kv, &descs))
                .unwrap_or_else(|p| p);
            buf.insert(pos, (kv, row));
        } else if cmp_keys(&kv, &buf[need - 1].0, &descs) == Ordering::Less {
            let pos = buf
                .binary_search_by(|(k, _)| cmp_keys(k, &kv, &descs))
                .unwrap_or_else(|p| p);
            buf.insert(pos, (kv, row));
            buf.pop();
        }
    }
    Ok(buf
        .into_iter()
        .skip(offset as usize)
        .map(|(_, r)| r)
        .collect())
}

/// Positional sort over already-projected output rows (ORDER BY on
/// aggregated projections).
pub fn output_sort(
    ex: &mut ExecutorInternal,
    mut input: Vec<Row>,
    keys: &[(usize, bool)],
) -> Result<Vec<Row>, ExecError> {
    let n = input.len() as u64;
    ex.counters_mut().sort_comparisons += n * (64 - n.max(1).leading_zeros() as u64).max(1);
    input.sort_by(|a, b| {
        for &(pos, desc) in keys {
            let o = a[pos].total_cmp(&b[pos]);
            let o = if desc { o.reverse() } else { o };
            if o != Ordering::Equal {
                return o;
            }
        }
        Ordering::Equal
    });
    Ok(input)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_keys_respects_direction() {
        let a = vec![Value::Int(1), Value::Int(9)];
        let b = vec![Value::Int(1), Value::Int(3)];
        assert_eq!(cmp_keys(&a, &b, &[false, false]), Ordering::Greater);
        assert_eq!(cmp_keys(&a, &b, &[false, true]), Ordering::Less);
        assert_eq!(cmp_keys(&a, &a, &[false, false]), Ordering::Equal);
    }
}
